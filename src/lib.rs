//! # sawl — facade for the SAWL reproduction suite
//!
//! Reproduction of *An Efficient Wear-level Architecture using Self-adaptive
//! Wear Leveling* (ICPP '20). This crate re-exports the public API of every
//! workspace crate so that examples and downstream users can depend on a
//! single name.
//!
//! * [`nvm`] — the NVM device model (lines, endurance, spares, failure).
//! * [`trace`] — memory-request streams (RAA/BPA attacks, SPEC-like models).
//! * [`algos`] — baseline wear-leveling algorithms (Segment Swapping,
//!   Start-Gap, Security Refresh, PCM-S, MWSR) behind one trait.
//! * [`tiered`] — the tiered mapping architecture (IMT/CMT/GTD, NWL).
//! * [`sawl`] — the paper's contribution: self-adaptive wear leveling.
//! * [`timing`] — memory-controller timing and IPC estimation.
//! * [`simctl`] — experiment configs, parallel sweeps, reports.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use sawl_algos as algos;
pub use sawl_core as sawl;
pub use sawl_nvm as nvm;
pub use sawl_simctl as simctl;
pub use sawl_tiered as tiered;
pub use sawl_timing as timing;
pub use sawl_trace as trace;
