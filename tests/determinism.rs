//! Reproducibility: the whole stack is a deterministic function of its
//! configuration — streams, schemes, experiments, and trace files.

use bytes::Bytes;

use sawl::algos::WearLeveler;
use sawl::nvm::{NvmConfig, NvmDevice};
use sawl::simctl::{
    run_lifetime, run_perf, stable_seed, DeviceSpec, LifetimeExperiment, PerfExperiment,
    SchemeSpec, WorkloadSpec,
};
use sawl::trace::{AddressStream, SpecBenchmark, TraceReader, TraceWriter, ALL_BENCHMARKS};

#[test]
fn streams_are_deterministic_per_seed() {
    for bench in ALL_BENCHMARKS {
        let take = |seed: u64| {
            let mut s = bench.stream(1 << 14, seed);
            (0..200).map(|_| s.next_req()).collect::<Vec<_>>()
        };
        assert_eq!(take(1), take(1), "{}", bench.name());
        assert_ne!(take(1), take(2), "{}", bench.name());
    }
}

#[test]
fn lifetime_experiments_reproduce_bit_identically() {
    let exp = LifetimeExperiment {
        id: "determinism/lifetime".into(),
        scheme: SchemeSpec::sawl_default(256),
        workload: WorkloadSpec::Bpa { writes_per_target: 500 },
        data_lines: 1 << 11,
        device: DeviceSpec { endurance: 500, ..Default::default() },
        max_demand_writes: 0,
        fault: None,
        telemetry: None,
        timing: None,
    };
    assert_eq!(run_lifetime(&exp), run_lifetime(&exp));
}

#[test]
fn perf_experiments_reproduce_bit_identically() {
    let exp = PerfExperiment {
        id: "determinism/perf".into(),
        scheme: SchemeSpec::Nwl { granularity: 4, cmt_entries: 128, swap_period: 64 },
        benchmark: SpecBenchmark::Soplex,
        data_lines: 1 << 14,
        device: DeviceSpec { endurance: u32::MAX, ..Default::default() },
        requests: 50_000,
        warmup_requests: 0,
    };
    assert_eq!(run_perf(&exp), run_perf(&exp));
}

#[test]
fn different_experiment_ids_draw_different_randomness() {
    let mk = |id: &str| LifetimeExperiment {
        id: id.into(),
        scheme: SchemeSpec::PcmS { region_lines: 8, period: 8 },
        workload: WorkloadSpec::Bpa { writes_per_target: 400 },
        data_lines: 1 << 11,
        device: DeviceSpec { endurance: 400, ..Default::default() },
        max_demand_writes: 0,
        fault: None,
        telemetry: None,
        timing: None,
    };
    let a = run_lifetime(&mk("id-a")).unwrap();
    let b = run_lifetime(&mk("id-b")).unwrap();
    // Same distribution, different draws: demand-write counts differ.
    assert_ne!(a.demand_writes, b.demand_writes);
}

#[test]
fn seed_derivation_is_stable() {
    // Pinned value: changing the hash silently would invalidate every
    // recorded result in EXPERIMENTS.md.
    assert_eq!(stable_seed("fig3/1e6/p8/r64"), stable_seed("fig3/1e6/p8/r64"));
    assert_eq!(stable_seed("a"), 0xaf63_dc4c_8601_ec8c);
}

#[test]
fn trace_replay_equals_live_generation() {
    let space = 1 << 12;
    let mut live = SpecBenchmark::Hmmer.stream(space, 33);
    let mut w = TraceWriter::new(std::io::Cursor::new(Vec::new()), space).unwrap();
    let mut reference = Vec::new();
    for _ in 0..5_000 {
        let r = live.next_req();
        reference.push(r);
        w.push(r).unwrap();
    }
    let (out, _) = w.finish().unwrap();
    let mut replay = TraceReader::from_bytes(Bytes::from(out.into_inner())).unwrap();
    for (i, &expect) in reference.iter().enumerate() {
        assert_eq!(replay.next_req(), expect, "record {i}");
    }
}

#[test]
fn same_trace_through_two_schemes_sees_identical_demand_addresses() {
    // The property the paper's methodology depends on: scheme comparisons
    // replay identical traffic.
    let space = 1 << 10;
    let mut gen = SpecBenchmark::Gobmk.stream(space, 5);
    let mut w = TraceWriter::new(std::io::Cursor::new(Vec::new()), space).unwrap();
    w.record(&mut gen, 2_000).unwrap();
    let (out, count) = w.finish().unwrap();
    let buf = out.into_inner();

    let demand = |scheme: SchemeSpec| {
        let mut reader = TraceReader::from_bytes(Bytes::from(buf.clone())).unwrap();
        let mut wl = scheme.build(space, 1);
        let mut dev = NvmDevice::new(
            NvmConfig::builder()
                .lines(scheme.physical_lines(space))
                .banks(1)
                .endurance(u32::MAX)
                .build()
                .unwrap(),
        );
        let mut las = Vec::new();
        for _ in 0..count {
            let r = reader.next_req();
            if r.write {
                wl.write(r.la, &mut dev);
                las.push(r.la);
            }
        }
        las
    };
    let a = demand(SchemeSpec::PcmS { region_lines: 8, period: 8 });
    let b = demand(SchemeSpec::Tlsr { region_lines: 8, inner_period: 8, outer_period: 32 });
    assert_eq!(a, b);
}
