//! Integration tests of the workload substrate against the wear-leveling
//! stack: rate-mode multiprogramming, reuse-distance-driven expectations,
//! and cross-validation of the CMT against the reuse-distance theory.

use sawl::algos::WearLeveler;
use sawl::tiered::cmt::{Cmt, CmtLookup};
use sawl::tiered::{Nwl, NwlConfig};
use sawl::trace::{AddressStream, RateMode, ReuseTracker, SpecBenchmark};

fn wearless(lines: u64) -> sawl::nvm::NvmDevice {
    sawl::nvm::NvmDevice::new(
        sawl::nvm::NvmConfig::builder().lines(lines).endurance(u32::MAX).build().unwrap(),
    )
}

#[test]
fn reuse_tracker_predicts_cmt_hit_rate() {
    // The CMT is an exact LRU, so the sampled reuse-distance profile must
    // predict its hit rate. Run both on the same stream and compare.
    let entries = 512;
    let granularity = 4u64;
    let mut stream = SpecBenchmark::Gobmk.stream(1 << 18, 9);
    let mut cmt: Cmt<u8> = Cmt::new(entries);
    let mut tracker = ReuseTracker::new(3, 8192);
    for _ in 0..400_000 {
        let lrn = stream.next_req().la / granularity;
        if matches!(cmt.lookup(lrn), CmtLookup::Miss) {
            cmt.insert(lrn, 0);
        }
        tracker.observe(lrn);
    }
    let predicted = tracker.estimated_hit_rate(entries);
    let measured = cmt.hit_rate();
    assert!(
        (predicted - measured).abs() < 0.06,
        "reuse prediction {predicted} vs measured {measured}"
    );
}

#[test]
fn rate_mode_multiplies_cmt_pressure() {
    // Eight private copies of the same benchmark each bring their own
    // working set: against a fixed CMT, the aggregate footprint is 8x a
    // single copy's, so the hit rate must drop.
    let slice = 1u64 << 14;
    let run = |cores: u64| {
        let mut rm = RateMode::homogeneous(
            slice * cores,
            cores,
            |sl, seed| SpecBenchmark::Gcc.stream(sl, seed),
            3,
        );
        let mut nwl = Nwl::new(NwlConfig {
            data_lines: slice * cores,
            granularity: 4,
            cmt_entries: 512,
            swap_period: 1 << 20,
            ..NwlConfig::default()
        });
        let mut dev = wearless(nwl.required_physical_lines());
        for _ in 0..150_000 {
            let r = rm.next_req();
            if r.write {
                nwl.write(r.la, &mut dev);
            } else {
                nwl.read(r.la, &mut dev);
            }
        }
        nwl.mapping_stats().hit_rate()
    };
    let single = run(1);
    let eight = run(8);
    assert!(
        single > eight + 0.05,
        "rate mode should pressure the CMT: single {single}, eight {eight}"
    );
}

#[test]
fn rate_mode_spreads_wear_across_slices() {
    let space = 1 << 14;
    let mut rm =
        RateMode::homogeneous(space, 8, |slice, seed| SpecBenchmark::Lbm.stream(slice, seed), 4);
    let mut wl = sawl::algos::NoWl::new(space);
    let mut dev = wearless(space);
    for _ in 0..200_000 {
        let r = rm.next_req();
        if r.write {
            wl.write(r.la, &mut dev);
        }
    }
    // Every slice must have received wear.
    let slice = space / 8;
    for core in 0..8u64 {
        let writes: u64 = dev.write_counts()
            [(core * slice) as usize..((core + 1) * slice) as usize]
            .iter()
            .map(|&c| u64::from(c))
            .sum();
        assert!(writes > 0, "core {core}'s slice untouched");
    }
}

#[test]
fn benchmarks_footprint_ordering_survives_the_full_stack() {
    // End-to-end sanity: the SPEC-like models' footprint classes must be
    // visible through NWL's hit rates (small footprint -> high hit rate).
    let run = |b: SpecBenchmark| {
        let mut nwl = Nwl::new(NwlConfig {
            data_lines: 1 << 20,
            granularity: 4,
            cmt_entries: 2048,
            swap_period: 1 << 20,
            ..NwlConfig::default()
        });
        let mut dev = wearless(nwl.required_physical_lines());
        let mut s = b.stream(1 << 20, 8);
        for _ in 0..300_000 {
            let r = s.next_req();
            if r.write {
                nwl.write(r.la, &mut dev);
            } else {
                nwl.read(r.la, &mut dev);
            }
        }
        nwl.mapping_stats().hit_rate()
    };
    let hmmer = run(SpecBenchmark::Hmmer); // ~0.1% footprint
    let mcf = run(SpecBenchmark::Mcf); // ~18% footprint
    assert!(hmmer > 0.9, "hmmer should be cache-resident: {hmmer}");
    assert!(hmmer > mcf + 0.2, "hmmer {hmmer} vs mcf {mcf}");
}
