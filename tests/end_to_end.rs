//! Cross-crate integration tests: full experiment pipelines through the
//! public facade, exactly as the examples and figure binaries use them.

use sawl::sawl::SawlConfig;
use sawl::simctl::{
    run_lifetime, run_perf, DeviceSpec, LifetimeExperiment, PerfExperiment, SchemeSpec,
    WorkloadSpec,
};
use sawl::trace::SpecBenchmark;

fn lifetime_result(
    scheme: SchemeSpec,
    workload: WorkloadSpec,
    endurance: u32,
) -> sawl::simctl::LifetimeResult {
    run_lifetime(&LifetimeExperiment {
        id: format!("e2e/{}/{}", scheme.name(), workload.name()),
        scheme,
        workload,
        data_lines: 1 << 12,
        device: DeviceSpec { endurance, ..Default::default() },
        max_demand_writes: 0,
        fault: None,
        telemetry: None,
        timing: None,
    })
    .unwrap()
}

fn lifetime(scheme: SchemeSpec, workload: WorkloadSpec, endurance: u32) -> f64 {
    lifetime_result(scheme, workload, endurance).normalized_lifetime
}

#[test]
fn lifetime_ordering_under_bpa_matches_the_paper() {
    // All schemes at the same swapping period so the comparison isolates
    // the mapping machinery (the paper's Fig. 15 axis).
    let bpa = WorkloadSpec::Bpa { writes_per_target: 1_000 };
    let period = 16;
    let baseline = lifetime(SchemeSpec::Baseline, bpa.clone(), 1_000);
    let tlsr = lifetime(
        SchemeSpec::Tlsr { region_lines: 16, inner_period: period, outer_period: 32 },
        bpa.clone(),
        1_000,
    );
    let pcms = lifetime(SchemeSpec::PcmS { region_lines: 4, period }, bpa.clone(), 1_000);
    let sawl = lifetime(
        SchemeSpec::Sawl(SawlConfig {
            initial_granularity: 4,
            max_granularity: 64,
            cmt_entries: 512,
            swap_period: period,
            observation_window: 1 << 22,
            settling_window: 1 << 22,
            sample_interval: 100_000,
            ..SawlConfig::default()
        }),
        bpa.clone(),
        1_000,
    );
    let ideal = lifetime(SchemeSpec::Ideal, bpa, 1_000);
    assert!(baseline < tlsr, "baseline {baseline} !< tlsr {tlsr}");
    assert!(baseline < pcms, "baseline {baseline} !< pcm-s {pcms}");
    // SAWL matches fine-grained PCM-S here (same period, same granularity,
    // and no on-chip table bound).
    assert!(sawl > pcms * 0.7, "sawl {sawl} far below pcm-s {pcms}");
    assert!(sawl <= ideal * 1.05, "sawl {sawl} cannot beat ideal {ideal}");
    assert!(ideal > 0.9, "ideal oracle should approach 1.0, got {ideal}");
}

#[test]
fn raa_separates_static_from_randomized_schemes() {
    // The paper's 2.2 analysis is about where the attacked address can
    // travel: Segment Swapping never remaps the intra-segment offset, RBSG
    // never leaves the region, TLSR migrates the line across the device.
    use sawl::algos::{SegmentSwap, StartGap, Tlsr, WearLeveler};
    use sawl::nvm::{NvmConfig, NvmDevice};
    let mut dev = NvmDevice::new(
        NvmConfig::builder().lines(1 << 13).banks(1).endurance(u32::MAX).build().unwrap(),
    );

    let mut segment = SegmentSwap::new(1 << 12, 64, 100);
    for _ in 0..50_000 {
        segment.write(0, &mut dev);
        assert_eq!(segment.translate(0) % 64, 0, "segment swapping remapped the offset");
    }

    let mut rbsg = StartGap::new(16, 255, 16);
    for _ in 0..50_000 {
        rbsg.write(0, &mut dev);
        assert!(rbsg.translate(0) < 256, "start-gap let the line leave its region");
    }

    // The outer SR level completes one randomizing round per
    // outer_period * lines writes (32 * 4096 here), so give the attack
    // enough rounds to demonstrate cross-region migration.
    let mut tlsr = Tlsr::new(1 << 12, 16, 8, 32, 7);
    let mut homes = std::collections::HashSet::new();
    for _ in 0..1_200_000 {
        tlsr.write(0, &mut dev);
        homes.insert(tlsr.translate(0));
    }
    assert!(homes.len() > 64, "tlsr failed to migrate the attacked line: {} homes", homes.len());
}

#[test]
fn perf_pipeline_reports_sane_numbers() {
    let r = run_perf(&PerfExperiment {
        id: "e2e/perf".into(),
        scheme: SchemeSpec::Nwl { granularity: 4, cmt_entries: 256, swap_period: 128 },
        benchmark: SpecBenchmark::Gcc,
        data_lines: 1 << 16,
        device: DeviceSpec { endurance: u32::MAX, ..Default::default() },
        requests: 100_000,
        warmup_requests: 0,
    })
    .unwrap();
    assert!(r.hit_rate > 0.0 && r.hit_rate <= 1.0);
    assert!(r.ipc.ipc > 0.0);
    assert!(r.baseline_ipc.ipc >= r.ipc.ipc);
    assert!((0.0..1.0).contains(&r.ipc_degradation));
    assert!(r.ipc.mean_latency_ns >= 50.0);
}

#[test]
fn sawl_beats_nwl4_on_ipc_for_scattered_traffic() {
    let run = |scheme: SchemeSpec| {
        run_perf(&PerfExperiment {
            id: format!("e2e/ipc/{}", scheme.name()),
            scheme,
            benchmark: SpecBenchmark::Mcf,
            data_lines: 1 << 20,
            device: DeviceSpec { endurance: u32::MAX, ..Default::default() },
            requests: 3_000_000,
            warmup_requests: 1_000_000,
        })
        .unwrap()
    };
    let cmt_entries = 2048;
    let nwl = run(SchemeSpec::Nwl { granularity: 4, cmt_entries, swap_period: 128 });
    let sawl = run(SchemeSpec::Sawl(SawlConfig {
        initial_granularity: 4,
        max_granularity: 256,
        cmt_entries,
        swap_period: 128,
        observation_window: 1 << 19,
        settling_window: 1 << 18,
        sample_interval: 50_000,
        ..SawlConfig::default()
    }));
    assert!(
        sawl.hit_rate > nwl.hit_rate,
        "sawl hit {} !> nwl-4 hit {}",
        sawl.hit_rate,
        nwl.hit_rate
    );
    // IPC: this short debug-mode run measures SAWL mid-ramp (the lazy
    // merges of the whole mcf footprint land inside the measured window),
    // so the strict NWL-4 IPC comparison lives in the release-mode fig17
    // harness, which warms up past the ramp. Here we only sanity-bound the
    // transient and check the estimates are coherent.
    assert!(
        sawl.ipc_degradation < 0.6,
        "sawl degradation {} implausibly high even mid-ramp",
        sawl.ipc_degradation
    );
    assert!(sawl.ipc.ipc > 0.0 && sawl.ipc.ipc <= sawl.baseline_ipc.ipc);
}

#[test]
fn overhead_fractions_track_swap_periods() {
    let bpa = WorkloadSpec::Bpa { writes_per_target: 512 };
    let run = |period| {
        run_lifetime(&LifetimeExperiment {
            id: format!("e2e/overhead/{period}"),
            scheme: SchemeSpec::PcmS { region_lines: 8, period },
            workload: bpa.clone(),
            data_lines: 1 << 12,
            device: DeviceSpec { endurance: 5_000, ..Default::default() },
            max_demand_writes: 0,
            fault: None,
            telemetry: None,
            timing: None,
        })
        .unwrap()
    };
    let eager = run(8);
    let lazy = run(64);
    assert!((eager.overhead_fraction - 0.25).abs() < 0.05, "{}", eager.overhead_fraction);
    assert!((lazy.overhead_fraction - 0.031).abs() < 0.02, "{}", lazy.overhead_fraction);
}
