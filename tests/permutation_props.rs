//! Property-based tests: every wear-leveling scheme's logical→physical
//! mapping stays an injection into the device under arbitrary write
//! sequences, and the schemes' accounting invariants hold.

use proptest::prelude::*;

use sawl::algos::verify::check_permutation;
use sawl::algos::{Mwsr, PcmS, SecurityRefresh, SegmentSwap, StartGap, Tlsr, WearLeveler};
use sawl::nvm::{NvmConfig, NvmDevice};
use sawl::sawl::{Sawl, SawlConfig};
use sawl::tiered::{Nwl, NwlConfig};
use sawl::trace::{AddressStream, Bpa};

const LINES: u64 = 1 << 10;

fn device(lines: u64) -> NvmDevice {
    NvmDevice::new(
        NvmConfig::builder()
            .lines(lines)
            .banks(1)
            .endurance(u32::MAX)
            .spare_shift(6)
            .build()
            .unwrap(),
    )
}

/// Apply a write sequence and check the permutation plus the device's
/// write accounting.
fn exercise<W: WearLeveler>(mut wl: W, physical_lines: u64, writes: &[u64]) {
    let mut dev = device(physical_lines);
    for &w in writes {
        let la = w % wl.logical_lines();
        wl.write(la, &mut dev);
    }
    check_permutation(&wl, physical_lines);
    let wear = dev.wear();
    assert_eq!(wear.demand_writes, writes.len() as u64);
    assert_eq!(wear.total_writes, wear.demand_writes + wear.overhead_writes);
    let sum: u64 = dev.write_counts().iter().map(|&c| u64::from(c)).sum();
    assert_eq!(sum, wear.total_writes, "per-line counts must sum to total writes");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    #[test]
    fn segment_swap_is_permutation(writes in prop::collection::vec(any::<u64>(), 1..800),
                                   period in 1u64..64) {
        exercise(SegmentSwap::new(LINES, 32, period), LINES, &writes);
    }

    #[test]
    fn start_gap_is_permutation(writes in prop::collection::vec(any::<u64>(), 1..800),
                                period in 1u64..32) {
        let wl = StartGap::new(8, 127, period);
        let phys = wl.physical_lines();
        exercise(wl, phys, &writes);
    }

    #[test]
    fn security_refresh_is_permutation(writes in prop::collection::vec(any::<u64>(), 1..800),
                                       period in 1u64..32, seed in any::<u64>()) {
        exercise(SecurityRefresh::new(LINES, period, seed), LINES, &writes);
    }

    #[test]
    fn tlsr_is_permutation(writes in prop::collection::vec(any::<u64>(), 1..800),
                           inner in 1u64..32, seed in any::<u64>()) {
        exercise(Tlsr::new(LINES, 32, inner, 32, seed), LINES, &writes);
    }

    #[test]
    fn pcms_is_permutation(writes in prop::collection::vec(any::<u64>(), 1..800),
                           period in 1u64..32, seed in any::<u64>()) {
        exercise(PcmS::new(LINES, 16, period, seed), LINES, &writes);
    }

    #[test]
    fn mwsr_is_permutation(writes in prop::collection::vec(any::<u64>(), 1..800),
                           period in 1u64..32, seed in any::<u64>()) {
        let wl = Mwsr::new(LINES, 16, period, seed);
        let phys = wl.physical_lines();
        exercise(wl, phys, &writes);
    }

    #[test]
    fn nwl_is_permutation(writes in prop::collection::vec(any::<u64>(), 1..600),
                          period in 1u64..16, seed in any::<u64>()) {
        let wl = Nwl::new(NwlConfig {
            data_lines: LINES,
            granularity: 4,
            cmt_entries: 32,
            swap_period: period,
            gtd_period: 8,
            seed,
        });
        let phys = wl.required_physical_lines();
        // NWL translates only within its data lines; overhead writes also
        // land in the translation region, so check against the full device.
        exercise(wl, phys, &writes);
    }

    #[test]
    fn sawl_survives_arbitrary_traffic(writes in prop::collection::vec(any::<u64>(), 1..600),
                                       seed in any::<u64>()) {
        let cfg = SawlConfig {
            data_lines: LINES,
            initial_granularity: 4,
            max_granularity: 64,
            cmt_entries: 32,
            swap_period: 2,
            sample_interval: 50,
            observation_window: 200,
            settling_window: 100,
            seed,
            ..SawlConfig::default()
        };
        let wl = Sawl::new(cfg);
        let phys = wl.required_physical_lines();
        exercise(wl, phys, &writes);
    }

    #[test]
    fn sawl_internal_invariants_after_forced_adaptation(
        ops in prop::collection::vec((any::<u64>(), any::<bool>()), 1..400),
        seed in any::<u64>(),
    ) {
        // Aggressive monitor settings so merges AND splits fire within a
        // short random run; then check the engine's full invariant suite.
        let cfg = SawlConfig {
            data_lines: 1 << 9,
            initial_granularity: 4,
            max_granularity: 64,
            cmt_entries: 8,
            swap_period: 2,
            sample_interval: 20,
            observation_window: 40,
            settling_window: 20,
            seed,
            ..SawlConfig::default()
        };
        let mut wl = Sawl::new(cfg);
        let mut dev = device(wl.required_physical_lines());
        for &(addr, write) in &ops {
            let la = addr % wl.logical_lines();
            if write {
                wl.write(la, &mut dev);
            } else {
                wl.read(la, &mut dev);
            }
        }
        wl.check_invariants();
    }

    #[test]
    fn sawl_translate_stays_bijective_across_forced_merge_split_merge(
        seed in any::<u64>(),
        dwell in 16u64..128,
        writes_between in 50usize..300,
    ) {
        // Force the granularity through a full merge -> split -> merge
        // cycle via the lazy target (the same path the monitor drives),
        // with an adversarial BPA trace running between the transitions,
        // and demand the logical->physical map stays a bijection at every
        // step.
        let cfg = SawlConfig {
            data_lines: LINES,
            initial_granularity: 4,
            max_granularity: 64,
            cmt_entries: 32,
            swap_period: 4,
            // Neutralize the monitor: the test drives the target itself.
            sample_interval: 1 << 30,
            observation_window: 1 << 30,
            settling_window: 1 << 30,
            seed,
            ..SawlConfig::default()
        };
        let mut wl = Sawl::new(cfg);
        let phys = wl.required_physical_lines();
        let mut dev = device(phys);
        let mut attack = Bpa::new(LINES, dwell, seed ^ 0xB1A5);
        // Merge up two levels, split back down, merge again — regions
        // converge lazily as the attack touches them.
        for target in [4u8, 2, 3] {
            wl.set_target_q_log2(target);
            for _ in 0..writes_between {
                let req = attack.next_req();
                wl.write(req.la, &mut dev);
            }
            check_permutation(&wl, phys);
            wl.check_invariants();
        }
        // Sprinkle explicit merges/splits on top of the lazy convergence
        // and re-verify: the bijection must survive direct operations too.
        for g in 0..8u64 {
            let base = wl.region_base(g * 16);
            if g % 2 == 0 {
                wl.merge(base, &mut dev);
            } else {
                wl.split(base, &mut dev);
            }
        }
        check_permutation(&wl, phys);
        wl.check_invariants();
    }
}
