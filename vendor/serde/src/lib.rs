//! Offline stand-in for `serde`.
//!
//! The real serde is a zero-copy framework generic over data formats; this
//! workspace only ever serializes small config/result structs to JSON, so
//! the stand-in collapses the whole design to one intermediate tree:
//! [`Serialize`] renders a value into a JSON-shaped [`Value`], and
//! [`Deserialize`] rebuilds a value from one. The derive macros (from the
//! sibling `serde_derive` stub) generate both directions with serde's
//! externally-tagged enum representation, so JSON written by the real
//! serde_json for these types parses identically.
//!
//! Integers are carried as `i128` so full-range `u64` seeds round-trip
//! exactly (the real serde_json also keeps integers exact).

pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped data tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON null.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integral number (exact).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object; insertion order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// (De)serialization error: a message with context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error carrying `msg`.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Render into the [`Value`] tree.
pub trait Serialize {
    /// Serialize `self`.
    fn serialize(&self) -> Value;
}

/// Rebuild from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize a value, with a descriptive error on shape mismatch.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---- derive support (not part of the public API surface) ---------------

/// Fetch and deserialize a required struct field. Used by derived code.
pub fn __field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(val) => T::deserialize(val).map_err(|e| Error::msg(format!("field `{name}`: {e}"))),
        None => Err(Error::msg(format!("missing field `{name}`"))),
    }
}

/// Fetch an optional (`#[serde(default)]`) struct field. Used by derived
/// code.
pub fn __field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(val) => T::deserialize(val).map_err(|e| Error::msg(format!("field `{name}`: {e}"))),
        None => Ok(T::default()),
    }
}

// ---- impls for primitives and std containers ---------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg(format!("{i} out of range for {}", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::msg(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::msg(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Deserialize for &'static str {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        // Static tables (benchmark params) carry `&'static str` names; the
        // only way to materialize one from parsed text is to leak it. These
        // are tiny, rarely-parsed config strings.
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Arr(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) if items.len() == 2 => {
                Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
            }
            other => Err(Error::msg(format!("expected 2-element array, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_range_u64_round_trips_exactly() {
        let x = u64::MAX - 3;
        assert_eq!(u64::deserialize(&x.serialize()).unwrap(), x);
    }

    #[test]
    fn vec_and_option_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()).unwrap(), v);
        let o: Option<String> = None;
        assert_eq!(Option::<String>::deserialize(&o.serialize()).unwrap(), o);
    }

    #[test]
    fn missing_field_reports_name() {
        let v = Value::Obj(vec![]);
        let err = __field::<u32>(&v, "period").unwrap_err();
        assert!(err.to_string().contains("period"));
    }
}
