//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of the rand 0.9 API it actually uses:
//! [`SmallRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng::random`] / [`Rng::random_range`] methods. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across
//! platforms, which is all the simulation needs (every recorded result is
//! only ever compared against a rerun of the same binary).

use core::ops::Range;

/// Seeding entry point (`SmallRng::seed_from_u64(seed)`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// A value uniformly sampleable from raw generator output.
pub trait Standard {
    /// Draw one value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// A type usable with [`Rng::random_range`] over half-open ranges.
pub trait SampleUniform: Sized {
    /// Draw a value uniformly from `range`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// The generator interface: one raw source plus typed helpers.
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniformly random value in `[range.start, range.end)`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Small, fast generators.
pub mod rngs {
    pub use crate::SmallRng;
}

/// xoshiro256++ — the small-state generator behind [`rngs::SmallRng`].
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// The full 256-bit generator state, for checkpointing.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a previously captured [`state`](Self::state).
    /// An all-zero state is the xoshiro fixed point; callers restoring a
    /// state captured from a live generator never see it.
    pub fn from_state(s: [u64; 4]) -> Self {
        Self { s }
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the seed, per the xoshiro authors'
        // recommendation; guarantees a non-zero state.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.random_range(3u64..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = r.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut r = SmallRng::seed_from_u64(3);
        let _ = draw(&mut r);
    }
}
