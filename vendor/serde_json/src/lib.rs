//! Offline stand-in for `serde_json`: renders the vendored serde's
//! [`Value`] tree to JSON text and parses it back. Covers the API surface
//! the workspace uses (`to_string`, `to_string_pretty`, `from_str`) with
//! standard JSON syntax, exact integers, and round-tripping floats (Rust's
//! shortest-representation `Display`).

use serde::{Deserialize, Serialize, Value};

/// Parse or render error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

// ---- rendering ---------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // Keep the float-ness visible, as the real serde_json does.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                render(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Render a value as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Render a value as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

// ---- parsing -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u"))?;
                            self.pos += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(self.err(&format!("bad escape \\{}", other as char))),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.contains('.') || text.contains('e') || text.contains('E') {
            text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid float"))
        } else {
            text.parse::<i128>().map(Value::Int).map_err(|_| self.err("invalid integer"))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end of input"))? {
            b'n' => self.eat_lit("null").map(|_| Value::Null),
            b't' => self.eat_lit("true").map(|_| Value::Bool(true)),
            b'f' => self.eat_lit("false").map(|_| Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let val = self.parse_value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            _ => self.parse_number(),
        }
    }
}

/// Parse a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::deserialize(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(), u64::MAX);
        assert_eq!(from_str::<f64>(&to_string(&0.125f64).unwrap()).unwrap(), 0.125);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<String>("\"a\\n\\\"b\\\"\"").unwrap(), "a\n\"b\"");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(from_str::<Vec<u64>>(&to_string(&v).unwrap()).unwrap(), v);
        assert_eq!(to_string(&Vec::<u64>::new()).unwrap(), "[]");
    }

    #[test]
    fn pretty_output_is_indented_and_parses_back() {
        let v = serde::Value::Obj(vec![
            ("a".into(), serde::Value::Int(1)),
            ("b".into(), serde::Value::Arr(vec![serde::Value::Bool(false)])),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
        assert_eq!(from_str::<serde::Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn whole_floats_stay_floats() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("12 t").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
    }
}
