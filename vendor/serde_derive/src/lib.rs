//! Offline stand-in for `serde_derive`.
//!
//! Parses the derive input with `proc_macro` alone (no syn/quote — those
//! are also unreachable offline) and emits `serde::Serialize` /
//! `serde::Deserialize` impls against the vendored serde's `Value` tree.
//! Supports what this workspace derives on: non-generic structs with named
//! fields (honouring `#[serde(default)]`), unit structs, and enums with
//! unit / named-field / one-element tuple variants, in serde's
//! externally-tagged representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Named(Vec<Field>),
    Newtype,
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Body {
    Struct(Vec<Field>),
    Unit,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    body: Body,
}

/// Skip attributes (`#[...]`, including doc comments), recording whether a
/// `#[serde(default)]` was among them; then skip a `pub` / `pub(...)`
/// visibility. Returns the new position.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize, saw_default: &mut bool) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                    let text = g.stream().to_string();
                    if text.starts_with("serde") && text.contains("default") {
                        *saw_default = true;
                    }
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Skip a type (after `field:`) up to the next top-level comma, tracking
/// `<...>` nesting so generic arguments don't terminate early.
fn skip_type(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while let Some(t) = toks.get(i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut default = false;
        i = skip_attrs_and_vis(&toks, i, &mut default);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde derive stub: expected field name, got {other}"),
            None => break,
        };
        i += 1; // name
        i += 1; // ':'
        i = skip_type(&toks, i);
        i += 1; // ','
        fields.push(Field { name, default });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut ignored = false;
        i = skip_attrs_and_vis(&toks, i, &mut ignored);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde derive stub: expected variant name, got {other}"),
            None => break,
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let end = skip_type(&inner, 0);
                assert!(
                    end >= inner.len().saturating_sub(1),
                    "serde derive stub: only 1-element tuple variants supported ({name})"
                );
                i += 1;
                VariantKind::Newtype
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut ignored = false;
    let mut i = skip_attrs_and_vis(&toks, 0, &mut ignored);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive stub: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = toks[i].to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive stub: generic type {name} not supported");
        }
    }
    let body = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Body::Struct(parse_named_fields(g.stream()))
            } else if kind == "enum" {
                Body::Enum(parse_variants(g.stream()))
            } else {
                panic!("serde derive stub: unsupported item kind {kind}");
            }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' && kind == "struct" => Body::Unit,
        other => panic!("serde derive stub: unsupported body for {name}: {other:?}"),
    };
    Item { name, body }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__obj.push((\"{0}\".to_string(), ::serde::Serialize::serialize(&self.{0})));\n",
                        f.name
                    )
                })
                .collect();
            format!(
                "let mut __obj: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}::serde::Value::Obj(__obj)"
            )
        }
        Body::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| match &v.kind {
                    VariantKind::Unit => format!(
                        "{name}::{0} => ::serde::Value::Str(\"{0}\".to_string()),\n",
                        v.name
                    ),
                    VariantKind::Newtype => format!(
                        "{name}::{0}(__x) => ::serde::Value::Obj(vec![(\"{0}\".to_string(), ::serde::Serialize::serialize(__x))]),\n",
                        v.name
                    ),
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "__inner.push((\"{0}\".to_string(), ::serde::Serialize::serialize({0})));\n",
                                    f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => {{\nlet mut __inner: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}::serde::Value::Obj(vec![(\"{v}\".to_string(), ::serde::Value::Obj(__inner))])\n}}\n",
                            v = v.name,
                            binds = binds.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\nfn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_named_ctor(ty_path: &str, fields: &[Field], src: &str) -> String {
    let inits: String = fields
        .iter()
        .map(|f| {
            if f.default {
                format!("{0}: ::serde::__field_or_default({src}, \"{0}\")?,\n", f.name)
            } else {
                format!("{0}: ::serde::__field({src}, \"{0}\")?,\n", f.name)
            }
        })
        .collect();
    format!("{ty_path} {{\n{inits}}}")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Unit => format!("::core::result::Result::Ok({name})"),
        Body::Struct(fields) => {
            format!("::core::result::Result::Ok({})", gen_named_ctor(name, fields, "__v"))
        }
        Body::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => ::core::result::Result::Ok({name}::{0}),\n", v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .map(|v| match &v.kind {
                    VariantKind::Unit => format!(
                        "\"{0}\" => ::core::result::Result::Ok({name}::{0}),\n",
                        v.name
                    ),
                    VariantKind::Newtype => format!(
                        "\"{0}\" => ::core::result::Result::Ok({name}::{0}(::serde::Deserialize::deserialize(__inner)?)),\n",
                        v.name
                    ),
                    VariantKind::Named(fields) => format!(
                        "\"{v}\" => ::core::result::Result::Ok({ctor}),\n",
                        v = v.name,
                        ctor = gen_named_ctor(&format!("{name}::{}", v.name), fields, "__inner")
                    ),
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::core::result::Result::Err(::serde::Error::msg(format!(\"unknown {name} variant `{{__other}}`\"))),\n}},\n\
                 ::serde::Value::Obj(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__tag, __inner) = &__pairs[0];\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 __other => ::core::result::Result::Err(::serde::Error::msg(format!(\"unknown {name} variant `{{__other}}`\"))),\n}}\n}},\n\
                 __other => ::core::result::Result::Err(::serde::Error::msg(format!(\"bad {name} value: {{__other:?}}\"))),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\nfn deserialize(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde derive stub: generated invalid Serialize impl")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde derive stub: generated invalid Deserialize impl")
}
