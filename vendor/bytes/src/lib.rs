//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the trace file format uses: an owning immutable
//! buffer with a consuming read cursor ([`Bytes`], matching the real
//! crate's advance-on-read semantics where the buffer *is* the remaining
//! view) and a growable write buffer ([`BytesMut`]), plus the [`Buf`] /
//! [`BufMut`] trait names the call sites import.

use std::ops::Deref;

/// Read side: little-endian extraction that consumes the buffer.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Copy `dst.len()` bytes out and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    /// Read a little-endian u64 and advance.
    fn get_u64_le(&mut self) -> u64;
    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);
}

/// Write side: little-endian appends.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);
    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64);
    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32);
}

/// Immutable byte buffer; reads advance, and `Deref`/indexing expose the
/// *remaining* bytes, exactly like the real `Bytes`.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Remaining length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.pos += cnt;
    }
}

/// Growable write buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Drop the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_advance_and_indexing_sees_the_rest() {
        let mut b = BytesMut::with_capacity(32);
        b.put_slice(b"HDR");
        b.put_u64_le(0xDEAD_BEEF);
        b.put_u64_le(7);
        let mut r = Bytes::from(b.to_vec());
        let mut hdr = [0u8; 3];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR");
        assert_eq!(r.get_u64_le(), 0xDEAD_BEEF);
        // After consuming the header, index 0 is the next record.
        assert_eq!(r.len(), 8);
        assert_eq!(u64::from_le_bytes(r[0..8].try_into().unwrap()), 7);
        assert_eq!(r.get_u64_le(), 7);
        assert!(r.is_empty());
    }
}
