//! Offline stand-in for `criterion`.
//!
//! Runs each registered benchmark closure for a short fixed budget and
//! prints mean ns/iter — no statistics, plots, or baselines, but the same
//! `criterion_group!`/`criterion_main!`/`benchmark_group` surface, so
//! `benches/` compiles and `cargo bench` still gives a usable smoke
//! number offline.

use std::time::{Duration, Instant};

/// Batch sizing hint (ignored; kept for API compatibility).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { measurement: Duration::from_millis(200), warm_up: Duration::from_millis(50) }
    }
}

impl Criterion {
    /// Number of samples (ignored; API compatibility).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let id = id.to_string();
        run_one(self, &id, f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(c: &Criterion, label: &str, mut f: F) {
    let mut b = Bencher {
        warm_up: c.warm_up,
        measurement: c.measurement,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters > 0 {
        let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("{label:<40} {ns:>12.1} ns/iter ({} iters)", b.iters);
    }
}

/// A named group; benchmarks report as `group/id`.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` repeatedly within the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measurement {
            // Chunk iterations so the clock isn't read every pass.
            for _ in 0..64 {
                std::hint::black_box(f());
            }
            iters += 64;
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }

    /// Time `routine` over owned inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.measurement;
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += start.elapsed();
            iters += 1;
        }
        self.elapsed += elapsed;
        self.iters += iters;
    }

    /// Time `routine` over mutable borrowed inputs from `setup`, reusing
    /// each input for a batch of calls (setup untimed).
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let deadline = Instant::now() + self.measurement;
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while Instant::now() < deadline {
            let mut input = setup();
            let start = Instant::now();
            for _ in 0..64 {
                std::hint::black_box(routine(&mut input));
            }
            elapsed += start.elapsed();
            iters += 64;
        }
        self.elapsed += elapsed;
        self.iters += iters;
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_accumulates_timing() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("t");
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
