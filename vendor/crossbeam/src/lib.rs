//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::channel::bounded` as a
//! multi-producer/single-consumer results pipe in `parallel_map`; the
//! standard library's `mpsc::sync_channel` has identical semantics for
//! that use (cloneable sender, bounded backpressure, iteration until all
//! senders drop), so this crate is a thin alias layer over it.

pub mod channel {
    /// Cloneable bounded sender.
    pub type Sender<T> = std::sync::mpsc::SyncSender<T>;
    /// Receiving end; iterating yields until every sender is dropped.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// A bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_in_from_multiple_senders() {
        let (tx, rx) = channel::bounded::<u32>(4);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        for h in handles {
            h.join().unwrap();
        }
    }
}
