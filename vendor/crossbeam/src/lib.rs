//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace uses `crossbeam::channel` in two places: `parallel_map`
//! fans worker results into a bounded multi-producer pipe, and the
//! `sawl-serve` daemon shards tenants across a worker pool through an
//! unbounded multi-consumer work queue. The real crossbeam channel is
//! MPMC with cloneable ends on both sides, so this stand-in implements
//! that contract directly over `Mutex<VecDeque>` + `Condvar`: cloneable
//! [`channel::Sender`]/[`channel::Receiver`], blocking `send`/`recv`,
//! `recv_timeout`/`try_recv`, and iteration that drains until every
//! sender is gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};
    use std::time::{Duration, Instant};

    struct State<T> {
        items: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Signalled when an item arrives or the last sender drops.
        recv_cv: Condvar,
        /// Signalled when capacity frees up or the last receiver drops.
        send_cv: Condvar,
    }

    /// Cloneable producing end; `send` blocks while a bounded channel is
    /// full and errors once every receiver is gone.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Cloneable consuming end; `recv` blocks while the channel is empty
    /// and errors once every sender is gone and the queue has drained.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// The message could not be delivered: every receiver is gone.
    pub struct SendError<T>(pub T);

    /// Every sender is gone and the channel has drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a timed receive returned without a message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the channel still empty.
        Timeout,
        /// Every sender is gone and the channel has drained.
        Disconnected,
    }

    /// Why a non-blocking receive returned without a message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Every sender is gone and the channel has drained.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a channel with no receivers")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on a channel with no senders")
        }
    }

    fn new_pair<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { items: VecDeque::new(), cap, senders: 1, receivers: 1 }),
            recv_cv: Condvar::new(),
            send_cv: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    /// A bounded channel holding at most `cap` in-flight messages.
    ///
    /// Rendezvous channels (`cap == 0`) are not modelled; a zero
    /// capacity is promoted to one slot.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_pair(Some(cap.max(1)))
    }

    /// An unbounded channel; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_pair(None)
    }

    impl<T> Sender<T> {
        /// Deliver `value`, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = st.cap.is_some_and(|c| st.items.len() >= c);
                if !full {
                    st.items.push_back(value);
                    drop(st);
                    self.0.recv_cv.notify_one();
                    return Ok(());
                }
                st = self.0.send_cv.wait(st).unwrap();
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.recv_cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        fn pop(&self, st: &mut MutexGuard<'_, State<T>>) -> Option<T> {
            let item = st.items.pop_front();
            if item.is_some() {
                self.0.send_cv.notify_one();
            }
            item
        }

        /// Take the next message, blocking while the channel is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(item) = self.pop(&mut st) {
                    return Ok(item);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.recv_cv.wait(st).unwrap();
            }
        }

        /// Take the next message, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(item) = self.pop(&mut st) {
                    return Ok(item);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self.0.recv_cv.wait_timeout(st, left).unwrap();
                st = guard;
                if res.timed_out() && st.items.is_empty() {
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Take the next message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.state.lock().unwrap();
            if let Some(item) = self.pop(&mut st) {
                return Ok(item);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Blocking iterator: yields until every sender is gone and the
        /// channel has drained.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.0.send_cv.notify_all();
            }
        }
    }

    /// Borrowing blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Owning blocking iterator over received messages.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn fan_in_from_multiple_senders() {
        let (tx, rx) = channel::bounded::<u32>(4);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn fan_out_to_multiple_receivers() {
        let (tx, rx) = channel::unbounded::<u32>();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    while let Ok(v) = rx.recv() {
                        seen.push(v);
                    }
                    seen
                })
            })
            .collect();
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<u32> = Vec::new();
        for w in workers {
            all.extend(w.join().unwrap());
        }
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_send_blocks_until_room_and_errors_without_receivers() {
        let (tx, rx) = channel::bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = {
            let tx = tx.clone();
            std::thread::spawn(move || tx.send(2).unwrap())
        };
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        drop(rx);
        assert!(tx.send(3).is_err());
    }

    #[test]
    fn recv_timeout_reports_timeouts_and_disconnects() {
        let (tx, rx) = channel::unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }
}
