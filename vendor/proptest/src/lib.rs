//! Offline stand-in for `proptest`.
//!
//! Provides the `proptest!` macro, `any`, numeric-range and tuple
//! strategies, and `prop::collection::vec` — enough to run this
//! workspace's property suites as deterministic random-case tests (seeded
//! from the test name, so failures reproduce run-to-run). No shrinking:
//! a failing case panics with the regular assertion message.

use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration; only `cases` matters here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// FNV-1a over a test name: the per-property seed.
pub fn fnv(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// A source of random values of one type.
pub trait Strategy {
    /// The produced type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a full-range default strategy ([`any`]).
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for a full-range `T`.
pub struct Any<T>(PhantomData<T>);

/// The default full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Collection length bounds, convertible from a `usize` range.
#[derive(Debug, Clone)]
pub struct SizeRange(Range<usize>);

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange(r)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let r = &self.size.0;
            assert!(r.start < r.end, "empty vec size range");
            let span = (r.end - r.start) as u64;
            let len = r.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Namespace mirror of the real crate (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{any, prop, proptest, ProptestConfig, Strategy};
}

/// Define deterministic random-case tests. Mirrors the real macro's
/// surface for `fn name(arg in strategy, ...) { body }` items with an
/// optional leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::new($crate::fnv(concat!(module_path!(), "::", stringify!($name))));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    (cfg = ($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16 })]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, v in prop::collection::vec(any::<u8>(), 1..9)) {
            assert!((3..17).contains(&x));
            assert!((1..9).contains(&v.len()));
        }

        #[test]
        fn tuples_work(pair in (any::<u64>(), any::<bool>())) {
            let (_n, _b) = pair;
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = crate::TestRng::new(crate::fnv("x"));
        let mut b = crate::TestRng::new(crate::fnv("x"));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
