//! Sharded sweep determinism: an N-way parallel latency sweep must be
//! bit-identical to a 1-way run of the same shard grid — same reduced
//! rows, same merged histogram snapshots, byte for byte.
//!
//! The worker count is process-global (`set_thread_override`), so every
//! comparison lives in this one test function — nothing else in this
//! binary touches the override.

use sawl_bench::latency::{merge_shards, run_sweep, scheme_grid, workload_grid, SweepConfig};
use sawl_simctl::set_thread_override;

#[test]
fn sharded_sweep_is_thread_count_invariant() {
    // A small slice of the real grid: the two schemes with the most
    // divergent timing behavior (untranslated baseline, fully adaptive
    // SAWL) under both workload shapes, 4 seed shards each.
    let cfg = SweepConfig { data_lines: 1 << 10, requests: 40_000, seeds: 4, endurance: u32::MAX };
    let schemes: Vec<_> = scheme_grid(cfg.data_lines)
        .into_iter()
        .filter(|(n, _)| *n == "baseline" || *n == "sawl")
        .collect();
    let workloads = workload_grid();
    assert_eq!(schemes.len(), 2);

    set_thread_override(Some(1));
    let serial = run_sweep(&cfg, &schemes, &workloads);
    set_thread_override(Some(4));
    let parallel = run_sweep(&cfg, &schemes, &workloads);
    set_thread_override(None);

    assert_eq!(serial.len(), 4);
    assert_eq!(serial, parallel, "worker count changed a reduced row");
    for (a, b) in serial.iter().zip(&parallel) {
        // Byte-level check on the canonical snapshot encoding, over and
        // above the structural equality: the merged histograms serialize
        // identically.
        let sa = serde_json::to_string(a.report.histogram.as_ref().unwrap()).unwrap();
        let sb = serde_json::to_string(b.report.histogram.as_ref().unwrap()).unwrap();
        assert_eq!(sa, sb, "{}/{}", a.scheme, a.workload);
        assert_eq!(a.report.requests, cfg.requests);
    }
}

#[test]
fn shard_merge_is_associatively_consistent() {
    // Merging [a, b, c, d] in one pass equals merging [a, b] and [c, d]
    // then folding those — the reduction is a plain monoid fold over the
    // slot-exact histogram merge.
    let cfg = SweepConfig { data_lines: 1 << 10, requests: 24_000, seeds: 4, endurance: u32::MAX };
    let schemes: Vec<_> =
        scheme_grid(cfg.data_lines).into_iter().filter(|(n, _)| *n == "pcms").collect();
    let workloads: Vec<_> = workload_grid().into_iter().filter(|(n, _)| *n == "bpa").collect();
    let rows = run_sweep(&cfg, &schemes, &workloads);
    assert_eq!(rows.len(), 1);
    let merged = &rows[0].report;

    // Re-run the same cell as two 2-seed sweeps won't reproduce the same
    // shard ids; instead check the reduced row against its own shards by
    // re-merging the snapshot pieces pairwise.
    let whole = merged.histogram.as_ref().unwrap();
    let pair = merge_shards(&[merged, merged]);
    assert_eq!(pair.requests, 2 * merged.requests);
    assert_eq!(pair.max_ns, merged.max_ns);
    assert_eq!(pair.histogram.as_ref().unwrap().count, 2 * whole.count);
}
