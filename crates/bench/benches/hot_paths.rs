//! Criterion microbenchmarks of the simulation hot paths.
//!
//! Lifetime experiments push 1e8–1e9 writes through the wear levelers;
//! these benches keep the per-write costs visible so regressions in the
//! simulator's throughput are caught. Groups:
//!
//! * `device_write` — the per-write endurance accounting;
//! * `translate` — address translation of every scheme;
//! * `write_path` — the full demand-write path (translate + wear + WL
//!   machinery) of every scheme;
//! * `cmt` — cache hit and miss+insert costs;
//! * `streams` — request generation (Zipf sampling and SPEC models);
//! * `stream_fill` — block request generation via `AddressStream::fill`,
//!   the path the scenario pumps actually drive (4096-request blocks);
//! * `lifetime_slice` — an end-to-end 2^16-line SAWL lifetime slice, the
//!   macro number the per-write benches above decompose.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use sawl_algos::{Mwsr, NoWl, PcmS, SegmentSwap, StartGap, Tlsr, WearLeveler};
use sawl_core::{Sawl, SawlConfig};
use sawl_nvm::{NvmConfig, NvmDevice};
use sawl_simctl::{run_lifetime, DeviceSpec, LifetimeExperiment, SchemeSpec, WorkloadSpec};
use sawl_tiered::cmt::{Cmt, CmtLookup};
use sawl_tiered::{Nwl, NwlConfig};
use sawl_trace::{AddressStream, Bpa, MemReq, Raa, SpecBenchmark, SpecModel, Uniform, Zipf};

const LINES: u64 = 1 << 16;

fn device(lines: u64) -> NvmDevice {
    NvmDevice::new(
        NvmConfig::builder()
            .lines(lines)
            .banks(32)
            .endurance(u32::MAX)
            .spare_shift(6)
            .build()
            .unwrap(),
    )
}

fn bench_device_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("device_write");
    g.bench_function("write", |b| {
        let mut dev = device(LINES);
        let mut pa = 0u64;
        b.iter(|| {
            pa = (pa + 12_345) & (LINES - 1);
            black_box(dev.write(pa));
        });
    });
    g.finish();
}

fn schemes() -> Vec<(&'static str, Box<dyn WearLeveler>)> {
    vec![
        ("nowl", Box::new(NoWl::new(LINES))),
        ("segment-swap", Box::new(SegmentSwap::new(LINES, 64, 1 << 20))),
        ("rbsg", Box::new(StartGap::new(256, 255, 64))),
        ("tlsr", Box::new(Tlsr::new(LINES, 64, 8, 32, 1))),
        ("pcm-s", Box::new(PcmS::new(LINES, 16, 32, 1))),
        ("mwsr", Box::new(Mwsr::new(LINES, 16, 32, 1))),
        ("nwl-4", Box::new(Nwl::new(NwlConfig { data_lines: LINES, ..NwlConfig::default() }))),
        ("sawl", Box::new(Sawl::new(SawlConfig { data_lines: LINES, ..SawlConfig::default() }))),
    ]
}

fn bench_translate(c: &mut Criterion) {
    let mut g = c.benchmark_group("translate");
    for (name, wl) in schemes() {
        let n = wl.logical_lines();
        g.bench_function(name, |b| {
            let mut la = 0u64;
            b.iter(|| {
                la = (la + 7_919) % n;
                black_box(wl.translate(la));
            });
        });
    }
    g.finish();
}

fn bench_write_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("write_path");
    for (name, mut wl) in schemes() {
        let n = wl.logical_lines();
        // Physical footprint differs per scheme (gaps, spares, translation
        // region); size the device generously.
        let mut dev = device((2 * LINES).next_power_of_two());
        g.bench_function(name, |b| {
            let mut la = 0u64;
            b.iter(|| {
                la = (la + 7_919) % n;
                black_box(wl.write(la, &mut dev));
            });
        });
    }
    g.finish();
}

fn bench_cmt(c: &mut Criterion) {
    let mut g = c.benchmark_group("cmt");
    g.bench_function("hit", |b| {
        let mut cmt: Cmt<u64> = Cmt::new(1024);
        for k in 0..1024u64 {
            cmt.insert(k, k);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 37) & 1023;
            match cmt.lookup(k) {
                CmtLookup::Hit(v) => black_box(v),
                CmtLookup::Miss => unreachable!(),
            }
        });
    });
    g.bench_function("miss_insert_evict", |b| {
        b.iter_batched_ref(
            || {
                let mut cmt: Cmt<u64> = Cmt::new(1024);
                for k in 0..1024u64 {
                    cmt.insert(k, k);
                }
                (cmt, 10_000u64)
            },
            |(cmt, k)| {
                *k += 1;
                cmt.lookup(*k);
                black_box(cmt.insert(*k, *k));
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_streams(c: &mut Criterion) {
    let mut g = c.benchmark_group("streams");
    g.bench_function("zipf_sample", |b| {
        let z = Zipf::new(1 << 20, 1.1);
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(3);
        b.iter(|| black_box(z.sample(&mut rng)));
    });
    for bench in [SpecBenchmark::Soplex, SpecBenchmark::Mcf] {
        g.bench_function(format!("spec_{}", bench.name()), |b| {
            let mut s = bench.stream(1 << 22, 5);
            b.iter(|| black_box(s.next_req()));
        });
    }
    g.finish();
}

fn bench_stream_fill(c: &mut Criterion) {
    // One iteration = one 4096-request block, the unit the scenario pumps
    // request from streams; divide the reported time by 4096 for the
    // per-request cost.
    const BLOCK: usize = 4096;
    let mut g = c.benchmark_group("stream_fill");
    // `black_box(&buf)` after the fill keeps the buffer stores alive;
    // black-boxing only the returned count lets LLVM elide the writes
    // entirely and report sub-nanosecond nonsense.
    g.bench_function("uniform", |b| {
        let mut s = Uniform::new(1 << 22, 0.5, 7);
        let mut buf = [MemReq::read(0); BLOCK];
        b.iter(|| {
            let n = s.fill(&mut buf);
            black_box(&buf);
            black_box(n)
        });
    });
    g.bench_function("raa", |b| {
        let mut s = Raa::new(42, 1 << 22);
        let mut buf = [MemReq::read(0); BLOCK];
        b.iter(|| {
            let n = s.fill(&mut buf);
            black_box(&buf);
            black_box(n)
        });
    });
    g.bench_function("bpa_2048", |b| {
        let mut s = Bpa::new(1 << 22, 2048, 7);
        let mut buf = [MemReq::read(0); BLOCK];
        b.iter(|| {
            let n = s.fill(&mut buf);
            black_box(&buf);
            black_box(n)
        });
    });
    g.bench_function("zipf_sample_many", |b| {
        let z = Zipf::new(1 << 20, 1.1);
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(3);
        let mut out = [0u64; BLOCK];
        b.iter(|| {
            z.sample_many(&mut rng, &mut out);
            black_box(out[BLOCK - 1])
        });
    });
    for bench in [SpecBenchmark::Soplex, SpecBenchmark::Mcf] {
        g.bench_function(format!("spec_{}", bench.name()), |b| {
            let mut s = SpecModel::new(bench, 1 << 22, 5);
            let mut buf = [MemReq::read(0); BLOCK];
            b.iter(|| {
                let n = s.fill(&mut buf);
                black_box(&buf);
                black_box(n)
            });
        });
    }
    g.finish();
}

fn bench_lifetime_slice(c: &mut Criterion) {
    // End-to-end slice of the dominant experiment shape: SAWL over a
    // 2^16-line device under BPA, capped at 500k demand writes so one
    // iteration stays in the tens of milliseconds. Endurance is maxed so
    // the cap — not device death — ends the run, keeping iterations
    // identical.
    let mut g = c.benchmark_group("lifetime_slice");
    g.bench_function("sawl_64k_bpa", |b| {
        let exp = LifetimeExperiment {
            id: "bench/sawl-slice".into(),
            scheme: SchemeSpec::sawl_default(1024),
            workload: WorkloadSpec::Bpa { writes_per_target: 2048 },
            data_lines: 1 << 16,
            device: DeviceSpec { endurance: u32::MAX, ..Default::default() },
            max_demand_writes: 500_000,
            fault: None,
            telemetry: None,
            timing: None,
        };
        b.iter(|| black_box(run_lifetime(&exp).unwrap()));
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    // The latency histogram sits on the timed hot path: one record per
    // served request on the scalar path, one record_n per quiet run on the
    // fast path. Keep both visible, plus the snapshot/merge costs the
    // telemetry stream and sharded sweeps pay per sample/reduction.
    use sawl_timing::LatencyHistogram;
    let mut g = c.benchmark_group("histogram");
    g.bench_function("record", |b| {
        let mut h = LatencyHistogram::new();
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 359) & ((1 << 22) - 1);
            h.record(v);
            black_box(h.count())
        });
    });
    g.bench_function("record_n_4096", |b| {
        // One fast-path bulk record standing in for 4096 scalar ones.
        let mut h = LatencyHistogram::new();
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 359) & ((1 << 22) - 1);
            h.record_n(v, 4096);
            black_box(h.count())
        });
    });
    g.bench_function("snapshot_restore", |b| {
        let mut h = LatencyHistogram::new();
        for i in 0..100_000u64 {
            h.record((i * i) & ((1 << 22) - 1));
        }
        b.iter(|| black_box(h.snapshot().restore().count()));
    });
    g.bench_function("merge", |b| {
        let mut a = LatencyHistogram::new();
        let mut other = LatencyHistogram::new();
        for i in 0..100_000u64 {
            a.record((i * i) & ((1 << 22) - 1));
            other.record((i * 31) & ((1 << 22) - 1));
        }
        b.iter(|| {
            a.merge(&other);
            black_box(a.count())
        });
    });
    g.finish();
}

fn bench_controller(c: &mut Criterion) {
    // The timing model's per-event step and the closed-form run
    // advancement the timed fast path rides on. `push_n_bpa_dwell` is one
    // 2048-write BPA dwell landing on a fresh bank — warmup pushes, the
    // periodicity detection, and the jump — so its per-event cost is the
    // timed fast path's dominant term.
    use sawl_timing::{ClosedLoopConfig, ClosedLoopSim, MemEvent};
    let mut g = c.benchmark_group("controller");
    g.bench_function("push", |b| {
        let mut s = ClosedLoopSim::new(ClosedLoopConfig::default());
        let mut bank = 0u32;
        b.iter(|| {
            bank = (bank + 1) % 32;
            s.push(MemEvent::write(bank));
            black_box(s.events())
        });
    });
    g.bench_function("push_n_bpa_dwell", |b| {
        let mut s = ClosedLoopSim::new(ClosedLoopConfig::default());
        let mut bank = 0u32;
        b.iter(|| {
            bank = (bank + 1) % 32;
            s.push_n(MemEvent::write(bank), 2048);
            black_box(s.events())
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_device_write, bench_translate, bench_write_path, bench_cmt, bench_streams, bench_stream_fill, bench_lifetime_slice, bench_histogram, bench_controller
}
criterion_main!(benches);
