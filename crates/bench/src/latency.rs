//! Sharded, deterministic timed latency sweeps (the `fig_latency` core).
//!
//! One sweep cell is a scheme × workload pair; each cell fans out over
//! `seeds` independent shards — same scheme and workload, differently
//! seeded request streams, each serving `requests / seeds` demand writes
//! with the timing model attached. The whole shard grid runs through
//! [`sawl_simctl::run_all`] (one `parallel_map` over every shard of every
//! cell), and each cell's shards are then reduced with the telemetry
//! histogram's slot-exact merge.
//!
//! Determinism: every shard derives its RNG stream from its own id, the
//! parallel map reassembles results in input order, and the reduction
//! folds shards left-to-right — so an N-thread sweep is bit-identical to
//! a 1-thread sweep (`tests/latency_shards.rs` pins this). The stall
//! sums are f64, but the summation order is fixed by the shard order, not
//! the scheduling.

use serde::{Deserialize, Serialize};

use sawl_simctl::{
    run_all, run_scenario, DeviceSpec, LatencyReport, Scenario, SchemeSpec, TimingSpec,
    WorkloadSpec,
};
use sawl_telemetry::LatencyHistogram;

/// Geometry and sharding of one latency sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Logical data lines per run (power of two).
    pub data_lines: u64,
    /// Total demand writes per cell, split evenly across the shards
    /// (must be divisible by `seeds`).
    pub requests: u64,
    /// Independent seed shards per cell (≥ 1).
    pub seeds: u64,
    /// Device endurance; sweeps max it so every run serves the full
    /// request budget and percentiles compare identical sample counts.
    pub endurance: u32,
}

impl SweepConfig {
    /// The full fig_latency geometry (2^16 lines, 2M writes per cell).
    pub fn full(seeds: u64) -> Self {
        Self { data_lines: 1 << 16, requests: 2_000_000, seeds, endurance: u32::MAX }
    }

    /// The CI smoke geometry (2^12 lines, 100k writes per cell).
    pub fn smoke(seeds: u64) -> Self {
        Self { data_lines: 1 << 12, requests: 100_000, seeds, endurance: u32::MAX }
    }
}

/// The fig_latency scheme axis.
pub fn scheme_grid(data_lines: u64) -> Vec<(&'static str, SchemeSpec)> {
    let cmt = (data_lines / 64).max(64) as usize;
    vec![
        ("baseline", SchemeSpec::Baseline),
        ("pcms", SchemeSpec::PcmS { region_lines: 16, period: 32 }),
        ("tlsr", SchemeSpec::Tlsr { region_lines: 64, inner_period: 8, outer_period: 32 }),
        ("mwsr", SchemeSpec::Mwsr { region_lines: 16, period: 32 }),
        ("nwl", SchemeSpec::Nwl { granularity: 4, cmt_entries: cmt, swap_period: 1 << 20 }),
        ("sawl", SchemeSpec::sawl_default(cmt)),
    ]
}

/// The fig_latency workload axis.
pub fn workload_grid() -> Vec<(&'static str, WorkloadSpec)> {
    vec![
        ("bpa", WorkloadSpec::Bpa { writes_per_target: 2048 }),
        ("zipf", WorkloadSpec::Zipf { exponent: 1.0, write_ratio: 1.0 }),
    ]
}

/// One reduced sweep cell: the merged latency distribution of all its
/// seed shards. `report.histogram` carries the merged snapshot, so rows
/// can be byte-compared across thread counts.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Scheme axis label.
    pub scheme: String,
    /// Workload axis label.
    pub workload: String,
    /// Slot-exact merge of the cell's shard reports.
    pub report: LatencyReport,
}

/// Run the sharded sweep over the given grids and reduce each cell.
///
/// Shard ids are `fig-latency/<scheme>/<workload>/s<k>`; the id seeds the
/// shard's request stream, so shard k is the same run no matter how many
/// worker threads execute the grid.
pub fn run_sweep(
    cfg: &SweepConfig,
    schemes: &[(&str, SchemeSpec)],
    workloads: &[(&str, WorkloadSpec)],
) -> Vec<SweepRow> {
    assert!(cfg.seeds >= 1, "sweeps need at least one seed shard");
    assert_eq!(
        cfg.requests % cfg.seeds,
        0,
        "per-cell request budget must split evenly across seed shards"
    );
    let per_shard = cfg.requests / cfg.seeds;
    let timing = TimingSpec { keep_histogram: true, ..TimingSpec::default() };
    let mut grid = Vec::new();
    for (sname, scheme) in schemes {
        for (wname, workload) in workloads {
            for k in 0..cfg.seeds {
                grid.push(
                    Scenario::lifetime(
                        format!("fig-latency/{sname}/{wname}/s{k}"),
                        scheme.clone(),
                        workload.clone(),
                        cfg.data_lines,
                        DeviceSpec { endurance: cfg.endurance, ..Default::default() },
                    )
                    .with_write_cap(per_shard)
                    .with_timing(timing),
                );
            }
        }
    }
    let reports = run_all(&grid).expect("latency sweep scenario failed");

    let mut rows = Vec::new();
    let mut it = reports.iter();
    for (sname, _) in schemes {
        for (wname, _) in workloads {
            let shards: Vec<&LatencyReport> = (0..cfg.seeds)
                .map(|_| {
                    it.next()
                        .expect("report grid shorter than scenario grid")
                        .lifetime()
                        .latency
                        .as_ref()
                        .expect("timed run must report latency")
                })
                .collect();
            rows.push(SweepRow {
                scheme: (*sname).into(),
                workload: (*wname).into(),
                report: merge_shards(&shards),
            });
        }
    }
    rows
}

/// Reduce one cell's shard reports: slot-exact histogram merge for the
/// distribution columns, left-to-right sums for the stall attribution and
/// simulated elapsed time.
pub fn merge_shards(shards: &[&LatencyReport]) -> LatencyReport {
    assert!(!shards.is_empty());
    let mut hist = LatencyHistogram::new();
    let mut merged = LatencyReport {
        requests: 0,
        mean_ns: 0.0,
        p50_ns: 0,
        p99_ns: 0,
        p999_ns: 0,
        max_ns: 0,
        saturated: false,
        stall_queue_ns: 0.0,
        stall_trans_miss_ns: 0.0,
        stall_exchange_ns: 0.0,
        stall_reorg_ns: 0.0,
        elapsed_ns: 0.0,
        histogram: None,
    };
    for shard in shards {
        let snap = shard.histogram.as_ref().expect("shard reports must keep their histogram");
        hist.merge(&snap.restore());
        merged.stall_queue_ns += shard.stall_queue_ns;
        merged.stall_trans_miss_ns += shard.stall_trans_miss_ns;
        merged.stall_exchange_ns += shard.stall_exchange_ns;
        merged.stall_reorg_ns += shard.stall_reorg_ns;
        merged.elapsed_ns += shard.elapsed_ns;
    }
    let pctl = |p: f64| hist.percentile(p).map_or(0, |x| x.ns);
    merged.requests = hist.count();
    merged.mean_ns = hist.mean_ns();
    merged.p50_ns = pctl(0.5);
    merged.p99_ns = pctl(0.99);
    merged.p999_ns = pctl(0.999);
    merged.max_ns = hist.max_ns();
    merged.saturated = hist.percentile(1.0).is_some_and(|x| x.saturated);
    merged.histogram = Some(hist.snapshot());
    merged
}

/// Timed-throughput probe: wall-clock one cell of the sweep twice — once
/// forced onto the scalar serve path, once on the run-granular fast path
/// — and report both in demand Mw/s.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimedProbe {
    /// Scheme axis label of the probed cell.
    pub scheme: String,
    /// Workload axis label of the probed cell.
    pub workload: String,
    /// Demand writes the probe served per pass.
    pub requests: u64,
    /// Timed throughput with `TimingSpec::scalar_serve` forced on.
    pub scalar_mw_per_sec: f64,
    /// Timed throughput on the default run-granular fast path.
    pub fast_mw_per_sec: f64,
    /// fast / scalar.
    pub speedup: f64,
}

/// Wall-clock the `baseline/bpa` cell of the sweep geometry with the
/// timing model attached, scalar vs fast serve. The observed latency
/// numbers are bit-identical either way (the alignment suite pins that);
/// only the wall-clock differs, so these fields are the one
/// non-deterministic part of `BENCH_latency.json`.
pub fn timed_probe(cfg: &SweepConfig) -> TimedProbe {
    let pass = |scalar_serve: bool| -> (u64, f64) {
        let scenario = Scenario::lifetime(
            "fig-latency/probe/bpa",
            SchemeSpec::Baseline,
            WorkloadSpec::Bpa { writes_per_target: 2048 },
            cfg.data_lines,
            DeviceSpec { endurance: cfg.endurance, ..Default::default() },
        )
        .with_write_cap(cfg.requests)
        .with_timing(TimingSpec { scalar_serve, ..TimingSpec::default() });
        let start = std::time::Instant::now();
        let report = run_scenario(&scenario).expect("timed probe failed");
        let secs = start.elapsed().as_secs_f64();
        (report.lifetime().demand_writes, secs)
    };
    let (scalar_writes, scalar_secs) = pass(true);
    let (fast_writes, fast_secs) = pass(false);
    assert_eq!(scalar_writes, fast_writes, "serve mode changed the request count");
    let scalar = scalar_writes as f64 / scalar_secs / 1e6;
    let fast = fast_writes as f64 / fast_secs / 1e6;
    TimedProbe {
        scheme: "baseline".into(),
        workload: "bpa".into(),
        requests: fast_writes,
        scalar_mw_per_sec: scalar,
        fast_mw_per_sec: fast,
        speedup: fast / scalar,
    }
}

/// One scheme × workload row of `BENCH_latency.json` (the merged
/// summary columns, without the histogram payload).
#[derive(Debug, Serialize, Deserialize)]
pub struct LatencyRow {
    pub scheme: String,
    pub workload: String,
    pub requests: u64,
    pub mean_ns: f64,
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    pub max_ns: u64,
    pub saturated: bool,
    pub stall_queue_ns: f64,
    pub stall_trans_miss_ns: f64,
    pub stall_exchange_ns: f64,
    pub stall_reorg_ns: f64,
}

impl LatencyRow {
    /// Project a reduced sweep row onto the document row.
    pub fn from_row(row: &SweepRow) -> Self {
        let r = &row.report;
        Self {
            scheme: row.scheme.clone(),
            workload: row.workload.clone(),
            requests: r.requests,
            mean_ns: r.mean_ns,
            p50_ns: r.p50_ns,
            p99_ns: r.p99_ns,
            p999_ns: r.p999_ns,
            max_ns: r.max_ns,
            saturated: r.saturated,
            stall_queue_ns: r.stall_queue_ns,
            stall_trans_miss_ns: r.stall_trans_miss_ns,
            stall_exchange_ns: r.stall_exchange_ns,
            stall_reorg_ns: r.stall_reorg_ns,
        }
    }
}

/// Top-level `BENCH_latency.json` document. The rows are deterministic
/// (thread-count invariant); `timed_probe` is wall-clock and is not.
#[derive(Debug, Serialize, Deserialize)]
pub struct LatencyReportDoc {
    pub probe: String,
    pub smoke: bool,
    pub data_lines: u64,
    pub endurance: u32,
    pub requests: u64,
    pub seeds: u64,
    pub rows: Vec<LatencyRow>,
    pub timed_probe: TimedProbe,
}
