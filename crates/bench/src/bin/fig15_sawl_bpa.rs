//! Fig. 15 — normalized lifetime under BPA: PCM-S and MWSR (capped by a
//! 256 KB-class on-chip table) versus SAWL (all mappings in NVM, regions
//! down to the initial granularity), sweeping the swapping period.
//!
//! "SAWL achieves much higher lifetime than PCM-S and MWSR, due to storing
//! all address mappings in NVM and no limitation on the number of
//! regions." The hybrid baselines here use the finest region count a
//! Table 1-class SRAM budget affords at the scaled geometry (DESIGN.md
//! §4); SAWL runs its paper configuration (P = 4).

use sawl_bench::{
    bpa, device, paper_note, Figure, ENDURANCE_1E5_CLASS, ENDURANCE_1E6_CLASS, LIFETIME_LINES,
};
use sawl_core::SawlConfig;
use sawl_simctl::report::pct;
use sawl_simctl::{run_all, Scenario, SchemeSpec};

fn main() {
    let periods: [u64; 4] = [8, 16, 32, 64];
    // The scaled stand-in for the on-chip budget: 512 regions (see
    // fig5_cache_size's affordable-regions mapping at the top budget).
    let hybrid_region_lines = LIFETIME_LINES / 512;

    for (tag, endurance) in [("1e6", ENDURANCE_1E6_CLASS), ("1e5", ENDURANCE_1E5_CLASS)] {
        let mut grid = Vec::new();
        for &period in &periods {
            grid.push(Scenario::lifetime(
                format!("fig15/{tag}/pcms/{period}"),
                SchemeSpec::PcmS { region_lines: hybrid_region_lines, period },
                bpa(endurance),
                LIFETIME_LINES,
                device(endurance),
            ));
            grid.push(Scenario::lifetime(
                format!("fig15/{tag}/mwsr/{period}"),
                SchemeSpec::Mwsr { region_lines: hybrid_region_lines * 2, period },
                bpa(endurance),
                LIFETIME_LINES,
                device(endurance),
            ));
            grid.push(Scenario::lifetime(
                format!("fig15/{tag}/sawl/{period}"),
                SchemeSpec::Sawl(SawlConfig {
                    initial_granularity: 4,
                    max_granularity: 64,
                    cmt_entries: 4096,
                    swap_period: period,
                    observation_window: 1 << 22,
                    settling_window: 1 << 22,
                    sample_interval: 100_000,
                    ..SawlConfig::default()
                }),
                bpa(endurance),
                LIFETIME_LINES,
                device(endurance),
            ));
        }
        let results = run_all(&grid).expect("scenario sweep failed");
        let mut fig = Figure::new(
            &format!("fig15_{tag}"),
            &format!(
                "Fig. 15({}) lifetime under BPA vs swapping period, Wmax {tag}-class (%)",
                if tag == "1e6" { "a" } else { "b" }
            ),
            &["period", "pcm-s", "mwsr", "sawl", "sawl overhead (%)"],
        );
        for (pi, &period) in periods.iter().enumerate() {
            let pcms = results[pi * 3].lifetime();
            let mwsr = results[pi * 3 + 1].lifetime();
            let sawl = results[pi * 3 + 2].lifetime();
            fig.row(vec![
                period.to_string(),
                pct(pcms.normalized_lifetime),
                pct(mwsr.normalized_lifetime),
                pct(sawl.normalized_lifetime),
                pct(sawl.overhead_fraction),
            ]);
        }
        fig.emit();
    }
    paper_note(
        "Paper Fig. 15: SAWL improves the normalized lifetime by 25-51 percentage \
         points over PCM-S/MWSR at 1e6-class endurance and by 50-78 points at \
         1e5-class; smaller swapping periods help the hybrids at the cost of write \
         overhead. Expect SAWL well above both hybrids at every period, with the \
         gap widening for the weak-endurance device.",
    );
}
