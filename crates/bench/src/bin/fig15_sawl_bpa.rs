//! Fig. 15 — normalized lifetime under BPA: PCM-S and MWSR (capped by a
//! 256 KB-class on-chip table) versus SAWL (all mappings in NVM, regions
//! down to the initial granularity), sweeping the swapping period.
//!
//! "SAWL achieves much higher lifetime than PCM-S and MWSR, due to storing
//! all address mappings in NVM and no limitation on the number of
//! regions." The hybrid baselines here use the finest region count a
//! Table 1-class SRAM budget affords at the scaled geometry (DESIGN.md
//! §4); SAWL runs its paper configuration (P = 4).

use sawl_bench::{bpa, device, emit, paper_note, ENDURANCE_1E5_CLASS, ENDURANCE_1E6_CLASS, LIFETIME_LINES};
use sawl_simctl::report::pct;
use sawl_simctl::{parallel_map, run_lifetime, LifetimeExperiment, SchemeSpec, Table};

fn main() {
    let periods: [u64; 4] = [8, 16, 32, 64];
    // The scaled stand-in for the on-chip budget: 512 regions (see
    // fig5_cache_size's affordable-regions mapping at the top budget).
    let hybrid_region_lines = LIFETIME_LINES / 512;

    for (tag, endurance) in
        [("1e6", ENDURANCE_1E6_CLASS), ("1e5", ENDURANCE_1E5_CLASS)]
    {
        let mut experiments = Vec::new();
        for &period in &periods {
            experiments.push(LifetimeExperiment {
                id: format!("fig15/{tag}/pcms/{period}"),
                scheme: SchemeSpec::PcmS { region_lines: hybrid_region_lines, period },
                workload: bpa(endurance),
                data_lines: LIFETIME_LINES,
                device: device(endurance),
                max_demand_writes: 0,
            });
            experiments.push(LifetimeExperiment {
                id: format!("fig15/{tag}/mwsr/{period}"),
                scheme: SchemeSpec::Mwsr { region_lines: hybrid_region_lines * 2, period },
                workload: bpa(endurance),
                data_lines: LIFETIME_LINES,
                device: device(endurance),
                max_demand_writes: 0,
            });
            experiments.push(LifetimeExperiment {
                id: format!("fig15/{tag}/sawl/{period}"),
                scheme: SchemeSpec::Sawl {
                    initial_granularity: 4,
                    max_granularity: 64,
                    cmt_entries: 4096,
                    swap_period: period,
                    observation_window: 1 << 22,
                    settling_window: 1 << 22,
                    sample_interval: 100_000,
                },
                workload: bpa(endurance),
                data_lines: LIFETIME_LINES,
                device: device(endurance),
                max_demand_writes: 0,
            });
        }
        let results = parallel_map(&experiments, run_lifetime);
        let mut table = Table::new(
            format!(
                "Fig. 15({}) lifetime under BPA vs swapping period, Wmax {tag}-class (%)",
                if tag == "1e6" { "a" } else { "b" }
            ),
            &["period", "pcm-s", "mwsr", "sawl", "sawl overhead (%)"],
        );
        for (pi, &period) in periods.iter().enumerate() {
            let pcms = &results[pi * 3];
            let mwsr = &results[pi * 3 + 1];
            let sawl = &results[pi * 3 + 2];
            table.row(vec![
                period.to_string(),
                pct(pcms.normalized_lifetime),
                pct(mwsr.normalized_lifetime),
                pct(sawl.normalized_lifetime),
                pct(sawl.overhead_fraction),
            ]);
        }
        emit(&table, &format!("fig15_{tag}"));
    }
    paper_note(
        "Paper Fig. 15: SAWL improves the normalized lifetime by 25-51 percentage \
         points over PCM-S/MWSR at 1e6-class endurance and by 50-78 points at \
         1e5-class; smaller swapping periods help the hybrids at the cost of write \
         overhead. Expect SAWL well above both hybrids at every period, with the \
         gap widening for the weak-endurance device.",
    );
}
