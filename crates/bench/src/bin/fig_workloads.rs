//! Workload zoo — normalized lifetime of every service-shaped workload
//! under Baseline / PCM-S / SAWL.
//!
//! One row per zoo member: drifting YCSB, a day/night diurnal schedule,
//! two interleaved tenants, the closed-loop FTL/GC feedback stream, and
//! a binary trace replay of the YCSB generator. The zoo exists to
//! stress the self-adaptive loop with traffic whose hot set *moves* —
//! the paper's BPA is a worst case, but services drift, cycle, and
//! react; a leveler tuned only for the attack can still lose lifetime
//! to a hot set that walks away from its swap regions.
//!
//! The trace row replays a recording of the same YCSB generator, so its
//! column should track the `ycsb` row closely (the request sequences
//! differ only by seed); large gaps would mean replay infrastructure is
//! perturbing runs.

use sawl_bench::{device, paper_note, Figure};
use sawl_simctl::report::pct;
use sawl_simctl::{run_all, stable_seed, DiurnalPhase, Scenario, SchemeSpec, WorkloadSpec};
use sawl_trace::{AddressStream as _, TraceWriter};

const LINES: u64 = 1 << 12;
// High enough that SAWL's exchange budget (endurance / period per
// region) is not the binding constraint — the zoo compares adaptation,
// not write-budget starvation. See the fig16 header for the scaling
// argument.
const ENDURANCE: u32 = 5_000;

/// Record the YCSB generator to a temp trace. Replay cycles at EOF, so
/// the recording only needs to be long enough that a cycle spans many
/// hot-set rotations. Returns the file path.
fn record_trace(spec: &WorkloadSpec) -> String {
    let path = std::env::temp_dir().join(format!("sawl-fig-workloads-{}.trc", std::process::id()));
    let mut gen = spec
        .try_build(LINES, stable_seed("fig-workloads/trace"))
        .expect("trace source spec is valid");
    let file = std::fs::File::create(&path).expect("create temp trace");
    let mut w = TraceWriter::with_name(std::io::BufWriter::new(file), LINES, gen.name())
        .expect("trace header");
    // ~244 hot-set rotations per cycle.
    w.record(gen.as_mut(), 2_000_000).expect("record trace");
    let (out, _) = w.finish().expect("finish trace");
    out.into_inner().expect("flush trace");
    path.to_str().expect("temp path is unicode").to_string()
}

fn workloads() -> Vec<(&'static str, WorkloadSpec)> {
    let ycsb = WorkloadSpec::Ycsb {
        hot_lines: 512,
        exponent: 1.1,
        write_ratio: 0.8,
        rotate_every: 8_192,
        drift: 64,
    };
    vec![
        ("ycsb", ycsb.clone()),
        (
            "diurnal",
            WorkloadSpec::Diurnal {
                phases: vec![
                    // Daytime: hot skewed service traffic.
                    DiurnalPhase { workload: ycsb.clone(), requests: 200_000 },
                    // Night: cold uniform batch scans, mostly reads.
                    DiurnalPhase {
                        workload: WorkloadSpec::Uniform { write_ratio: 0.3 },
                        requests: 100_000,
                    },
                ],
            },
        ),
        (
            "multi-tenant",
            WorkloadSpec::MultiTenant {
                slice: 256,
                tenants: vec![
                    WorkloadSpec::Zipf { exponent: 1.2, write_ratio: 0.9 },
                    WorkloadSpec::Uniform { write_ratio: 0.5 },
                ],
            },
        ),
        (
            "gc-feedback",
            WorkloadSpec::GcFeedback {
                exponent: 1.1,
                write_ratio: 0.8,
                base_threshold: 0.3,
                waf_gain: 0.05,
                cov_gain: 0.1,
                gc_burst: 512,
            },
        ),
        ("trace-replay", WorkloadSpec::TraceFile { path: record_trace(&ycsb) }),
    ]
}

fn main() {
    let schemes: Vec<(&str, SchemeSpec)> = vec![
        ("baseline", SchemeSpec::Baseline),
        ("pcm-s", SchemeSpec::PcmS { region_lines: 16, period: 32 }),
        ("sawl", SchemeSpec::sawl_default(64)),
    ];
    let zoo = workloads();
    let mut grid = Vec::new();
    for (wname, workload) in &zoo {
        for (sname, scheme) in &schemes {
            grid.push(
                Scenario::lifetime(
                    format!("fig-workloads/{wname}/{sname}"),
                    scheme.clone(),
                    workload.clone(),
                    LINES,
                    device(ENDURANCE),
                )
                // 1.0x ideal: a perfectly leveled run reads as 100%.
                .with_write_cap(LINES * u64::from(ENDURANCE)),
            );
        }
    }
    let results = run_all(&grid).expect("workload zoo sweep failed");

    let mut fig = Figure::new(
        "fig_workloads",
        "Workload zoo: normalized lifetime (%), capped at 1.0x ideal",
        &["workload", "baseline", "pcm-s", "sawl"],
    );
    for (wi, (wname, _)) in zoo.iter().enumerate() {
        let mut row = vec![wname.to_string()];
        for si in 0..schemes.len() {
            let r = results[wi * schemes.len() + si].lifetime();
            row.push(pct(r.normalized_lifetime.min(1.0)));
        }
        fig.row(row);
    }
    fig.emit();
    paper_note(
        "Not a paper figure: the zoo extends the paper's BPA/SPEC evaluation with \
         service-shaped traffic (drift, phases, tenancy, GC feedback). The paper's \
         ordering holds on every row — baseline far below, SAWL within a few points \
         of PCM-S at a fraction of its exchange overhead — and the trace-replay row \
         tracks the ycsb row it was recorded from (sequences differ only by seed).",
    );
}
