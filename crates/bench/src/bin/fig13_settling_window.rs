//! Fig. 13 — region-size adjustments as a function of runtime for
//! different settling-window sizes (SSW), soplex-like workload.
//!
//! Scaling as in Fig. 12: SSW ∈ {2^18..2^24} against a ~6M-request phase
//! length. Small SSW → frequent adjustments (write overhead); large SSW →
//! missed adjustment points and a depressed average hit rate (the paper
//! measures 96.1 / 97.7 / 98.0 / 85.5% for SSW 2^20..2^26 and picks 2^22).

use sawl_bench::{emit, paper_note, run_sawl_history, save_history_csv, PERF_LINES};
use sawl_core::SawlConfig;
use sawl_simctl::Table;
use sawl_trace::SpecBenchmark;

fn main() {
    let requests: u64 = 100_000_000;
    let ssws: [u64; 4] = [1 << 18, 1 << 20, 1 << 22, 1 << 24];

    let mut table = Table::new(
        "Fig. 13 region-size adjustment vs SSW (soplex-like)",
        &["SSW", "avg hit rate", "avg region size", "size changes", "merges", "splits"],
    );
    for &ssw in &ssws {
        let cfg = SawlConfig {
            data_lines: PERF_LINES,
            cmt_entries: (512 * 1024 * 8 / 48) as usize,
            swap_period: 128,
            observation_window: 1 << 20,
            settling_window: ssw,
            sample_interval: 100_000,
            max_granularity: 256,
            ..Default::default()
        };
        let (history, stats) =
            run_sawl_history(SpecBenchmark::Soplex, cfg, requests, 0xF16_13);
        table.row(vec![
            format!("2^{}", ssw.trailing_zeros()),
            format!("{:.3}", history.average_hit_rate()),
            format!("{:.1}", history.average_region_size()),
            history.region_size_changes().to_string(),
            stats.merges.to_string(),
            stats.splits.to_string(),
        ]);
        save_history_csv(&history, &format!("fig13_ssw_2e{}", ssw.trailing_zeros()));
    }
    emit(&table, "fig13_summary");
    paper_note(
        "Paper Fig. 13: SSW 2^20 adjusts the region size too frequently (write \
         overhead); SSW 2^26 misses the adjustment points and the average hit rate \
         drops to 85.5%, vs 96-98% for the middle settings. Expect size-change \
         counts to fall monotonically with SSW and the average hit rate to peak at \
         the middle SSWs and sag at the largest.",
    );
}
