//! Fig. 13 — region-size adjustments as a function of runtime for
//! different settling-window sizes (SSW), soplex-like workload.
//!
//! Scaling as in Fig. 12: SSW ∈ {2^18..2^24} against a ~6M-request phase
//! length. Small SSW → frequent adjustments (write overhead); large SSW →
//! missed adjustment points and a depressed average hit rate (the paper
//! measures 96.1 / 97.7 / 98.0 / 85.5% for SSW 2^20..2^26 and picks 2^22).

use sawl_bench::{paper_note, save_history_csv, Figure, PERF_LINES};
use sawl_core::SawlConfig;
use sawl_simctl::{run_all, Scenario, SchemeSpec, WorkloadSpec};
use sawl_trace::SpecBenchmark;

fn main() {
    let requests: u64 = 100_000_000;
    let ssws: [u64; 4] = [1 << 18, 1 << 20, 1 << 22, 1 << 24];

    let grid: Vec<Scenario> = ssws
        .iter()
        .map(|&ssw| {
            Scenario::trace(
                format!("fig13/ssw/2e{}", ssw.trailing_zeros()),
                SchemeSpec::Sawl(SawlConfig {
                    cmt_entries: (512 * 1024 * 8 / 48) as usize,
                    swap_period: 128,
                    observation_window: 1 << 20,
                    settling_window: ssw,
                    sample_interval: 100_000,
                    max_granularity: 256,
                    ..SawlConfig::default()
                }),
                WorkloadSpec::Spec(SpecBenchmark::Soplex),
                PERF_LINES,
                requests,
            )
        })
        .collect();
    let reports = run_all(&grid).expect("scenario sweep failed");

    let mut fig = Figure::new(
        "fig13_summary",
        "Fig. 13 region-size adjustment vs SSW (soplex-like)",
        &["SSW", "avg hit rate", "avg region size", "size changes", "merges", "splits"],
    );
    for (&ssw, report) in ssws.iter().zip(&reports) {
        let adapt = report.trace().adaptation();
        fig.row(vec![
            format!("2^{}", ssw.trailing_zeros()),
            format!("{:.3}", adapt.history.average_hit_rate()),
            format!("{:.1}", adapt.history.average_region_size()),
            adapt.history.region_size_changes().to_string(),
            adapt.stats.merges.to_string(),
            adapt.stats.splits.to_string(),
        ]);
        save_history_csv(&adapt.history, &format!("fig13_ssw_2e{}", ssw.trailing_zeros()));
    }
    fig.emit();
    paper_note(
        "Paper Fig. 13: SSW 2^20 adjusts the region size too frequently (write \
         overhead); SSW 2^26 misses the adjustment points and the average hit rate \
         drops to 85.5%, vs 96-98% for the middle settings. Expect size-change \
         counts to fall monotonically with SSW and the average hit rate to peak at \
         the middle SSWs and sag at the largest.",
    );
}
