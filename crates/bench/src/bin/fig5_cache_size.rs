//! Fig. 5 — normalized lifetime of PCM-S and MWSR as a function of the
//! on-chip mapping-cache budget, under BPA, for both endurance classes.
//!
//! The non-tiered hybrid schemes must hold *all* mapping entries on chip,
//! so the SRAM budget caps the affordable region count: regions = budget ×
//! 8 / entry bits. MWSR entries are roughly twice PCM-S entries (two
//! placements + counter), so the same budget affords it half the regions —
//! that is why the paper finds MWSR below PCM-S here.
//!
//! Cache budgets are scaled with the device (DESIGN.md §4): the device is
//! 2^28/2^16 = 4096× smaller than the paper's, so the paper's 64KB–4MB
//! x-axis becomes 16B–1KB; we sweep 64B–4KB and print the paper-equivalent
//! label.

use sawl_bench::{
    bpa, device, paper_note, Figure, ENDURANCE_1E5_CLASS, ENDURANCE_1E6_CLASS, LIFETIME_LINES,
};
use sawl_simctl::report::pct;
use sawl_simctl::{run_all, Scenario, SchemeSpec};

/// Entry bits: PCM-S keeps prn+key (= log2 lines) plus a 20-bit counter;
/// MWSR keeps two placements plus the counter (§2.2 item 4).
fn entry_bits(scheme: &str, lines: u64) -> u64 {
    let addr = 64 - (lines - 1).leading_zeros() as u64;
    match scheme {
        "pcm-s" => addr + 20,
        _ => 2 * addr + 20,
    }
}

/// Largest power-of-two region count affordable within `bytes` of SRAM,
/// clamped to [1, lines/4] (4-line minimum regions).
fn affordable_regions(bytes: u64, scheme: &str, lines: u64) -> u64 {
    let raw = (bytes * 8) / entry_bits(scheme, lines);
    let mut regions = 1u64;
    while regions * 2 <= raw && regions * 2 <= lines / 4 {
        regions *= 2;
    }
    regions
}

fn main() {
    let budgets: Vec<u64> = (6..=15).map(|k| 1u64 << k).collect(); // 64B..32KB scaled
    let period = 32;

    for (tag, endurance) in [("1e6", ENDURANCE_1E6_CLASS), ("1e5", ENDURANCE_1E5_CLASS)] {
        let mut grid = Vec::new();
        for scheme_name in ["pcm-s", "mwsr"] {
            for &bytes in &budgets {
                let regions = affordable_regions(bytes, scheme_name, LIFETIME_LINES);
                let region_lines = LIFETIME_LINES / regions;
                let scheme = if scheme_name == "pcm-s" {
                    SchemeSpec::PcmS { region_lines, period }
                } else {
                    SchemeSpec::Mwsr { region_lines, period }
                };
                grid.push(Scenario::lifetime(
                    format!("fig5/{tag}/{scheme_name}/{bytes}"),
                    scheme,
                    bpa(endurance),
                    LIFETIME_LINES,
                    device(endurance),
                ));
            }
        }
        let results = run_all(&grid).expect("scenario sweep failed");
        let mut fig = Figure::new(
            &format!("fig5_{tag}"),
            &format!(
                "Fig. 5({}) lifetime vs on-chip cache budget, Wmax {tag}-class (%)",
                if tag == "1e6" { "a" } else { "b" }
            ),
            &[
                "cache (scaled)",
                "cache (paper-equiv)",
                "pcm-s regions",
                "pcm-s",
                "mwsr regions",
                "mwsr",
            ],
        );
        for (bi, &bytes) in budgets.iter().enumerate() {
            let pcms = results[bi].lifetime();
            let mwsr = results[budgets.len() + bi].lifetime();
            fig.row(vec![
                format!("{bytes}B"),
                format!("{}KB", bytes * 4096 / 1024),
                affordable_regions(bytes, "pcm-s", LIFETIME_LINES).to_string(),
                pct(pcms.normalized_lifetime),
                affordable_regions(bytes, "mwsr", LIFETIME_LINES).to_string(),
                pct(mwsr.normalized_lifetime),
            ]);
        }
        fig.emit();
    }
    paper_note(
        "Paper Fig. 5: lifetime grows with the cache budget; PCM-S tops out at ~72% of \
         ideal (1e6 cells) / ~41% (1e5 cells) even at 4MB, and MWSR stays below PCM-S \
         at every budget because its entries are about twice as large. Expect the \
         same saturating curves with PCM-S above MWSR throughout.",
    );
}
