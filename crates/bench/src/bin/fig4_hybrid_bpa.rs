//! Fig. 4 — normalized lifetime of the hybrid schemes (PCM-S / MWSR) under
//! BPA, sweeping the number of regions (up to line-granularity regions)
//! and the swapping period, for both endurance classes.
//!
//! Paper geometry: 64 GB, regions 16K–64M (region size down to 4 lines).
//! Scaled: 2^16 lines, regions 2^6–2^14 (region size 1024 down to 4).

use sawl_bench::{
    bpa, device, fmt_regions, paper_note, Figure, ENDURANCE_1E5_CLASS, ENDURANCE_1E6_CLASS,
    LIFETIME_LINES,
};
use sawl_simctl::report::pct;
use sawl_simctl::{run_all, Scenario, SchemeSpec};

fn main() {
    let periods: [u64; 4] = [8, 16, 32, 64];
    let region_counts: Vec<u64> = (6..=14).map(|k| 1u64 << k).collect();

    for (tag, endurance) in [("1e6", ENDURANCE_1E6_CLASS), ("1e5", ENDURANCE_1E5_CLASS)] {
        for scheme_name in ["pcm-s", "mwsr"] {
            let mut grid = Vec::new();
            for &period in &periods {
                for &regions in &region_counts {
                    let region_lines = LIFETIME_LINES / regions;
                    let scheme = if scheme_name == "pcm-s" {
                        SchemeSpec::PcmS { region_lines, period }
                    } else {
                        SchemeSpec::Mwsr { region_lines, period }
                    };
                    grid.push(Scenario::lifetime(
                        format!("fig4/{tag}/{scheme_name}/p{period}/r{regions}"),
                        scheme,
                        bpa(endurance),
                        LIFETIME_LINES,
                        device(endurance),
                    ));
                }
            }
            let results = run_all(&grid).expect("scenario sweep failed");
            let mut fig = Figure::new(
                &format!("fig4_{scheme_name}_{tag}"),
                &format!(
                    "Fig. 4 {scheme_name} under BPA, Wmax {tag}-class: normalized lifetime (%)"
                ),
                &["regions", "period 8", "period 16", "period 32", "period 64"],
            );
            for (ri, &regions) in region_counts.iter().enumerate() {
                let mut row = vec![fmt_regions(regions)];
                for pi in 0..periods.len() {
                    let r = results[pi * region_counts.len() + ri].lifetime();
                    row.push(pct(r.normalized_lifetime));
                }
                fig.row(row);
            }
            fig.emit();
        }
    }
    paper_note(
        "Paper Fig. 4: for the hybrid schemes the lifetime grows monotonically with the \
         region count, reaching ~93.7% of ideal at 64M regions (1e6 cells) and <=84% \
         (1e5 cells); with many regions a small period slightly *hurts* (extra \
         exchange writes). Expect the same monotone rise and the small-period \
         crossover at the fine-grained end.",
    );
}
