//! Ablation — exact-LRU CMT vs a CLOCK approximation (DESIGN.md §9).
//!
//! The paper's CMT is an LRU stack; hardware often prefers CLOCK. This
//! bench replays the SPEC-like models' region-id streams through both
//! policies at the Table 1 cache budget and reports the hit-rate gap —
//! the price of dropping the exact stack (and with it SAWL's split
//! heuristic's first/second-half counters). It exercises the raw cache
//! structures rather than a wear leveler, so it shards per-benchmark
//! through `parallel_map` directly instead of building scenarios.

use sawl_bench::{paper_note, Figure, CMT_BYTES, PERF_LINES};
use sawl_simctl::report::pct;
use sawl_simctl::{parallel_map, stable_seed};
use sawl_tiered::clock::ClockCache;
use sawl_tiered::cmt::{Cmt, CmtLookup};
use sawl_trace::{AddressStream, ALL_BENCHMARKS};

fn main() {
    let requests: u64 = 10_000_000;
    let granularity = 4u64;
    let entries = (CMT_BYTES * 8 / 48) as usize;

    let rates: Vec<(f64, f64)> = parallel_map(&ALL_BENCHMARKS, |bench| {
        let mut lru: Cmt<u8> = Cmt::new(entries);
        let mut clock: ClockCache<u8> = ClockCache::new(entries);
        let mut stream =
            bench.stream(PERF_LINES, stable_seed(&format!("ablation-cmt/{}", bench.name())));
        for _ in 0..requests {
            let lrn = stream.next_req().la / granularity;
            if matches!(lru.lookup(lrn), CmtLookup::Miss) {
                lru.insert(lrn, 0);
            }
            if clock.lookup(lrn).is_none() {
                clock.insert(lrn, 0);
            }
        }
        (lru.hit_rate(), clock.hit_rate())
    });

    let mut fig = Figure::new(
        "ablation_cmt_policy",
        "Ablation: CMT replacement policy (hit rate %, 256KB, granularity 4)",
        &["benchmark", "LRU", "CLOCK", "gap (pts)"],
    );
    let mut worst: f64 = 0.0;
    for (bench, &(lru_rate, clock_rate)) in ALL_BENCHMARKS.iter().zip(&rates) {
        let gap = (lru_rate - clock_rate) * 100.0;
        worst = worst.max(gap.abs());
        fig.row(vec![bench.name().into(), pct(lru_rate), pct(clock_rate), format!("{gap:+.2}")]);
    }
    fig.emit();
    paper_note(&format!(
        "Not in the paper. CLOCK tracks exact LRU within ~{worst:.1} points on these \
         workloads, but it cannot provide the first/second-half hit counters that \
         drive SAWL's region-split rule — the reason the paper keeps the LRU stack."
    ));
}
