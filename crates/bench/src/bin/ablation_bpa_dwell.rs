//! Ablation — sensitivity of the lifetime results to the BPA dwell
//! (writes per attacked address), which the paper does not publish
//! (DESIGN.md §5/§9).
//!
//! The harness pins the dwell to one endurance budget; this sweep shows
//! the scheme *ordering* (SAWL > PCM-S > baseline) is robust across two
//! orders of magnitude of dwell, so the figures do not hinge on the
//! choice.

use sawl_bench::{device, paper_note, Figure, ENDURANCE_1E6_CLASS, LIFETIME_LINES};
use sawl_simctl::report::pct;
use sawl_simctl::{run_all, Scenario, SchemeSpec, WorkloadSpec};

fn main() {
    let endurance = ENDURANCE_1E6_CLASS;
    let dwells: [u64; 5] = [
        u64::from(endurance) / 16,
        u64::from(endurance) / 4,
        u64::from(endurance),
        u64::from(endurance) * 4,
        u64::from(endurance) * 16,
    ];
    let schemes: Vec<(&str, SchemeSpec)> = vec![
        ("baseline", SchemeSpec::Baseline),
        ("pcm-s", SchemeSpec::PcmS { region_lines: 16, period: 16 }),
        ("sawl", SchemeSpec::sawl_default(4096)),
    ];
    let mut grid = Vec::new();
    for &dwell in &dwells {
        for (name, scheme) in &schemes {
            grid.push(Scenario::lifetime(
                format!("ablation-dwell/{dwell}/{name}"),
                scheme.clone(),
                WorkloadSpec::Bpa { writes_per_target: dwell },
                LIFETIME_LINES,
                device(endurance),
            ));
        }
    }
    let results = run_all(&grid).expect("scenario sweep failed");
    let mut fig = Figure::new(
        "ablation_bpa_dwell",
        "Ablation: BPA dwell sensitivity (normalized lifetime %, Wmax 1e6-class)",
        &["dwell (x Wmax)", "baseline", "pcm-s", "sawl"],
    );
    for (di, &dwell) in dwells.iter().enumerate() {
        let base = results[di * 3].lifetime();
        let pcms = results[di * 3 + 1].lifetime();
        let sawl = results[di * 3 + 2].lifetime();
        fig.row(vec![
            format!("{:.3}", dwell as f64 / f64::from(endurance)),
            pct(base.normalized_lifetime),
            pct(pcms.normalized_lifetime),
            pct(sawl.normalized_lifetime),
        ]);
    }
    fig.emit();
    paper_note(
        "Not in the paper — a robustness check of our dwell choice. The ordering \
         baseline < pcm-s < sawl should hold at every dwell.",
    );
}
