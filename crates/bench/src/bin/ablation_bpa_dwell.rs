//! Ablation — sensitivity of the lifetime results to the BPA dwell
//! (writes per attacked address), which the paper does not publish
//! (DESIGN.md §5/§9).
//!
//! The harness pins the dwell to one endurance budget; this sweep shows
//! the scheme *ordering* (SAWL > PCM-S > baseline) is robust across two
//! orders of magnitude of dwell, so the figures do not hinge on the
//! choice.

use sawl_bench::{device, emit, paper_note, ENDURANCE_1E6_CLASS, LIFETIME_LINES};
use sawl_simctl::report::pct;
use sawl_simctl::{parallel_map, run_lifetime, LifetimeExperiment, SchemeSpec, Table, WorkloadSpec};

fn main() {
    let endurance = ENDURANCE_1E6_CLASS;
    let dwells: [u64; 5] = [
        u64::from(endurance) / 16,
        u64::from(endurance) / 4,
        u64::from(endurance),
        u64::from(endurance) * 4,
        u64::from(endurance) * 16,
    ];
    let schemes: Vec<(&str, SchemeSpec)> = vec![
        ("baseline", SchemeSpec::Baseline),
        ("pcm-s", SchemeSpec::PcmS { region_lines: 16, period: 16 }),
        ("sawl", SchemeSpec::sawl_default(4096)),
    ];
    let mut experiments = Vec::new();
    for &dwell in &dwells {
        for (name, scheme) in &schemes {
            experiments.push(LifetimeExperiment {
                id: format!("ablation-dwell/{dwell}/{name}"),
                scheme: scheme.clone(),
                workload: WorkloadSpec::Bpa { writes_per_target: dwell },
                data_lines: LIFETIME_LINES,
                device: device(endurance),
                max_demand_writes: 0,
            });
        }
    }
    let results = parallel_map(&experiments, run_lifetime);
    let mut table = Table::new(
        "Ablation: BPA dwell sensitivity (normalized lifetime %, Wmax 1e6-class)",
        &["dwell (x Wmax)", "baseline", "pcm-s", "sawl"],
    );
    for (di, &dwell) in dwells.iter().enumerate() {
        let base = &results[di * 3];
        let pcms = &results[di * 3 + 1];
        let sawl = &results[di * 3 + 2];
        table.row(vec![
            format!("{:.3}", dwell as f64 / f64::from(endurance)),
            pct(base.normalized_lifetime),
            pct(pcms.normalized_lifetime),
            pct(sawl.normalized_lifetime),
        ]);
    }
    emit(&table, "ablation_bpa_dwell");
    paper_note(
        "Not in the paper — a robustness check of our dwell choice. The ordering \
         baseline < pcm-s < sawl should hold at every dwell.",
    );
}
