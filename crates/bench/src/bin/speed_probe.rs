use std::time::Instant;

use sawl_simctl::{run_scenario, DeviceSpec, Scenario, SchemeSpec, WorkloadSpec};

fn main() {
    // Serial on purpose: each run is timed in isolation.
    for (name, scheme) in [
        ("pcms", SchemeSpec::PcmS { region_lines: 16, period: 32 }),
        ("tlsr", SchemeSpec::Tlsr { region_lines: 64, inner_period: 8, outer_period: 32 }),
        ("mwsr", SchemeSpec::Mwsr { region_lines: 16, period: 32 }),
        ("sawl", SchemeSpec::sawl_default(1024)),
    ] {
        let scenario = Scenario::lifetime(
            format!("probe/{name}"),
            scheme,
            WorkloadSpec::Bpa { writes_per_target: 2048 },
            1 << 16,
            DeviceSpec { endurance: 10_000, ..Default::default() },
        );
        let t = Instant::now();
        let report = run_scenario(&scenario);
        let r = report.lifetime();
        let dt = t.elapsed().as_secs_f64();
        println!(
            "{name}: nl={:.3} demand={} overhead={:.3} died={} in {dt:.2}s ({:.1} Mw/s)",
            r.normalized_lifetime,
            r.demand_writes,
            r.overhead_fraction,
            r.device_died,
            r.demand_writes as f64 / dt / 1e6
        );
    }
}
