//! Simulator-throughput baseline: time the BPA lifetime probe for the
//! four fastest-moving schemes and record the results as
//! `BENCH_speed.json` in the working directory (repo root in CI).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p sawl-bench --bin speed_probe              # full geometry
//! cargo run --release -p sawl-bench --bin speed_probe -- --smoke  # tiny, seconds
//! cargo run --release -p sawl-bench --bin speed_probe -- --telemetry
//!                        # also time recorder-on runs, write BENCH_speed_telemetry.json
//! ```
//!
//! The JSON schema is a single object:
//!
//! ```json
//! {
//!   "probe": "bpa-lifetime",
//!   "smoke": false,
//!   "data_lines": 65536,
//!   "endurance": 10000,
//!   "schemes": [
//!     { "name": "pcms", "mw_per_sec": 0.0, "wall_seconds": 0.0,
//!       "demand_writes": 0, "normalized_lifetime": 0.0 }
//!   ]
//! }
//! ```
//!
//! `mw_per_sec` is demand writes per wall-clock second in millions — the
//! headline simulator-throughput number. Runs are serial on purpose so
//! each one is timed in isolation.
//!
//! `--telemetry` measures the recorder's overhead: every scheme is timed
//! a second time with a default-stride telemetry spec attached (wear
//! probe + event ring + stride-clamped batching), and the per-scheme
//! slowdown lands in `BENCH_speed_telemetry.json`. The baseline pass and
//! `BENCH_speed.json` stay untouched either way, so committed-throughput
//! comparisons always see the telemetry-off numbers.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use sawl_simctl::{run_scenario, DeviceSpec, Scenario, SchemeSpec, TelemetrySpec, WorkloadSpec};

/// One scheme's timing row in `BENCH_speed.json`.
#[derive(Debug, Serialize, Deserialize)]
struct SchemeSpeed {
    name: String,
    mw_per_sec: f64,
    wall_seconds: f64,
    demand_writes: u64,
    normalized_lifetime: f64,
}

/// Top-level `BENCH_speed.json` document.
#[derive(Debug, Serialize, Deserialize)]
struct SpeedReport {
    probe: String,
    smoke: bool,
    data_lines: u64,
    endurance: u32,
    schemes: Vec<SchemeSpeed>,
}

/// One scheme's recorder-overhead row in `BENCH_speed_telemetry.json`.
#[derive(Debug, Serialize, Deserialize)]
struct TelemetrySpeed {
    name: String,
    baseline_mw_per_sec: f64,
    telemetry_mw_per_sec: f64,
    /// Slowdown of the telemetry-on run in percent (positive = slower).
    overhead_pct: f64,
    samples: u64,
}

/// Top-level `BENCH_speed_telemetry.json` document.
#[derive(Debug, Serialize, Deserialize)]
struct TelemetryReport {
    probe: String,
    smoke: bool,
    stride: u64,
    schemes: Vec<TelemetrySpeed>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let with_telemetry = args.iter().any(|a| a == "--telemetry");
    // The smoke geometry exists for CI: it exercises the identical code
    // path in a couple of seconds and still produces well-formed JSON.
    let (data_lines, endurance): (u64, u32) =
        if smoke { (1 << 12, 500) } else { (1 << 16, 10_000) };
    let stride = TelemetrySpec::default().stride;

    let mut schemes = Vec::new();
    let mut telemetry_rows = Vec::new();
    // Serial on purpose: each run is timed in isolation.
    for (name, scheme) in [
        ("pcms", SchemeSpec::PcmS { region_lines: 16, period: 32 }),
        ("tlsr", SchemeSpec::Tlsr { region_lines: 64, inner_period: 8, outer_period: 32 }),
        ("mwsr", SchemeSpec::Mwsr { region_lines: 16, period: 32 }),
        ("sawl", SchemeSpec::sawl_default(1024)),
    ] {
        let scenario = Scenario::lifetime(
            format!("probe/{name}"),
            scheme,
            WorkloadSpec::Bpa { writes_per_target: 2048 },
            data_lines,
            DeviceSpec { endurance, ..Default::default() },
        );
        let t = Instant::now();
        let report = run_scenario(&scenario).expect("speed probe scenario failed");
        let r = report.lifetime();
        let dt = t.elapsed().as_secs_f64();
        let mw_per_sec = r.demand_writes as f64 / dt / 1e6;
        println!(
            "{name}: nl={:.3} demand={} overhead={:.3} died={} in {dt:.2}s ({mw_per_sec:.1} Mw/s)",
            r.normalized_lifetime, r.demand_writes, r.overhead_fraction, r.device_died,
        );
        schemes.push(SchemeSpeed {
            name: name.into(),
            mw_per_sec,
            wall_seconds: dt,
            demand_writes: r.demand_writes,
            normalized_lifetime: r.normalized_lifetime,
        });

        if with_telemetry {
            let instrumented = scenario.with_telemetry(TelemetrySpec::with_stride(stride));
            let t = Instant::now();
            let report = run_scenario(&instrumented).expect("telemetry speed scenario failed");
            let r = report.lifetime();
            let dt = t.elapsed().as_secs_f64();
            let telemetry_mw_per_sec = r.demand_writes as f64 / dt / 1e6;
            let overhead_pct = (mw_per_sec / telemetry_mw_per_sec - 1.0) * 100.0;
            let samples = r.telemetry.as_ref().map(|s| s.samples.len() as u64).unwrap_or_default();
            println!(
                "{name}+telemetry: {samples} samples in {dt:.2}s ({telemetry_mw_per_sec:.1} \
                 Mw/s, {overhead_pct:+.1}% overhead)"
            );
            telemetry_rows.push(TelemetrySpeed {
                name: name.into(),
                baseline_mw_per_sec: mw_per_sec,
                telemetry_mw_per_sec,
                overhead_pct,
                samples,
            });
        }
    }

    let report =
        SpeedReport { probe: "bpa-lifetime".into(), smoke, data_lines, endurance, schemes };
    let json = serde_json::to_string_pretty(&report).expect("serialize speed report");
    std::fs::write("BENCH_speed.json", json + "\n").expect("write BENCH_speed.json");
    println!("wrote BENCH_speed.json");

    if with_telemetry {
        let report = TelemetryReport {
            probe: "bpa-lifetime".into(),
            smoke,
            stride,
            schemes: telemetry_rows,
        };
        let json = serde_json::to_string_pretty(&report).expect("serialize telemetry report");
        std::fs::write("BENCH_speed_telemetry.json", json + "\n")
            .expect("write BENCH_speed_telemetry.json");
        println!("wrote BENCH_speed_telemetry.json");
    }
}
