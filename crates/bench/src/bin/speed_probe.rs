//! Simulator-throughput baseline: time the BPA lifetime probe for the
//! four fastest-moving schemes and record the results as
//! `BENCH_speed.json` in the working directory (repo root in CI).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p sawl-bench --bin speed_probe              # full geometry
//! cargo run --release -p sawl-bench --bin speed_probe -- --smoke  # tiny, seconds
//! cargo run --release -p sawl-bench --bin speed_probe -- --telemetry
//!                        # also time recorder-on runs, write BENCH_speed_telemetry.json
//! cargo run --release -p sawl-bench --bin speed_probe -- --lines 16777216
//!                        # one capped scaling point at the given device size
//! ```
//!
//! The JSON schema is a single object:
//!
//! ```json
//! {
//!   "probe": "bpa-lifetime",
//!   "smoke": false,
//!   "data_lines": 65536,
//!   "endurance": 10000,
//!   "schemes": [
//!     { "name": "pcms", "mw_per_sec": 0.0, "wall_seconds": 0.0,
//!       "demand_writes": 0, "normalized_lifetime": 0.0 }
//!   ]
//! }
//! ```
//!
//! `mw_per_sec` is demand writes per wall-clock second in millions — the
//! headline simulator-throughput number. Runs are serial on purpose so
//! each one is timed in isolation.
//!
//! `--telemetry` measures the recorder's overhead: every scheme is timed
//! a second time with a default-stride telemetry spec attached (wear
//! probe + event ring + stride-clamped batching), and the per-scheme
//! slowdown lands in `BENCH_speed_telemetry.json`. The baseline pass and
//! `BENCH_speed.json` stay untouched either way, so committed-throughput
//! comparisons always see the telemetry-off numbers.
//!
//! The report also carries a `scaling` series: capped BPA runs at
//! increasing device sizes (2^16 / 2^20 / 2^24 lines by default, or the
//! single `--lines` value), each with the process peak RSS and the wear
//! state's measured bytes-per-line. `--lines` runs only its scaling point
//! — the per-scheme probe is skipped — so huge-device construction checks
//! stay cheap.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use sawl_algos::WearLeveler;
use sawl_simctl::{
    pump_writes, run_scenario, stable_seed, DeviceSpec, Scenario, SchemeSpec, TelemetrySpec,
    WorkloadSpec,
};

/// One scheme's timing row in `BENCH_speed.json`.
#[derive(Debug, Serialize, Deserialize)]
struct SchemeSpeed {
    name: String,
    mw_per_sec: f64,
    wall_seconds: f64,
    demand_writes: u64,
    normalized_lifetime: f64,
}

/// One capped run of the device-size scaling series.
#[derive(Debug, Serialize, Deserialize)]
struct ScalePoint {
    data_lines: u64,
    scheme: String,
    demand_writes: u64,
    wall_seconds: f64,
    mw_per_sec: f64,
    /// Exact heap bytes of the device's wear state (countdowns + quantized
    /// limit table + failure overlay).
    wear_state_bytes: u64,
    wear_bytes_per_line: f64,
    /// Wear-state layout tag, e.g. `"u16+uniform"`.
    wear_layout: String,
    /// Process peak RSS (`VmHWM`) after the run, in bytes. Points run in
    /// ascending size order, so each reading is dominated by its own
    /// device.
    peak_rss_bytes: u64,
}

/// Top-level `BENCH_speed.json` document.
#[derive(Debug, Serialize, Deserialize)]
struct SpeedReport {
    probe: String,
    smoke: bool,
    data_lines: u64,
    endurance: u32,
    schemes: Vec<SchemeSpeed>,
    scaling: Vec<ScalePoint>,
}

/// One scheme's recorder-overhead row in `BENCH_speed_telemetry.json`.
#[derive(Debug, Serialize, Deserialize)]
struct TelemetrySpeed {
    name: String,
    baseline_mw_per_sec: f64,
    telemetry_mw_per_sec: f64,
    /// Slowdown of the telemetry-on run in percent (positive = slower).
    overhead_pct: f64,
    samples: u64,
}

/// Top-level `BENCH_speed_telemetry.json` document.
#[derive(Debug, Serialize, Deserialize)]
struct TelemetryReport {
    probe: String,
    smoke: bool,
    stride: u64,
    schemes: Vec<TelemetrySpeed>,
}

/// Current `VmHWM` (peak resident set) of this process, in bytes.
fn peak_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches(" kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// One capped BPA run at `data_lines` lines: construct the device, pump
/// `cap` demand writes, and report throughput plus the memory footprint.
fn scaling_point(data_lines: u64, cap: u64) -> ScalePoint {
    // Region size 1024 keeps the scheme's own tables negligible next to
    // the wear state at every series size.
    let scheme = SchemeSpec::PcmS { region_lines: 1024, period: 2048 };
    let seed = stable_seed(&format!("speed-probe/scaling/{data_lines}"));
    let mut wl = scheme.instantiate(data_lines, seed);
    let mut dev = DeviceSpec { endurance: 10_000, ..Default::default() }
        .build(scheme.physical_lines(data_lines), seed);
    let mut stream = WorkloadSpec::Bpa { writes_per_target: 2048 }.build(wl.logical_lines(), seed);
    let t = Instant::now();
    pump_writes(&mut wl, &mut dev, &mut stream, cap).expect("scaling point pump failed");
    let dt = t.elapsed().as_secs_f64();
    let demand = dev.wear().demand_writes;
    let wear_bytes = dev.wear_state_bytes();
    let point = ScalePoint {
        data_lines,
        scheme: "pcms-1024".into(),
        demand_writes: demand,
        wall_seconds: dt,
        mw_per_sec: demand as f64 / dt / 1e6,
        wear_state_bytes: wear_bytes,
        wear_bytes_per_line: wear_bytes as f64 / dev.lines() as f64,
        wear_layout: dev.wear_state_layout(),
        peak_rss_bytes: peak_rss_bytes(),
    };
    println!(
        "scaling 2^{:.0} lines: {:.1} Mw/s, wear {} ({:.2} B/line), peak RSS {:.1} MiB",
        (data_lines as f64).log2(),
        point.mw_per_sec,
        point.wear_layout,
        point.wear_bytes_per_line,
        point.peak_rss_bytes as f64 / (1 << 20) as f64,
    );
    point
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let with_telemetry = args.iter().any(|a| a == "--telemetry");
    let lines_override: Option<u64> = args
        .iter()
        .position(|a| a == "--lines")
        .map(|i| args.get(i + 1).and_then(|v| v.parse().ok()).expect("--lines needs a line count"));
    // The smoke geometry exists for CI: it exercises the identical code
    // path in a couple of seconds and still produces well-formed JSON.
    let (data_lines, endurance): (u64, u32) =
        if smoke { (1 << 12, 500) } else { (1 << 16, 10_000) };
    let stride = TelemetrySpec::default().stride;

    let mut schemes = Vec::new();
    let mut telemetry_rows = Vec::new();
    // Serial on purpose: each run is timed in isolation. A `--lines`
    // override runs only its scaling point.
    let probe_schemes: Vec<(&str, SchemeSpec)> = if lines_override.is_some() {
        Vec::new()
    } else {
        vec![
            ("pcms", SchemeSpec::PcmS { region_lines: 16, period: 32 }),
            ("tlsr", SchemeSpec::Tlsr { region_lines: 64, inner_period: 8, outer_period: 32 }),
            ("mwsr", SchemeSpec::Mwsr { region_lines: 16, period: 32 }),
            ("sawl", SchemeSpec::sawl_default(1024)),
        ]
    };
    for (name, scheme) in probe_schemes {
        let scenario = Scenario::lifetime(
            format!("probe/{name}"),
            scheme,
            WorkloadSpec::Bpa { writes_per_target: 2048 },
            data_lines,
            DeviceSpec { endurance, ..Default::default() },
        );
        let t = Instant::now();
        let report = run_scenario(&scenario).expect("speed probe scenario failed");
        let r = report.lifetime();
        let dt = t.elapsed().as_secs_f64();
        let mw_per_sec = r.demand_writes as f64 / dt / 1e6;
        println!(
            "{name}: nl={:.3} demand={} overhead={:.3} died={} in {dt:.2}s ({mw_per_sec:.1} Mw/s)",
            r.normalized_lifetime, r.demand_writes, r.overhead_fraction, r.device_died,
        );
        schemes.push(SchemeSpeed {
            name: name.into(),
            mw_per_sec,
            wall_seconds: dt,
            demand_writes: r.demand_writes,
            normalized_lifetime: r.normalized_lifetime,
        });

        if with_telemetry {
            let instrumented = scenario.with_telemetry(TelemetrySpec::with_stride(stride));
            let t = Instant::now();
            let report = run_scenario(&instrumented).expect("telemetry speed scenario failed");
            let r = report.lifetime();
            let dt = t.elapsed().as_secs_f64();
            let telemetry_mw_per_sec = r.demand_writes as f64 / dt / 1e6;
            let overhead_pct = (mw_per_sec / telemetry_mw_per_sec - 1.0) * 100.0;
            let samples = r.telemetry.as_ref().map(|s| s.samples.len() as u64).unwrap_or_default();
            println!(
                "{name}+telemetry: {samples} samples in {dt:.2}s ({telemetry_mw_per_sec:.1} \
                 Mw/s, {overhead_pct:+.1}% overhead)"
            );
            telemetry_rows.push(TelemetrySpeed {
                name: name.into(),
                baseline_mw_per_sec: mw_per_sec,
                telemetry_mw_per_sec,
                overhead_pct,
                samples,
            });
        }
    }

    // The scaling series: capped runs in ascending size order so each
    // point's `VmHWM` reading is dominated by its own footprint. The cap
    // bounds the wall time, not the geometry — the full 2^24 point costs a
    // couple of seconds.
    let cap = if smoke { 1 << 22 } else { 1 << 26 };
    let series: Vec<u64> = match lines_override {
        Some(n) => vec![n],
        None if smoke => vec![1 << 16],
        None => vec![1 << 16, 1 << 20, 1 << 24],
    };
    let scaling: Vec<ScalePoint> = series.into_iter().map(|n| scaling_point(n, cap)).collect();

    let report = SpeedReport {
        probe: "bpa-lifetime".into(),
        smoke,
        data_lines,
        endurance,
        schemes,
        scaling,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize speed report");
    std::fs::write("BENCH_speed.json", json + "\n").expect("write BENCH_speed.json");
    println!("wrote BENCH_speed.json");

    if with_telemetry {
        let report = TelemetryReport {
            probe: "bpa-lifetime".into(),
            smoke,
            stride,
            schemes: telemetry_rows,
        };
        let json = serde_json::to_string_pretty(&report).expect("serialize telemetry report");
        std::fs::write("BENCH_speed_telemetry.json", json + "\n")
            .expect("write BENCH_speed_telemetry.json");
        println!("wrote BENCH_speed_telemetry.json");
    }
}
