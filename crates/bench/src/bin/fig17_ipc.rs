//! Fig. 17 — IPC degradation (vs a no-wear-leveling baseline) of BWL,
//! NWL-4 and SAWL under the 14 SPEC-like applications.
//!
//! Configurations (§4.4 plus our documented interpretation): the baseline
//! performs no translation; **BWL** is non-tiered PCM-S with its full table
//! on chip (flat 5 ns translation) at the aggressive swapping period 8 —
//! the setting that gives the hybrids their competitive Fig. 15 lifetime —
//! so its cost is write amplification; **NWL-4** and **SAWL** run the
//! tiered architecture (5/55 ns by CMT hit/miss) at swapping period 128
//! with the 256 KB CMT.

use sawl_bench::{paper_note, Figure, CMT_BYTES};
use sawl_core::SawlConfig;
use sawl_simctl::report::pct;
use sawl_simctl::{run_all, Scenario, SchemeSpec};
use sawl_trace::ALL_BENCHMARKS;

fn main() {
    // The 2^22-line space makes NWL-4's CMT pressure realistic; the warmup
    // covers SAWL's lazy granularity ramp (~3 levels over the largest
    // footprints, see the monitor probes in EXPERIMENTS.md).
    const PERF_LINES: u64 = 1 << 22;
    let requests: u64 = 5_000_000;
    let warmup: u64 = 8_000_000;
    let cmt_entries = (CMT_BYTES * 8 / 48) as usize;
    let schemes: Vec<(&str, SchemeSpec)> = vec![
        ("bwl", SchemeSpec::PcmS { region_lines: 4, period: 8 }),
        ("nwl-4", SchemeSpec::Nwl { granularity: 4, cmt_entries, swap_period: 128 }),
        (
            "sawl",
            SchemeSpec::Sawl(SawlConfig {
                initial_granularity: 4,
                max_granularity: 256,
                cmt_entries,
                swap_period: 128,
                observation_window: 1 << 20,
                settling_window: 1 << 20,
                sample_interval: 100_000,
                ..SawlConfig::default()
            }),
        ),
    ];

    let mut grid = Vec::new();
    for bench in ALL_BENCHMARKS {
        for (name, scheme) in &schemes {
            grid.push(Scenario::perf(
                format!("fig17/{}/{}", bench.name(), name),
                scheme.clone(),
                bench,
                PERF_LINES,
                requests,
                warmup,
            ));
        }
    }
    let results = run_all(&grid).expect("scenario sweep failed");

    let mut fig = Figure::new(
        "fig17_ipc",
        "Fig. 17 IPC degradation vs no-wear-leveling baseline (%)",
        &["benchmark", "bwl", "nwl-4", "sawl", "nwl-4 hit (%)", "sawl hit (%)"],
    );
    let mut sums = [0.0f64; 3];
    for (bi, bench) in ALL_BENCHMARKS.iter().enumerate() {
        let row_results: Vec<_> = results[bi * 3..bi * 3 + 3].iter().map(|r| r.perf()).collect();
        for (si, r) in row_results.iter().enumerate() {
            sums[si] += r.ipc_degradation;
        }
        fig.row(vec![
            bench.name().to_string(),
            pct(row_results[0].ipc_degradation),
            pct(row_results[1].ipc_degradation),
            pct(row_results[2].ipc_degradation),
            pct(row_results[1].hit_rate),
            pct(row_results[2].hit_rate),
        ]);
    }
    let n = ALL_BENCHMARKS.len() as f64;
    fig.row(vec![
        "Mean".into(),
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
        "".into(),
        "".into(),
    ]);
    fig.emit();
    paper_note(
        "Paper Fig. 17: average IPC degradation 23% (BWL), 10% (NWL-4), 5% (SAWL); \
         bzip2 and milc barely degrade (sparse, cache-resident accesses). Expect \
         the ordering BWL > NWL-4 > SAWL on average, with SAWL in the single \
         digits and the cache-friendly benchmarks near zero.",
    );
}
