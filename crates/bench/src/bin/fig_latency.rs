//! Tail-latency comparison: run each scheme's lifetime probe with the
//! closed-loop timing model attached under BPA and Zipf traffic, and
//! record the latency distribution (p50/p99/p999/max) plus the stall
//! attribution as `BENCH_latency.json` in the working directory.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p sawl-bench --bin fig_latency              # full geometry
//! cargo run --release -p sawl-bench --bin fig_latency -- --smoke  # tiny, seconds
//! ```
//!
//! The JSON schema is a single object:
//!
//! ```json
//! {
//!   "probe": "timed-lifetime",
//!   "smoke": false,
//!   "data_lines": 65536,
//!   "requests": 2000000,
//!   "rows": [
//!     { "scheme": "sawl", "workload": "bpa", "requests": 0, "mean_ns": 0.0,
//!       "p50_ns": 0, "p99_ns": 0, "p999_ns": 0, "max_ns": 0,
//!       "saturated": false, "stall_queue_ns": 0.0, "stall_trans_miss_ns": 0.0,
//!       "stall_exchange_ns": 0.0, "stall_reorg_ns": 0.0 }
//!   ]
//! }
//! ```
//!
//! The mean separates schemes only mildly; the p99/p999 columns are where
//! periodic table-wide exchanges (PCM-S, MWSR) and SAWL's merge/split
//! reorganizations show up. Every run serves the same request count, so
//! percentiles are comparable across rows.

use serde::{Deserialize, Serialize};

use sawl_simctl::{run_scenario, DeviceSpec, Scenario, SchemeSpec, TimingSpec, WorkloadSpec};

/// One scheme × workload row in `BENCH_latency.json`.
#[derive(Debug, Serialize, Deserialize)]
struct LatencyRow {
    scheme: String,
    workload: String,
    requests: u64,
    mean_ns: f64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    max_ns: u64,
    saturated: bool,
    stall_queue_ns: f64,
    stall_trans_miss_ns: f64,
    stall_exchange_ns: f64,
    stall_reorg_ns: f64,
}

/// Top-level `BENCH_latency.json` document.
#[derive(Debug, Serialize, Deserialize)]
struct LatencyReportDoc {
    probe: String,
    smoke: bool,
    data_lines: u64,
    endurance: u32,
    requests: u64,
    rows: Vec<LatencyRow>,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // High endurance: every run serves the full request budget, so the
    // percentile columns compare identical sample counts.
    let (data_lines, requests): (u64, u64) =
        if smoke { (1 << 12, 100_000) } else { (1 << 16, 2_000_000) };
    let endurance = u32::MAX;

    let schemes: Vec<(&str, SchemeSpec)> = vec![
        ("baseline", SchemeSpec::Baseline),
        ("pcms", SchemeSpec::PcmS { region_lines: 16, period: 32 }),
        ("tlsr", SchemeSpec::Tlsr { region_lines: 64, inner_period: 8, outer_period: 32 }),
        ("mwsr", SchemeSpec::Mwsr { region_lines: 16, period: 32 }),
        ("nwl", SchemeSpec::Nwl { granularity: 4, cmt_entries: 1 << 10, swap_period: 1 << 20 }),
        ("sawl", SchemeSpec::sawl_default(1024)),
    ];
    let workloads: Vec<(&str, WorkloadSpec)> = vec![
        ("bpa", WorkloadSpec::Bpa { writes_per_target: 2048 }),
        ("zipf", WorkloadSpec::Zipf { exponent: 1.0, write_ratio: 1.0 }),
    ];

    let mut rows = Vec::new();
    for (sname, scheme) in &schemes {
        for (wname, workload) in &workloads {
            let scenario = Scenario::lifetime(
                format!("fig-latency/{sname}/{wname}"),
                scheme.clone(),
                workload.clone(),
                data_lines,
                DeviceSpec { endurance, ..Default::default() },
            )
            .with_write_cap(requests)
            .with_timing(TimingSpec::default());
            let report = run_scenario(&scenario).expect("latency scenario failed");
            let l = report.lifetime().latency.clone().expect("timed run must report latency");
            println!(
                "{sname:>8}/{wname}: p50 {:>5} ns  p99 {:>6} ns  p999 {:>7} ns  max {:>8} ns  \
                 (queue {:.2e} / miss {:.2e} / xchg {:.2e} / reorg {:.2e})",
                l.p50_ns,
                l.p99_ns,
                l.p999_ns,
                l.max_ns,
                l.stall_queue_ns,
                l.stall_trans_miss_ns,
                l.stall_exchange_ns,
                l.stall_reorg_ns,
            );
            rows.push(LatencyRow {
                scheme: (*sname).into(),
                workload: (*wname).into(),
                requests: l.requests,
                mean_ns: l.mean_ns,
                p50_ns: l.p50_ns,
                p99_ns: l.p99_ns,
                p999_ns: l.p999_ns,
                max_ns: l.max_ns,
                saturated: l.saturated,
                stall_queue_ns: l.stall_queue_ns,
                stall_trans_miss_ns: l.stall_trans_miss_ns,
                stall_exchange_ns: l.stall_exchange_ns,
                stall_reorg_ns: l.stall_reorg_ns,
            });
        }
    }

    let doc = LatencyReportDoc {
        probe: "timed-lifetime".into(),
        smoke,
        data_lines,
        endurance,
        requests,
        rows,
    };
    let json = serde_json::to_string_pretty(&doc).expect("serialize latency report");
    std::fs::write("BENCH_latency.json", json + "\n").expect("write BENCH_latency.json");
    println!("wrote BENCH_latency.json");
}
