//! Tail-latency comparison: run each scheme's timed lifetime probe under
//! BPA and Zipf traffic — sharded over (scheme × workload × seed) and
//! fanned across cores — and record the latency distribution
//! (p50/p99/p999/max) plus the stall attribution as `BENCH_latency.json`
//! in the working directory, together with a timed-throughput probe of
//! the run-granular fast path against the forced-scalar serve path.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p sawl-bench --bin fig_latency                 # full geometry
//! cargo run --release -p sawl-bench --bin fig_latency -- --smoke     # tiny, seconds
//!     [--seeds K]            # seed shards per cell (default 4)
//!     [--threads N]          # worker cap; beats SAWL_THREADS
//!     [--min-timed-mwps X]   # exit 1 if the fast-path probe is slower
//! ```
//!
//! The rows are deterministic: every shard seeds its own request stream
//! from its id, shards reduce in fixed order through the histogram's
//! slot-exact merge, and the worker count only bounds the fan-out — so
//! `--threads 1` and `--threads 4` write byte-identical rows. The
//! `timed_probe` object (wall-clock Mw/s, scalar vs fast serve) is the
//! one intentionally non-deterministic part of the document.
//!
//! The mean separates schemes only mildly; the p99/p999 columns are where
//! periodic table-wide exchanges (PCM-S, MWSR) and SAWL's merge/split
//! reorganizations show up. Every cell serves the same request count, so
//! percentiles are comparable across rows.

use sawl_bench::latency::{
    run_sweep, scheme_grid, timed_probe, workload_grid, LatencyReportDoc, LatencyRow, SweepConfig,
};

fn usage() -> ! {
    eprintln!("usage: fig_latency [--smoke] [--seeds K] [--threads N] [--min-timed-mwps X]");
    std::process::exit(2);
}

fn main() {
    let mut smoke = false;
    let mut seeds: u64 = 4;
    let mut min_timed_mwps: Option<f64> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--seeds" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(k)) if k >= 1 => seeds = k,
                _ => usage(),
            },
            "--threads" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => sawl_simctl::set_thread_override(Some(n.max(1))),
                _ => usage(),
            },
            "--min-timed-mwps" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(x)) if x > 0.0 => min_timed_mwps = Some(x),
                _ => usage(),
            },
            _ => usage(),
        }
    }

    let cfg = if smoke { SweepConfig::smoke(seeds) } else { SweepConfig::full(seeds) };
    let schemes = scheme_grid(cfg.data_lines);
    let workloads = workload_grid();
    let rows = run_sweep(&cfg, &schemes, &workloads);
    for row in &rows {
        let l = &row.report;
        println!(
            "{:>8}/{}: p50 {:>5} ns  p99 {:>6} ns  p999 {:>7} ns  max {:>8} ns  \
             (queue {:.2e} / miss {:.2e} / xchg {:.2e} / reorg {:.2e})",
            row.scheme,
            row.workload,
            l.p50_ns,
            l.p99_ns,
            l.p999_ns,
            l.max_ns,
            l.stall_queue_ns,
            l.stall_trans_miss_ns,
            l.stall_exchange_ns,
            l.stall_reorg_ns,
        );
    }

    let probe = timed_probe(&cfg);
    println!(
        "timed probe ({}/{}, {} writes): scalar {:.2} Mw/s, fast {:.2} Mw/s ({:.1}x)",
        probe.scheme,
        probe.workload,
        probe.requests,
        probe.scalar_mw_per_sec,
        probe.fast_mw_per_sec,
        probe.speedup,
    );

    let doc = LatencyReportDoc {
        probe: "timed-lifetime".into(),
        smoke,
        data_lines: cfg.data_lines,
        endurance: cfg.endurance,
        requests: cfg.requests,
        seeds: cfg.seeds,
        rows: rows.iter().map(LatencyRow::from_row).collect(),
        timed_probe: probe.clone(),
    };
    let json = serde_json::to_string_pretty(&doc).expect("serialize latency report");
    std::fs::write("BENCH_latency.json", json + "\n").expect("write BENCH_latency.json");
    println!("wrote BENCH_latency.json");

    if let Some(floor) = min_timed_mwps {
        if probe.fast_mw_per_sec < floor {
            eprintln!(
                "timed throughput {:.2} Mw/s below the {floor:.2} Mw/s floor",
                probe.fast_mw_per_sec
            );
            std::process::exit(1);
        }
    }
}
