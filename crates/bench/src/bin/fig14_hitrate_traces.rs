//! Fig. 14 — runtime hit rates and SAWL's region-size trajectory under
//! the bzip2, cactusADM and gcc models; NWL-4 and NWL-64 for comparison.
//!
//! The paper's annotations (256 KB CMT): bzip2 — NWL-4 86.4%, NWL-64
//! 98.9%, SAWL 94.5%; cactusADM — 63%, 95.2%, 88%; gcc — 58.3%, 98.9%,
//! 91.3%. SAWL's average region size settles around 16 lines.

use sawl_bench::{emit, paper_note, run_nwl_hit_rate, run_sawl_history, save_history_csv, CMT_BYTES, PERF_LINES};
use sawl_core::SawlConfig;
use sawl_simctl::report::pct;
use sawl_simctl::Table;
use sawl_tiered::NwlConfig;
use sawl_trace::SpecBenchmark;

fn main() {
    let requests: u64 = 50_000_000;
    let benches =
        [SpecBenchmark::Bzip2, SpecBenchmark::CactusADM, SpecBenchmark::Gcc];

    let mut table = Table::new(
        "Fig. 14 average CMT hit rates (256KB cache)",
        &["benchmark", "NWL-4 (%)", "NWL-64 (%)", "SAWL (%)", "SAWL avg region"],
    );
    for bench in benches {
        let nwl = |granularity: u64| {
            let cfg = NwlConfig {
                data_lines: PERF_LINES,
                granularity,
                swap_period: 128,
                ..NwlConfig::default()
            }
            .with_cache_bytes(CMT_BYTES);
            run_nwl_hit_rate(bench, cfg, requests, 0xF16_14)
        };
        let nwl4 = nwl(4);
        let nwl64 = nwl(64);
        let sawl_cfg = SawlConfig {
            data_lines: PERF_LINES,
            swap_period: 128,
            observation_window: 1 << 20,
            settling_window: 1 << 20,
            sample_interval: 100_000,
            max_granularity: 256,
            ..Default::default()
        }
        .with_cache_bytes(CMT_BYTES);
        let (history, stats) = run_sawl_history(bench, sawl_cfg, requests, 0xF16_14);
        let sawl_rate = stats.hit_rate();
        table.row(vec![
            bench.name().into(),
            pct(nwl4),
            pct(nwl64),
            pct(sawl_rate),
            format!("{:.1}", history.average_region_size()),
        ]);
        save_history_csv(&history, &format!("fig14_sawl_{}", bench.name()));
    }
    emit(&table, "fig14_summary");
    paper_note(
        "Paper Fig. 14 (256KB cache): bzip2 86.4/98.9/94.5%, cactusADM 63/95.2/88%, \
         gcc 58.3/98.9/91.3% for NWL-4/NWL-64/SAWL; SAWL's average region size is \
         about 16 lines. Expect the ordering NWL-4 < SAWL < NWL-64 on every \
         benchmark, with SAWL within a few points of NWL-64.",
    );
}
