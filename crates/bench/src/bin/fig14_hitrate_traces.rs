//! Fig. 14 — runtime hit rates and SAWL's region-size trajectory under
//! the bzip2, cactusADM and gcc models; NWL-4 and NWL-64 for comparison.
//!
//! The paper's annotations (256 KB CMT): bzip2 — NWL-4 86.4%, NWL-64
//! 98.9%, SAWL 94.5%; cactusADM — 63%, 95.2%, 88%; gcc — 58.3%, 98.9%,
//! 91.3%. SAWL's average region size settles around 16 lines.
//!
//! The SAWL trajectories are sampled through the telemetry recorder (one
//! sample per engine `sample_interval`, so the series reproduces the
//! engine's own adaptation history — `sawl-simctl` pins the two equal).

use sawl_bench::{paper_note, save_series_csv, Figure, CMT_BYTES, PERF_LINES};
use sawl_core::SawlConfig;
use sawl_simctl::report::pct;
use sawl_simctl::{run_all, Channel, Scenario, SchemeSpec, TelemetrySpec, WorkloadSpec};
use sawl_tiered::NwlConfig;
use sawl_trace::SpecBenchmark;

fn main() {
    let requests: u64 = 50_000_000;
    let sample_interval: u64 = 100_000;
    let benches = [SpecBenchmark::Bzip2, SpecBenchmark::CactusADM, SpecBenchmark::Gcc];

    // The schemes share the 256KB CMT budget; entry sizes differ by
    // granularity, so the affordable entry counts do too.
    let nwl_spec = |granularity: u64| {
        let cfg = NwlConfig {
            data_lines: PERF_LINES,
            granularity,
            swap_period: 128,
            ..NwlConfig::default()
        }
        .with_cache_bytes(CMT_BYTES);
        SchemeSpec::Nwl { granularity, cmt_entries: cfg.cmt_entries, swap_period: 128 }
    };
    let sawl_spec = SchemeSpec::Sawl(
        SawlConfig {
            data_lines: PERF_LINES,
            swap_period: 128,
            observation_window: 1 << 20,
            settling_window: 1 << 20,
            sample_interval,
            max_granularity: 256,
            ..Default::default()
        }
        .with_cache_bytes(CMT_BYTES),
    );

    let mut grid = Vec::new();
    for bench in benches {
        for (name, scheme) in
            [("nwl4", nwl_spec(4)), ("nwl64", nwl_spec(64)), ("sawl", sawl_spec.clone())]
        {
            let mut s = Scenario::trace(
                format!("fig14/{}/{}", bench.name(), name),
                scheme,
                WorkloadSpec::Spec(bench),
                PERF_LINES,
                requests,
            );
            if name == "sawl" {
                // Sample on the engine's own adaptation interval: the
                // recorder then observes exactly the history's points.
                s = s.with_telemetry(TelemetrySpec::with_stride(sample_interval));
            }
            grid.push(s);
        }
    }
    let reports = run_all(&grid).expect("scenario sweep failed");

    let mut fig = Figure::new(
        "fig14_summary",
        "Fig. 14 average CMT hit rates (256KB cache)",
        &["benchmark", "NWL-4 (%)", "NWL-64 (%)", "SAWL (%)", "SAWL avg region"],
    );
    for (bi, bench) in benches.iter().enumerate() {
        let nwl4 = reports[bi * 3].trace();
        let nwl64 = reports[bi * 3 + 1].trace();
        let sawl = reports[bi * 3 + 2].trace();
        let series = sawl.telemetry.as_ref().expect("sawl scenarios record telemetry");
        let region_sizes = series.gauge_series(Channel::RegionSizeCached);
        let avg_region = if region_sizes.is_empty() {
            0.0
        } else {
            region_sizes.iter().map(|(_, v)| v).sum::<f64>() / region_sizes.len() as f64
        };
        fig.row(vec![
            bench.name().into(),
            pct(nwl4.hit_rate),
            pct(nwl64.hit_rate),
            pct(sawl.hit_rate),
            format!("{avg_region:.1}"),
        ]);
        save_series_csv(series, &format!("fig14_sawl_{}", bench.name()));
    }
    fig.emit();
    paper_note(
        "Paper Fig. 14 (256KB cache): bzip2 86.4/98.9/94.5%, cactusADM 63/95.2/88%, \
         gcc 58.3/98.9/91.3% for NWL-4/NWL-64/SAWL; SAWL's average region size is \
         about 16 lines. Expect the ordering NWL-4 < SAWL < NWL-64 on every \
         benchmark, with SAWL within a few points of NWL-64.",
    );
}
