//! Fig. 16 — normalized lifetime under the 14 SPEC-like applications for
//! Baseline / RBSG / TLSR / SAWL, at two region configurations.
//!
//! Paper setup: 2 GB device, Wmax 1e5, exchange periods fixed at 128;
//! (a) 4096 regions (wear-leveling granularity 2048 lines), the standard
//! TLSR/RBSG configuration; (b) 1M regions (granularity 8), which favours
//! SAWL. Scaled: 2^14 lines and Wmax 1e4 — endurance shrinks only 10×
//! here (not the usual 100×) because the paper pins the exchange period at
//! 128 and the quantity the phenomena depend on is the number of exchanges
//! a cell's budget affords (Wmax / (period × granularity)); shrinking Wmax
//! 100× under a fixed period would starve every scheme of exchanges in a
//! way the paper's configuration does not. See DESIGN.md §4.
//!
//! SPEC-like streams contain reads; the lifetime driver plays only their
//! writes (reads do not wear cells).

use sawl_bench::{device, paper_note, Figure};
use sawl_core::SawlConfig;
use sawl_simctl::report::pct;
use sawl_simctl::{run_all, Scenario, SchemeSpec, WorkloadSpec};
use sawl_trace::ALL_BENCHMARKS;

fn harmonic_mean(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    n / xs.iter().map(|&x| 1.0 / x.max(1e-9)).sum::<f64>()
}

fn main() {
    let period = 128u64;
    let endurance = 10_000u32;
    const LIFETIME_LINES: u64 = 1 << 14;

    for (panel, wlg) in [("a", 2048u64), ("b", 8u64)] {
        let schemes: Vec<(&str, SchemeSpec)> = vec![
            ("baseline", SchemeSpec::Baseline),
            ("rbsg", SchemeSpec::Rbsg { regions: LIFETIME_LINES / wlg, region_lines: wlg, period }),
            (
                "tlsr",
                SchemeSpec::Tlsr { region_lines: wlg, inner_period: period, outer_period: 32 },
            ),
            (
                "sawl",
                SchemeSpec::Sawl(SawlConfig {
                    initial_granularity: wlg.min(64),
                    max_granularity: (wlg.min(64) * 16).min(2048),
                    cmt_entries: 4096,
                    swap_period: period,
                    observation_window: 1 << 22,
                    settling_window: 1 << 22,
                    sample_interval: 100_000,
                    ..SawlConfig::default()
                }),
            ),
        ];
        let mut grid = Vec::new();
        for bench in ALL_BENCHMARKS {
            for (name, scheme) in &schemes {
                grid.push(
                    Scenario::lifetime(
                        format!("fig16{panel}/{}/{}", bench.name(), name),
                        scheme.clone(),
                        WorkloadSpec::Spec(bench),
                        LIFETIME_LINES,
                        device(endurance),
                    )
                    // Cap runs at 1.2x ideal: well-leveled benchmarks would
                    // otherwise run ~forever; 100%+ reads as "reached ideal".
                    .with_write_cap((LIFETIME_LINES as f64 * f64::from(endurance) * 1.2) as u64),
                );
            }
        }
        let results = run_all(&grid).expect("scenario sweep failed");
        let regions = LIFETIME_LINES / wlg;
        let mut fig = Figure::new(
            &format!("fig16{panel}"),
            &format!(
                "Fig. 16({panel}) {regions} regions (granularity {wlg}): normalized lifetime (%)"
            ),
            &["benchmark", "baseline", "rbsg", "tlsr", "sawl"],
        );
        let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
        for (bi, bench) in ALL_BENCHMARKS.iter().enumerate() {
            let mut row = vec![bench.name().to_string()];
            for si in 0..schemes.len() {
                let r = results[bi * schemes.len() + si].lifetime();
                let nl = r.normalized_lifetime.min(1.0);
                per_scheme[si].push(nl);
                row.push(pct(nl));
            }
            fig.row(row);
        }
        let mut hrow = vec!["Hmean".to_string()];
        for vals in &per_scheme {
            hrow.push(pct(harmonic_mean(vals)));
        }
        fig.row(hrow);
        fig.emit();
    }
    paper_note(
        "Paper Fig. 16: at 4096 regions the harmonic means are ~15% (RBSG), 43.1% \
         (TLSR), 85.1% (SAWL), with the baseline far below; gromacs/hmmer crush \
         RBSG/TLSR (~10%) while SAWL holds 70-82%. At 1M regions RBSG/TLSR drop \
         (9.8% / 40.5%) while SAWL rises to 92.5%. Expect the same ordering \
         baseline < RBSG < TLSR < SAWL and the same direction of movement \
         between panels.",
    );
}
