//! Fig. 12 — cache hit rate as a function of runtime for different
//! observation-window sizes (SOW), soplex-like workload, 512 KB cache.
//!
//! Scaling: the paper samples a 7×10^8-request run with SOW ∈
//! {2^20..2^26}; we run 10^8 requests over a 2^22-line space with SOW ∈
//! {2^18..2^24} so the window-to-phase-length ratios bracket the same
//! regimes (window ≪ phase: noisy; window ≫ phase: oversmoothed, missing
//! merge/split points — the paper's green circles).

use sawl_bench::{paper_note, save_history_csv, Figure, PERF_LINES};
use sawl_core::SawlConfig;
use sawl_simctl::{run_all, Scenario, SchemeSpec, WorkloadSpec};
use sawl_trace::SpecBenchmark;

fn main() {
    let requests: u64 = 100_000_000;
    let sows: [u64; 4] = [1 << 18, 1 << 20, 1 << 22, 1 << 24];

    let grid: Vec<Scenario> = sows
        .iter()
        .map(|&sow| {
            Scenario::trace(
                format!("fig12/sow/2e{}", sow.trailing_zeros()),
                SchemeSpec::Sawl(SawlConfig {
                    cmt_entries: (512 * 1024 * 8 / 48) as usize,
                    swap_period: 128,
                    observation_window: sow,
                    settling_window: 1 << 20,
                    sample_interval: 100_000,
                    max_granularity: 256,
                    ..SawlConfig::default()
                }),
                WorkloadSpec::Spec(SpecBenchmark::Soplex),
                PERF_LINES,
                requests,
            )
        })
        .collect();
    let reports = run_all(&grid).expect("scenario sweep failed");

    let mut fig = Figure::new(
        "fig12_summary",
        "Fig. 12 sampled hit rate vs SOW (soplex-like, 512KB cache)",
        &["SOW", "mean rate", "rate stddev", "min", "max", "adjustments"],
    );
    for (&sow, report) in sows.iter().zip(&reports) {
        let adapt = report.trace().adaptation();
        // Statistics of the *windowed* (sampled) hit-rate curve — the
        // quantity plotted in the paper's Fig. 12.
        let rates: Vec<f64> = adapt
            .history
            .samples()
            .iter()
            .skip(8) // let the window fill
            .map(|s| s.windowed_hit_rate)
            .collect();
        let n = rates.len() as f64;
        let mean = rates.iter().sum::<f64>() / n;
        let var = rates.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / n;
        let min = rates.iter().cloned().fold(1.0f64, f64::min);
        let max = rates.iter().cloned().fold(0.0f64, f64::max);
        fig.row(vec![
            format!("2^{}", sow.trailing_zeros()),
            format!("{:.3}", mean),
            format!("{:.4}", var.sqrt()),
            format!("{:.3}", min),
            format!("{:.3}", max),
            format!("{}", adapt.stats.merges + adapt.stats.splits),
        ]);
        save_history_csv(&adapt.history, &format!("fig12_sow_2e{}", sow.trailing_zeros()));
    }
    fig.emit();
    paper_note(
        "Paper Fig. 12: with SOW = 2^20 the sampled rate fluctuates so much that SAWL \
         adjusts too frequently; very large SOW (2^24, 2^26) smooths away the phase \
         transitions and misses merge/split points; 2^22 is chosen. Expect the rate \
         stddev to fall monotonically with SOW while the adjustment count drops at \
         the large-SOW end.",
    );
}
