//! Ablation — sensitivity to the merge/split hit-rate thresholds
//! (paper: 90% / 95%, chosen from a "turning point" observation in §4.1;
//! DESIGN.md §9).

use sawl_bench::{paper_note, Figure, PERF_LINES};
use sawl_core::SawlConfig;
use sawl_simctl::report::pct;
use sawl_simctl::{run_all, Scenario, SchemeSpec, WorkloadSpec};
use sawl_trace::SpecBenchmark;

fn main() {
    let requests: u64 = 40_000_000;
    let pairs: [(f64, f64); 4] = [(0.80, 0.90), (0.90, 0.95), (0.93, 0.97), (0.95, 0.99)];
    let grid: Vec<Scenario> = pairs
        .iter()
        .map(|&(merge_t, split_t)| {
            Scenario::trace(
                format!("ablation-thresholds/{merge_t:.2}/{split_t:.2}"),
                SchemeSpec::Sawl(SawlConfig {
                    cmt_entries: (512 * 1024 * 8 / 48) as usize,
                    swap_period: 128,
                    observation_window: 1 << 20,
                    settling_window: 1 << 20,
                    sample_interval: 100_000,
                    max_granularity: 256,
                    merge_threshold: merge_t,
                    split_threshold: split_t,
                    ..SawlConfig::default()
                }),
                WorkloadSpec::Spec(SpecBenchmark::Soplex),
                PERF_LINES,
                requests,
            )
        })
        .collect();
    let reports = run_all(&grid).expect("scenario sweep failed");

    let mut fig = Figure::new(
        "ablation_thresholds",
        "Ablation: merge/split thresholds (soplex-like)",
        &["merge", "split", "avg hit rate (%)", "avg region", "merges", "splits"],
    );
    for (&(merge_t, split_t), report) in pairs.iter().zip(&reports) {
        let adapt = report.trace().adaptation();
        fig.row(vec![
            pct(merge_t),
            pct(split_t),
            pct(adapt.history.average_hit_rate()),
            format!("{:.1}", adapt.history.average_region_size()),
            adapt.stats.merges.to_string(),
            adapt.stats.splits.to_string(),
        ]);
    }
    fig.emit();
    paper_note(
        "Not in the paper beyond the stated 90/95/99% choices. A lower merge \
         threshold tolerates worse hit rates before coarsening; the paper's \
         (90, 95) pair should sit near the hit-rate maximum.",
    );
}
