//! Ablation — isolate SAWL's two mechanisms (DESIGN.md §9).
//!
//! Runs the soplex-like workload with (a) full SAWL, (b) merge-only,
//! (c) split-only, (d) neither (fixed granularity = NWL at P). Merging is
//! what rescues the hit rate in low-locality phases; splitting is what
//! protects endurance when the hit rate pins high. Expect (b) to match
//! (a)'s hit rate but with a coarser average region (worse leveling), and
//! (c) to degenerate to (d).

use sawl_bench::{emit, paper_note, run_sawl_history, PERF_LINES};
use sawl_core::SawlConfig;
use sawl_simctl::report::pct;
use sawl_simctl::Table;
use sawl_trace::SpecBenchmark;

fn main() {
    let requests: u64 = 50_000_000;
    let variants: [(&str, bool, bool); 4] = [
        ("full", true, true),
        ("merge-only", true, false),
        ("split-only", false, true),
        ("neither", false, false),
    ];
    let mut table = Table::new(
        "Ablation: SAWL mechanisms under soplex-like traffic",
        &["variant", "avg hit rate (%)", "avg region size", "merges", "splits"],
    );
    for (name, merge, split) in variants {
        let cfg = SawlConfig {
            data_lines: PERF_LINES,
            cmt_entries: (512 * 1024 * 8 / 48) as usize,
            swap_period: 128,
            observation_window: 1 << 20,
            settling_window: 1 << 20,
            sample_interval: 100_000,
            max_granularity: 256,
            enable_merge: merge,
            enable_split: split,
            ..Default::default()
        };
        let (history, stats) = run_sawl_history(SpecBenchmark::Soplex, cfg, requests, 0xAB1A);
        table.row(vec![
            name.into(),
            pct(history.average_hit_rate()),
            format!("{:.1}", history.average_region_size()),
            stats.merges.to_string(),
            stats.splits.to_string(),
        ]);
    }
    emit(&table, "ablation_mechanism");
    paper_note(
        "Not in the paper — an ablation of the two §3.2 mechanisms. Merge drives the \
         hit-rate recovery; split bounds the steady-state granularity.",
    );
}
