//! Ablation — isolate SAWL's two mechanisms (DESIGN.md §9).
//!
//! Runs the soplex-like workload with (a) full SAWL, (b) merge-only,
//! (c) split-only, (d) neither (fixed granularity = NWL at P). Merging is
//! what rescues the hit rate in low-locality phases; splitting is what
//! protects endurance when the hit rate pins high. Expect (b) to match
//! (a)'s hit rate but with a coarser average region (worse leveling), and
//! (c) to degenerate to (d).

use sawl_bench::{paper_note, Figure, PERF_LINES};
use sawl_core::SawlConfig;
use sawl_simctl::report::pct;
use sawl_simctl::{run_all, Scenario, SchemeSpec, WorkloadSpec};
use sawl_trace::SpecBenchmark;

fn main() {
    let requests: u64 = 50_000_000;
    let variants: [(&str, bool, bool); 4] = [
        ("full", true, true),
        ("merge-only", true, false),
        ("split-only", false, true),
        ("neither", false, false),
    ];
    let grid: Vec<Scenario> = variants
        .iter()
        .map(|&(name, merge, split)| {
            Scenario::trace(
                format!("ablation-mechanism/{name}"),
                SchemeSpec::Sawl(SawlConfig {
                    cmt_entries: (512 * 1024 * 8 / 48) as usize,
                    swap_period: 128,
                    observation_window: 1 << 20,
                    settling_window: 1 << 20,
                    sample_interval: 100_000,
                    max_granularity: 256,
                    enable_merge: merge,
                    enable_split: split,
                    ..SawlConfig::default()
                }),
                WorkloadSpec::Spec(SpecBenchmark::Soplex),
                PERF_LINES,
                requests,
            )
        })
        .collect();
    let reports = run_all(&grid).expect("scenario sweep failed");

    let mut fig = Figure::new(
        "ablation_mechanism",
        "Ablation: SAWL mechanisms under soplex-like traffic",
        &["variant", "avg hit rate (%)", "avg region size", "merges", "splits"],
    );
    for ((name, _, _), report) in variants.iter().zip(&reports) {
        let adapt = report.trace().adaptation();
        fig.row(vec![
            (*name).into(),
            pct(adapt.history.average_hit_rate()),
            format!("{:.1}", adapt.history.average_region_size()),
            adapt.stats.merges.to_string(),
            adapt.stats.splits.to_string(),
        ]);
    }
    fig.emit();
    paper_note(
        "Not in the paper — an ablation of the two §3.2 mechanisms. Merge drives the \
         hit-rate recovery; split bounds the steady-state granularity.",
    );
}
