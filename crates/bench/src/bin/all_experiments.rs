//! Run the complete experiment suite — every table and figure plus the
//! ablations — by invoking the sibling binaries in sequence. Output goes
//! to stdout and `results/*.csv`.
//!
//! ```text
//! cargo run --release -p sawl-bench --bin all_experiments
//! ```

use std::process::Command;

const BINARIES: &[&str] = &[
    "tab1_config",
    "fig3_tlsr_bpa",
    "fig4_hybrid_bpa",
    "fig5_cache_size",
    "fig12_observation_window",
    "fig13_settling_window",
    "fig14_hitrate_traces",
    "fig15_sawl_bpa",
    "fig16_lifetime_apps",
    "fig17_ipc",
    "fig_workloads",
    "sec45_overhead",
    "ablation_mechanism",
    "ablation_bpa_dwell",
    "ablation_thresholds",
];

fn main() {
    let me = std::env::current_exe().expect("cannot locate this binary");
    let dir = me.parent().expect("binary has no parent directory");
    let mut failures = Vec::new();
    for name in BINARIES {
        let path = dir.join(name);
        println!("\n##### {name} #####");
        let started = std::time::Instant::now();
        match Command::new(&path).status() {
            Ok(status) if status.success() => {
                println!("##### {name} done in {:.0}s #####", started.elapsed().as_secs_f64());
            }
            Ok(status) => {
                eprintln!("##### {name} FAILED: {status} #####");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("##### {name} could not run ({e}); build with `cargo build --release -p sawl-bench` first #####");
                failures.push(*name);
            }
        }
    }
    if failures.is_empty() {
        println!("\nAll experiments completed; CSVs under results/.");
    } else {
        eprintln!("\nFailed: {failures:?}");
        std::process::exit(1);
    }
}
