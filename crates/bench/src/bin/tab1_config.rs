//! Table 1 — the simulated system configuration (paper vs reproduction).

use sawl_simctl::SystemConfig;

fn main() {
    let table = SystemConfig::default().to_table();
    sawl_bench::emit(&table, "tab1_config");
    sawl_bench::paper_note(
        "Paper Table 1: 8 cores @3.2GHz, L1 64KB, L2 512KB, CMT 256KB, \
         DRAM/PCM 128MB/8GB, DRAM 50/50ns, PCM 50/350ns, translation 5/55ns.",
    );
}
