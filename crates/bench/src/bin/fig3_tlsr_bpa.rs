//! Fig. 3 — normalized lifetime of an NVM system under TLSR and the BPA
//! attack, sweeping the number of regions and the inner swapping period,
//! for both endurance classes.
//!
//! Paper geometry: 64 GB (2^28 lines), regions 16K–2M. Scaled geometry
//! (DESIGN.md §4): 2^16 lines, regions 2^6–2^14, which covers the same
//! range of *region sizes* (2^10 down to 2^2 lines) relative to the sweep.
//! The outer period is fixed at 32 as in the paper.

use sawl_bench::{
    bpa, device, fmt_regions, paper_note, Figure, ENDURANCE_1E5_CLASS, ENDURANCE_1E6_CLASS,
    LIFETIME_LINES,
};
use sawl_simctl::report::pct;
use sawl_simctl::{run_all, Scenario, SchemeSpec};

fn main() {
    let periods: [u64; 4] = [8, 16, 32, 64];
    let region_counts: Vec<u64> = (6..=14).map(|k| 1u64 << k).collect();

    for (tag, endurance) in [("1e6", ENDURANCE_1E6_CLASS), ("1e5", ENDURANCE_1E5_CLASS)] {
        let mut grid = Vec::new();
        for &period in &periods {
            for &regions in &region_counts {
                let region_lines = LIFETIME_LINES / regions;
                grid.push(Scenario::lifetime(
                    format!("fig3/{tag}/p{period}/r{regions}"),
                    SchemeSpec::Tlsr { region_lines, inner_period: period, outer_period: 32 },
                    bpa(endurance),
                    LIFETIME_LINES,
                    device(endurance),
                ));
            }
        }
        let results = run_all(&grid).expect("scenario sweep failed");
        let mut fig = Figure::new(
            &format!("fig3_{tag}"),
            &format!(
                "Fig. 3({}) TLSR under BPA, Wmax {tag}-class: normalized lifetime (%)",
                if tag == "1e6" { "a" } else { "b" }
            ),
            &["regions", "period 8", "period 16", "period 32", "period 64"],
        );
        for (ri, &regions) in region_counts.iter().enumerate() {
            let mut row = vec![fmt_regions(regions)];
            for pi in 0..periods.len() {
                let r = results[pi * region_counts.len() + ri].lifetime();
                row.push(pct(r.normalized_lifetime));
            }
            fig.row(row);
        }
        fig.emit();
    }
    paper_note(
        "Paper Fig. 3: lifetime rises then falls with the region count; best ~42% of \
         ideal at 32K regions with period 8 (15.6% overhead) for 1e6-class cells; \
         1e5-class cells peak at only ~4.6%. Expect the same rise-then-fall shape, a \
         clear period ordering at small region counts, and a collapsed curve for the \
         weak-endurance device.",
    );
}
