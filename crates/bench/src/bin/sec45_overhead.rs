//! §4.5 — hardware overhead of the SAWL architecture.
//!
//! Reproduces the paper's analytic numbers: IMT size and device share for
//! a 64 GB system with 64M regions, GTD size at translation-line
//! granularity Kt = 32, and the CMT budget options.

use sawl_bench::Figure;
use sawl_tiered::OverheadModel;

fn main() {
    let mut fig = Figure::new(
        "sec45_overhead",
        "Sec. 4.5 hardware overhead (64GB device)",
        &["regions", "IMT (MB)", "IMT share (%)", "translation lines", "GTD (KB)"],
    );
    for regions_log2 in [20u32, 22, 24, 26] {
        let m = OverheadModel {
            region_count_log2: regions_log2,
            region_lines_log2: 30 - regions_log2,
            line_bytes: 64,
            kt: 32,
        };
        fig.row(vec![
            sawl_bench::fmt_regions(1 << regions_log2),
            format!("{:.1}", m.imt_bytes() as f64 / (1 << 20) as f64),
            format!("{:.2}", m.imt_fraction() * 100.0),
            m.translation_lines().to_string(),
            format!("{:.1}", m.gtd_bytes() as f64 / 1024.0),
        ]);
    }
    fig.emit();

    let mut cmt = Figure::new(
        "sec45_cmt",
        "CMT budget options (paper: 64-512KB all suitable)",
        &["CMT bytes", "entries (48-bit entries)"],
    );
    for kb in [64u64, 128, 256, 512] {
        cmt.row(vec![format!("{kb}KB"), (kb * 1024 * 8 / 48).to_string()]);
    }
    cmt.emit();
    sawl_bench::paper_note(
        "Paper §4.5: IMT = 224MB for 64M regions (0.3% of the 64GB device); GTD = \
         80KB at Kt = 32; CMT budgets of 64-512KB are all workable. The formula \
         2^n x (m+n) bits gives 240MB at (n,m) = (26,4); the paper's own \
         arithmetic (64M x 26 bits) gives 208-224MB — same order, same share.",
    );
}
