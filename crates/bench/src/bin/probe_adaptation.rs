//! Diagnostic: watch SAWL adapt to a benchmark in real time.
//!
//! ```text
//! probe_adaptation [benchmark] [millions-of-requests]
//! probe_adaptation mcf 20
//! ```
//!
//! Prints the windowed hit rate, target and cached region sizes, decision
//! counts and cumulative write overhead every 2M requests — the fastest
//! way to understand what the engine is doing on a new workload. Unlike
//! the figure binaries this one inspects live engine state between pump
//! chunks, so it builds the engine concretely instead of going through a
//! scenario.

use sawl_core::{Sawl, SawlConfig};
use sawl_simctl::scenario::wearless_device;
use sawl_simctl::{pump, stable_seed};
use sawl_trace::SpecBenchmark;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench =
        args.get(1).and_then(|s| SpecBenchmark::from_name(s)).unwrap_or(SpecBenchmark::Soplex);
    let millions: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20);

    let cfg = SawlConfig {
        data_lines: 1 << 22,
        cmt_entries: (256 * 1024 * 8 / 48) as usize,
        swap_period: 128,
        observation_window: 1 << 20,
        settling_window: 1 << 20,
        sample_interval: 100_000,
        max_granularity: 256,
        ..Default::default()
    };
    let mut sawl = Sawl::new(cfg.clone());
    let mut dev = wearless_device(sawl.required_physical_lines());
    let mut stream = bench.stream(cfg.data_lines, stable_seed("probe-adaptation"));

    println!("probing {} for {millions}M requests (space 2^22, CMT 256KB)", bench.name());
    println!("  req   windowed  target  cached  mdec  sdec  merges  splits  overhead");
    const CHUNK: u64 = 2_000_000;
    for chunk in 1..=(millions * 1_000_000).div_ceil(CHUNK) {
        pump(&mut sawl, &mut dev, &mut stream, CHUNK);
        let last = sawl
            .history()
            .samples()
            .last()
            .copied()
            .unwrap_or_else(|| panic!("no samples recorded yet"));
        let st = sawl.stats();
        println!(
            "{:>4}M  {:>8.3}  {:>6}  {:>6.1}  {:>4}  {:>4}  {:>6}  {:>6}  {:>7.4}",
            chunk * CHUNK / 1_000_000,
            last.windowed_hit_rate,
            sawl.target_granularity(),
            last.cached_region_size,
            st.merge_decisions,
            st.split_decisions,
            st.merges,
            st.splits,
            dev.wear().overhead_writes as f64 / dev.wear().demand_writes.max(1) as f64,
        );
    }
}
