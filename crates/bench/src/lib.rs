//! # sawl-bench — figure/table regeneration harness
//!
//! One binary per table and figure of the paper (`src/bin/fig*.rs`,
//! `tab1_config.rs`, `sec45_overhead.rs`), plus ablation binaries for the
//! design choices called out in DESIGN.md §9 and Criterion microbenchmarks
//! for the hot paths (`benches/hot_paths.rs`).
//!
//! The binaries do not drive wear levelers themselves: each one builds a
//! grid of [`sawl_simctl::Scenario`]s, runs it through
//! [`sawl_simctl::run_all`] (which shards across cores), and renders the
//! reports through [`Figure`]. This module holds the shared
//! scaled-geometry constants (DESIGN.md §4) and the output helpers.

pub mod latency;

use std::path::PathBuf;

use sawl_core::History;
use sawl_simctl::report::Table;
use sawl_simctl::{Channel, DeviceSpec, Series, WorkloadSpec};

/// Logical data lines for lifetime experiments (scaled device, §4 of
/// DESIGN.md). 2^16 lines at Wmax 1e4 wears out in a few seconds of
/// simulation per configuration.
pub const LIFETIME_LINES: u64 = 1 << 16;

/// Scaled stand-in for the paper's 1e6-endurance cells (uniform 100×
/// scale; see DESIGN.md §4).
pub const ENDURANCE_1E6_CLASS: u32 = 10_000;

/// Scaled stand-in for the paper's 1e5-endurance cells.
pub const ENDURANCE_1E5_CLASS: u32 = 1_000;

/// Logical lines for hit-rate/performance experiments (no wear-out needed,
/// so the space can be larger to make CMT pressure realistic).
pub const PERF_LINES: u64 = 1 << 22;

/// The Table 1 CMT budget in bytes.
pub const CMT_BYTES: u64 = 256 * 1024;

/// The paper's BPA: "randomly select logical addresses and repeatedly
/// write to each one precisely". The dwell (writes per target) is not
/// published; we pin it to one full endurance budget — an unprotected line
/// dies within a single targeting, so the attack's damage is bounded only
/// by how fast the scheme migrates the victim (swept in
/// `ablation_bpa_dwell`).
pub fn bpa(endurance: u32) -> WorkloadSpec {
    WorkloadSpec::Bpa { writes_per_target: u64::from(endurance).max(64) }
}

/// Device spec for a given endurance class, paper provisioning.
pub fn device(endurance: u32) -> DeviceSpec {
    DeviceSpec { endurance, ..Default::default() }
}

/// Repository-level results directory (`results/` next to Cargo.toml, or
/// `SAWL_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("SAWL_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    // crates/bench -> workspace root
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// A figure's output: an aligned table on stdout plus the same data as
/// `results/<stem>.csv`. Replaces the per-binary print/save boilerplate —
/// build rows, then [`Figure::emit`] once.
pub struct Figure {
    stem: String,
    table: Table,
}

impl Figure {
    /// Start a figure table with the given CSV stem, display title and
    /// column headers.
    pub fn new(stem: &str, title: &str, headers: &[&str]) -> Self {
        Self { stem: stem.to_string(), table: Table::new(title, headers) }
    }

    /// Append one row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.table.row(cells);
        self
    }

    /// Print the aligned table and persist it as `results/<stem>.csv`.
    pub fn emit(self) {
        println!("{}", self.table.to_aligned_string());
        let path = results_dir().join(format!("{}.csv", self.stem));
        match self.table.write_csv(&path) {
            Ok(()) => println!("[saved {}]", path.display()),
            Err(e) => eprintln!("[could not save {}: {e}]", path.display()),
        }
    }
}

/// Print the aligned table and persist it as `results/<stem>.csv`.
pub fn emit(table: &Table, stem: &str) {
    println!("{}", table.to_aligned_string());
    let path = results_dir().join(format!("{stem}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("[could not save {}: {e}]", path.display()),
    }
}

/// Print the paper's expectation alongside a figure, for EXPERIMENTS.md.
pub fn paper_note(note: &str) {
    println!("\n--- paper reference ---\n{note}\n");
}

/// Write a history's samples as a CSV trajectory (requests, windowed hit
/// rate, instant hit rate, cached region size).
pub fn save_history_csv(history: &History, stem: &str) {
    let mut t =
        Table::new("", &["requests", "windowed_hit_rate", "instant_hit_rate", "region_size"]);
    for s in history.samples() {
        t.row(vec![
            s.requests.to_string(),
            format!("{:.4}", s.windowed_hit_rate),
            format!("{:.4}", s.instant_hit_rate),
            format!("{:.2}", s.cached_region_size),
        ]);
    }
    let path = results_dir().join(format!("{stem}.csv"));
    match t.write_csv(&path) {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("[could not save {}: {e}]", path.display()),
    }
}

/// Write a telemetry series as the same CSV trajectory
/// [`save_history_csv`] produces — the recorder's `CmtWindowedHitRate`,
/// `CmtHitRate` and `RegionSizeCached` gauges are the engine history's
/// columns, sampled on the shared request clock. Gauges a scheme does not
/// report render as 0, matching the engine's own pre-window fallback.
pub fn save_series_csv(series: &Series, stem: &str) {
    let mut t =
        Table::new("", &["requests", "windowed_hit_rate", "instant_hit_rate", "region_size"]);
    for p in &series.samples {
        t.row(vec![
            p.requests.to_string(),
            format!("{:.4}", p.gauge(Channel::CmtWindowedHitRate).unwrap_or(0.0)),
            format!("{:.4}", p.gauge(Channel::CmtHitRate).unwrap_or(0.0)),
            format!("{:.2}", p.gauge(Channel::RegionSizeCached).unwrap_or(0.0)),
        ]);
    }
    let path = results_dir().join(format!("{stem}.csv"));
    match t.write_csv(&path) {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("[could not save {}: {e}]", path.display()),
    }
}

/// Format the number of regions for a (lines, region_lines) pair the way
/// the paper's x-axes do (16K, 32K, ... 1M).
pub fn fmt_regions(regions: u64) -> String {
    if regions >= 1 << 20 {
        format!("{}M", regions >> 20)
    } else if regions >= 1 << 10 {
        format!("{}K", regions >> 10)
    } else {
        regions.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_formatting() {
        assert_eq!(fmt_regions(512), "512");
        assert_eq!(fmt_regions(16 << 10), "16K");
        assert_eq!(fmt_regions(2 << 20), "2M");
    }

    #[test]
    fn bpa_dwell_scales_with_endurance() {
        let strong = bpa(10_000);
        let weak = bpa(1_000);
        match (strong, weak) {
            (
                WorkloadSpec::Bpa { writes_per_target: s },
                WorkloadSpec::Bpa { writes_per_target: w },
            ) => {
                assert_eq!(s, 10_000);
                assert_eq!(w, 1_000);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn results_dir_is_workspace_relative() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }

    #[test]
    fn figure_rows_chain() {
        let mut f = Figure::new("test_fig", "t", &["a", "b"]);
        f.row(vec!["1".into(), "2".into()]).row(vec!["3".into(), "4".into()]);
        assert!(f.table.to_csv().contains("3,4"));
    }
}
