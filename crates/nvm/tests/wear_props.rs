//! Property tests of the structure-of-arrays wear state against a dense
//! reference model.
//!
//! The reference is the representation `WearState` replaced: one `u64`
//! countdown, one `u32` limit, and one wrapping `u32` write counter per
//! line, with no quantization anywhere. Random limit distributions
//! (uniform, Gaussian-like spreads, and pathological wide spreads) drive
//! both models through random scalar writes, closed-form runs, and
//! stuck-at remaps; every observable — limits, countdowns, derived
//! counts, failure events, and the death point — must match exactly.

use proptest::prelude::*;

use sawl_nvm::WearState;

/// The dense, unquantized model the SoA layout must be bit-equivalent to.
struct RefModel {
    limits: Vec<u32>,
    remaining: Vec<u64>,
    counts: Vec<u32>,
}

impl RefModel {
    fn new(limits: &[u32]) -> Self {
        Self {
            limits: limits.to_vec(),
            remaining: limits.iter().map(|&l| u64::from(l)).collect(),
            counts: vec![0; limits.len()],
        }
    }

    /// One write; returns `true` on a failure (countdown refilled).
    fn countdown(&mut self, pa: usize) -> bool {
        self.remaining[pa] -= 1;
        self.counts[pa] = self.counts[pa].wrapping_add(1);
        if self.remaining[pa] == 0 {
            self.remaining[pa] = u64::from(self.limits[pa]);
            return true;
        }
        false
    }

    fn note_stuck(&mut self, pa: usize) {
        self.remaining[pa] = u64::from(self.limits[pa]);
    }
}

fn assert_lockstep(w: &WearState, r: &RefModel) {
    for pa in 0..r.limits.len() {
        assert_eq!(w.limit(pa as u64), r.limits[pa], "limit at {pa}");
        assert_eq!(w.remaining(pa as u64), r.remaining[pa], "remaining at {pa}");
        assert_eq!(w.write_count(pa as u64), r.counts[pa], "count at {pa}");
    }
}

/// A Gaussian-like limit table: a shared base with a bounded two-sided
/// spread, the shape `EnduranceModel::Gaussian` materializes. `offsets`
/// are raw draws in `0..2*half`, recentered to `base - half + offset`.
fn spread_limits(base: u32, half: u32, offsets: &[u32]) -> Vec<u32> {
    offsets.iter().map(|&o| (base - half + o % (2 * half)).max(1)).collect()
}

proptest! {
    #[test]
    fn encode_decode_round_trips_any_table(
        limits in prop::collection::vec(1u32..200_000, 1..64),
    ) {
        let w = WearState::new(limits.len() as u64, 0, Some(limits.clone()));
        for (pa, &l) in limits.iter().enumerate() {
            assert_eq!(w.limit(pa as u64), l, "layout {}", w.layout());
            assert_eq!(w.remaining(pa as u64), u64::from(l));
            assert_eq!(w.write_count(pa as u64), 0);
        }
    }

    #[test]
    fn gaussian_spreads_round_trip_and_stay_narrow(
        base in 2_000u32..60_000,
        half in 1u32..1_500,
        offsets in prop::collection::vec(any::<u32>(), 8..48),
    ) {
        let limits = spread_limits(base, half, &offsets);
        let w = WearState::new(limits.len() as u64, 0, Some(limits.clone()));
        for (pa, &l) in limits.iter().enumerate() {
            assert_eq!(w.limit(pa as u64), l);
        }
        // A ±1500 spread around a sub-u16 base must quantize: never the
        // full u32-per-line fallback.
        assert!(!w.layout().contains("full"), "layout {}", w.layout());
    }

    #[test]
    fn scalar_countdowns_failures_and_stuck_remaps_match_the_dense_model(
        base in 3u32..40,
        half in 1u32..15,
        offsets in prop::collection::vec(any::<u32>(), 4..24),
        ops in prop::collection::vec((any::<u64>(), 0u32..40), 1..400),
    ) {
        let limits = spread_limits(base.max(32), half, &offsets);
        let lines = limits.len();
        let mut w = WearState::new(lines as u64, 0, Some(limits.clone()));
        let mut r = RefModel::new(&limits);
        for &(pa, kind) in &ops {
            let pa = (pa % lines as u64) as usize;
            if kind == 0 {
                w.note_stuck(pa as u64);
                r.note_stuck(pa);
                // The remap must not disturb the derived count.
                assert_eq!(w.write_count(pa as u64), r.counts[pa]);
            } else {
                for _ in 0..kind {
                    let failed = w.countdown(pa as u64);
                    assert_eq!(failed, r.countdown(pa), "failure event at {pa}");
                }
            }
        }
        assert_lockstep(&w, &r);
        let counts = w.counts();
        assert_eq!(counts, r.counts, "materialized counts diverged");
    }

    #[test]
    fn closed_form_runs_hit_the_same_death_point_as_the_dense_model(
        base in 3u32..25,
        offsets in prop::collection::vec(any::<u32>(), 4..16),
        runs in prop::collection::vec((any::<u64>(), 1u64..200), 1..64),
        spares in 0u64..12,
    ) {
        let limits = spread_limits(base.max(4), 2, &offsets);
        let lines = limits.len();
        let mut w = WearState::new(lines as u64, 0, Some(limits.clone()));
        let mut r = RefModel::new(&limits);
        // Both sides track the spare pool the device layer would: the
        // failure that overflows it is the death point.
        let mut w_failed = 0u64;
        let mut r_failed = 0u64;
        let mut w_writes = 0u64;
        let mut r_writes = 0u64;
        let mut w_dead = false;
        let mut r_dead = false;
        for &(pa, n) in &runs {
            let pa = (pa % lines as u64) as usize;
            // Reference: n scalar countdowns, stopping at death.
            if !r_dead {
                for _ in 0..n {
                    r_writes += 1;
                    if r.countdown(pa) {
                        r_failed += 1;
                        if r_failed > spares {
                            r_dead = true;
                            break;
                        }
                    }
                }
            }
            // SoA side: the device's closed-form run arithmetic.
            if !w_dead {
                let limit = u64::from(w.limit(pa as u64));
                let rem = w.remaining(pa as u64);
                if n < rem {
                    w.sub_remaining(pa as u64, n);
                    w_writes += n;
                } else {
                    let failures_to_death = spares - w_failed + 1;
                    let writes_to_death = rem + (failures_to_death - 1) * limit;
                    if n >= writes_to_death {
                        w.refill_after_failures(pa as u64, failures_to_death, 0);
                        w_failed += failures_to_death;
                        w_writes += writes_to_death;
                        w_dead = true;
                    } else {
                        let failures = (n - rem) / limit + 1;
                        w.refill_after_failures(pa as u64, failures, (n - rem) % limit);
                        w_failed += failures;
                        w_writes += n;
                    }
                }
            }
        }
        assert_eq!(w_dead, r_dead, "death disagreement");
        assert_eq!(w_writes, r_writes, "death point (total writes) diverged");
        assert_eq!(w_failed, r_failed, "failure count diverged");
        for pa in 0..lines {
            assert_eq!(w.remaining(pa as u64), r.remaining[pa], "remaining at {pa}");
        }
        if !w_dead {
            // Short of death the derived counts must also be exact; at
            // death the closed form stops mid-run by design.
            for pa in 0..lines {
                assert_eq!(w.write_count(pa as u64), r.counts[pa], "count at {pa}");
            }
        }
    }
}
