//! Deterministic fault injection: stuck-at lines, transient write faults,
//! and scheduled power-loss events.
//!
//! The paper's device model (§2.2) already carries per-line endurance and a
//! spare pool; this module adds the fault vocabulary needed to exercise the
//! recovery machinery above the device. All injection is a deterministic
//! function of the plan (including its seed), so faulted runs are exactly
//! reproducible and the batched [`NvmDevice::write_run`] path can be held
//! bit-identical to the scalar one.
//!
//! Three fault classes, mirroring the NVM failure literature (WoLFRaM's
//! remapping targets the first two; crash consistency work the third):
//!
//! * **Stuck-at lines** — cells that fail permanently at install time. The
//!   controller detects them on the first access and transparently remaps
//!   each to a fresh spare, consuming spare-pool capacity up front.
//! * **Transient write faults** — a write that does not latch (resistance
//!   drift, incomplete RESET). The controller's verify-and-retry loop
//!   catches it; the failed attempt still wears the cell, and the retry is
//!   issued immediately. Faults arrive at a configurable per-write rate,
//!   scheduled by drawing geometric gaps from the plan's RNG so scalar and
//!   batched write paths agree on exactly which write faults.
//! * **Power-loss events** — scheduled by *total device write index*: when
//!   the device has applied `w` writes, power fails before the next write
//!   is issued. Every subsequent write is dropped (reported as
//!   [`WriteOutcome::PowerLost`]) until [`NvmDevice::restore_power`], which
//!   is the recovery layer's job to call.
//!
//! [`NvmDevice::write_run`]: crate::NvmDevice::write_run
//! [`NvmDevice::restore_power`]: crate::NvmDevice::restore_power
//! [`WriteOutcome::PowerLost`]: crate::WriteOutcome::PowerLost

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::stats::FaultCounters;
use crate::Pa;

/// A deterministic fault-injection plan for one device.
///
/// The all-default plan injects nothing: [`FaultPlan::is_zero`] returns
/// `true` and installing it leaves the device's behavior byte-identical to
/// a fault-free device (pinned by the scenario-equivalence tests).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Physical lines stuck at install time; each consumes one spare.
    #[serde(default)]
    pub stuck_lines: Vec<Pa>,
    /// Probability that any given write suffers a transient fault (worn
    /// cell + immediate retry). Must be in `[0, 1)`.
    #[serde(default)]
    pub transient_rate: f64,
    /// Total-write indices at which power fails: after the device has
    /// applied exactly `w` writes, the next write attempt finds the power
    /// gone. Must be strictly increasing.
    #[serde(default)]
    pub power_loss_at_writes: Vec<u64>,
    /// Seed for the transient-fault gap draws.
    #[serde(default)]
    pub seed: u64,
}

/// Errors produced by [`FaultPlan::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// `transient_rate` outside `[0, 1)`.
    RateOutOfRange(f64),
    /// `power_loss_at_writes` not strictly increasing.
    PowerEventsNotSorted,
    /// A stuck line address is outside the device (`pa >= lines`).
    StuckLineOutOfRange { pa: Pa, lines: u64 },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RateOutOfRange(r) => {
                write!(f, "transient_rate must be in [0, 1), got {r}")
            }
            Self::PowerEventsNotSorted => {
                write!(f, "power_loss_at_writes must be strictly increasing")
            }
            Self::StuckLineOutOfRange { pa, lines } => {
                write!(f, "stuck line {pa} is outside the device ({lines} lines)")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

impl FaultPlan {
    /// Whether this plan injects nothing at all.
    pub fn is_zero(&self) -> bool {
        self.stuck_lines.is_empty()
            && self.transient_rate == 0.0
            && self.power_loss_at_writes.is_empty()
    }

    /// Validate the plan against a device of `lines` lines.
    pub fn validate(&self, lines: u64) -> Result<(), FaultPlanError> {
        if !(0.0..1.0).contains(&self.transient_rate) {
            return Err(FaultPlanError::RateOutOfRange(self.transient_rate));
        }
        if self.power_loss_at_writes.windows(2).any(|w| w[1] <= w[0]) {
            return Err(FaultPlanError::PowerEventsNotSorted);
        }
        if let Some(&pa) = self.stuck_lines.iter().find(|&&pa| pa >= lines) {
            return Err(FaultPlanError::StuckLineOutOfRange { pa, lines });
        }
        Ok(())
    }
}

/// Live injection state derived from a [`FaultPlan`]; owned by the device.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: SmallRng,
    /// Writes that complete normally before the next transient-faulting
    /// one; `u64::MAX` when the rate is zero.
    pub(crate) until_transient: u64,
    /// Index into `plan.power_loss_at_writes` of the next pending event.
    pub(crate) next_power_event: usize,
    pub(crate) counters: FaultCounters,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let mut rng = SmallRng::seed_from_u64(plan.seed);
        let until_transient = draw_gap(&mut rng, plan.transient_rate);
        Self { plan, rng, until_transient, next_power_event: 0, counters: FaultCounters::default() }
    }

    /// The plan this state was derived from (used by `reset`).
    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total-write index of the next pending power-loss event, if any.
    #[inline]
    pub(crate) fn next_power_loss(&self) -> Option<u64> {
        self.plan.power_loss_at_writes.get(self.next_power_event).copied()
    }

    /// Redraw the gap to the next transient fault (called after each one).
    pub(crate) fn redraw_transient(&mut self) {
        self.until_transient = draw_gap(&mut self.rng, self.plan.transient_rate);
    }

    /// Checkpoint the dynamic injection state. The plan itself is not
    /// written: resume reinstalls it from the experiment spec, and this
    /// overwrites the RNG position, pending-event cursor, and counters.
    pub(crate) fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_rng(self.rng.state());
        w.put_u64(self.until_transient);
        w.put_u64(self.next_power_event as u64);
        w.put_u64(self.counters.stuck_lines_remapped);
        w.put_u64(self.counters.transient_write_faults);
        w.put_u64(self.counters.retry_writes);
        w.put_u64(self.counters.power_losses);
        w.put_u64(self.counters.power_restores);
    }

    /// Restore the state captured by [`ckpt_save`](Self::ckpt_save) into a
    /// freshly installed plan.
    pub(crate) fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        self.rng = SmallRng::from_state(r.get_rng()?);
        self.until_transient = r.get_u64()?;
        let next = r.get_u64()? as usize;
        if next > self.plan.power_loss_at_writes.len() {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "power-event cursor {next} beyond the plan's {} events",
                self.plan.power_loss_at_writes.len()
            )));
        }
        self.next_power_event = next;
        self.counters = FaultCounters {
            stuck_lines_remapped: r.get_u64()?,
            transient_write_faults: r.get_u64()?,
            retry_writes: r.get_u64()?,
            power_losses: r.get_u64()?,
            power_restores: r.get_u64()?,
        };
        Ok(())
    }
}

/// Draw a geometric gap: the number of writes that succeed before the next
/// faulting one, with per-write fault probability `rate`.
fn draw_gap(rng: &mut SmallRng, rate: f64) -> u64 {
    if rate <= 0.0 {
        return u64::MAX;
    }
    let u: f64 = rng.random();
    // P(gap = g) = (1-rate)^g * rate  =>  gap = floor(ln(1-u) / ln(1-rate)).
    let gap = ((1.0 - u).ln() / (1.0 - rate).ln()).floor();
    if gap >= u64::MAX as f64 {
        u64::MAX
    } else {
        gap as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_zero() {
        assert!(FaultPlan::default().is_zero());
        assert!(FaultPlan::default().validate(64).is_ok());
    }

    #[test]
    fn non_trivial_plans_are_not_zero() {
        assert!(!FaultPlan { stuck_lines: vec![1], ..Default::default() }.is_zero());
        assert!(!FaultPlan { transient_rate: 0.1, ..Default::default() }.is_zero());
        assert!(!FaultPlan { power_loss_at_writes: vec![10], ..Default::default() }.is_zero());
    }

    #[test]
    fn validate_rejects_bad_rate() {
        for rate in [-0.1, 1.0, 1.5, f64::NAN] {
            let plan = FaultPlan { transient_rate: rate, ..Default::default() };
            assert!(plan.validate(64).is_err(), "rate {rate} accepted");
        }
    }

    #[test]
    fn validate_rejects_unsorted_power_events() {
        let plan = FaultPlan { power_loss_at_writes: vec![10, 10], ..Default::default() };
        assert_eq!(plan.validate(64), Err(FaultPlanError::PowerEventsNotSorted));
        let plan = FaultPlan { power_loss_at_writes: vec![20, 10], ..Default::default() };
        assert_eq!(plan.validate(64), Err(FaultPlanError::PowerEventsNotSorted));
    }

    #[test]
    fn validate_rejects_out_of_range_stuck_line() {
        let plan = FaultPlan { stuck_lines: vec![64], ..Default::default() };
        assert_eq!(
            plan.validate(64),
            Err(FaultPlanError::StuckLineOutOfRange { pa: 64, lines: 64 })
        );
    }

    #[test]
    fn zero_rate_never_schedules_a_transient() {
        let st = FaultState::new(FaultPlan::default());
        assert_eq!(st.until_transient, u64::MAX);
    }

    #[test]
    fn gap_draws_are_deterministic_per_seed() {
        let plan = FaultPlan { transient_rate: 0.01, seed: 42, ..Default::default() };
        let (mut a, mut b) = (FaultState::new(plan.clone()), FaultState::new(plan));
        for _ in 0..100 {
            assert_eq!(a.until_transient, b.until_transient);
            a.redraw_transient();
            b.redraw_transient();
        }
    }

    #[test]
    fn gap_draws_track_the_rate() {
        // Mean of the geometric gap is (1-rate)/rate; with rate 0.1 the
        // average over many draws should land near 9.
        let mut st =
            FaultState::new(FaultPlan { transient_rate: 0.1, seed: 7, ..Default::default() });
        let mut total = 0u64;
        const DRAWS: u64 = 10_000;
        for _ in 0..DRAWS {
            total += st.until_transient;
            st.redraw_transient();
        }
        let mean = total as f64 / DRAWS as f64;
        assert!((mean - 9.0).abs() < 1.0, "mean gap {mean}");
    }

    #[test]
    fn power_events_pop_in_order() {
        let plan = FaultPlan { power_loss_at_writes: vec![5, 17], ..Default::default() };
        let mut st = FaultState::new(plan);
        assert_eq!(st.next_power_loss(), Some(5));
        st.next_power_event += 1;
        assert_eq!(st.next_power_loss(), Some(17));
        st.next_power_event += 1;
        assert_eq!(st.next_power_loss(), None);
    }
}
