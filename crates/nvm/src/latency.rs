//! Latency model (paper Table 1).
//!
//! | component                    | latency |
//! |------------------------------|---------|
//! | DRAM read / write            | 50 / 50 ns |
//! | PCM (MLC NVM) read / write   | 50 / 350 ns |
//! | address translation, CMT hit | 5 ns |
//! | address translation, miss    | 55 ns |
//!
//! The timing crate consumes these numbers; they live here so that device
//! and timing configuration travel together.

use serde::{Deserialize, Serialize};

/// Memory technology of the main-memory device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemTech {
    /// Volatile DRAM (used for the baseline comparisons).
    Dram,
    /// MLC-based NVM (PCM/RRAM-class: symmetric-ish read, slow write).
    MlcNvm,
}

/// Access latencies in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyConfig {
    /// Line read latency of the main-memory device.
    pub read_ns: f64,
    /// Line write latency of the main-memory device.
    pub write_ns: f64,
    /// Address-translation latency when the mapping entry hits the on-chip
    /// CMT/GTD SRAM (paper: 5 ns).
    pub translation_hit_ns: f64,
    /// Address-translation latency when the mapping entry must be fetched
    /// from the in-NVM IMT (paper: 55 ns = 5 ns SRAM + 50 ns device read).
    pub translation_miss_ns: f64,
}

impl LatencyConfig {
    /// Latencies for a given technology, per Table 1.
    pub fn for_tech(tech: MemTech) -> Self {
        match tech {
            MemTech::Dram => Self {
                read_ns: 50.0,
                write_ns: 50.0,
                translation_hit_ns: 5.0,
                translation_miss_ns: 55.0,
            },
            MemTech::MlcNvm => Self {
                read_ns: 50.0,
                write_ns: 350.0,
                translation_hit_ns: 5.0,
                translation_miss_ns: 55.0,
            },
        }
    }

    /// Expected translation latency at a given CMT hit rate in [0, 1].
    pub fn expected_translation_ns(&self, hit_rate: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&hit_rate));
        hit_rate * self.translation_hit_ns + (1.0 - hit_rate) * self.translation_miss_ns
    }
}

impl Default for LatencyConfig {
    fn default() -> Self {
        Self::for_tech(MemTech::MlcNvm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_numbers() {
        let nvm = LatencyConfig::for_tech(MemTech::MlcNvm);
        assert_eq!(nvm.read_ns, 50.0);
        assert_eq!(nvm.write_ns, 350.0);
        assert_eq!(nvm.translation_hit_ns, 5.0);
        assert_eq!(nvm.translation_miss_ns, 55.0);
        let dram = LatencyConfig::for_tech(MemTech::Dram);
        assert_eq!(dram.write_ns, 50.0);
    }

    #[test]
    fn expected_translation_interpolates() {
        let l = LatencyConfig::default();
        assert_eq!(l.expected_translation_ns(1.0), 5.0);
        assert_eq!(l.expected_translation_ns(0.0), 55.0);
        assert!((l.expected_translation_ns(0.9) - 10.0).abs() < 1e-12);
    }
}
