//! # sawl-nvm — non-volatile memory device model
//!
//! This crate provides the device substrate used throughout the SAWL
//! reproduction suite. It models an MLC-based NVM main memory at the
//! granularity the paper uses: a *line* (the atomic memory-access unit, the
//! size of a last-level-cache line, 64 bytes by default).
//!
//! The device model captures exactly the failure semantics of the paper
//! (§2.2): every line has a write-endurance limit (optionally drawn from a
//! process-variation distribution around the nominal `Wmax`); a line *fails*
//! when its write count reaches its limit; the device ships a pool of spare
//! lines, and the *device* fails when the number of failed lines exceeds the
//! spare pool. The paper provisions 4M spares for 256M lines (1/64); that is
//! the default here.
//!
//! The crate also carries the latency model (Table 1 of the paper) used by
//! `sawl-timing`, bank geometry, and wear-distribution statistics
//! (max/mean/CoV/Gini/histograms) used to analyse how well a wear-leveling
//! scheme balances writes.
//!
//! ## Example
//!
//! ```
//! use sawl_nvm::{NvmConfig, NvmDevice, WriteOutcome};
//!
//! let cfg = NvmConfig::builder()
//!     .lines(1 << 12)
//!     .endurance(1_000)
//!     .build()
//!     .unwrap();
//! let mut dev = NvmDevice::new(cfg);
//! assert_eq!(dev.write(0), WriteOutcome::Ok);
//! assert_eq!(dev.wear().total_writes, 1);
//! ```

pub mod bank;
pub mod config;
pub mod device;
pub mod energy;
pub mod fault;
pub mod latency;
pub mod stats;
pub mod variation;
pub mod wear;

pub use bank::BankGeometry;
pub use config::{NvmConfig, NvmConfigBuilder, NvmConfigError};
pub use device::{NvmDevice, WearCounters, WearSnapshot, WriteOutcome};
pub use energy::EnergyModel as AccessEnergyModel;
pub use fault::{FaultPlan, FaultPlanError};
pub use latency::{LatencyConfig, MemTech};
pub use stats::{FaultCounters, WearStats};
pub use variation::EnduranceModel;
pub use wear::WearState;

/// A physical line address (index of a memory line within the device).
pub type Pa = u64;

/// A logical line address, as issued by the CPU side of the memory
/// controller before wear-leveling translation.
pub type La = u64;
