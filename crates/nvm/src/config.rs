//! Device configuration and builder.
//!
//! A configuration describes the geometry (number of lines, line size,
//! banks), the endurance model (nominal `Wmax`, process variation), and the
//! over-provisioning (spare pool). Experiments in the paper use a 64 GB
//! device with 256M lines and 4M spares; the reproduction scales geometry
//! down (see DESIGN.md §4) while keeping every ratio the phenomena depend
//! on, so the default here is a small device suitable for unit tests and the
//! experiment drivers override it per figure.

use serde::{Deserialize, Serialize};

use crate::variation::EnduranceModel;

/// Errors produced when validating an [`NvmConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NvmConfigError {
    /// `lines` must be non-zero. (It need *not* be a power of two: schemes
    /// like Start-Gap reserve extra physical gap slots beyond their
    /// power-of-two logical space, so devices can have odd sizes.)
    ZeroLines,
    /// `line_bytes` must be a non-zero power of two.
    LineBytesNotPowerOfTwo(u32),
    /// Nominal endurance must be non-zero.
    ZeroEndurance,
    /// `banks` must be a non-zero power of two that divides `lines`.
    BadBankCount { banks: u32, lines: u64 },
    /// The spare fraction shift would leave zero spare lines.
    NoSpares { lines: u64, spare_shift: u32 },
}

impl std::fmt::Display for NvmConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroLines => write!(f, "line count must be non-zero"),
            Self::LineBytesNotPowerOfTwo(n) => {
                write!(f, "line size {n} is not a non-zero power of two")
            }
            Self::ZeroEndurance => write!(f, "nominal endurance must be non-zero"),
            Self::BadBankCount { banks, lines } => {
                write!(f, "bank count {banks} must be a power of two dividing {lines} lines")
            }
            Self::NoSpares { lines, spare_shift } => {
                write!(f, "{lines} lines >> {spare_shift} leaves no spare lines")
            }
        }
    }
}

impl std::error::Error for NvmConfigError {}

/// Validated configuration of an NVM device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NvmConfig {
    /// Number of data lines (power of two).
    pub lines: u64,
    /// Bytes per line; 64 B matches the last-level cache line of Table 1.
    pub line_bytes: u32,
    /// Nominal cell endurance `Wmax` (writes per line before wear-out).
    pub endurance: u32,
    /// Process-variation model applied around the nominal endurance.
    pub variation: EnduranceModel,
    /// Spare pool expressed as a right shift of `lines`: spares = lines >>
    /// `spare_shift`. The paper provisions 4M of 256M lines, i.e. shift 6.
    pub spare_shift: u32,
    /// Number of banks (power of two). The paper simulates 32 banks of 2 GB.
    pub banks: u32,
    /// RNG seed for the per-line endurance draw; the same seed always
    /// produces the same device, which keeps experiments reproducible.
    pub seed: u64,
}

impl NvmConfig {
    /// Start building a configuration. All fields have working defaults; the
    /// builder validates on [`NvmConfigBuilder::build`].
    pub fn builder() -> NvmConfigBuilder {
        NvmConfigBuilder::default()
    }

    /// Number of spare lines provisioned beyond the addressable space.
    pub fn spare_lines(&self) -> u64 {
        self.lines >> self.spare_shift
    }

    /// The device's ideal lifetime in total line writes: every line worn
    /// exactly to its nominal endurance. Normalized lifetime reported by the
    /// experiment drivers is measured against this quantity, matching the
    /// paper's "ideal lifetime ... with fully uniform writes".
    pub fn ideal_lifetime_writes(&self) -> u64 {
        self.lines * u64::from(self.endurance)
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.lines * u64::from(self.line_bytes)
    }

    /// log2 of the line count for power-of-two devices; panics otherwise.
    pub fn lines_log2(&self) -> u32 {
        assert!(self.lines.is_power_of_two(), "lines_log2 on non-power-of-two device");
        self.lines.trailing_zeros()
    }
}

/// Builder for [`NvmConfig`].
#[derive(Debug, Clone)]
pub struct NvmConfigBuilder {
    lines: u64,
    line_bytes: u32,
    endurance: u32,
    variation: EnduranceModel,
    spare_shift: u32,
    banks: u32,
    seed: u64,
}

impl Default for NvmConfigBuilder {
    fn default() -> Self {
        Self {
            lines: 1 << 16,
            line_bytes: 64,
            endurance: 10_000,
            variation: EnduranceModel::Uniform,
            spare_shift: 6,
            banks: 32,
            seed: 0xC0FF_EE00_D15E_A5E5,
        }
    }
}

impl NvmConfigBuilder {
    /// Set the number of lines (must be a power of two).
    pub fn lines(mut self, lines: u64) -> Self {
        self.lines = lines;
        self
    }

    /// Set the line size in bytes (must be a power of two).
    pub fn line_bytes(mut self, line_bytes: u32) -> Self {
        self.line_bytes = line_bytes;
        self
    }

    /// Set the nominal per-line endurance `Wmax`.
    pub fn endurance(mut self, endurance: u32) -> Self {
        self.endurance = endurance;
        self
    }

    /// Set the process-variation model.
    pub fn variation(mut self, variation: EnduranceModel) -> Self {
        self.variation = variation;
        self
    }

    /// Set the spare pool as a right shift of the line count.
    pub fn spare_shift(mut self, spare_shift: u32) -> Self {
        self.spare_shift = spare_shift;
        self
    }

    /// Set the number of banks.
    pub fn banks(mut self, banks: u32) -> Self {
        self.banks = banks;
        self
    }

    /// Set the endurance-draw RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<NvmConfig, NvmConfigError> {
        if self.lines == 0 {
            return Err(NvmConfigError::ZeroLines);
        }
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(NvmConfigError::LineBytesNotPowerOfTwo(self.line_bytes));
        }
        if self.endurance == 0 {
            return Err(NvmConfigError::ZeroEndurance);
        }
        let banks_ok =
            self.banks != 0 && self.banks.is_power_of_two() && u64::from(self.banks) <= self.lines;
        if !banks_ok {
            return Err(NvmConfigError::BadBankCount { banks: self.banks, lines: self.lines });
        }
        if self.lines >> self.spare_shift == 0 {
            return Err(NvmConfigError::NoSpares {
                lines: self.lines,
                spare_shift: self.spare_shift,
            });
        }
        Ok(NvmConfig {
            lines: self.lines,
            line_bytes: self.line_bytes,
            endurance: self.endurance,
            variation: self.variation,
            spare_shift: self.spare_shift,
            banks: self.banks,
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builder_is_valid() {
        let cfg = NvmConfig::builder().build().unwrap();
        assert_eq!(cfg.lines, 1 << 16);
        assert_eq!(cfg.line_bytes, 64);
        assert_eq!(cfg.spare_lines(), (1 << 16) / 64);
    }

    #[test]
    fn accepts_non_power_of_two_lines() {
        let cfg = NvmConfig::builder().lines(1000).banks(8).build().unwrap();
        assert_eq!(cfg.lines, 1000);
    }

    #[test]
    fn rejects_zero_lines() {
        let err = NvmConfig::builder().lines(0).build().unwrap_err();
        assert_eq!(err, NvmConfigError::ZeroLines);
    }

    #[test]
    fn rejects_zero_endurance() {
        let err = NvmConfig::builder().endurance(0).build().unwrap_err();
        assert_eq!(err, NvmConfigError::ZeroEndurance);
    }

    #[test]
    fn rejects_bank_count_exceeding_lines() {
        let err = NvmConfig::builder().lines(16).banks(32).build().unwrap_err();
        assert!(matches!(err, NvmConfigError::BadBankCount { .. }));
    }

    #[test]
    fn rejects_non_power_of_two_banks() {
        let err = NvmConfig::builder().banks(3).build().unwrap_err();
        assert!(matches!(err, NvmConfigError::BadBankCount { .. }));
    }

    #[test]
    fn rejects_empty_spare_pool() {
        let err = NvmConfig::builder().lines(16).banks(2).spare_shift(10).build().unwrap_err();
        assert!(matches!(err, NvmConfigError::NoSpares { .. }));
    }

    #[test]
    fn ideal_lifetime_is_lines_times_endurance() {
        let cfg = NvmConfig::builder().lines(1 << 10).endurance(500).build().unwrap();
        assert_eq!(cfg.ideal_lifetime_writes(), (1 << 10) * 500);
    }

    #[test]
    fn capacity_and_log2() {
        let cfg = NvmConfig::builder().lines(1 << 12).line_bytes(64).build().unwrap();
        assert_eq!(cfg.capacity_bytes(), (1 << 12) * 64);
        assert_eq!(cfg.lines_log2(), 12);
    }

    #[test]
    fn paper_geometry_spare_fraction() {
        // 256M lines with shift 6 -> 4M spares, the paper's provisioning.
        let cfg = NvmConfig::builder().lines(1 << 28).spare_shift(6).build().unwrap();
        assert_eq!(cfg.spare_lines(), 1 << 22);
    }

    #[test]
    fn error_display_is_informative() {
        let msg = NvmConfigError::ZeroLines.to_string();
        assert!(msg.contains("non-zero"));
        let msg = NvmConfigError::BadBankCount { banks: 3, lines: 8 }.to_string();
        assert!(msg.contains('3') && msg.contains('8'));
    }
}
