//! Access-energy model.
//!
//! The paper motivates NVM by energy: "leakage energy grows with the
//! memory capacity ... and becomes a main contributor to operational
//! costs" (§1). Wear-leveling write amplification directly buys lifetime
//! with dynamic energy, so the ablation benches report the energy cost of
//! each configuration next to its lifetime. Per-access energies default to
//! the MLC-PCM-class values used across the literature (CompEx, Lee et
//! al.): reads ~2 pJ/bit, writes an order of magnitude more, plus a
//! standby floor per byte.

use serde::{Deserialize, Serialize};

use crate::device::WearCounters;

/// Per-operation energy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per line read, nanojoules.
    pub read_nj: f64,
    /// Energy per line write, nanojoules.
    pub write_nj: f64,
    /// Standby power per gigabyte, milliwatts (near zero for NVM — its
    /// headline advantage over DRAM).
    pub standby_mw_per_gb: f64,
}

impl EnergyModel {
    /// MLC-PCM-class defaults for 64-byte lines: 2 pJ/bit read,
    /// 20 pJ/bit write, near-zero standby.
    pub fn mlc_pcm() -> Self {
        Self { read_nj: 1.0, write_nj: 10.2, standby_mw_per_gb: 1.0 }
    }

    /// DRAM-class defaults: symmetric access energy, large refresh/standby
    /// component.
    pub fn dram() -> Self {
        Self { read_nj: 1.2, write_nj: 1.2, standby_mw_per_gb: 120.0 }
    }

    /// Dynamic energy of a run, joules.
    pub fn dynamic_joules(&self, wear: &WearCounters) -> f64 {
        (wear.reads as f64 * self.read_nj + wear.total_writes as f64 * self.write_nj) * 1e-9
    }

    /// Dynamic energy attributable to wear-leveling overhead writes alone,
    /// joules.
    pub fn overhead_joules(&self, wear: &WearCounters) -> f64 {
        wear.overhead_writes as f64 * self.write_nj * 1e-9
    }

    /// Standby energy for a capacity over a duration, joules.
    pub fn standby_joules(&self, capacity_bytes: u64, seconds: f64) -> f64 {
        let gb = capacity_bytes as f64 / (1u64 << 30) as f64;
        self.standby_mw_per_gb * 1e-3 * gb * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wear(reads: u64, demand: u64, overhead: u64) -> WearCounters {
        WearCounters {
            total_writes: demand + overhead,
            demand_writes: demand,
            overhead_writes: overhead,
            reads,
            failed_lines: 0,
        }
    }

    #[test]
    fn writes_dominate_pcm_dynamic_energy() {
        let m = EnergyModel::mlc_pcm();
        let read_heavy = m.dynamic_joules(&wear(1_000_000, 0, 0));
        let write_heavy = m.dynamic_joules(&wear(0, 1_000_000, 0));
        assert!(write_heavy > 8.0 * read_heavy);
    }

    #[test]
    fn overhead_energy_is_the_wl_share() {
        let m = EnergyModel::mlc_pcm();
        let w = wear(0, 1_000, 250);
        let total = m.dynamic_joules(&w);
        let overhead = m.overhead_joules(&w);
        assert!((overhead / total - 0.2).abs() < 1e-9); // 250 of 1250
    }

    #[test]
    fn nvm_standby_is_far_below_dram() {
        let pcm = EnergyModel::mlc_pcm().standby_joules(64 << 30, 3600.0);
        let dram = EnergyModel::dram().standby_joules(64 << 30, 3600.0);
        assert!(dram > 50.0 * pcm, "dram {dram} vs pcm {pcm}");
    }

    #[test]
    fn standby_scales_with_capacity_and_time() {
        let m = EnergyModel::mlc_pcm();
        let base = m.standby_joules(1 << 30, 10.0);
        assert!((m.standby_joules(2 << 30, 10.0) - 2.0 * base).abs() < 1e-12);
        assert!((m.standby_joules(1 << 30, 20.0) - 2.0 * base).abs() < 1e-12);
    }
}
