//! Wear-distribution statistics.
//!
//! Wear leveling is judged by how uniformly writes land on physical lines.
//! Beyond the paper's lifetime metric we expose the classical dispersion
//! measures used in the wear-leveling literature: coefficient of variation,
//! Gini coefficient, max/mean ("wear focus"), and a log-scale histogram.

use serde::{Deserialize, Serialize};

/// Counters for injected faults and the controller's graceful-degradation
/// responses, maintained by the device when a fault plan is installed.
///
/// All-zero on devices without a fault plan (and on devices with a
/// zero-fault plan), so fault-free reports stay byte-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Stuck-at lines detected at install time and remapped into the spare
    /// pool (each consumed one spare).
    pub stuck_lines_remapped: u64,
    /// Transient write faults injected (each wore a cell without latching
    /// the data).
    pub transient_write_faults: u64,
    /// Retry writes issued by the controller's verify-and-retry loop; one
    /// per survived transient fault.
    pub retry_writes: u64,
    /// Power-loss events triggered.
    pub power_losses: u64,
    /// Power restorations performed (by the recovery layer).
    pub power_restores: u64,
}

/// Summary statistics over per-line write counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WearStats {
    /// Number of lines summarized.
    pub lines: u64,
    /// Sum of all write counts.
    pub total: u64,
    /// Maximum per-line write count.
    pub max: u32,
    /// Minimum per-line write count.
    pub min: u32,
    /// Mean write count.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Coefficient of variation (stddev / mean); 0 for unwritten devices.
    pub cov: f64,
    /// Gini coefficient of the write-count distribution in [0, 1];
    /// 0 = perfectly uniform wear, ->1 = all wear on one line.
    pub gini: f64,
    /// `max / mean`; 1.0 means the most-worn line is no worse than average.
    pub wear_focus: f64,
    /// Histogram bucketed by bit length of the write count: bucket 0 holds
    /// lines with count 0, bucket k holds counts in [2^(k-1), 2^k).
    pub log2_histogram: Vec<u64>,
}

impl WearStats {
    /// Compute statistics from raw per-line counts. O(n log n) due to the
    /// sort used for the Gini coefficient.
    pub fn from_counts(counts: &[u32]) -> Self {
        assert!(!counts.is_empty(), "cannot summarize an empty device");
        let n = counts.len() as u64;
        let mut total = 0u64;
        let mut max = 0u32;
        let mut min = u32::MAX;
        let mut hist = vec![0u64; 33];
        for &c in counts {
            total += u64::from(c);
            max = max.max(c);
            min = min.min(c);
            let bucket = if c == 0 { 0 } else { 32 - c.leading_zeros() as usize };
            hist[bucket] += 1;
        }
        while hist.len() > 1 && *hist.last().unwrap() == 0 {
            hist.pop();
        }
        let mean = total as f64 / n as f64;
        let var = counts
            .iter()
            .map(|&c| {
                let d = f64::from(c) - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        let stddev = var.sqrt();
        let cov = if mean > 0.0 { stddev / mean } else { 0.0 };
        let gini = gini_coefficient(counts);
        let wear_focus = if mean > 0.0 { f64::from(max) / mean } else { 0.0 };
        Self {
            lines: n,
            total,
            max,
            min,
            mean,
            stddev,
            cov,
            gini,
            wear_focus,
            log2_histogram: hist,
        }
    }
}

/// Gini coefficient of a non-negative sample, via the sorted-rank formula
/// G = (2 * sum_i(i * x_i) / (n * sum(x))) - (n + 1) / n with x sorted
/// ascending and i ranked from 1.
fn gini_coefficient(counts: &[u32]) -> f64 {
    let n = counts.len() as f64;
    let total: f64 = counts.iter().map(|&c| f64::from(c)).sum();
    if total == 0.0 {
        return 0.0;
    }
    let mut sorted: Vec<u32> = counts.to_vec();
    sorted.sort_unstable();
    let weighted: f64 =
        sorted.iter().enumerate().map(|(i, &c)| (i as f64 + 1.0) * f64::from(c)).sum();
    (2.0 * weighted / (n * total)) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_counts_have_zero_dispersion() {
        let s = WearStats::from_counts(&[5; 100]);
        assert_eq!(s.max, 5);
        assert_eq!(s.min, 5);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!(s.stddev < 1e-12);
        assert!(s.cov < 1e-12);
        assert!(s.gini.abs() < 1e-9);
        assert!((s.wear_focus - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concentrated_wear_has_high_gini() {
        let mut counts = vec![0u32; 1000];
        counts[0] = 100_000;
        let s = WearStats::from_counts(&counts);
        assert!(s.gini > 0.99, "gini {}", s.gini);
        assert!(s.wear_focus > 900.0);
    }

    #[test]
    fn gini_of_linear_ramp_is_one_third() {
        // x_i = i for i in 0..n has Gini -> 1/3 as n grows.
        let counts: Vec<u32> = (0..10_000).collect();
        let s = WearStats::from_counts(&counts);
        assert!((s.gini - 1.0 / 3.0).abs() < 1e-3, "gini {}", s.gini);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let s = WearStats::from_counts(&[0, 1, 2, 3, 4, 8, 1024]);
        // bucket 0: {0}; bucket 1: {1}; bucket 2: {2,3}; bucket 3: {4};
        // bucket 4: {8}; bucket 11: {1024}
        assert_eq!(s.log2_histogram[0], 1);
        assert_eq!(s.log2_histogram[1], 1);
        assert_eq!(s.log2_histogram[2], 2);
        assert_eq!(s.log2_histogram[3], 1);
        assert_eq!(s.log2_histogram[4], 1);
        assert_eq!(s.log2_histogram[11], 1);
        assert_eq!(s.log2_histogram.len(), 12);
    }

    #[test]
    fn unwritten_device_is_all_zeroes() {
        let s = WearStats::from_counts(&[0; 64]);
        assert_eq!(s.total, 0);
        assert_eq!(s.gini, 0.0);
        assert_eq!(s.cov, 0.0);
        assert_eq!(s.log2_histogram, vec![64]);
    }

    #[test]
    #[should_panic(expected = "empty device")]
    fn empty_input_panics() {
        let _ = WearStats::from_counts(&[]);
    }

    #[test]
    fn mean_and_total_consistent() {
        let counts = [1u32, 2, 3, 4];
        let s = WearStats::from_counts(&counts);
        assert_eq!(s.total, 10);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
    }
}
