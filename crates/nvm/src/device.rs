//! The NVM device: per-line wear accounting, line failure, spare pool,
//! device-death rule.
//!
//! This is the hottest code in the whole suite — lifetime experiments push
//! 1e8–1e9 writes through [`NvmDevice::write`] — so the write path is two
//! bounds-checked array updates plus a compare-to-zero, with no allocation,
//! no division, and no branching beyond the failure checks. Instead of
//! testing `write_count % limit == 0` (a hardware divide per write), each
//! line carries a countdown of writes remaining until its next failure;
//! failure is `countdown == 0` after a decrement, and the countdown refills
//! with the line's limit when the controller remaps to a spare.

use serde::{Deserialize, Serialize};

use crate::config::NvmConfig;
use crate::fault::{FaultPlan, FaultPlanError, FaultState};
use crate::stats::{FaultCounters, WearStats};
use crate::wear::WearState;
use crate::Pa;

/// Result of a single line write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The write succeeded and the line is still within its endurance.
    Ok,
    /// This write made the line reach its endurance limit. The controller
    /// transparently remaps the line to a spare; subsequent writes to the
    /// same physical address keep working (they wear the replacement), but
    /// one spare has been consumed.
    LineFailed,
    /// The spare pool was already exhausted when a line failed: the device
    /// is dead. Once dead, a device reports `DeviceDead` for every further
    /// write and stops mutating its counters.
    DeviceDead,
    /// A scheduled power-loss event has fired (see
    /// [`FaultPlan::power_loss_at_writes`]): the write was dropped and no
    /// state changed. The device keeps reporting `PowerLost` until the
    /// recovery layer calls [`NvmDevice::restore_power`].
    PowerLost,
}

/// Aggregate wear counters maintained incrementally by the device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WearCounters {
    /// All writes applied to the device (demand + wear-leveling overhead).
    pub total_writes: u64,
    /// Writes issued on behalf of the workload.
    pub demand_writes: u64,
    /// Extra writes issued by wear-leveling machinery (data exchanges,
    /// mapping-table updates). `total_writes = demand + overhead`.
    pub overhead_writes: u64,
    /// Reads served (reads do not wear NVM cells).
    pub reads: u64,
    /// Number of lines that reached their endurance limit so far.
    pub failed_lines: u64,
}

impl WearCounters {
    /// Fraction of all writes that were wear-leveling overhead.
    pub fn overhead_fraction(&self) -> f64 {
        if self.total_writes == 0 {
            0.0
        } else {
            self.overhead_writes as f64 / self.total_writes as f64
        }
    }
}

/// An NVM device instance.
///
/// The device does not store data contents — only wear. Correctness of data
/// movement is checked at the wear-leveling layer with shadow maps; the
/// device's job is endurance accounting with the paper's failure rule.
#[derive(Debug, Clone)]
pub struct NvmDevice {
    cfg: NvmConfig,
    /// Structure-of-arrays per-line wear state: packed countdowns until the
    /// next line failure (refilled with the line's limit on every failure,
    /// so the hot path never divides — `remaining == 0` after a decrement
    /// is exactly the old `write_count % limit == 0` rule), quantized
    /// endurance limits, and a sparse failed-line overlay from which
    /// per-line write counts are derived on demand.
    wear: WearState,
    counters: WearCounters,
    /// Demand writes recorded at the moment the device died.
    demand_writes_at_death: Option<u64>,
    dead: bool,
    /// `false` after a scheduled power-loss event until
    /// [`NvmDevice::restore_power`]; writes are dropped while unpowered.
    powered: bool,
    /// Fault-injection state; `None` for fault-free devices (and devices
    /// installed with a zero-fault plan), keeping the hot path unchanged.
    fault: Option<Box<FaultState>>,
    /// Incremental wear-distribution probe; `None` (one predictable branch
    /// per write) unless telemetry enables it.
    probe: Option<Box<WearProbe>>,
}

/// Running moments of the per-line write-count distribution, maintained
/// incrementally so telemetry can sample mean/CoV/max in O(1) instead of
/// rescanning all lines per sample.
///
/// Only the sum of squares and the max need tracking: the plain sum always
/// equals [`WearCounters::total_writes`] (every write increments both).
#[derive(Debug, Clone, Copy, Default)]
struct WearProbe {
    sumsq: u128,
    max: u32,
}

/// `c * c` widened so a running sum of squares cannot overflow.
fn square(c: u32) -> u128 {
    let c = u128::from(c);
    c * c
}

/// An O(1) point-in-time summary of the wear distribution, from the
/// incremental probe. Matches [`WearStats`](crate::WearStats) semantics:
/// population stddev, `cov = stddev / mean` (0 when nothing is written) —
/// up to floating-point association order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearSnapshot {
    /// Lines summarized.
    pub lines: u64,
    /// Total writes across all lines.
    pub total: u64,
    /// Mean per-line write count.
    pub mean: f64,
    /// Coefficient of variation of per-line write counts.
    pub cov: f64,
    /// Maximum per-line write count.
    pub max: u32,
}

impl NvmDevice {
    /// Create a fresh (unworn) device from a validated configuration.
    pub fn new(cfg: NvmConfig) -> Self {
        let limits = cfg.variation.materialize(cfg.lines, cfg.endurance, cfg.seed);
        Self {
            wear: WearState::new(cfg.lines, cfg.endurance, limits),
            counters: WearCounters::default(),
            demand_writes_at_death: None,
            dead: false,
            powered: true,
            fault: None,
            probe: None,
            cfg,
        }
    }

    /// Turn on the incremental wear probe (O(lines) once, O(1) per
    /// sample afterwards). Pure observation: never changes wear outcomes.
    pub fn enable_wear_probe(&mut self) {
        let mut p = WearProbe::default();
        self.wear.fold_counts(|chunk| {
            for &c in chunk {
                p.sumsq += square(c);
                p.max = p.max.max(c);
            }
        });
        self.probe = Some(Box::new(p));
    }

    /// Whether the incremental wear probe is on.
    pub fn wear_probe_enabled(&self) -> bool {
        self.probe.is_some()
    }

    /// O(1) wear-distribution summary from the incremental probe; `None`
    /// until [`NvmDevice::enable_wear_probe`] is called.
    pub fn wear_snapshot(&self) -> Option<WearSnapshot> {
        let p = self.probe.as_deref()?;
        let n = self.wear.lines() as f64;
        let total = self.counters.total_writes;
        let mean = total as f64 / n;
        let var = (p.sumsq as f64 / n) - mean * mean;
        let stddev = var.max(0.0).sqrt();
        let cov = if mean > 0.0 { stddev / mean } else { 0.0 };
        Some(WearSnapshot { lines: self.wear.lines(), total, mean, cov, max: p.max })
    }

    /// Fold one line's count change (`prev` -> its current value) into the
    /// probe. Callers check `self.probe.is_some()` first so the fast path
    /// pays only that branch.
    fn probe_note(&mut self, pa: Pa, prev: u32) {
        let Some(p) = self.probe.as_deref_mut() else { return };
        let new = self.wear.write_count(pa);
        p.sumsq += square(new) - square(prev);
        p.max = p.max.max(new);
    }

    /// Install a fault-injection plan. Stuck-at lines are detected and
    /// remapped immediately: each consumes one spare and leaves a fresh
    /// replacement behind the same physical address (WoLFRaM-style
    /// decoder-level remapping), so enough stuck lines can kill the device
    /// outright. A [zero plan](FaultPlan::is_zero) installs nothing and the
    /// device stays byte-identical to a fault-free one.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), FaultPlanError> {
        plan.validate(self.cfg.lines)?;
        if plan.is_zero() {
            self.fault = None;
            return Ok(());
        }
        let mut state = FaultState::new(plan.clone());
        for &pa in &plan.stuck_lines {
            state.counters.stuck_lines_remapped += 1;
            self.wear.note_stuck(pa);
            self.counters.failed_lines += 1;
            if self.counters.failed_lines > self.cfg.spare_lines() {
                self.dead = true;
                self.demand_writes_at_death = Some(self.counters.demand_writes);
            }
        }
        self.fault = Some(Box::new(state));
        Ok(())
    }

    /// Whether a power-loss event has fired and not yet been recovered.
    #[inline]
    pub fn power_lost(&self) -> bool {
        !self.powered
    }

    /// Bring the device back up after a power-loss event. Idempotent; the
    /// recovery layer calls this before replaying or rolling back the
    /// journal.
    pub fn restore_power(&mut self) {
        if !self.powered {
            self.powered = true;
            if let Some(f) = self.fault.as_deref_mut() {
                f.counters.power_restores += 1;
            }
        }
    }

    /// Whether a (non-empty) fault-injection plan is armed. Drivers with a
    /// fault-free fast path consult this once per run: an armed plan can
    /// drop writes (power loss) or add retries mid-run, so such devices
    /// must stay on the scalar serve path.
    #[inline]
    pub fn fault_plan_armed(&self) -> bool {
        self.fault.is_some()
    }

    /// Fault-injection counters; all-zero when no fault plan is installed.
    pub fn fault_counters(&self) -> FaultCounters {
        self.fault.as_deref().map(|f| f.counters).unwrap_or_default()
    }

    /// Spares left in the pool before the device dies.
    pub fn spares_remaining(&self) -> u64 {
        self.cfg.spare_lines().saturating_sub(self.counters.failed_lines)
    }

    /// The configuration this device was built from.
    pub fn config(&self) -> &NvmConfig {
        &self.cfg
    }

    /// Number of addressable lines.
    #[inline]
    pub fn lines(&self) -> u64 {
        self.cfg.lines
    }

    /// Whether the device has exhausted its spare pool.
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Aggregate wear counters.
    #[inline]
    pub fn wear(&self) -> &WearCounters {
        &self.counters
    }

    /// Endurance limit of one line.
    #[inline]
    pub fn limit(&self, pa: Pa) -> u32 {
        self.wear.limit(pa)
    }

    /// Current write count of one line (derived from the SoA state).
    #[inline]
    pub fn write_count(&self, pa: Pa) -> u32 {
        self.wear.write_count(pa)
    }

    /// Exact heap bytes held by the per-line wear state (countdowns +
    /// quantized limit table + failed-line overlay).
    pub fn wear_state_bytes(&self) -> u64 {
        self.wear.heap_bytes()
    }

    /// Layout tag of the wear state, e.g. `"u16+uniform"`.
    pub fn wear_state_layout(&self) -> String {
        self.wear.layout()
    }

    /// Demand writes served before the device died, if it has died.
    pub fn demand_writes_at_death(&self) -> Option<u64> {
        self.demand_writes_at_death
    }

    /// Normalized lifetime achieved by this (dead or alive) device: demand
    /// writes served so far divided by the ideal lifetime writes. Matches
    /// the paper's metric when read at device death.
    pub fn normalized_lifetime(&self) -> f64 {
        let served = self.demand_writes_at_death.unwrap_or(self.counters.demand_writes);
        served as f64 / self.cfg.ideal_lifetime_writes() as f64
    }

    /// Record a read. Reads do not wear cells but are counted for the
    /// timing model and request statistics.
    #[inline]
    pub fn read(&mut self, _pa: Pa) {
        self.counters.reads += 1;
    }

    /// Apply a demand (workload) write to physical line `pa`.
    #[inline]
    pub fn write(&mut self, pa: Pa) -> WriteOutcome {
        self.write_impl(pa, false)
    }

    /// Apply a wear-leveling overhead write (data exchange, table update).
    #[inline]
    pub fn write_wl(&mut self, pa: Pa) -> WriteOutcome {
        self.write_impl(pa, true)
    }

    #[inline]
    fn write_impl(&mut self, pa: Pa, overhead: bool) -> WriteOutcome {
        if self.dead {
            return WriteOutcome::DeviceDead;
        }
        if !self.powered {
            return WriteOutcome::PowerLost;
        }
        // One fused test for both optional layers: the fault-free,
        // probe-free fast path keeps the exact branch count it had before
        // either layer existed.
        if self.fault.is_some() || self.probe.is_some() {
            return self.write_impl_slow(pa, overhead);
        }
        self.wear_write_body(pa, overhead)
    }

    /// The scalar write path with at least one optional layer (fault
    /// injection and/or wear probe) active, out of line (see
    /// `write_impl_faulted` for why).
    #[cold]
    fn write_impl_slow(&mut self, pa: Pa, overhead: bool) -> WriteOutcome {
        if self.fault.is_some() {
            return self.write_impl_faulted(pa, overhead);
        }
        self.wear_write_probed(pa, overhead)
    }

    /// The faulted scalar write path, kept out of line so the fault-free
    /// `write_impl` stays small enough to inline into every scheme's hot
    /// loop (outlining this recovered a double-digit-percent throughput
    /// loss on the scalar-heavy schemes).
    #[cold]
    fn write_impl_faulted(&mut self, pa: Pa, overhead: bool) -> WriteOutcome {
        let total = self.counters.total_writes;
        let f = self.fault.as_deref_mut().unwrap();
        if let Some(w) = f.next_power_loss() {
            if total >= w {
                f.next_power_event += 1;
                f.counters.power_losses += 1;
                self.powered = false;
                return WriteOutcome::PowerLost;
            }
        }
        if f.until_transient == 0 {
            // Transient fault: the attempt wears the cell without
            // latching; the controller's verify-and-retry issues the
            // real write immediately after (within the same request,
            // so no power-loss check between attempt and retry).
            f.counters.transient_write_faults += 1;
            f.counters.retry_writes += 1;
            f.redraw_transient();
            if self.wear_write(pa, true) == WriteOutcome::DeviceDead {
                return WriteOutcome::DeviceDead;
            }
        } else {
            f.until_transient -= 1;
        }
        self.wear_write(pa, overhead)
    }

    /// Apply one physical write's wear accounting, below the fault layer.
    /// The probe branch delegates to an outlined twin, mirroring the fault
    /// layer's structure: the probe-off body must stay small enough to
    /// inline into every scheme's hot loop (see `write_impl_faulted`).
    #[inline]
    fn wear_write(&mut self, pa: Pa, overhead: bool) -> WriteOutcome {
        if self.probe.is_some() {
            return self.wear_write_probed(pa, overhead);
        }
        self.wear_write_body(pa, overhead)
    }

    /// The probed twin: identical accounting plus the O(1) probe update,
    /// out of line so enabling telemetry cannot perturb the probe-off
    /// codegen.
    #[cold]
    #[inline(never)]
    fn wear_write_probed(&mut self, pa: Pa, overhead: bool) -> WriteOutcome {
        let prev = self.wear.write_count(pa);
        let out = self.wear_write_body(pa, overhead);
        self.probe_note(pa, prev);
        out
    }

    /// The shared accounting body (countdown, failure, spares).
    #[inline]
    fn wear_write_body(&mut self, pa: Pa, overhead: bool) -> WriteOutcome {
        self.counters.total_writes += 1;
        if overhead {
            self.counters.overhead_writes += 1;
        } else {
            self.counters.demand_writes += 1;
        }
        // A line fails when its count reaches the limit; the controller
        // remaps it to a spare, and that spare wears out after another
        // `limit` writes — hence the countdown refill inside
        // [`WearState::countdown`]: hammering one physical address consumes
        // one spare every `limit` writes.
        if self.wear.countdown(pa) {
            self.counters.failed_lines += 1;
            if self.counters.failed_lines > self.cfg.spare_lines() {
                self.dead = true;
                self.demand_writes_at_death = Some(self.counters.demand_writes);
                return WriteOutcome::DeviceDead;
            }
            return WriteOutcome::LineFailed;
        }
        WriteOutcome::Ok
    }

    /// Apply one wear-leveling overhead write to every line in
    /// `[start, start + n)`, ascending — bit-equivalent to `n` calls of
    /// [`NvmDevice::write_wl`], stopping after a write that kills the
    /// device (or at a power loss, whose write is dropped). Returns the
    /// number of writes applied and the outcome of the last applied write.
    ///
    /// Data-movement bursts (segment swaps, region exchanges, SAWL block
    /// charges) write long contiguous physical ranges; chunks whose every
    /// countdown clears the failure check take one vectorized decrement
    /// sweep instead of per-line accounting.
    pub fn write_wl_range(&mut self, start: Pa, n: u64) -> (u64, WriteOutcome) {
        if self.dead {
            return (0, WriteOutcome::DeviceDead);
        }
        if !self.powered {
            return (0, WriteOutcome::PowerLost);
        }
        if n == 0 {
            return (0, WriteOutcome::Ok);
        }
        if self.fault.is_some() || self.probe.is_some() {
            return self.write_wl_range_slow(start, n);
        }
        let mut applied = 0u64;
        let mut last = WriteOutcome::Ok;
        while applied < n {
            let chunk = 64.min(n - applied);
            let base = start + applied;
            if self.wear.range_clear_of_failures(base, chunk) {
                self.wear.countdown_range_unchecked(base, chunk);
                self.counters.total_writes += chunk;
                self.counters.overhead_writes += chunk;
                applied += chunk;
                last = WriteOutcome::Ok;
            } else {
                // At least one line in this chunk fails: fall back to the
                // scalar body for exact failure/death accounting.
                for _ in 0..chunk {
                    last = self.wear_write_body(start + applied, true);
                    applied += 1;
                    if last == WriteOutcome::DeviceDead {
                        return (applied, last);
                    }
                }
            }
        }
        (applied, last)
    }

    /// Range path with fault injection or the wear probe active: scalar
    /// `write_wl` per line, preserving every fault boundary.
    #[cold]
    fn write_wl_range_slow(&mut self, start: Pa, n: u64) -> (u64, WriteOutcome) {
        let mut applied = 0u64;
        let mut last = WriteOutcome::Ok;
        while applied < n {
            let was_dead = self.dead;
            let out = self.write_wl(start + applied);
            match out {
                WriteOutcome::PowerLost => return (applied, out),
                WriteOutcome::DeviceDead => {
                    // Applied iff this very write killed the device.
                    return (applied + u64::from(!was_dead), out);
                }
                _ => {
                    applied += 1;
                    last = out;
                }
            }
        }
        (applied, last)
    }

    /// Apply `n` consecutive demand writes to the same line, in closed
    /// form. Bit-equivalent to `n` calls of [`NvmDevice::write`], stopping
    /// after the write that kills the device; returns the number of writes
    /// applied and the outcome of the last applied write.
    ///
    /// This is the device half of run-length batching: write-only attack
    /// workloads (BPA, RAA) hammer one address for thousands of
    /// consecutive writes, and a whole run costs O(1) here instead of one
    /// countdown update per write.
    pub fn write_run(&mut self, pa: Pa, n: u64) -> (u64, WriteOutcome) {
        if self.dead {
            return (0, WriteOutcome::DeviceDead);
        }
        if !self.powered {
            return (0, WriteOutcome::PowerLost);
        }
        if n == 0 {
            return (0, WriteOutcome::Ok);
        }
        if self.fault.is_none() {
            return self.write_run_raw(pa, n);
        }
        self.write_run_faulted(pa, n)
    }

    /// Faulted run path, out of line (see [`Self::write_impl_faulted`]):
    /// chunk the run at the next fault boundary (power loss or transient)
    /// and run each fault-free chunk through the closed form, so the
    /// result stays bit-identical to `n` scalar `write` calls under the
    /// same plan.
    #[cold]
    fn write_run_faulted(&mut self, pa: Pa, n: u64) -> (u64, WriteOutcome) {
        let mut applied = 0u64;
        let mut last = WriteOutcome::Ok;
        while applied < n {
            let total = self.counters.total_writes;
            let f = self.fault.as_deref_mut().unwrap();
            let until_pl = match f.next_power_loss() {
                Some(w) => w.saturating_sub(total),
                None => u64::MAX,
            };
            if until_pl == 0 {
                f.next_power_event += 1;
                f.counters.power_losses += 1;
                self.powered = false;
                return (applied, WriteOutcome::PowerLost);
            }
            if f.until_transient == 0 {
                f.counters.transient_write_faults += 1;
                f.counters.retry_writes += 1;
                f.redraw_transient();
                if self.wear_write(pa, true) == WriteOutcome::DeviceDead {
                    return (applied, WriteOutcome::DeviceDead);
                }
                last = self.wear_write(pa, false);
                applied += 1;
                if last == WriteOutcome::DeviceDead {
                    return (applied, last);
                }
                continue;
            }
            let safe = (n - applied).min(until_pl).min(f.until_transient);
            let (k, out) = self.write_run_raw(pa, safe);
            self.fault.as_deref_mut().unwrap().until_transient -= k;
            applied += k;
            last = out;
            if out == WriteOutcome::DeviceDead {
                return (applied, out);
            }
        }
        (applied, last)
    }

    /// The closed-form run below the fault layer.
    fn write_run_raw(&mut self, pa: Pa, n: u64) -> (u64, WriteOutcome) {
        if self.dead {
            return (0, WriteOutcome::DeviceDead);
        }
        if n == 0 {
            return (0, WriteOutcome::Ok);
        }
        // Deriving a write count costs a bitset probe, so only snapshot the
        // pre-run value when the probe actually needs it.
        let prev = if self.probe.is_some() { Some(self.wear.write_count(pa)) } else { None };
        let limit = self.wear.limit(pa);
        let rem = self.wear.remaining(pa);
        if n < rem {
            // The run ends before the line's next failure.
            self.wear.sub_remaining(pa, n);
            self.counters.total_writes += n;
            self.counters.demand_writes += n;
            if let Some(prev) = prev {
                self.probe_note(pa, prev);
            }
            return (n, WriteOutcome::Ok);
        }
        // At least one failure. The j-th failure in this run lands on write
        // `rem + (j-1)*limit`; the device dies on the failure that
        // overflows the spare pool.
        let failures_to_death = self.cfg.spare_lines() - self.counters.failed_lines + 1;
        let writes_to_death = rem + (failures_to_death - 1) * u64::from(limit);
        if n >= writes_to_death {
            self.wear.refill_after_failures(pa, failures_to_death, 0);
            if let Some(prev) = prev {
                self.probe_note(pa, prev);
            }
            self.counters.total_writes += writes_to_death;
            self.counters.demand_writes += writes_to_death;
            self.counters.failed_lines += failures_to_death;
            self.dead = true;
            self.demand_writes_at_death = Some(self.counters.demand_writes);
            return (writes_to_death, WriteOutcome::DeviceDead);
        }
        let failures = (n - rem) / u64::from(limit) + 1;
        let past_last_failure = (n - rem) % u64::from(limit);
        self.wear.refill_after_failures(pa, failures, past_last_failure);
        if let Some(prev) = prev {
            self.probe_note(pa, prev);
        }
        self.counters.total_writes += n;
        self.counters.demand_writes += n;
        self.counters.failed_lines += failures;
        let last = if past_last_failure == 0 { WriteOutcome::LineFailed } else { WriteOutcome::Ok };
        (n, last)
    }

    /// Checkpoint the device's full mutable state: wear state, aggregate
    /// counters, death/power flags, and dynamic fault-injection state. The
    /// configuration, limit table, and wear probe are not written — resume
    /// rebuilds the device from the same spec (reinstalling any fault
    /// plan), calls [`ckpt_restore`](Self::ckpt_restore) to overwrite the
    /// mutable state, and the probe recomputes itself from the restored
    /// wear if it was enabled.
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        self.wear.ckpt_save(w);
        w.put_u64(self.counters.total_writes);
        w.put_u64(self.counters.demand_writes);
        w.put_u64(self.counters.overhead_writes);
        w.put_u64(self.counters.reads);
        w.put_u64(self.counters.failed_lines);
        w.put_opt_u64(self.demand_writes_at_death);
        w.put_bool(self.dead);
        w.put_bool(self.powered);
        match self.fault.as_deref() {
            None => w.put_bool(false),
            Some(f) => {
                w.put_bool(true);
                f.ckpt_save(w);
            }
        }
    }

    /// Restore the state captured by [`ckpt_save`](Self::ckpt_save) into a
    /// device freshly built from the same config (with the same fault plan
    /// installed). Presence/shape mismatches are rejected as
    /// [`sawl_ckpt::CkptError::Corrupt`].
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        self.wear.ckpt_restore(r)?;
        self.counters = WearCounters {
            total_writes: r.get_u64()?,
            demand_writes: r.get_u64()?,
            overhead_writes: r.get_u64()?,
            reads: r.get_u64()?,
            failed_lines: r.get_u64()?,
        };
        self.demand_writes_at_death = r.get_opt_u64()?;
        self.dead = r.get_bool()?;
        self.powered = r.get_bool()?;
        let has_fault = r.get_bool()?;
        if has_fault != self.fault.is_some() {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "checkpoint {} fault state but the rebuilt device {}",
                if has_fault { "carries" } else { "lacks" },
                if self.fault.is_some() { "has a plan installed" } else { "has none" },
            )));
        }
        if let Some(f) = self.fault.as_deref_mut() {
            f.ckpt_restore(r)?;
        }
        if self.probe.is_some() {
            self.enable_wear_probe();
        }
        Ok(())
    }

    /// Compute full wear-distribution statistics (O(lines) time, and
    /// materializes a 4 B/line count vector — avoid on billion-line
    /// devices).
    pub fn wear_stats(&self) -> WearStats {
        WearStats::from_counts(&self.wear.counts())
    }

    /// Per-line write counts, materialized from the SoA state (for tests
    /// and detailed reports; costs 4 B/line).
    pub fn write_counts(&self) -> Vec<u32> {
        self.wear.counts()
    }

    /// Reset all wear state, keeping the configuration (and, for the
    /// Gaussian model, the same per-line limits). Used by sweep drivers to
    /// reuse allocations between runs of the same geometry.
    pub fn reset(&mut self) {
        if self.probe.is_some() {
            self.probe = Some(Box::default());
        }
        self.wear.reset();
        self.counters = WearCounters::default();
        self.demand_writes_at_death = None;
        self.dead = false;
        self.powered = true;
        if let Some(f) = self.fault.take() {
            // Reinstall the plan from scratch: stuck lines are re-applied
            // and the transient-gap RNG restarts from its seed, so a reset
            // device replays the exact same fault sequence.
            let plan = f.plan().clone();
            self.install_fault_plan(&plan).expect("previously installed plan must revalidate");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variation::EnduranceModel;

    fn tiny(lines: u64, endurance: u32, spare_shift: u32) -> NvmDevice {
        let cfg = NvmConfig::builder()
            .lines(lines)
            .banks(1)
            .endurance(endurance)
            .spare_shift(spare_shift)
            .build()
            .unwrap();
        NvmDevice::new(cfg)
    }

    #[test]
    fn write_increments_counters() {
        let mut dev = tiny(16, 100, 2);
        assert_eq!(dev.write(3), WriteOutcome::Ok);
        assert_eq!(dev.write_wl(3), WriteOutcome::Ok);
        dev.read(5);
        let w = dev.wear();
        assert_eq!(w.total_writes, 2);
        assert_eq!(w.demand_writes, 1);
        assert_eq!(w.overhead_writes, 1);
        assert_eq!(w.reads, 1);
        assert_eq!(dev.write_count(3), 2);
        assert_eq!(dev.write_count(0), 0);
    }

    /// The probe's O(1) snapshot must agree with the O(lines) recompute.
    fn assert_probe_matches_full_stats(dev: &NvmDevice) {
        let snap = dev.wear_snapshot().expect("probe enabled");
        let full = dev.wear_stats();
        assert_eq!(snap.lines, full.lines);
        assert_eq!(snap.total, full.total);
        assert_eq!(snap.max, full.max);
        assert!((snap.mean - full.mean).abs() < 1e-9, "{} vs {}", snap.mean, full.mean);
        assert!((snap.cov - full.cov).abs() < 1e-9, "{} vs {}", snap.cov, full.cov);
    }

    #[test]
    fn wear_probe_tracks_scalar_and_run_writes() {
        let mut dev = tiny(16, 50, 2);
        assert!(dev.wear_snapshot().is_none());
        dev.enable_wear_probe();
        assert_probe_matches_full_stats(&dev);
        for i in 0..8 {
            for _ in 0..=i {
                dev.write(i);
            }
        }
        dev.write_wl(3);
        assert_probe_matches_full_stats(&dev);
        // Runs through every write_run_raw branch: short of failure,
        // across failures, and through device death.
        dev.write_run(5, 30);
        assert_probe_matches_full_stats(&dev);
        dev.write_run(5, 120);
        assert_probe_matches_full_stats(&dev);
        let mut hammer = tiny(16, 3, 2);
        hammer.enable_wear_probe();
        hammer.write_run(0, 1 << 20);
        assert!(hammer.is_dead());
        assert_probe_matches_full_stats(&hammer);
    }

    #[test]
    fn wear_probe_enabled_mid_run_and_reset() {
        let mut dev = tiny(8, 100, 2);
        for i in 0..8 {
            dev.write_run(i, u64::from(i) * 7 + 1);
        }
        dev.enable_wear_probe();
        assert_probe_matches_full_stats(&dev);
        dev.write_run(2, 13);
        assert_probe_matches_full_stats(&dev);
        dev.reset();
        assert!(dev.wear_probe_enabled());
        let snap = dev.wear_snapshot().unwrap();
        assert_eq!((snap.total, snap.max, snap.cov), (0, 0, 0.0));
        dev.write(1);
        assert_probe_matches_full_stats(&dev);
    }

    #[test]
    fn wear_probe_does_not_change_outcomes() {
        let run = |probe: bool| {
            let mut dev = tiny(16, 5, 2);
            if probe {
                dev.enable_wear_probe();
            }
            let mut outs = Vec::new();
            for i in 0..200u64 {
                outs.push(dev.write(i % 16));
                if dev.is_dead() {
                    break;
                }
            }
            outs.push(dev.write_run(3, 40).1);
            (outs, *dev.wear(), dev.write_counts().to_vec())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn line_fails_exactly_at_limit() {
        let mut dev = tiny(16, 3, 2);
        assert_eq!(dev.write(0), WriteOutcome::Ok);
        assert_eq!(dev.write(0), WriteOutcome::Ok);
        assert_eq!(dev.write(0), WriteOutcome::LineFailed);
        assert_eq!(dev.wear().failed_lines, 1);
        // The controller remapped to a spare; further writes keep working
        // and the spare itself fails after another full endurance budget.
        assert_eq!(dev.write(0), WriteOutcome::Ok);
        assert_eq!(dev.write(0), WriteOutcome::Ok);
        assert_eq!(dev.write(0), WriteOutcome::LineFailed);
        assert_eq!(dev.wear().failed_lines, 2);
    }

    #[test]
    fn device_dies_when_spares_exhausted() {
        // 16 lines, shift 2 -> 4 spares. The 5th failed line kills it.
        let mut dev = tiny(16, 1, 2);
        for pa in 0..4 {
            assert_eq!(dev.write(pa), WriteOutcome::LineFailed);
        }
        assert!(!dev.is_dead());
        assert_eq!(dev.write(4), WriteOutcome::DeviceDead);
        assert!(dev.is_dead());
        assert_eq!(dev.demand_writes_at_death(), Some(5));
        // A dead device refuses further traffic without mutating counters.
        let before = *dev.wear();
        assert_eq!(dev.write(7), WriteOutcome::DeviceDead);
        assert_eq!(*dev.wear(), before);
    }

    #[test]
    fn normalized_lifetime_is_one_under_perfectly_uniform_writes() {
        let mut dev = tiny(16, 4, 2);
        // Wear every line to its limit in round-robin order: 16*4 = 64
        // demand writes. The device dies only after spares run out, i.e.
        // after 16 + 4 = 20 line failures... with uniform wear all 16 lines
        // fail in the last round-robin sweep, which exceeds 4 spares on the
        // 5th failure.
        let mut served = 0u64;
        'outer: for _round in 0..4 {
            for pa in 0..16 {
                served += 1;
                if dev.write(pa) == WriteOutcome::DeviceDead {
                    break 'outer;
                }
            }
        }
        assert!(dev.is_dead());
        // Died 5 failures into the final sweep: 3*16 + 5 demand writes.
        assert_eq!(served, 3 * 16 + 5);
        let nl = dev.normalized_lifetime();
        assert!(nl > 0.8 && nl <= 1.0, "normalized lifetime {nl}");
    }

    #[test]
    fn gaussian_limits_are_respected() {
        let cfg = NvmConfig::builder()
            .lines(8)
            .banks(1)
            .endurance(100)
            .spare_shift(1)
            .variation(EnduranceModel::Gaussian { cov: 0.3 })
            .seed(9)
            .build()
            .unwrap();
        let mut dev = NvmDevice::new(cfg);
        let limit0 = dev.limit(0);
        for _ in 0..limit0 - 1 {
            assert_eq!(dev.write(0), WriteOutcome::Ok);
        }
        assert_eq!(dev.write(0), WriteOutcome::LineFailed);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut dev = tiny(16, 1, 2);
        for pa in 0..5 {
            dev.write(pa);
        }
        assert!(dev.is_dead());
        dev.reset();
        assert!(!dev.is_dead());
        assert_eq!(dev.wear().total_writes, 0);
        assert_eq!(dev.write(0), WriteOutcome::LineFailed); // endurance 1 again
    }

    /// Reference implementation of the failure rule the countdown replaced:
    /// a line fails exactly when its cumulative write count is a multiple of
    /// its endurance limit.
    fn modulo_outcome(wc: u32, limit: u32, failed_so_far: u64, spares: u64) -> WriteOutcome {
        if wc.is_multiple_of(limit) {
            if failed_so_far + 1 > spares {
                WriteOutcome::DeviceDead
            } else {
                WriteOutcome::LineFailed
            }
        } else {
            WriteOutcome::Ok
        }
    }

    #[test]
    fn countdown_matches_modulo_rule_across_failure_boundaries() {
        // Uniform limits: hammer two lines through several failure cycles
        // and check every single outcome against the modulo rule.
        let mut dev = tiny(16, 7, 2); // 4 spares
        let mut failed = 0u64;
        'outer: for pa in [3u64, 9] {
            for _ in 0..7 * 3 {
                let expect =
                    modulo_outcome(dev.write_count(pa) + 1, 7, failed, dev.config().spare_lines());
                let got = dev.write(pa);
                assert_eq!(got, expect, "pa {pa} wc {}", dev.write_count(pa));
                if got != WriteOutcome::Ok {
                    failed += 1;
                }
                if got == WriteOutcome::DeviceDead {
                    break 'outer;
                }
            }
        }
        assert!(dev.is_dead());
    }

    #[test]
    fn countdown_matches_modulo_rule_with_gaussian_limits() {
        let cfg = NvmConfig::builder()
            .lines(8)
            .banks(1)
            .endurance(50)
            .spare_shift(1)
            .variation(EnduranceModel::Gaussian { cov: 0.25 })
            .seed(17)
            .build()
            .unwrap();
        let mut dev = NvmDevice::new(cfg);
        let limits: Vec<u32> = (0..8).map(|pa| dev.limit(pa)).collect();
        let mut failed = 0u64;
        'outer: for pa in 0..8u64 {
            let limit = limits[pa as usize];
            for _ in 0..limit * 2 + 1 {
                let expect = modulo_outcome(
                    dev.write_count(pa) + 1,
                    limit,
                    failed,
                    dev.config().spare_lines(),
                );
                let got = dev.write(pa);
                assert_eq!(got, expect, "pa {pa} wc {} limit {limit}", dev.write_count(pa));
                if got != WriteOutcome::Ok {
                    failed += 1;
                }
                if got == WriteOutcome::DeviceDead {
                    break 'outer;
                }
            }
        }
        assert!(dev.is_dead());
    }

    /// Run `n` writes to `pa` scalar-wise, mirroring what `write_run`
    /// promises: stop after the killing write, report applied count and
    /// the last outcome.
    fn scalar_run(dev: &mut NvmDevice, pa: Pa, n: u64) -> (u64, WriteOutcome) {
        let mut applied = 0;
        let mut last = WriteOutcome::DeviceDead;
        for _ in 0..n {
            if dev.is_dead() {
                break;
            }
            last = dev.write(pa);
            if last == WriteOutcome::PowerLost {
                // The write was dropped, not applied.
                return (applied, last);
            }
            applied += 1;
        }
        (applied, last)
    }

    #[test]
    fn write_run_matches_scalar_writes_across_failure_and_death() {
        // Every interesting run length around the failure cadence, applied
        // to two devices in lockstep: closed-form must equal scalar state.
        for n in [1u64, 3, 4, 5, 9, 10, 11, 23, 100] {
            let mut fast = tiny(4, 5, 1); // limit 5, 2 spares: death at 3rd failure
            let mut slow = tiny(4, 5, 1);
            loop {
                let got = fast.write_run(1, n);
                let want = scalar_run(&mut slow, 1, n);
                assert_eq!(got, want, "run of {n}");
                assert_eq!(fast.wear(), slow.wear(), "counters after run of {n}");
                assert_eq!(fast.write_count(1), slow.write_count(1));
                assert_eq!(fast.is_dead(), slow.is_dead());
                if fast.is_dead() {
                    break;
                }
            }
            assert_eq!(fast.demand_writes_at_death(), slow.demand_writes_at_death());
        }
    }

    #[test]
    fn write_run_matches_scalar_with_gaussian_limits() {
        let build = || {
            NvmDevice::new(
                NvmConfig::builder()
                    .lines(8)
                    .banks(1)
                    .endurance(40)
                    .spare_shift(1)
                    .variation(EnduranceModel::Gaussian { cov: 0.25 })
                    .seed(23)
                    .build()
                    .unwrap(),
            )
        };
        let (mut fast, mut slow) = (build(), build());
        let mut pa = 0u64;
        for n in [7u64, 41, 1, 39, 40, 80, 200, 500] {
            pa = (pa + 3) % 8;
            assert_eq!(fast.write_run(pa, n), scalar_run(&mut slow, pa, n), "run {n} at {pa}");
            assert_eq!(fast.wear(), slow.wear());
            assert_eq!(fast.write_count(pa), slow.write_count(pa));
            if fast.is_dead() {
                break;
            }
        }
    }

    /// Mirror of `write_wl_range`'s contract via scalar `write_wl` calls.
    fn scalar_wl_range(dev: &mut NvmDevice, start: Pa, n: u64) -> (u64, WriteOutcome) {
        let mut applied = 0;
        let mut last = WriteOutcome::Ok;
        while applied < n {
            let was_dead = dev.is_dead();
            let out = dev.write_wl(start + applied);
            match out {
                WriteOutcome::PowerLost => return (applied, out),
                WriteOutcome::DeviceDead => return (applied + u64::from(!was_dead), out),
                _ => {
                    applied += 1;
                    last = out;
                }
            }
        }
        (applied, last)
    }

    #[test]
    fn write_wl_range_matches_scalar_writes_through_failures_and_death() {
        // Endurance 3, shift 2 -> 16 spares on 64 lines: repeated range
        // sweeps walk every chunk from clean through failing to death.
        let mut fast = tiny(64, 3, 2);
        let mut slow = tiny(64, 3, 2);
        loop {
            let got = fast.write_wl_range(0, 64);
            let want = scalar_wl_range(&mut slow, 0, 64);
            assert_eq!(got, want);
            assert_eq!(fast.wear(), slow.wear());
            assert_eq!(fast.write_counts(), slow.write_counts());
            if fast.is_dead() {
                break;
            }
        }
        // Misaligned sub-ranges on a fresh device.
        let mut fast = tiny(256, 5, 2);
        let mut slow = tiny(256, 5, 2);
        for (start, n) in [(3u64, 100u64), (0, 1), (250, 6), (17, 129), (0, 256)] {
            assert_eq!(fast.write_wl_range(start, n), scalar_wl_range(&mut slow, start, n));
            assert_eq!(fast.wear(), slow.wear());
        }
        assert_eq!(fast.write_counts(), slow.write_counts());
    }

    #[test]
    fn write_wl_range_with_probe_and_faults_matches_scalar() {
        let plan = FaultPlan {
            stuck_lines: vec![5],
            transient_rate: 0.1,
            power_loss_at_writes: vec![70],
            seed: 3,
        };
        let mut fast = tiny(32, 4, 2);
        let mut slow = tiny(32, 4, 2);
        fast.install_fault_plan(&plan).unwrap();
        slow.install_fault_plan(&plan).unwrap();
        fast.enable_wear_probe();
        slow.enable_wear_probe();
        for _ in 0..6 {
            let got = fast.write_wl_range(0, 32);
            let want = scalar_wl_range(&mut slow, 0, 32);
            assert_eq!(got, want);
            assert_eq!(fast.wear(), slow.wear());
            assert_eq!(fast.fault_counters(), slow.fault_counters());
            assert_eq!(fast.wear_snapshot(), slow.wear_snapshot());
            if fast.power_lost() {
                fast.restore_power();
                slow.restore_power();
            }
            if fast.is_dead() {
                break;
            }
        }
        assert_probe_matches_full_stats(&fast);
    }

    #[test]
    fn write_run_of_zero_is_a_no_op() {
        let mut dev = tiny(4, 5, 1);
        assert_eq!(dev.write_run(0, 0), (0, WriteOutcome::Ok));
        assert_eq!(dev.wear().total_writes, 0);
    }

    #[test]
    fn reset_restores_countdowns_mid_cycle() {
        // Leave a line mid-way to its next failure, reset, and confirm the
        // countdown starts over from a full endurance budget.
        let mut dev = tiny(16, 5, 2);
        for _ in 0..3 {
            assert_eq!(dev.write(2), WriteOutcome::Ok);
        }
        dev.reset();
        for _ in 0..4 {
            assert_eq!(dev.write(2), WriteOutcome::Ok);
        }
        assert_eq!(dev.write(2), WriteOutcome::LineFailed);
    }

    #[test]
    fn reset_restores_gaussian_countdowns() {
        let cfg = NvmConfig::builder()
            .lines(8)
            .banks(1)
            .endurance(100)
            .spare_shift(1)
            .variation(EnduranceModel::Gaussian { cov: 0.3 })
            .seed(9)
            .build()
            .unwrap();
        let mut dev = NvmDevice::new(cfg);
        let limit0 = dev.limit(0);
        for _ in 0..limit0 / 2 {
            assert_eq!(dev.write(0), WriteOutcome::Ok);
        }
        dev.reset();
        for _ in 0..limit0 - 1 {
            assert_eq!(dev.write(0), WriteOutcome::Ok);
        }
        assert_eq!(dev.write(0), WriteOutcome::LineFailed);
    }

    #[test]
    fn overhead_fraction() {
        let mut dev = tiny(16, 100, 2);
        for _ in 0..3 {
            dev.write(1);
        }
        dev.write_wl(2);
        assert!((dev.wear().overhead_fraction() - 0.25).abs() < 1e-12);
    }

    // ---- fault injection -------------------------------------------------

    use crate::fault::FaultPlan;

    #[test]
    fn zero_fault_plan_installs_nothing() {
        let mut faulted = tiny(16, 100, 2);
        faulted.install_fault_plan(&FaultPlan::default()).unwrap();
        let mut clean = tiny(16, 100, 2);
        for pa in [3u64, 3, 7, 3] {
            assert_eq!(faulted.write(pa), clean.write(pa));
        }
        assert_eq!(faulted.wear(), clean.wear());
        assert_eq!(faulted.fault_counters(), FaultCounters::default());
    }

    #[test]
    fn install_rejects_invalid_plans() {
        let mut dev = tiny(16, 100, 2);
        assert!(dev
            .install_fault_plan(&FaultPlan { transient_rate: 1.5, ..Default::default() })
            .is_err());
        assert!(dev
            .install_fault_plan(&FaultPlan { stuck_lines: vec![16], ..Default::default() })
            .is_err());
    }

    #[test]
    fn stuck_lines_consume_spares_up_front() {
        // 16 lines, shift 2 -> 4 spares.
        let mut dev = tiny(16, 100, 2);
        dev.install_fault_plan(&FaultPlan { stuck_lines: vec![1, 5, 9], ..Default::default() })
            .unwrap();
        assert!(!dev.is_dead());
        assert_eq!(dev.wear().failed_lines, 3);
        assert_eq!(dev.spares_remaining(), 1);
        assert_eq!(dev.fault_counters().stuck_lines_remapped, 3);
        // The remapped addresses keep working against fresh spares.
        assert_eq!(dev.write(1), WriteOutcome::Ok);
    }

    #[test]
    fn enough_stuck_lines_kill_the_device() {
        let mut dev = tiny(16, 100, 2);
        dev.install_fault_plan(&FaultPlan {
            stuck_lines: vec![0, 1, 2, 3, 4],
            ..Default::default()
        })
        .unwrap();
        assert!(dev.is_dead());
        assert_eq!(dev.write(7), WriteOutcome::DeviceDead);
    }

    #[test]
    fn power_loss_fires_at_the_scheduled_write_index() {
        let mut dev = tiny(16, 100, 2);
        dev.install_fault_plan(&FaultPlan { power_loss_at_writes: vec![3], ..Default::default() })
            .unwrap();
        assert_eq!(dev.write(0), WriteOutcome::Ok);
        assert_eq!(dev.write_wl(1), WriteOutcome::Ok);
        assert_eq!(dev.write(2), WriteOutcome::Ok);
        // Three writes applied: the fourth attempt finds the power gone.
        assert_eq!(dev.write(3), WriteOutcome::PowerLost);
        assert!(dev.power_lost());
        assert_eq!(dev.fault_counters().power_losses, 1);
        // Everything is dropped until power returns; no counters move.
        let before = *dev.wear();
        assert_eq!(dev.write(0), WriteOutcome::PowerLost);
        assert_eq!(dev.write_run(0, 10), (0, WriteOutcome::PowerLost));
        assert_eq!(*dev.wear(), before);
        dev.restore_power();
        assert!(!dev.power_lost());
        assert_eq!(dev.fault_counters().power_restores, 1);
        assert_eq!(dev.write(3), WriteOutcome::Ok);
        assert_eq!(dev.wear().total_writes, 4);
    }

    #[test]
    fn restore_power_is_idempotent() {
        let mut dev = tiny(16, 100, 2);
        dev.install_fault_plan(&FaultPlan { power_loss_at_writes: vec![1], ..Default::default() })
            .unwrap();
        dev.write(0);
        assert_eq!(dev.write(0), WriteOutcome::PowerLost);
        dev.restore_power();
        dev.restore_power();
        assert_eq!(dev.fault_counters().power_restores, 1);
    }

    #[test]
    fn write_run_stops_at_a_power_loss_mid_run() {
        let mut dev = tiny(16, 1000, 2);
        dev.install_fault_plan(&FaultPlan { power_loss_at_writes: vec![7], ..Default::default() })
            .unwrap();
        let (applied, out) = dev.write_run(2, 20);
        assert_eq!((applied, out), (7, WriteOutcome::PowerLost));
        assert_eq!(dev.wear().total_writes, 7);
        dev.restore_power();
        let (applied, out) = dev.write_run(2, 13);
        assert_eq!((applied, out), (13, WriteOutcome::Ok));
    }

    #[test]
    fn transient_faults_wear_without_serving_and_retry() {
        // Force a fault on (statistically) many writes and check the
        // accounting identity total = demand + overhead still holds and
        // every fault produced exactly one retry.
        let mut dev = tiny(16, 1_000_000, 2);
        dev.install_fault_plan(&FaultPlan { transient_rate: 0.2, seed: 11, ..Default::default() })
            .unwrap();
        for i in 0..1_000u64 {
            let out = dev.write(i % 16);
            assert!(matches!(out, WriteOutcome::Ok | WriteOutcome::LineFailed));
        }
        let fc = dev.fault_counters();
        assert!(fc.transient_write_faults > 100, "faults {}", fc.transient_write_faults);
        assert_eq!(fc.retry_writes, fc.transient_write_faults);
        let w = dev.wear();
        assert_eq!(w.demand_writes, 1_000);
        assert_eq!(w.overhead_writes, fc.transient_write_faults);
        assert_eq!(w.total_writes, w.demand_writes + w.overhead_writes);
    }

    /// The key equivalence: under an identical fault plan, `write_run` must
    /// be bit-identical to scalar `write` calls — same wear, same fault
    /// counters, same power-loss points.
    #[test]
    fn faulted_write_run_matches_faulted_scalar_writes() {
        let plan = FaultPlan {
            stuck_lines: vec![3],
            transient_rate: 0.05,
            power_loss_at_writes: vec![40, 90, 400],
            seed: 99,
        };
        let mut fast = tiny(16, 20, 4); // limit 20, 1 spare... shift 4 -> 1 spare
        let mut slow = tiny(16, 20, 4);
        fast.install_fault_plan(&plan).unwrap();
        slow.install_fault_plan(&plan).unwrap();
        let mut pa = 0u64;
        for n in [1u64, 7, 30, 4, 55, 2, 100, 300] {
            pa = (pa + 5) % 16;
            let got = fast.write_run(pa, n);
            let want = scalar_run(&mut slow, pa, n);
            assert_eq!(got, want, "run {n} at {pa}");
            assert_eq!(fast.wear(), slow.wear(), "counters after run {n}");
            assert_eq!(fast.fault_counters(), slow.fault_counters());
            assert_eq!(fast.power_lost(), slow.power_lost());
            if fast.power_lost() {
                fast.restore_power();
                slow.restore_power();
            }
            if fast.is_dead() {
                break;
            }
        }
    }

    #[test]
    fn checkpoint_resume_continues_bit_exactly() {
        // Run a faulted, probed device mid-way, checkpoint it, and resume
        // into a freshly built twin: both must serve the remaining traffic
        // identically, outcome by outcome.
        let plan = FaultPlan {
            stuck_lines: vec![2],
            transient_rate: 0.05,
            power_loss_at_writes: vec![30, 200],
            seed: 13,
        };
        let build = || {
            let mut d = tiny(32, 8, 2);
            d.install_fault_plan(&plan).unwrap();
            d.enable_wear_probe();
            d
        };
        let mut orig = build();
        for i in 0..120u64 {
            orig.write(i % 32);
            if orig.power_lost() {
                orig.restore_power();
            }
        }
        let mut w = sawl_ckpt::Writer::new();
        orig.ckpt_save(&mut w);
        let payload = w.into_payload();

        let mut resumed = build();
        let mut r = sawl_ckpt::Reader::new(&payload);
        resumed.ckpt_restore(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(orig.wear(), resumed.wear());
        assert_eq!(orig.fault_counters(), resumed.fault_counters());
        assert_eq!(orig.wear_snapshot(), resumed.wear_snapshot());
        for i in 0..400u64 {
            assert_eq!(orig.write(i % 32), resumed.write(i % 32), "write {i}");
            assert_eq!(orig.power_lost(), resumed.power_lost());
            if orig.power_lost() {
                orig.restore_power();
                resumed.restore_power();
            }
            if orig.is_dead() {
                break;
            }
        }
        assert_eq!(orig.write_counts(), resumed.write_counts());
        // Identical state encodes to identical bytes.
        let (mut wa, mut wb) = (sawl_ckpt::Writer::new(), sawl_ckpt::Writer::new());
        orig.ckpt_save(&mut wa);
        resumed.ckpt_save(&mut wb);
        assert_eq!(wa.into_payload(), wb.into_payload());
    }

    #[test]
    fn checkpoint_restore_rejects_shape_mismatches() {
        let mut src = tiny(16, 5, 2);
        src.write_run(1, 7);
        let mut w = sawl_ckpt::Writer::new();
        src.ckpt_save(&mut w);
        let payload = w.into_payload();

        // Different line count: countdown table length mismatch.
        let mut wrong_lines = tiny(32, 5, 2);
        let mut r = sawl_ckpt::Reader::new(&payload);
        assert!(matches!(wrong_lines.ckpt_restore(&mut r), Err(sawl_ckpt::CkptError::Corrupt(_))));

        // Fault-state presence mismatch.
        let mut faulted = tiny(16, 5, 2);
        faulted
            .install_fault_plan(&FaultPlan { transient_rate: 0.1, ..Default::default() })
            .unwrap();
        let mut r = sawl_ckpt::Reader::new(&payload);
        assert!(matches!(faulted.ckpt_restore(&mut r), Err(sawl_ckpt::CkptError::Corrupt(_))));

        // Truncated payload surfaces as Truncated, not a panic.
        let mut fresh = tiny(16, 5, 2);
        let mut r = sawl_ckpt::Reader::new(&payload[..payload.len() / 2]);
        assert!(fresh.ckpt_restore(&mut r).is_err());
    }

    #[test]
    fn reset_replays_the_same_fault_sequence() {
        let plan = FaultPlan {
            stuck_lines: vec![2],
            transient_rate: 0.1,
            power_loss_at_writes: vec![25],
            seed: 5,
        };
        let mut dev = tiny(16, 1000, 2);
        dev.install_fault_plan(&plan).unwrap();
        let run = |d: &mut NvmDevice| {
            let mut outs = Vec::new();
            for i in 0..40u64 {
                outs.push(d.write(i % 16));
                if d.power_lost() {
                    d.restore_power();
                }
            }
            (outs, *d.wear(), d.fault_counters())
        };
        let first = run(&mut dev);
        dev.reset();
        // After reset the stuck line is re-remapped and the gap RNG
        // restarts, except power_restores which reset to zero too.
        assert_eq!(dev.wear().failed_lines, 1);
        let second = run(&mut dev);
        assert_eq!(first, second);
    }
}
