//! The NVM device: per-line wear accounting, line failure, spare pool,
//! device-death rule.
//!
//! This is the hottest code in the whole suite — lifetime experiments push
//! 1e8–1e9 writes through [`NvmDevice::write`] — so the write path is a
//! bounds-checked array increment plus two compares, with no allocation and
//! no branching beyond the failure checks.

use serde::{Deserialize, Serialize};

use crate::config::NvmConfig;
use crate::stats::WearStats;
use crate::Pa;

/// Result of a single line write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The write succeeded and the line is still within its endurance.
    Ok,
    /// This write made the line reach its endurance limit. The controller
    /// transparently remaps the line to a spare; subsequent writes to the
    /// same physical address keep working (they wear the replacement), but
    /// one spare has been consumed.
    LineFailed,
    /// The spare pool was already exhausted when a line failed: the device
    /// is dead. Once dead, a device reports `DeviceDead` for every further
    /// write and stops mutating its counters.
    DeviceDead,
}

/// Aggregate wear counters maintained incrementally by the device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WearCounters {
    /// All writes applied to the device (demand + wear-leveling overhead).
    pub total_writes: u64,
    /// Writes issued on behalf of the workload.
    pub demand_writes: u64,
    /// Extra writes issued by wear-leveling machinery (data exchanges,
    /// mapping-table updates). `total_writes = demand + overhead`.
    pub overhead_writes: u64,
    /// Reads served (reads do not wear NVM cells).
    pub reads: u64,
    /// Number of lines that reached their endurance limit so far.
    pub failed_lines: u64,
}

impl WearCounters {
    /// Fraction of all writes that were wear-leveling overhead.
    pub fn overhead_fraction(&self) -> f64 {
        if self.total_writes == 0 {
            0.0
        } else {
            self.overhead_writes as f64 / self.total_writes as f64
        }
    }
}

/// An NVM device instance.
///
/// The device does not store data contents — only wear. Correctness of data
/// movement is checked at the wear-leveling layer with shadow maps; the
/// device's job is endurance accounting with the paper's failure rule.
#[derive(Debug, Clone)]
pub struct NvmDevice {
    cfg: NvmConfig,
    /// Per-line write counts.
    write_counts: Vec<u32>,
    /// Per-line endurance limits; `None` means every line has `cfg.endurance`.
    limits: Option<Vec<u32>>,
    counters: WearCounters,
    /// Demand writes recorded at the moment the device died.
    demand_writes_at_death: Option<u64>,
    dead: bool,
}

impl NvmDevice {
    /// Create a fresh (unworn) device from a validated configuration.
    pub fn new(cfg: NvmConfig) -> Self {
        let limits = cfg.variation.materialize(cfg.lines, cfg.endurance, cfg.seed);
        Self {
            write_counts: vec![0; cfg.lines as usize],
            limits,
            counters: WearCounters::default(),
            demand_writes_at_death: None,
            dead: false,
            cfg,
        }
    }

    /// The configuration this device was built from.
    pub fn config(&self) -> &NvmConfig {
        &self.cfg
    }

    /// Number of addressable lines.
    #[inline]
    pub fn lines(&self) -> u64 {
        self.cfg.lines
    }

    /// Whether the device has exhausted its spare pool.
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Aggregate wear counters.
    #[inline]
    pub fn wear(&self) -> &WearCounters {
        &self.counters
    }

    /// Endurance limit of one line.
    #[inline]
    pub fn limit(&self, pa: Pa) -> u32 {
        match &self.limits {
            Some(l) => l[pa as usize],
            None => self.cfg.endurance,
        }
    }

    /// Current write count of one line.
    #[inline]
    pub fn write_count(&self, pa: Pa) -> u32 {
        self.write_counts[pa as usize]
    }

    /// Demand writes served before the device died, if it has died.
    pub fn demand_writes_at_death(&self) -> Option<u64> {
        self.demand_writes_at_death
    }

    /// Normalized lifetime achieved by this (dead or alive) device: demand
    /// writes served so far divided by the ideal lifetime writes. Matches
    /// the paper's metric when read at device death.
    pub fn normalized_lifetime(&self) -> f64 {
        let served = self.demand_writes_at_death.unwrap_or(self.counters.demand_writes);
        served as f64 / self.cfg.ideal_lifetime_writes() as f64
    }

    /// Record a read. Reads do not wear cells but are counted for the
    /// timing model and request statistics.
    #[inline]
    pub fn read(&mut self, _pa: Pa) {
        self.counters.reads += 1;
    }

    /// Apply a demand (workload) write to physical line `pa`.
    #[inline]
    pub fn write(&mut self, pa: Pa) -> WriteOutcome {
        self.write_impl(pa, false)
    }

    /// Apply a wear-leveling overhead write (data exchange, table update).
    #[inline]
    pub fn write_wl(&mut self, pa: Pa) -> WriteOutcome {
        self.write_impl(pa, true)
    }

    #[inline]
    fn write_impl(&mut self, pa: Pa, overhead: bool) -> WriteOutcome {
        if self.dead {
            return WriteOutcome::DeviceDead;
        }
        self.counters.total_writes += 1;
        if overhead {
            self.counters.overhead_writes += 1;
        } else {
            self.counters.demand_writes += 1;
        }
        let wc = &mut self.write_counts[pa as usize];
        *wc += 1;
        let limit = match &self.limits {
            Some(l) => l[pa as usize],
            None => self.cfg.endurance,
        };
        // A line fails when its count reaches the limit; the controller
        // remaps it to a spare, and that spare wears out after another
        // `limit` writes — hence the modulo: hammering one physical address
        // consumes one spare every `limit` writes.
        if (*wc).is_multiple_of(limit) {
            self.counters.failed_lines += 1;
            if self.counters.failed_lines > self.cfg.spare_lines() {
                self.dead = true;
                self.demand_writes_at_death = Some(self.counters.demand_writes);
                return WriteOutcome::DeviceDead;
            }
            return WriteOutcome::LineFailed;
        }
        WriteOutcome::Ok
    }

    /// Compute full wear-distribution statistics (O(lines)).
    pub fn wear_stats(&self) -> WearStats {
        WearStats::from_counts(&self.write_counts)
    }

    /// Raw per-line write counts (for tests and detailed reports).
    pub fn write_counts(&self) -> &[u32] {
        &self.write_counts
    }

    /// Reset all wear state, keeping the configuration (and, for the
    /// Gaussian model, the same per-line limits). Used by sweep drivers to
    /// reuse allocations between runs of the same geometry.
    pub fn reset(&mut self) {
        self.write_counts.fill(0);
        self.counters = WearCounters::default();
        self.demand_writes_at_death = None;
        self.dead = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variation::EnduranceModel;

    fn tiny(lines: u64, endurance: u32, spare_shift: u32) -> NvmDevice {
        let cfg = NvmConfig::builder()
            .lines(lines)
            .banks(1)
            .endurance(endurance)
            .spare_shift(spare_shift)
            .build()
            .unwrap();
        NvmDevice::new(cfg)
    }

    #[test]
    fn write_increments_counters() {
        let mut dev = tiny(16, 100, 2);
        assert_eq!(dev.write(3), WriteOutcome::Ok);
        assert_eq!(dev.write_wl(3), WriteOutcome::Ok);
        dev.read(5);
        let w = dev.wear();
        assert_eq!(w.total_writes, 2);
        assert_eq!(w.demand_writes, 1);
        assert_eq!(w.overhead_writes, 1);
        assert_eq!(w.reads, 1);
        assert_eq!(dev.write_count(3), 2);
        assert_eq!(dev.write_count(0), 0);
    }

    #[test]
    fn line_fails_exactly_at_limit() {
        let mut dev = tiny(16, 3, 2);
        assert_eq!(dev.write(0), WriteOutcome::Ok);
        assert_eq!(dev.write(0), WriteOutcome::Ok);
        assert_eq!(dev.write(0), WriteOutcome::LineFailed);
        assert_eq!(dev.wear().failed_lines, 1);
        // The controller remapped to a spare; further writes keep working
        // and the spare itself fails after another full endurance budget.
        assert_eq!(dev.write(0), WriteOutcome::Ok);
        assert_eq!(dev.write(0), WriteOutcome::Ok);
        assert_eq!(dev.write(0), WriteOutcome::LineFailed);
        assert_eq!(dev.wear().failed_lines, 2);
    }

    #[test]
    fn device_dies_when_spares_exhausted() {
        // 16 lines, shift 2 -> 4 spares. The 5th failed line kills it.
        let mut dev = tiny(16, 1, 2);
        for pa in 0..4 {
            assert_eq!(dev.write(pa), WriteOutcome::LineFailed);
        }
        assert!(!dev.is_dead());
        assert_eq!(dev.write(4), WriteOutcome::DeviceDead);
        assert!(dev.is_dead());
        assert_eq!(dev.demand_writes_at_death(), Some(5));
        // A dead device refuses further traffic without mutating counters.
        let before = *dev.wear();
        assert_eq!(dev.write(7), WriteOutcome::DeviceDead);
        assert_eq!(*dev.wear(), before);
    }

    #[test]
    fn normalized_lifetime_is_one_under_perfectly_uniform_writes() {
        let mut dev = tiny(16, 4, 2);
        // Wear every line to its limit in round-robin order: 16*4 = 64
        // demand writes. The device dies only after spares run out, i.e.
        // after 16 + 4 = 20 line failures... with uniform wear all 16 lines
        // fail in the last round-robin sweep, which exceeds 4 spares on the
        // 5th failure.
        let mut served = 0u64;
        'outer: for _round in 0..4 {
            for pa in 0..16 {
                served += 1;
                if dev.write(pa) == WriteOutcome::DeviceDead {
                    break 'outer;
                }
            }
        }
        assert!(dev.is_dead());
        // Died 5 failures into the final sweep: 3*16 + 5 demand writes.
        assert_eq!(served, 3 * 16 + 5);
        let nl = dev.normalized_lifetime();
        assert!(nl > 0.8 && nl <= 1.0, "normalized lifetime {nl}");
    }

    #[test]
    fn gaussian_limits_are_respected() {
        let cfg = NvmConfig::builder()
            .lines(8)
            .banks(1)
            .endurance(100)
            .spare_shift(1)
            .variation(EnduranceModel::Gaussian { cov: 0.3 })
            .seed(9)
            .build()
            .unwrap();
        let mut dev = NvmDevice::new(cfg);
        let limit0 = dev.limit(0);
        for _ in 0..limit0 - 1 {
            assert_eq!(dev.write(0), WriteOutcome::Ok);
        }
        assert_eq!(dev.write(0), WriteOutcome::LineFailed);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut dev = tiny(16, 1, 2);
        for pa in 0..5 {
            dev.write(pa);
        }
        assert!(dev.is_dead());
        dev.reset();
        assert!(!dev.is_dead());
        assert_eq!(dev.wear().total_writes, 0);
        assert_eq!(dev.write(0), WriteOutcome::LineFailed); // endurance 1 again
    }

    #[test]
    fn overhead_fraction() {
        let mut dev = tiny(16, 100, 2);
        for _ in 0..3 {
            dev.write(1);
        }
        dev.write_wl(2);
        assert!((dev.wear().overhead_fraction() - 0.25).abs() < 1e-12);
    }
}
