//! Structure-of-arrays wear state: packed countdowns, quantized endurance
//! limits, and a sparse overlay for failed lines.
//!
//! The device's per-line state used to be two always-materialized `Vec<u32>`s
//! (write count + countdown) plus an optional third for per-line limits —
//! 8–12 B/line, which caps practical devices near 2^24 lines. This module
//! stores the same information in ≤ 4 B/line:
//!
//! * **Countdowns** are width-polymorphic: `u16` when every limit fits
//!   (the common case — nominal endurance 1e4–6.5e4), `u32` otherwise.
//! * **Limits** are quantized against a shared base (the minimum limit):
//!   uniform devices store nothing per line, Gaussian-variation devices
//!   store a `u8`/`u16` delta, and only pathological spreads fall back to a
//!   full `u32` table. Encoding is exact — `decode(encode(x)) == x` — so the
//!   countdown arithmetic is bit-identical to the unquantized model.
//! * **Write counts are derived, not stored**: a line's count is
//!   `limit - remaining` plus a per-line `extra` that accumulates one
//!   `limit` per failure-refill. Failures are globally bounded by the spare
//!   pool, so `extra` lives in a lazily-allocated bitset + hash overlay
//!   instead of a dense array.
//!
//! Bulk operations (range decrements, count materialization, reset) work on
//! chunks of plain integer slices so the compiler can autovectorize them.

use std::collections::HashMap;

use crate::Pa;

/// Chunk width for the bulk loops: big enough to amortize the per-chunk
/// dispatch, small enough to stay in L1.
const CHUNK: usize = 4096;

/// Per-line countdowns until the next failure, width-chosen at build time.
#[derive(Debug, Clone)]
enum Countdown {
    U16(Vec<u16>),
    U32(Vec<u32>),
}

/// Per-line endurance limits, quantized against the minimum limit.
#[derive(Debug, Clone)]
enum LimitTable {
    /// Every line has exactly `base` (the paper's uniform model).
    Uniform { base: u32 },
    /// `limit(pa) = base + deltas[pa]`, deltas fit in a byte.
    Delta8 { base: u32, deltas: Vec<u8> },
    /// `limit(pa) = base + deltas[pa]`, deltas fit in 16 bits.
    Delta16 { base: u32, deltas: Vec<u16> },
    /// Spread too wide to quantize; exact fallback.
    Full(Vec<u32>),
}

/// Sparse overlay for lines whose derived write count needs an offset:
/// failure refills and stuck-at remaps. Allocated on first use, so a
/// fresh or failure-free device pays nothing.
#[derive(Debug, Clone, Default)]
struct FailedSet {
    /// One bit per line: set iff the line has a nonzero `extra`.
    bits: Vec<u64>,
    /// Accumulated write-count offset per marked line.
    extra: HashMap<Pa, u64>,
}

/// The structure-of-arrays wear state behind [`NvmDevice`].
///
/// [`NvmDevice`]: crate::NvmDevice
#[derive(Debug, Clone)]
pub struct WearState {
    remaining: Countdown,
    limits: LimitTable,
    failed: Option<Box<FailedSet>>,
    lines: u64,
}

impl WearState {
    /// Build the state for `lines` lines. `limits` is the materialized
    /// per-line endurance table, or `None` when every line has `endurance`.
    pub fn new(lines: u64, endurance: u32, limits: Option<Vec<u32>>) -> Self {
        let (limits, max_limit) = match limits {
            None => (LimitTable::Uniform { base: endurance }, endurance),
            Some(v) => encode_limits(v),
        };
        let n = lines as usize;
        let remaining = if max_limit <= u32::from(u16::MAX) {
            let mut v = vec![0u16; n];
            fill_from_limits_u16(&mut v, &limits);
            Countdown::U16(v)
        } else {
            let mut v = vec![0u32; n];
            fill_from_limits_u32(&mut v, &limits);
            Countdown::U32(v)
        };
        Self { remaining, limits, failed: None, lines }
    }

    /// Number of lines tracked.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Endurance limit of one line (exactly the value that was encoded).
    #[inline]
    pub fn limit(&self, pa: Pa) -> u32 {
        match &self.limits {
            LimitTable::Uniform { base } => *base,
            LimitTable::Delta8 { base, deltas } => base + u32::from(deltas[pa as usize]),
            LimitTable::Delta16 { base, deltas } => base + u32::from(deltas[pa as usize]),
            LimitTable::Full(v) => v[pa as usize],
        }
    }

    /// Writes remaining until this line's next failure (always ≥ 1 between
    /// operations).
    #[inline]
    pub fn remaining(&self, pa: Pa) -> u64 {
        match &self.remaining {
            Countdown::U16(v) => u64::from(v[pa as usize]),
            Countdown::U32(v) => u64::from(v[pa as usize]),
        }
    }

    /// Apply one write's countdown. Returns `true` when the write made the
    /// line reach its limit; the countdown has then already been refilled
    /// and the derived count offset recorded.
    #[inline]
    pub fn countdown(&mut self, pa: Pa) -> bool {
        let hit = match &mut self.remaining {
            Countdown::U16(v) => {
                let r = &mut v[pa as usize];
                *r -= 1;
                *r == 0
            }
            Countdown::U32(v) => {
                let r = &mut v[pa as usize];
                *r -= 1;
                *r == 0
            }
        };
        if hit {
            self.refill_failed(pa);
        }
        hit
    }

    /// Failure refill, out of line: the countdown hot path only ever
    /// reaches this once per `limit` writes to a line.
    #[cold]
    fn refill_failed(&mut self, pa: Pa) {
        let limit = self.limit(pa);
        self.set_remaining(pa, limit);
        self.add_extra(pa, u64::from(limit));
    }

    /// Consume `n` writes from a line known to survive them (`n` strictly
    /// less than its remaining countdown).
    #[inline]
    pub fn sub_remaining(&mut self, pa: Pa, n: u64) {
        debug_assert!(n < self.remaining(pa));
        match &mut self.remaining {
            Countdown::U16(v) => v[pa as usize] -= n as u16,
            Countdown::U32(v) => v[pa as usize] -= n as u32,
        }
    }

    /// Closed-form run bookkeeping: the line just failed `failures` times
    /// and then took `past_last` more writes (`past_last < limit`).
    pub fn refill_after_failures(&mut self, pa: Pa, failures: u64, past_last: u64) {
        let limit = self.limit(pa);
        self.set_remaining(pa, limit - past_last as u32);
        self.add_extra(pa, failures * u64::from(limit));
    }

    /// Stuck-at remap: the controller swaps in a fresh spare behind `pa`
    /// without the line having consumed its budget. The countdown restarts
    /// at the full limit while the derived write count stays unchanged.
    pub fn note_stuck(&mut self, pa: Pa) {
        let limit = self.limit(pa);
        let used = u64::from(limit) - self.remaining(pa);
        self.set_remaining(pa, limit);
        if used > 0 {
            self.add_extra(pa, used);
        }
    }

    fn set_remaining(&mut self, pa: Pa, v: u32) {
        match &mut self.remaining {
            Countdown::U16(r) => r[pa as usize] = v as u16,
            Countdown::U32(r) => r[pa as usize] = v,
        }
    }

    fn add_extra(&mut self, pa: Pa, k: u64) {
        let words = (self.lines as usize).div_ceil(64);
        let f = self.failed.get_or_insert_with(|| {
            Box::new(FailedSet { bits: vec![0; words], extra: HashMap::new() })
        });
        f.bits[(pa >> 6) as usize] |= 1 << (pa & 63);
        *f.extra.entry(pa).or_insert(0) += k;
    }

    #[inline]
    fn extra(&self, pa: Pa) -> u64 {
        match &self.failed {
            None => 0,
            Some(f) => {
                if f.bits[(pa >> 6) as usize] >> (pa & 63) & 1 == 0 {
                    0
                } else {
                    f.extra[&pa]
                }
            }
        }
    }

    /// Derived write count of one line, with the same `u32` wrapping
    /// behaviour the old dense counter array had.
    #[inline]
    pub fn write_count(&self, pa: Pa) -> u32 {
        let used = (u64::from(self.limit(pa)) - self.remaining(pa)) as u32;
        used.wrapping_add(self.extra(pa) as u32)
    }

    /// Whether every line in `[start, start + n)` can take one more write
    /// without failing.
    #[inline]
    pub fn range_clear_of_failures(&self, start: Pa, n: u64) -> bool {
        let (s, n) = (start as usize, n as usize);
        match &self.remaining {
            Countdown::U16(v) => v[s..s + n].iter().all(|&r| r > 1),
            Countdown::U32(v) => v[s..s + n].iter().all(|&r| r > 1),
        }
    }

    /// Apply one write's countdown to every line in `[start, start + n)`,
    /// all known failure-free (see
    /// [`range_clear_of_failures`](Self::range_clear_of_failures)).
    #[inline]
    pub fn countdown_range_unchecked(&mut self, start: Pa, n: u64) {
        let (s, n) = (start as usize, n as usize);
        match &mut self.remaining {
            Countdown::U16(v) => {
                for r in &mut v[s..s + n] {
                    *r -= 1;
                }
            }
            Countdown::U32(v) => {
                for r in &mut v[s..s + n] {
                    *r -= 1;
                }
            }
        }
    }

    /// Stream the derived per-line write counts through `f` in address
    /// order, in chunks — O(lines) time, O(1) extra space.
    pub fn fold_counts(&self, mut f: impl FnMut(&[u32])) {
        let mut buf = [0u32; CHUNK];
        let mut start = 0usize;
        let lines = self.lines as usize;
        while start < lines {
            let n = CHUNK.min(lines - start);
            self.count_chunk(start, &mut buf[..n]);
            f(&buf[..n]);
            start += n;
        }
    }

    /// Materialize the full per-line write-count vector (for stats and
    /// detailed reports; costs 4 B/line).
    pub fn counts(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.lines as usize);
        self.fold_counts(|chunk| v.extend_from_slice(chunk));
        v
    }

    /// Derived counts for lines `[start, start + out.len())`.
    fn count_chunk(&self, start: usize, out: &mut [u32]) {
        let n = out.len();
        match &self.limits {
            LimitTable::Uniform { base } => out.fill(*base),
            LimitTable::Delta8 { base, deltas } => {
                for (o, &d) in out.iter_mut().zip(&deltas[start..start + n]) {
                    *o = base + u32::from(d);
                }
            }
            LimitTable::Delta16 { base, deltas } => {
                for (o, &d) in out.iter_mut().zip(&deltas[start..start + n]) {
                    *o = base + u32::from(d);
                }
            }
            LimitTable::Full(v) => out.copy_from_slice(&v[start..start + n]),
        }
        match &self.remaining {
            Countdown::U16(v) => {
                for (o, &r) in out.iter_mut().zip(&v[start..start + n]) {
                    *o -= u32::from(r);
                }
            }
            Countdown::U32(v) => {
                for (o, &r) in out.iter_mut().zip(&v[start..start + n]) {
                    *o -= r;
                }
            }
        }
        if let Some(f) = &self.failed {
            for (pa, &extra) in &f.extra {
                let i = *pa as usize;
                if i >= start && i < start + n {
                    out[i - start] = out[i - start].wrapping_add(extra as u32);
                }
            }
        }
    }

    /// Restore every countdown to its line's full limit and drop the
    /// failure overlay, reusing the existing allocations.
    pub fn reset(&mut self) {
        match &mut self.remaining {
            Countdown::U16(v) => fill_from_limits_u16(v, &self.limits),
            Countdown::U32(v) => fill_from_limits_u32(v, &self.limits),
        }
        self.failed = None;
    }

    /// Exact heap bytes held by the wear state (countdowns + limit table +
    /// failure overlay), for memory reporting.
    pub fn heap_bytes(&self) -> u64 {
        let rem = match &self.remaining {
            Countdown::U16(v) => v.capacity() * 2,
            Countdown::U32(v) => v.capacity() * 4,
        };
        let lim = match &self.limits {
            LimitTable::Uniform { .. } => 0,
            LimitTable::Delta8 { deltas, .. } => deltas.capacity(),
            LimitTable::Delta16 { deltas, .. } => deltas.capacity() * 2,
            LimitTable::Full(v) => v.capacity() * 4,
        };
        let overlay = match &self.failed {
            None => 0,
            // HashMap overhead approximated as key + value + one control
            // byte per capacity slot.
            Some(f) => f.bits.capacity() * 8 + f.extra.capacity() * 17,
        };
        (rem + lim + overlay) as u64
    }

    /// Checkpoint the mutable wear state: countdowns plus the failure
    /// overlay. The limit table is *not* written — it materializes
    /// deterministically from the device config at rebuild time — so a
    /// checkpoint stays ~2 B/line. Overlay entries are emitted sorted by
    /// line so identical states encode to identical bytes.
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        match &self.remaining {
            Countdown::U16(v) => {
                w.put_u8(0);
                w.put_u16_slice(v);
            }
            Countdown::U32(v) => {
                w.put_u8(1);
                w.put_u32_slice(v);
            }
        }
        match &self.failed {
            None => w.put_bool(false),
            Some(f) => {
                w.put_bool(true);
                w.put_u64_slice(&f.bits);
                let mut pairs: Vec<(Pa, u64)> = f.extra.iter().map(|(&k, &v)| (k, v)).collect();
                pairs.sort_unstable_by_key(|&(k, _)| k);
                w.put_u64(pairs.len() as u64);
                for (pa, extra) in pairs {
                    w.put_u64(pa);
                    w.put_u64(extra);
                }
            }
        }
    }

    /// Restore the mutable state captured by [`ckpt_save`](Self::ckpt_save)
    /// into a freshly rebuilt `WearState` (same config ⇒ same countdown
    /// width and limit table). Rejects width/length mismatches as
    /// [`CkptError::Corrupt`] without touching `self`'s invariants beyond
    /// the fields it fully replaces.
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        use sawl_ckpt::CkptError;
        let tag = r.get_u8()?;
        let expect_tag = match &self.remaining {
            Countdown::U16(_) => 0,
            Countdown::U32(_) => 1,
        };
        if tag != expect_tag {
            return Err(CkptError::Corrupt(format!(
                "countdown width tag {tag} does not match rebuilt device (expected {expect_tag})"
            )));
        }
        let remaining = match tag {
            0 => Countdown::U16(r.get_u16_vec()?),
            _ => Countdown::U32(r.get_u32_vec()?),
        };
        let got_lines = match &remaining {
            Countdown::U16(v) => v.len() as u64,
            Countdown::U32(v) => v.len() as u64,
        };
        if got_lines != self.lines {
            return Err(CkptError::Corrupt(format!(
                "countdown table holds {got_lines} lines, device has {}",
                self.lines
            )));
        }
        let failed = if r.get_bool()? {
            let bits = r.get_u64_vec()?;
            if bits.len() != (self.lines as usize).div_ceil(64) {
                return Err(CkptError::Corrupt(format!(
                    "failure bitset holds {} words for {} lines",
                    bits.len(),
                    self.lines
                )));
            }
            let n = r.get_u64()?;
            let mut extra = HashMap::with_capacity(n as usize);
            for _ in 0..n {
                let pa = r.get_u64()?;
                let k = r.get_u64()?;
                if pa >= self.lines {
                    return Err(CkptError::Corrupt(format!(
                        "failure overlay names line {pa} beyond {}",
                        self.lines
                    )));
                }
                if extra.insert(pa, k).is_some() {
                    return Err(CkptError::Corrupt(format!(
                        "duplicate overlay entry for line {pa}"
                    )));
                }
            }
            Some(Box::new(FailedSet { bits, extra }))
        } else {
            None
        };
        self.remaining = remaining;
        self.failed = failed;
        Ok(())
    }

    /// Human-readable layout tag for reports: countdown width plus limit
    /// encoding, e.g. `"u16+delta16"`.
    pub fn layout(&self) -> String {
        let rem = match &self.remaining {
            Countdown::U16(_) => "u16",
            Countdown::U32(_) => "u32",
        };
        let lim = match &self.limits {
            LimitTable::Uniform { .. } => "uniform",
            LimitTable::Delta8 { .. } => "delta8",
            LimitTable::Delta16 { .. } => "delta16",
            LimitTable::Full(_) => "full",
        };
        format!("{rem}+{lim}")
    }
}

/// Quantize a materialized limit table: shared base = minimum limit, then
/// the narrowest per-line delta that represents every line exactly.
/// Returns the table and the maximum limit (used to pick the countdown
/// width).
fn encode_limits(v: Vec<u32>) -> (LimitTable, u32) {
    assert!(!v.is_empty(), "cannot encode an empty limit table");
    let mut min = u32::MAX;
    let mut max = 0u32;
    for &l in &v {
        min = min.min(l);
        max = max.max(l);
    }
    let spread = max - min;
    let table = if spread == 0 {
        LimitTable::Uniform { base: min }
    } else if spread <= u32::from(u8::MAX) {
        LimitTable::Delta8 { base: min, deltas: v.iter().map(|&l| (l - min) as u8).collect() }
    } else if spread <= u32::from(u16::MAX) {
        LimitTable::Delta16 { base: min, deltas: v.iter().map(|&l| (l - min) as u16).collect() }
    } else {
        LimitTable::Full(v)
    };
    (table, max)
}

fn fill_from_limits_u16(rem: &mut [u16], limits: &LimitTable) {
    match limits {
        LimitTable::Uniform { base } => rem.fill(*base as u16),
        LimitTable::Delta8 { base, deltas } => {
            for (r, &d) in rem.iter_mut().zip(deltas) {
                *r = (*base + u32::from(d)) as u16;
            }
        }
        LimitTable::Delta16 { base, deltas } => {
            for (r, &d) in rem.iter_mut().zip(deltas) {
                *r = (*base + u32::from(d)) as u16;
            }
        }
        LimitTable::Full(v) => {
            for (r, &l) in rem.iter_mut().zip(v) {
                *r = l as u16;
            }
        }
    }
}

fn fill_from_limits_u32(rem: &mut [u32], limits: &LimitTable) {
    match limits {
        LimitTable::Uniform { base } => rem.fill(*base),
        LimitTable::Delta8 { base, deltas } => {
            for (r, &d) in rem.iter_mut().zip(deltas) {
                *r = *base + u32::from(d);
            }
        }
        LimitTable::Delta16 { base, deltas } => {
            for (r, &d) in rem.iter_mut().zip(deltas) {
                *r = *base + u32::from(d);
            }
        }
        LimitTable::Full(v) => rem.copy_from_slice(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_state_stores_no_limit_table() {
        let w = WearState::new(1 << 12, 10_000, None);
        assert_eq!(w.layout(), "u16+uniform");
        assert_eq!(w.heap_bytes(), (1 << 12) * 2);
        assert_eq!(w.limit(7), 10_000);
        assert_eq!(w.remaining(7), 10_000);
        assert_eq!(w.write_count(7), 0);
    }

    #[test]
    fn limit_encoding_round_trips_exactly() {
        for limits in [
            vec![100u32; 8],
            vec![100, 101, 355, 100, 254 + 100, 100, 100, 100],
            vec![1, 65_536, 40_000, 2, 3, 4, 5, 6],
            vec![1, 1 << 20, 7, 7, 7, 7, 7, 7],
            vec![90_000, 90_001, 90_002, 90_000, 90_000, 90_000, 90_000, 90_000],
        ] {
            let w = WearState::new(8, 0, Some(limits.clone()));
            for (pa, &l) in limits.iter().enumerate() {
                assert_eq!(w.limit(pa as u64), l, "layout {}", w.layout());
                assert_eq!(w.remaining(pa as u64), u64::from(l));
            }
        }
    }

    #[test]
    fn encoding_picks_the_narrowest_width() {
        let layout = |limits: Vec<u32>| WearState::new(8, 0, Some(limits)).layout();
        assert_eq!(layout(vec![500; 8]), "u16+uniform");
        assert_eq!(layout(vec![500, 700, 500, 500, 500, 500, 500, 500]), "u16+delta8");
        assert_eq!(layout(vec![500, 1000, 500, 500, 500, 500, 500, 500]), "u16+delta16");
        assert_eq!(
            layout(vec![40_000, 100_000, 40_000, 40_000, 40_000, 40_000, 40_000, 40_000]),
            "u32+delta16"
        );
        assert_eq!(layout(vec![500, 700_000, 500, 500, 500, 500, 500, 500]), "u32+full");
    }

    #[test]
    fn countdown_failure_refills_and_derives_counts() {
        let mut w = WearState::new(4, 3, None);
        assert!(!w.countdown(1));
        assert!(!w.countdown(1));
        assert_eq!(w.write_count(1), 2);
        assert!(w.countdown(1)); // 3rd write fails the line
        assert_eq!(w.remaining(1), 3); // refilled
        assert_eq!(w.write_count(1), 3); // count keeps accumulating
        assert!(!w.countdown(1));
        assert_eq!(w.write_count(1), 4);
        assert_eq!(w.write_count(0), 0);
    }

    #[test]
    fn note_stuck_preserves_the_write_count() {
        let mut w = WearState::new(4, 10, None);
        w.countdown(2);
        w.countdown(2);
        w.note_stuck(2);
        assert_eq!(w.remaining(2), 10);
        assert_eq!(w.write_count(2), 2);
        // Stuck remap on a fresh line allocates nothing.
        let mut fresh = WearState::new(4, 10, None);
        fresh.note_stuck(0);
        assert!(fresh.failed.is_none());
        assert_eq!(fresh.write_count(0), 0);
    }

    #[test]
    fn counts_materialization_matches_per_line_reads() {
        let limits: Vec<u32> = (0..100).map(|i| 50 + (i * 7) % 40).collect();
        let mut w = WearState::new(100, 0, Some(limits));
        for i in 0..300u64 {
            w.countdown((i * i) % 100);
        }
        let counts = w.counts();
        for pa in 0..100u64 {
            assert_eq!(counts[pa as usize], w.write_count(pa), "pa {pa}");
        }
        assert_eq!(counts.iter().map(|&c| u64::from(c)).sum::<u64>(), 300);
    }

    #[test]
    fn range_ops_match_scalar_countdowns() {
        let mut a = WearState::new(256, 5, None);
        let mut b = WearState::new(256, 5, None);
        for round in 0..4 {
            if a.range_clear_of_failures(0, 256) {
                a.countdown_range_unchecked(0, 256);
            } else {
                for pa in 0..256 {
                    a.countdown(pa);
                }
            }
            for pa in 0..256 {
                b.countdown(pa);
            }
            for pa in 0..256u64 {
                assert_eq!(a.remaining(pa), b.remaining(pa), "round {round} pa {pa}");
                assert_eq!(a.write_count(pa), b.write_count(pa));
            }
        }
    }

    #[test]
    fn reset_restores_full_countdowns_and_clears_overlay() {
        let limits: Vec<u32> = (0..16).map(|i| 3 + i % 5).collect();
        let mut w = WearState::new(16, 0, Some(limits.clone()));
        for _ in 0..10 {
            w.countdown(3);
        }
        assert!(w.failed.is_some());
        w.reset();
        assert!(w.failed.is_none());
        for pa in 0..16u64 {
            assert_eq!(w.remaining(pa), u64::from(limits[pa as usize]));
            assert_eq!(w.write_count(pa), 0);
        }
    }
}
