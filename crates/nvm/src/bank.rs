//! Bank geometry.
//!
//! The paper simulates a 64 GB device as 32 banks of 2 GB. Banks matter in
//! two places: the timing model exploits bank-level parallelism, and wear
//! reports can be broken down per bank. Lines are interleaved across banks
//! by the low address bits (the common open-row-agnostic layout for
//! line-granularity NVM), so sequential lines land on different banks.

use serde::{Deserialize, Serialize};

use crate::Pa;

/// Geometry helper mapping physical line addresses to banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankGeometry {
    banks: u32,
    bank_mask: u64,
}

impl BankGeometry {
    /// Create a geometry with `banks` banks (must be a power of two).
    pub fn new(banks: u32) -> Self {
        assert!(banks.is_power_of_two() && banks > 0, "banks must be a power of two");
        Self { banks, bank_mask: u64::from(banks) - 1 }
    }

    /// Number of banks.
    #[inline]
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Bank holding physical line `pa` (low-bit interleaving).
    #[inline]
    pub fn bank_of(&self, pa: Pa) -> u32 {
        (pa & self.bank_mask) as u32
    }

    /// Per-bank totals of a per-line write-count array.
    pub fn per_bank_totals(&self, counts: &[u32]) -> Vec<u64> {
        let mut totals = vec![0u64; self.banks as usize];
        for (pa, &c) in counts.iter().enumerate() {
            totals[self.bank_of(pa as Pa) as usize] += u64::from(c);
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_lines_interleave() {
        let g = BankGeometry::new(4);
        assert_eq!(g.bank_of(0), 0);
        assert_eq!(g.bank_of(1), 1);
        assert_eq!(g.bank_of(2), 2);
        assert_eq!(g.bank_of(3), 3);
        assert_eq!(g.bank_of(4), 0);
    }

    #[test]
    fn per_bank_totals_sum_to_grand_total() {
        let g = BankGeometry::new(8);
        let counts: Vec<u32> = (0..64).collect();
        let totals = g.per_bank_totals(&counts);
        assert_eq!(totals.len(), 8);
        let sum: u64 = totals.iter().sum();
        assert_eq!(sum, counts.iter().map(|&c| u64::from(c)).sum::<u64>());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = BankGeometry::new(3);
    }

    #[test]
    fn single_bank_takes_everything() {
        let g = BankGeometry::new(1);
        assert_eq!(g.bank_of(12345), 0);
        assert_eq!(g.per_bank_totals(&[1, 2, 3]), vec![6]);
    }
}
