//! Process-variation models for per-cell endurance.
//!
//! MLC fabrication produces "remarkable variations on access latency and
//! cell endurance" (paper §1). The lifetime experiments in the paper assume
//! a per-cell write limit (1e5 or 1e6); real devices draw each cell's limit
//! from a distribution around that nominal value. We support both: the
//! uniform model reproduces the paper's configuration exactly, while the
//! Gaussian model is available for the ablation benches.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How each line's endurance limit is derived from the nominal `Wmax`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EnduranceModel {
    /// Every line gets exactly the nominal endurance (the paper's setting).
    Uniform,
    /// Per-line endurance drawn from a normal distribution with the given
    /// coefficient of variation (sigma / mean), truncated at ±3 sigma and
    /// clamped to at least 1 write.
    Gaussian {
        /// Coefficient of variation, e.g. 0.1 for sigma = 10% of `Wmax`.
        cov: f64,
    },
}

impl EnduranceModel {
    /// Materialize per-line endurance limits for `lines` lines around the
    /// nominal `wmax`, deterministically from `seed`.
    ///
    /// Returns `None` for the uniform model: callers should then treat every
    /// line as having exactly `wmax`, avoiding a redundant multi-megabyte
    /// allocation on large devices.
    pub fn materialize(&self, lines: u64, wmax: u32, seed: u64) -> Option<Vec<u32>> {
        match *self {
            EnduranceModel::Uniform => None,
            EnduranceModel::Gaussian { cov } => {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mean = f64::from(wmax);
                let sigma = mean * cov;
                let mut v = Vec::with_capacity(lines as usize);
                for _ in 0..lines {
                    let z = sample_standard_normal(&mut rng).clamp(-3.0, 3.0);
                    let e = (mean + sigma * z).round();
                    v.push(e.max(1.0) as u32);
                }
                Some(v)
            }
        }
    }
}

/// Draw one standard-normal sample via the Box-Muller transform.
///
/// `rand` itself only ships uniform distributions (the `rand_distr` crate is
/// not in our dependency budget), so we implement the transform directly.
fn sample_standard_normal<R: Rng>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_materializes_to_none() {
        assert!(EnduranceModel::Uniform.materialize(1024, 1000, 1).is_none());
    }

    #[test]
    fn gaussian_mean_is_close_to_nominal() {
        let v = EnduranceModel::Gaussian { cov: 0.1 }.materialize(20_000, 10_000, 42).unwrap();
        let mean: f64 = v.iter().map(|&e| f64::from(e)).sum::<f64>() / v.len() as f64;
        assert!((mean - 10_000.0).abs() < 100.0, "mean {mean} too far from nominal");
    }

    #[test]
    fn gaussian_spread_matches_cov() {
        let v = EnduranceModel::Gaussian { cov: 0.2 }.materialize(50_000, 10_000, 7).unwrap();
        let n = v.len() as f64;
        let mean: f64 = v.iter().map(|&e| f64::from(e)).sum::<f64>() / n;
        let var: f64 = v.iter().map(|&e| (f64::from(e) - mean).powi(2)).sum::<f64>() / n;
        let cov = var.sqrt() / mean;
        // Truncation at 3 sigma shaves a little off the empirical CoV.
        assert!((cov - 0.2).abs() < 0.02, "empirical cov {cov}");
    }

    #[test]
    fn gaussian_is_deterministic_per_seed() {
        let a = EnduranceModel::Gaussian { cov: 0.1 }.materialize(100, 1000, 5).unwrap();
        let b = EnduranceModel::Gaussian { cov: 0.1 }.materialize(100, 1000, 5).unwrap();
        let c = EnduranceModel::Gaussian { cov: 0.1 }.materialize(100, 1000, 6).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gaussian_never_yields_zero_endurance() {
        // Extreme CoV would push samples negative without the clamp.
        let v = EnduranceModel::Gaussian { cov: 2.0 }.materialize(10_000, 10, 3).unwrap();
        assert!(v.iter().all(|&e| e >= 1));
    }

    #[test]
    fn standard_normal_is_roughly_standard() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
