//! Log-bucketed HDR-style latency histogram.
//!
//! The timing simulator used to keep 64 linear 50 ns buckets, which
//! saturated silently at 3.2 µs — exactly where the interesting tail
//! lives. This histogram covers the full ns→s range with bounded
//! *relative* error instead: values below 64 ns are exact, and every
//! larger base-2 bucket is split into 32 sub-buckets, so a reported
//! percentile is never more than `2^-5` (≈3.1%) above the true value.
//!
//! Layout (HdrHistogram-style, `SUB_BITS = 6`):
//!
//! * slots `0..64` hold values `0..64` exactly (bucket 0);
//! * bucket `k >= 1` covers `[2^(5+k), 2^(6+k))` in 32 slots of width
//!   `2^k`; with [`HIGH_BUCKETS`] = 25 the top bucket ends at `2^31` ns
//!   (≈2.1 s), far beyond any simulated request.
//!
//! Values past the top are counted in an explicit `overflow` bin — the
//! exact maximum is still tracked, and percentile queries report when
//! they land there ([`Percentile::saturated`]). Histograms with identical
//! geometry merge by slot-wise addition, and [`HistogramSnapshot`] is the
//! run-length-encoded serial form the telemetry JSON-lines stream embeds.

use serde::{Deserialize, Serialize};

/// Sub-bucket resolution: `2^SUB_BITS` exact slots in bucket 0, half that
/// many per higher bucket. Relative error bound is `2^(1 - SUB_BITS)`.
pub const SUB_BITS: u32 = 6;
/// Slots in bucket 0 (exact values `0..FIRST_SLOTS`).
const FIRST_SLOTS: usize = 1 << SUB_BITS;
/// Slots per bucket above the first (the top half of the sub-range).
const HALF_SLOTS: usize = FIRST_SLOTS / 2;
/// Number of power-of-two buckets above the exact one.
pub const HIGH_BUCKETS: usize = 25;
/// Total slot count.
pub const SLOTS: usize = FIRST_SLOTS + HIGH_BUCKETS * HALF_SLOTS;
/// Largest value the slots can hold; anything larger overflows.
pub const MAX_TRACKABLE_NS: u64 = (1u64 << (SUB_BITS as usize + HIGH_BUCKETS)) - 1;

/// A percentile answer: the estimated value and whether it fell past the
/// trackable range (in which case `ns` is the exact observed maximum).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Percentile {
    /// Estimated latency at the requested rank, ns. Never below the true
    /// value's slot and never above `max_ns`.
    pub ns: u64,
    /// The rank landed in the overflow bin (beyond [`MAX_TRACKABLE_NS`]);
    /// `ns` is then the exact maximum rather than a bucket edge.
    pub saturated: bool,
}

/// Log-bucketed latency histogram with explicit overflow accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    overflow: u64,
    max_ns: u64,
    total_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { counts: vec![0; SLOTS], count: 0, overflow: 0, max_ns: 0, total_ns: 0 }
    }

    /// Slot index for a trackable value.
    #[inline]
    fn index(ns: u64) -> usize {
        debug_assert!(ns <= MAX_TRACKABLE_NS);
        if ns < FIRST_SLOTS as u64 {
            ns as usize
        } else {
            // k = which high bucket; the top SUB_BITS-1 bits below the
            // leading one select the sub-slot.
            let k = (64 - ns.leading_zeros() - SUB_BITS) as usize;
            FIRST_SLOTS + (k - 1) * HALF_SLOTS + ((ns >> k) as usize - HALF_SLOTS)
        }
    }

    /// Inclusive upper edge of a slot — what percentile queries report.
    #[inline]
    fn upper_edge(i: usize) -> u64 {
        if i < FIRST_SLOTS {
            i as u64
        } else {
            let j = i - FIRST_SLOTS;
            let k = (j / HALF_SLOTS + 1) as u32;
            let sub = (j % HALF_SLOTS + HALF_SLOTS) as u64;
            (sub << k) + (1u64 << k) - 1
        }
    }

    /// Record one latency observation.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.record_n(ns, 1);
    }

    /// Record `n` observations of the same latency.
    pub fn record_n(&mut self, ns: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.count += n;
        self.total_ns = self.total_ns.saturating_add(ns.saturating_mul(n));
        self.max_ns = self.max_ns.max(ns);
        if ns > MAX_TRACKABLE_NS {
            self.overflow += n;
        } else {
            self.counts[Self::index(ns)] += n;
        }
    }

    /// Total observations, including overflowed ones.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations beyond [`MAX_TRACKABLE_NS`].
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Exact maximum observed value, ns (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Sum of all observations, ns (saturating).
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Mean observation, ns (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The latency at percentile `p` (`0 < p <= 1`), or `None` when the
    /// histogram is empty. The estimate is the slot's upper edge clamped to
    /// the exact maximum, so `percentile(1.0)` always reports `max_ns`
    /// exactly and every answer is within the relative-error bound.
    pub fn percentile(&self, p: f64) -> Option<Percentile> {
        assert!(p > 0.0 && p <= 1.0, "percentile out of range: {p}");
        if self.count == 0 {
            return None;
        }
        let rank = ((self.count as f64 * p).ceil() as u64).clamp(1, self.count);
        if rank > self.count - self.overflow {
            // Past the trackable range: report the exact maximum, flagged.
            return Some(Percentile { ns: self.max_ns, saturated: true });
        }
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= rank {
                return Some(Percentile {
                    ns: Self::upper_edge(i).min(self.max_ns),
                    saturated: false,
                });
            }
        }
        unreachable!("rank {rank} within tracked count {}", self.count - self.overflow)
    }

    /// Slot-wise merge of another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.overflow += other.overflow;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
    }

    /// Run-length-encoded serial form for the JSON-lines stream.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut runs: Vec<(u32, Vec<u64>)> = Vec::new();
        let mut i = 0;
        while i < SLOTS {
            if self.counts[i] == 0 {
                i += 1;
                continue;
            }
            let start = i;
            while i < SLOTS && self.counts[i] != 0 {
                i += 1;
            }
            runs.push((start as u32, self.counts[start..i].to_vec()));
        }
        HistogramSnapshot {
            count: self.count,
            overflow: self.overflow,
            max_ns: self.max_ns,
            total_ns: self.total_ns,
            runs,
        }
    }
}

/// The wire form of a [`LatencyHistogram`]: non-zero slots as
/// `(start_slot, counts...)` runs plus the scalar summary fields. The
/// encoding is canonical for a given histogram (maximal runs in ascending
/// slot order), so byte-comparing serialized snapshots compares histograms.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub overflow: u64,
    pub max_ns: u64,
    pub total_ns: u64,
    /// Maximal runs of consecutive non-zero slots.
    pub runs: Vec<(u32, Vec<u64>)>,
}

impl HistogramSnapshot {
    /// Rebuild the full histogram. Panics if a run falls outside the slot
    /// range (corrupt snapshot).
    pub fn restore(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for (start, counts) in &self.runs {
            let start = *start as usize;
            assert!(start + counts.len() <= SLOTS, "snapshot run out of range");
            h.counts[start..start + counts.len()].copy_from_slice(counts);
        }
        h.count = self.count;
        h.overflow = self.overflow;
        h.max_ns = self.max_ns;
        h.total_ns = self.total_ns;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_has_no_percentile() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.percentile(1.0), None);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.max_ns(), 0);
    }

    #[test]
    fn single_event_is_every_percentile() {
        let mut h = LatencyHistogram::new();
        h.record(137);
        for p in [0.001, 0.5, 0.99, 1.0] {
            let q = h.percentile(p).unwrap();
            assert!(!q.saturated);
            assert!(q.ns >= 137 && q.ns <= 137 + 137 / 32 + 1, "p{p} -> {}", q.ns);
        }
        // The max clamp makes p=1.0 exact.
        assert_eq!(h.percentile(1.0).unwrap().ns, 137);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        // Median of 0..=63 at rank 32 is 31.
        assert_eq!(h.percentile(0.5).unwrap().ns, 31);
        assert_eq!(h.percentile(1.0).unwrap().ns, 63);
    }

    #[test]
    fn p_one_boundary_reports_exact_max() {
        let mut h = LatencyHistogram::new();
        h.record(100);
        h.record(1_000_003);
        let q = h.percentile(1.0).unwrap();
        assert_eq!(q.ns, 1_000_003);
        assert!(!q.saturated);
    }

    #[test]
    fn overflow_is_explicit_not_silent() {
        // Regression for the old linear histogram: tails beyond its 3.2 µs
        // cap reported the cap with no indication. Values past the HDR
        // range must be counted and flagged instead.
        let mut h = LatencyHistogram::new();
        h.record(10_000); // well past the old 3.2 µs cap, fine here
        assert_eq!(h.overflow(), 0);
        let q = h.percentile(1.0).unwrap();
        assert_eq!(q.ns, 10_000);

        h.record(MAX_TRACKABLE_NS + 17);
        assert_eq!(h.overflow(), 1);
        let q = h.percentile(1.0).unwrap();
        assert!(q.saturated, "overflowed rank must be flagged");
        assert_eq!(q.ns, MAX_TRACKABLE_NS + 17, "and still report the exact max");
        // The median is unaffected by the overflow bin.
        assert!(!h.percentile(0.5).unwrap().saturated);
    }

    #[test]
    fn merge_of_disjoint_ranges() {
        let mut low = LatencyHistogram::new();
        let mut high = LatencyHistogram::new();
        for _ in 0..900 {
            low.record(50);
        }
        for _ in 0..100 {
            high.record(1 << 20);
        }
        low.merge(&high);
        assert_eq!(low.count(), 1000);
        assert_eq!(low.percentile(0.5).unwrap().ns, 50);
        let p99 = low.percentile(0.99).unwrap().ns;
        assert!(p99 >= 1 << 20 && p99 <= (1 << 20) + (1 << 15), "p99 {p99}");
        assert_eq!(low.percentile(0.9).unwrap().ns, 50);
        assert_eq!(low.max_ns(), 1 << 20);
    }

    #[test]
    fn merge_matches_single_histogram() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = i * i % 77_777;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn snapshot_round_trips() {
        let mut h = LatencyHistogram::new();
        for v in [0, 1, 63, 64, 65, 4096, 1 << 20, MAX_TRACKABLE_NS, MAX_TRACKABLE_NS + 1] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.restore(), h);
        let json = serde_json::to_string(&snap).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.restore(), h);
    }

    #[test]
    fn snapshot_of_empty_is_empty() {
        let h = LatencyHistogram::new();
        let snap = h.snapshot();
        assert!(snap.runs.is_empty());
        assert_eq!(snap.count, 0);
        assert_eq!(snap.restore(), h);
    }

    #[test]
    fn index_and_edge_are_inverse_enough() {
        // Every trackable value lands in a slot whose upper edge is >= the
        // value and within the relative-error bound.
        for shift in 0..31u32 {
            for off in [0u64, 1, 2, 3] {
                let v = (1u64 << shift) + off;
                if v > MAX_TRACKABLE_NS {
                    continue;
                }
                let i = LatencyHistogram::index(v);
                let edge = LatencyHistogram::upper_edge(i);
                assert!(edge >= v, "v={v} i={i} edge={edge}");
                assert!(edge - v <= (v >> 5) + 1, "v={v} edge={edge}");
            }
        }
    }

    proptest! {
        #[test]
        fn percentile_tracks_sorted_reference(
            values in proptest::collection::vec(0u64..MAX_TRACKABLE_NS + 1, 1..400),
            p_millis in 1u64..1001,
        ) {
            let p = p_millis as f64 / 1000.0;
            let mut h = LatencyHistogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut values = values;
            values.sort_unstable();
            let rank = ((values.len() as f64 * p).ceil() as usize).clamp(1, values.len());
            let truth = values[rank - 1];
            let got = h.percentile(p).unwrap();
            assert!(!got.saturated);
            // Never under the true value; over by at most the slot width
            // (2^-5 relative) and never past the observed max.
            assert!(got.ns >= truth, "p{p}: {} < truth {truth}", got.ns);
            assert!(got.ns <= truth + (truth >> 5) + 1, "p{p}: {} vs {truth}", got.ns);
            assert!(got.ns <= *values.last().unwrap());
        }

        #[test]
        fn snapshot_round_trip_random(
            values in proptest::collection::vec(0u64..MAX_TRACKABLE_NS + 1000, 0..200),
        ) {
            let mut h = LatencyHistogram::new();
            for &v in &values {
                h.record(v);
            }
            assert_eq!(h.snapshot().restore(), h);
        }

        #[test]
        fn record_n_is_slot_exact_against_scalar_records(
            // Values straddle MAX_TRACKABLE_NS so the overflow bin is
            // exercised alongside every bucket class; k = 0 must be a
            // no-op.
            pairs in proptest::collection::vec(
                (0u64..2 * MAX_TRACKABLE_NS, 0u64..50), 1..60),
        ) {
            let mut bulk = LatencyHistogram::new();
            let mut scalar = LatencyHistogram::new();
            for &(v, k) in &pairs {
                bulk.record_n(v, k);
                for _ in 0..k {
                    scalar.record(v);
                }
            }
            // Structural equality covers every slot plus count, overflow,
            // max and total — record_n(v, k) IS k records, not an
            // approximation of them.
            assert_eq!(bulk, scalar);
        }

        #[test]
        fn record_n_snapshot_round_trips_with_overflow(
            pairs in proptest::collection::vec(
                (0u64..2 * MAX_TRACKABLE_NS, 1u64..1000), 0..40),
        ) {
            let mut h = LatencyHistogram::new();
            for &(v, k) in &pairs {
                h.record_n(v, k);
            }
            let snap = h.snapshot();
            assert_eq!(snap.restore(), h);
            let json = serde_json::to_string(&snap).unwrap();
            let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
            assert_eq!(back.restore(), h);
        }

        #[test]
        fn sharded_merge_matches_unsharded_byte_for_byte(
            values in proptest::collection::vec(0u64..2 * MAX_TRACKABLE_NS, 0..300),
            shards in 1usize..6,
        ) {
            // Round-robin the observations over N shard histograms, merge
            // the shards left-to-right, and demand the canonical snapshot
            // encoding of the merge equals the unsharded histogram's —
            // the property the sharded latency sweeps rest on.
            let mut whole = LatencyHistogram::new();
            let mut parts = vec![LatencyHistogram::new(); shards];
            for (i, &v) in values.iter().enumerate() {
                whole.record(v);
                parts[i % shards].record(v);
            }
            let mut merged = LatencyHistogram::new();
            for part in &parts {
                merged.merge(part);
            }
            assert_eq!(merged, whole);
            let a = serde_json::to_string(&merged.snapshot()).unwrap();
            let b = serde_json::to_string(&whole.snapshot()).unwrap();
            assert_eq!(a, b);
        }
    }
}
