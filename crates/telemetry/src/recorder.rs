//! Fixed-stride sampling over the typed channel registry.

use crate::{
    Channel, ChannelKind, DeviceSample, Event, HistogramSnapshot, SamplePoint, SchemeSample,
    Series, TelemetrySpec, TimingSample,
};

/// Samples the channel registry every `stride` served requests.
///
/// Driver protocol:
///
/// 1. Ask [`Recorder::until_sample`] for the number of requests that may
///    still be served before the next boundary, and never serve past it in
///    one batch.
/// 2. After serving `k <= until_sample()` requests, call
///    [`Recorder::note_served`]. When it returns `true` the clock sits
///    exactly on a boundary: gather a [`DeviceSample`]/[`SchemeSample`]
///    pair and call [`Recorder::record`].
/// 3. When the run ends, [`Recorder::into_series`] (optionally with the
///    drained event ring) yields the [`Series`].
///
/// Samples land *after* the request with 1-based index `k * stride`, which
/// is the same instant the engine's own adaptation sampling fires — so a
/// recorder sample at a boundary observes post-sample adaptation state.
/// No sample is taken at request 0 or at a non-boundary end of run.
#[derive(Debug, Clone)]
pub struct Recorder {
    spec: TelemetrySpec,
    served: u64,
    next: u64,
    samples: Vec<SamplePoint>,
    // Snapshots backing the delta gauges (instant hit rate, hot-half
    // share). Cumulative producer counters survive crashes, so these do
    // not need resetting on recovery.
    last_hits: u64,
    last_misses: u64,
    last_first: u64,
    last_second: u64,
}

impl Recorder {
    /// A recorder for `spec`. Stride must be >= 1.
    pub fn new(spec: TelemetrySpec) -> Self {
        assert!(spec.stride >= 1, "telemetry stride must be >= 1");
        let next = spec.stride;
        Self {
            spec,
            served: 0,
            next,
            samples: Vec::new(),
            last_hits: 0,
            last_misses: 0,
            last_first: 0,
            last_second: 0,
        }
    }

    /// The spec this recorder was built from.
    pub fn spec(&self) -> &TelemetrySpec {
        &self.spec
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// How many requests may still be served before the next sample
    /// boundary (always >= 1 between samples).
    pub fn until_sample(&self) -> u64 {
        self.next - self.served
    }

    /// Advance the request clock by `k` served requests; returns `true`
    /// when the clock now sits on a sample boundary (call
    /// [`Recorder::record`]).
    pub fn note_served(&mut self, k: u64) -> bool {
        debug_assert!(k <= self.until_sample(), "batch served past a sample boundary");
        self.served += k;
        self.served >= self.next
    }

    /// Take a sample at the current clock position and schedule the next
    /// boundary. `timing` is the closed-loop timing model's contribution;
    /// `None` when no timing model is attached (its channels are skipped,
    /// not zeroed, like any other missing producer).
    pub fn record(
        &mut self,
        dev: &DeviceSample,
        scheme: &SchemeSample,
        timing: Option<&TimingSample>,
    ) {
        let mut counters: Vec<(Channel, u64)> = Vec::new();
        let mut gauges: Vec<(Channel, f64)> = Vec::new();
        let mut hists: Vec<(Channel, HistogramSnapshot)> = Vec::new();

        // Delta gauges over the last stride. Snapshots update whenever the
        // producer reports the underlying counters, independent of channel
        // selection, so a narrow selection sees the same values a full one
        // would.
        let lookup_rate = match (scheme.cmt_hits, scheme.cmt_misses) {
            (Some(h), Some(m)) => {
                let dh = h - self.last_hits;
                let dm = m - self.last_misses;
                self.last_hits = h;
                self.last_misses = m;
                let total = dh + dm;
                Some(if total == 0 { 0.0 } else { dh as f64 / total as f64 })
            }
            _ => None,
        };
        let hot_share = match (scheme.cmt_hits_first_half, scheme.cmt_hits_second_half) {
            (Some(f), Some(s)) => {
                let df = f - self.last_first;
                let ds = s - self.last_second;
                self.last_first = f;
                self.last_second = s;
                let total = df + ds;
                Some(if total == 0 { 0.0 } else { df as f64 / total as f64 })
            }
            _ => None,
        };

        for channel in Channel::ALL {
            if !self.spec.records(channel) {
                continue;
            }
            let counter = match channel {
                Channel::DemandWrites => Some(dev.demand_writes),
                Channel::OverheadWrites => Some(dev.overhead_writes),
                Channel::WearMax => dev.wear_max,
                Channel::CmtHits => scheme.cmt_hits,
                Channel::CmtMisses => scheme.cmt_misses,
                Channel::Merges => scheme.merges,
                Channel::Splits => scheme.splits,
                Channel::Exchanges => scheme.exchanges,
                Channel::JournalBegins => scheme.journal_begins,
                Channel::JournalCommits => scheme.journal_commits,
                Channel::JournalRollbacks => scheme.journal_rollbacks,
                Channel::PowerLosses => Some(dev.power_losses),
                Channel::TransientFaults => Some(dev.transient_faults),
                Channel::StallQueueNs => timing.map(|t| t.stall_queue_ns),
                Channel::StallTransMissNs => timing.map(|t| t.stall_trans_miss_ns),
                Channel::StallExchangeNs => timing.map(|t| t.stall_exchange_ns),
                Channel::StallReorgNs => timing.map(|t| t.stall_reorg_ns),
                _ => None,
            };
            if let Some(v) = counter {
                debug_assert_eq!(channel.kind(), ChannelKind::Counter);
                counters.push((channel, v));
                continue;
            }
            let gauge = match channel {
                Channel::WearMean => dev.wear_mean,
                Channel::WearCov => dev.wear_cov,
                Channel::SpareLevel => Some(dev.spares_remaining as f64),
                Channel::CmtHitRate => lookup_rate,
                Channel::CmtWindowedHitRate => scheme.windowed_hit_rate,
                Channel::CmtHotHalfShare => hot_share,
                Channel::RegionCount => scheme.region_count.map(|n| n as f64),
                Channel::RegionSizeCached => scheme.region_size_cached,
                Channel::RegionSizeGlobal => scheme.region_size_global,
                _ => None,
            };
            if let Some(v) = gauge {
                debug_assert_eq!(channel.kind(), ChannelKind::Gauge);
                gauges.push((channel, v));
                continue;
            }
            if channel == Channel::LatencyNs {
                if let Some(t) = timing {
                    debug_assert_eq!(channel.kind(), ChannelKind::Histogram);
                    hists.push((channel, t.latency.clone()));
                }
            }
        }

        self.samples.push(SamplePoint { requests: self.served, counters, gauges, hists });
        self.next = self.served + self.spec.stride;
    }

    /// Checkpoint the sampling cursor: request clock, next boundary,
    /// delta-gauge snapshots, and the samples gathered so far (as a JSON
    /// blob — [`SamplePoint`] is already serde and its JSON round-trip is
    /// pinned byte-stable). The spec is not written; resume rebuilds the
    /// recorder from the experiment spec and overwrites the cursor.
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_u64(self.served);
        w.put_u64(self.next);
        w.put_u64(self.last_hits);
        w.put_u64(self.last_misses);
        w.put_u64(self.last_first);
        w.put_u64(self.last_second);
        let json = serde_json::to_string(&self.samples).expect("samples serialize infallibly");
        w.put_str(&json);
    }

    /// Restore the cursor captured by [`ckpt_save`](Self::ckpt_save) into
    /// a recorder freshly built from the same spec.
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        let served = r.get_u64()?;
        let next = r.get_u64()?;
        if next < served || next - served > self.spec.stride {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "sample boundary {next} inconsistent with clock {served} at stride {}",
                self.spec.stride
            )));
        }
        self.served = served;
        self.next = next;
        self.last_hits = r.get_u64()?;
        self.last_misses = r.get_u64()?;
        self.last_first = r.get_u64()?;
        self.last_second = r.get_u64()?;
        let json = r.get_str()?;
        self.samples = serde_json::from_str(&json)
            .map_err(|e| sawl_ckpt::CkptError::Corrupt(format!("sample blob: {e}")))?;
        Ok(())
    }

    /// Finish the run, attaching the drained event ring.
    pub fn into_series(self, events: Vec<Event>, events_dropped: u64) -> Series {
        let channels = if self.spec.channels.is_empty() {
            Channel::ALL.to_vec()
        } else {
            self.spec.channels.clone()
        };
        Series { stride: self.spec.stride, channels, samples: self.samples, events, events_dropped }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(demand: u64) -> DeviceSample {
        DeviceSample {
            demand_writes: demand,
            overhead_writes: demand / 10,
            wear_mean: Some(demand as f64 / 64.0),
            wear_cov: Some(0.1),
            wear_max: Some(demand / 8),
            spares_remaining: 32,
            power_losses: 0,
            transient_faults: 0,
        }
    }

    #[test]
    fn boundaries_land_every_stride() {
        let mut r = Recorder::new(TelemetrySpec::with_stride(10));
        let mut sampled = Vec::new();
        for i in 1..=35u64 {
            assert!(r.until_sample() >= 1);
            if r.note_served(1) {
                r.record(&dev(i), &SchemeSample::default(), None);
                sampled.push(i);
            }
        }
        assert_eq!(sampled, vec![10, 20, 30]);
        let series = r.into_series(Vec::new(), 0);
        assert_eq!(
            series.counter_series(Channel::DemandWrites),
            vec![(10, 10), (20, 20), (30, 30)]
        );
    }

    #[test]
    fn batched_advance_respects_until_sample() {
        let mut r = Recorder::new(TelemetrySpec::with_stride(100));
        assert_eq!(r.until_sample(), 100);
        assert!(!r.note_served(60));
        assert_eq!(r.until_sample(), 40);
        assert!(r.note_served(40));
        r.record(&dev(100), &SchemeSample::default(), None);
        assert_eq!(r.until_sample(), 100);
    }

    #[test]
    fn delta_gauges_use_per_stride_windows() {
        let mut r = Recorder::new(TelemetrySpec::with_stride(5));
        let scheme = |hits, misses, first, second| SchemeSample {
            cmt_hits: Some(hits),
            cmt_misses: Some(misses),
            cmt_hits_first_half: Some(first),
            cmt_hits_second_half: Some(second),
            ..SchemeSample::default()
        };
        assert!(r.note_served(5));
        r.record(&dev(5), &scheme(4, 1, 3, 1), None);
        assert!(r.note_served(5));
        r.record(&dev(10), &scheme(5, 5, 3, 2), None);
        let series = r.into_series(Vec::new(), 0);
        let rates = series.gauge_series(Channel::CmtHitRate);
        assert_eq!(rates[0], (5, 0.8)); // 4 of 5
        assert_eq!(rates[1], (10, 0.2)); // 1 of 5
        let hot = series.gauge_series(Channel::CmtHotHalfShare);
        assert_eq!(hot[0], (5, 0.75)); // 3 of 4
        assert_eq!(hot[1], (10, 0.0)); // 0 of 1
    }

    #[test]
    fn missing_scheme_signals_are_skipped_not_zeroed() {
        let mut r = Recorder::new(TelemetrySpec::with_stride(1));
        assert!(r.note_served(1));
        r.record(&dev(1), &SchemeSample::default(), None);
        let series = r.into_series(Vec::new(), 0);
        let p = &series.samples[0];
        assert_eq!(p.counter(Channel::CmtHits), None);
        assert_eq!(p.gauge(Channel::CmtHitRate), None);
        assert_eq!(p.counter(Channel::DemandWrites), Some(1));
        assert_eq!(p.gauge(Channel::SpareLevel), Some(32.0));
    }

    #[test]
    fn channel_selection_filters_output() {
        let spec = TelemetrySpec {
            channels: vec![Channel::DemandWrites, Channel::WearCov],
            ..TelemetrySpec::with_stride(1)
        };
        let mut r = Recorder::new(spec);
        assert!(r.note_served(1));
        r.record(&dev(1), &SchemeSample::default(), None);
        let series = r.into_series(Vec::new(), 0);
        assert_eq!(series.channels, vec![Channel::DemandWrites, Channel::WearCov]);
        assert_eq!(series.samples[0].counters.len(), 1);
        assert_eq!(series.samples[0].gauges.len(), 1);
    }

    #[test]
    fn timing_sample_lands_in_stall_counters_and_histogram() {
        let mut r = Recorder::new(TelemetrySpec::with_stride(1));
        let mut h = crate::LatencyHistogram::new();
        h.record(60);
        h.record(410);
        let t = TimingSample {
            stall_queue_ns: 100,
            stall_trans_miss_ns: 55,
            stall_exchange_ns: 350,
            stall_reorg_ns: 0,
            latency: h.snapshot(),
        };
        assert!(r.note_served(1));
        r.record(&dev(1), &SchemeSample::default(), Some(&t));
        let series = r.into_series(Vec::new(), 0);
        let p = &series.samples[0];
        assert_eq!(p.counter(Channel::StallQueueNs), Some(100));
        assert_eq!(p.counter(Channel::StallTransMissNs), Some(55));
        assert_eq!(p.counter(Channel::StallExchangeNs), Some(350));
        assert_eq!(p.counter(Channel::StallReorgNs), Some(0));
        let snap = p.hist(Channel::LatencyNs).unwrap();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max_ns, 410);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_is_rejected() {
        let _ = Recorder::new(TelemetrySpec::with_stride(0));
    }
}
