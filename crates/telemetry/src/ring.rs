//! Bounded, order-preserving event ring for discrete adaptation events.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// A discrete event with its position on the request clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Requests served when the event fired (the producer's own clock —
    /// for SAWL, `HitRateAdaptation::requests`).
    pub requests: u64,
    pub kind: EventKind,
}

/// What happened. Bases are region base lines in logical space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Two buddy regions merged (the surviving base).
    Merge { base: u64 },
    /// A region split in half.
    Split { base: u64 },
    /// A region exchange (remap) completed.
    Exchange { base: u64 },
    /// The adaptation raised its target granularity (toward merging).
    TargetUp { q_log2: u8 },
    /// The adaptation lowered its target granularity (toward splitting).
    TargetDown { q_log2: u8 },
}

/// Fixed-capacity FIFO of [`Event`]s. When full, pushing drops the
/// *oldest* event and counts it, so the ring always holds the most recent
/// `capacity` events in arrival order.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (clamped to >= 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { buf: VecDeque::with_capacity(capacity), capacity, dropped: 0 }
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, event: Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    /// Events currently held, oldest first.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many events have been evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drain into `(events_oldest_first, dropped_count)`.
    pub fn into_parts(self) -> (Vec<Event>, u64) {
        (self.buf.into_iter().collect(), self.dropped)
    }

    /// Checkpoint the ring: capacity, drop count, and the held events
    /// (oldest first) as a JSON blob — events are tiny and already serde.
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_u64(self.capacity as u64);
        w.put_u64(self.dropped);
        let events: Vec<Event> = self.buf.iter().copied().collect();
        let json = serde_json::to_string(&events).expect("events serialize infallibly");
        w.put_str(&json);
    }

    /// Rebuild a ring from [`ckpt_save`](Self::ckpt_save) output.
    pub fn ckpt_load(r: &mut sawl_ckpt::Reader<'_>) -> Result<Self, sawl_ckpt::CkptError> {
        let capacity = r.get_u64()? as usize;
        let dropped = r.get_u64()?;
        let json = r.get_str()?;
        let events: Vec<Event> = serde_json::from_str(&json)
            .map_err(|e| sawl_ckpt::CkptError::Corrupt(format!("event ring blob: {e}")))?;
        let capacity = capacity.max(1);
        if events.len() > capacity {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "event ring holds {} events over capacity {capacity}",
                events.len()
            )));
        }
        let mut ring = EventRing::new(capacity);
        ring.buf.extend(events);
        ring.dropped = dropped;
        Ok(ring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ev(i: u64) -> Event {
        Event { requests: i, kind: EventKind::Exchange { base: i } }
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let mut r = EventRing::new(0);
        assert_eq!(r.capacity(), 1);
        r.push(ev(1));
        r.push(ev(2));
        let (events, dropped) = r.into_parts();
        assert_eq!(events, vec![ev(2)]);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn fifo_order_without_overflow() {
        let mut r = EventRing::new(8);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 5);
        let (events, dropped) = r.into_parts();
        assert_eq!(events, (0..5).map(ev).collect::<Vec<_>>());
        assert_eq!(dropped, 0);
    }

    proptest! {
        /// The ring always keeps the most recent `capacity` events, in
        /// order, and the drop counter accounts for exactly the rest.
        #[test]
        fn keeps_newest_in_order(capacity in 1usize..16, n in 0u64..200) {
            let mut r = EventRing::new(capacity);
            for i in 0..n {
                r.push(ev(i));
            }
            let expect_dropped = n.saturating_sub(capacity as u64);
            assert_eq!(r.dropped(), expect_dropped);
            let (events, dropped) = r.into_parts();
            assert_eq!(dropped, expect_dropped);
            let expect: Vec<Event> = (expect_dropped..n).map(ev).collect();
            assert_eq!(events, expect);
        }
    }
}
