//! # sawl-telemetry — time-series observability for the SAWL stack
//!
//! SAWL's adaptive loop is driven by observed signals (CMT hit rate, LRU
//! hot-half concentration, wear CoV), but the simulator historically only
//! reported end-of-run aggregates. This crate makes those signals
//! first-class: a [`Recorder`] samples a typed counter/gauge registry at a
//! fixed request stride, and a bounded [`EventRing`] captures discrete
//! adaptation events (merge, split, exchange, target-granularity moves).
//!
//! The design contract is *zero cost when disabled*: producers keep their
//! instrumentation behind `Option`s that are `None` unless a
//! [`TelemetrySpec`] is attached to the experiment, so the hot paths pay at
//! most one well-predicted branch. Enabled or not, telemetry is pure
//! observation — it must never change simulation results (the simctl
//! equivalence suite pins this bit-for-bit).
//!
//! ## Sampling clock
//!
//! The stride counts *served requests*, not device writes: for lifetime
//! pumps that is the demand writes the experiment serves (reads are not
//! part of lifetime workloads), for trace pumps it is every request. A
//! sample is taken immediately after the request with 1-based index
//! `k * stride` completes — the same clock the engine's own
//! `HitRateAdaptation` uses — so batched and scalar drivers sample at
//! identical points (see `pump_writes` in sawl-simctl).
//!
//! ## Output
//!
//! A finished run yields a [`Series`]: the sampled points, the drained
//! event ring, and the channel registry. It serializes as ordinary JSON
//! (embedded in `LifetimeResult`), and [`Series::to_json_lines`] renders
//! the streaming JSON-lines form used by `sawl-sim --telemetry` and the
//! golden-run regression suite (schema in DESIGN.md §12).

mod hist;
mod recorder;
mod ring;

pub use hist::{HistogramSnapshot, LatencyHistogram, Percentile, MAX_TRACKABLE_NS};
pub use recorder::Recorder;
pub use ring::{Event, EventKind, EventRing};

use serde::{Deserialize, Serialize};

/// Default sample stride (requests between samples) when a spec does not
/// give one — matches the engine's default `sample_interval`.
pub const DEFAULT_STRIDE: u64 = 100_000;

/// Default bounded event-ring capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// JSON-lines schema version emitted in the `meta` line.
///
/// * v1 — counters + gauges.
/// * v2 — adds [`ChannelKind::Histogram`] channels (`hists` on every
///   sample line, run-length-encoded buckets) and the per-cause stall
///   counters from the timing model.
pub const SCHEMA_VERSION: u32 = 2;

/// What kind of value a channel carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelKind {
    /// Monotone non-decreasing `u64` (cumulative count).
    Counter,
    /// Point-in-time `f64` reading.
    Gauge,
    /// Cumulative log-bucketed distribution ([`HistogramSnapshot`]).
    Histogram,
}

/// The typed channel registry. Counters are cumulative and monotone
/// across the samples of one run; gauges are instantaneous readings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Channel {
    // -- counters ---------------------------------------------------------
    /// Demand (application) writes served.
    DemandWrites,
    /// Wear-leveling overhead writes issued by the scheme.
    OverheadWrites,
    /// Maximum per-line write count on the device.
    WearMax,
    /// CMT lookup hits (cumulative).
    CmtHits,
    /// CMT lookup misses (cumulative).
    CmtMisses,
    /// Completed region merges.
    Merges,
    /// Completed region splits.
    Splits,
    /// Completed region exchanges.
    Exchanges,
    /// Journal records opened (`begin`).
    JournalBegins,
    /// Journal records landed (`commit`).
    JournalCommits,
    /// Journal records rolled back.
    JournalRollbacks,
    /// Power-loss events the device has suffered.
    PowerLosses,
    /// Transient write faults injected (before verify-and-retry).
    TransientFaults,
    /// Cumulative demand-request stall attributed to bank queueing, ns.
    StallQueueNs,
    /// Cumulative stall attributed to CMT translation misses, ns.
    StallTransMissNs,
    /// Cumulative stall attributed to in-flight data exchanges, ns.
    StallExchangeNs,
    /// Cumulative stall attributed to region merges/splits, ns.
    StallReorgNs,
    // -- gauges -----------------------------------------------------------
    /// Mean per-line write count.
    WearMean,
    /// Coefficient of variation of per-line write counts
    /// (population stddev / mean; 0 when the mean is 0).
    WearCov,
    /// Spare lines remaining in the pool.
    SpareLevel,
    /// Instantaneous CMT hit rate over the last stride (hits delta /
    /// lookups delta; 0 when no lookups happened).
    CmtHitRate,
    /// The scheme's own windowed hit-rate estimate (SAWL's observation
    /// window), when it keeps one.
    CmtWindowedHitRate,
    /// Share of CMT hits landing in the hot (first) LRU half over the
    /// last stride.
    CmtHotHalfShare,
    /// Regions currently mapped (SAWL) or granules (fixed schemes).
    RegionCount,
    /// Average cached region size in lines (SAWL).
    RegionSizeCached,
    /// Average global region size in lines (SAWL).
    RegionSizeGlobal,
    // -- histograms -------------------------------------------------------
    /// Cumulative demand-request latency distribution, ns.
    LatencyNs,
}

impl Channel {
    /// Every channel, in the canonical sampling order (counters, then
    /// gauges, then histograms).
    pub const ALL: [Channel; 27] = [
        Channel::DemandWrites,
        Channel::OverheadWrites,
        Channel::WearMax,
        Channel::CmtHits,
        Channel::CmtMisses,
        Channel::Merges,
        Channel::Splits,
        Channel::Exchanges,
        Channel::JournalBegins,
        Channel::JournalCommits,
        Channel::JournalRollbacks,
        Channel::PowerLosses,
        Channel::TransientFaults,
        Channel::StallQueueNs,
        Channel::StallTransMissNs,
        Channel::StallExchangeNs,
        Channel::StallReorgNs,
        Channel::WearMean,
        Channel::WearCov,
        Channel::SpareLevel,
        Channel::CmtHitRate,
        Channel::CmtWindowedHitRate,
        Channel::CmtHotHalfShare,
        Channel::RegionCount,
        Channel::RegionSizeCached,
        Channel::RegionSizeGlobal,
        Channel::LatencyNs,
    ];

    /// Counter, gauge, or histogram.
    pub fn kind(self) -> ChannelKind {
        match self {
            Channel::DemandWrites
            | Channel::OverheadWrites
            | Channel::WearMax
            | Channel::CmtHits
            | Channel::CmtMisses
            | Channel::Merges
            | Channel::Splits
            | Channel::Exchanges
            | Channel::JournalBegins
            | Channel::JournalCommits
            | Channel::JournalRollbacks
            | Channel::PowerLosses
            | Channel::TransientFaults
            | Channel::StallQueueNs
            | Channel::StallTransMissNs
            | Channel::StallExchangeNs
            | Channel::StallReorgNs => ChannelKind::Counter,
            Channel::WearMean
            | Channel::WearCov
            | Channel::SpareLevel
            | Channel::CmtHitRate
            | Channel::CmtWindowedHitRate
            | Channel::CmtHotHalfShare
            | Channel::RegionCount
            | Channel::RegionSizeCached
            | Channel::RegionSizeGlobal => ChannelKind::Gauge,
            Channel::LatencyNs => ChannelKind::Histogram,
        }
    }

    /// Stable name, identical to the serde variant tag.
    pub fn name(self) -> &'static str {
        match self {
            Channel::DemandWrites => "DemandWrites",
            Channel::OverheadWrites => "OverheadWrites",
            Channel::WearMax => "WearMax",
            Channel::CmtHits => "CmtHits",
            Channel::CmtMisses => "CmtMisses",
            Channel::Merges => "Merges",
            Channel::Splits => "Splits",
            Channel::Exchanges => "Exchanges",
            Channel::JournalBegins => "JournalBegins",
            Channel::JournalCommits => "JournalCommits",
            Channel::JournalRollbacks => "JournalRollbacks",
            Channel::PowerLosses => "PowerLosses",
            Channel::TransientFaults => "TransientFaults",
            Channel::StallQueueNs => "StallQueueNs",
            Channel::StallTransMissNs => "StallTransMissNs",
            Channel::StallExchangeNs => "StallExchangeNs",
            Channel::StallReorgNs => "StallReorgNs",
            Channel::WearMean => "WearMean",
            Channel::WearCov => "WearCov",
            Channel::SpareLevel => "SpareLevel",
            Channel::CmtHitRate => "CmtHitRate",
            Channel::CmtWindowedHitRate => "CmtWindowedHitRate",
            Channel::CmtHotHalfShare => "CmtHotHalfShare",
            Channel::RegionCount => "RegionCount",
            Channel::RegionSizeCached => "RegionSizeCached",
            Channel::RegionSizeGlobal => "RegionSizeGlobal",
            Channel::LatencyNs => "LatencyNs",
        }
    }
}

/// What to record and how often. Attach one to a `Scenario` or
/// `LifetimeExperiment` to enable telemetry; absent means fully disabled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySpec {
    /// Requests between samples (must be >= 1).
    pub stride: u64,
    /// Channels to record; empty selects the full registry.
    #[serde(default)]
    pub channels: Vec<Channel>,
    /// Event-ring capacity; 0 selects [`DEFAULT_EVENT_CAPACITY`].
    #[serde(default)]
    pub event_capacity: usize,
    /// Emit a stderr progress ticker while the run pumps.
    #[serde(default)]
    pub progress: bool,
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        Self { stride: DEFAULT_STRIDE, channels: Vec::new(), event_capacity: 0, progress: false }
    }
}

impl TelemetrySpec {
    /// A full-registry spec with the given stride.
    pub fn with_stride(stride: u64) -> Self {
        Self { stride, ..Self::default() }
    }

    /// Whether `channel` is selected (empty selection = all).
    pub fn records(&self, channel: Channel) -> bool {
        self.channels.is_empty() || self.channels.contains(&channel)
    }

    /// The event-ring capacity after defaulting.
    pub fn effective_event_capacity(&self) -> usize {
        if self.event_capacity == 0 {
            DEFAULT_EVENT_CAPACITY
        } else {
            self.event_capacity
        }
    }
}

/// A scheme's contribution to one sample. Producers fill what they track
/// and leave the rest `None`; missing signals are simply not recorded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchemeSample {
    pub cmt_hits: Option<u64>,
    pub cmt_misses: Option<u64>,
    pub cmt_hits_first_half: Option<u64>,
    pub cmt_hits_second_half: Option<u64>,
    pub windowed_hit_rate: Option<f64>,
    pub merges: Option<u64>,
    pub splits: Option<u64>,
    pub exchanges: Option<u64>,
    pub journal_begins: Option<u64>,
    pub journal_commits: Option<u64>,
    pub journal_rollbacks: Option<u64>,
    pub region_count: Option<u64>,
    pub region_size_cached: Option<f64>,
    pub region_size_global: Option<f64>,
}

/// The device's contribution to one sample.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceSample {
    pub demand_writes: u64,
    pub overhead_writes: u64,
    /// From the incremental wear probe; `None` when the probe is off.
    pub wear_mean: Option<f64>,
    pub wear_cov: Option<f64>,
    pub wear_max: Option<u64>,
    pub spares_remaining: u64,
    pub power_losses: u64,
    pub transient_faults: u64,
}

/// The timing model's contribution to one sample: cumulative per-cause
/// stall time plus the cumulative latency distribution. Producers sample
/// it on the same served-request clock as everything else, so batched and
/// scalar drivers emit bit-identical snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingSample {
    pub stall_queue_ns: u64,
    pub stall_trans_miss_ns: u64,
    pub stall_exchange_ns: u64,
    pub stall_reorg_ns: u64,
    pub latency: HistogramSnapshot,
}

/// One recorded point: the request index it was taken at plus the
/// counter/gauge/histogram readings, all in [`Channel::ALL`] order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplePoint {
    pub requests: u64,
    #[serde(default)]
    pub counters: Vec<(Channel, u64)>,
    #[serde(default)]
    pub gauges: Vec<(Channel, f64)>,
    #[serde(default)]
    pub hists: Vec<(Channel, HistogramSnapshot)>,
}

impl SamplePoint {
    /// Look up a counter reading by channel.
    pub fn counter(&self, channel: Channel) -> Option<u64> {
        self.counters.iter().find(|(c, _)| *c == channel).map(|(_, v)| *v)
    }

    /// Look up a gauge reading by channel.
    pub fn gauge(&self, channel: Channel) -> Option<f64> {
        self.gauges.iter().find(|(c, _)| *c == channel).map(|(_, v)| *v)
    }

    /// Look up a histogram snapshot by channel.
    pub fn hist(&self, channel: Channel) -> Option<&HistogramSnapshot> {
        self.hists.iter().find(|(c, _)| *c == channel).map(|(_, v)| v)
    }
}

/// A finished telemetry run: the sampled series plus the drained event
/// ring. Embedded verbatim in `LifetimeResult`/`TraceReport`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    pub stride: u64,
    /// The channels that were eligible for recording (the resolved
    /// selection, full registry if the spec left it empty).
    pub channels: Vec<Channel>,
    pub samples: Vec<SamplePoint>,
    #[serde(default)]
    pub events: Vec<Event>,
    /// Events discarded by the bounded ring (oldest-first).
    #[serde(default)]
    pub events_dropped: u64,
}

impl Series {
    /// Render the streaming JSON-lines form (`meta`, `sample`*, `event`*,
    /// `end`), one JSON object per line, trailing newline included. The
    /// encoding is deterministic — goldens byte-compare it.
    pub fn to_json_lines(&self) -> String {
        #[derive(Serialize)]
        struct MetaLine {
            line: &'static str,
            version: u32,
            stride: u64,
            channels: Vec<&'static str>,
        }
        #[derive(Serialize)]
        struct SampleLine {
            line: &'static str,
            requests: u64,
            counters: Vec<(&'static str, u64)>,
            gauges: Vec<(&'static str, f64)>,
            hists: Vec<(&'static str, HistogramSnapshot)>,
        }
        #[derive(Serialize)]
        struct EventLine {
            line: &'static str,
            requests: u64,
            kind: EventKind,
        }
        #[derive(Serialize)]
        struct EndLine {
            line: &'static str,
            samples: u64,
            events: u64,
            events_dropped: u64,
        }

        let mut out = String::new();
        let meta = MetaLine {
            line: "meta",
            version: SCHEMA_VERSION,
            stride: self.stride,
            channels: self.channels.iter().map(|c| c.name()).collect(),
        };
        out.push_str(&serde_json::to_string(&meta).expect("serialize meta line"));
        out.push('\n');
        for s in &self.samples {
            let line = SampleLine {
                line: "sample",
                requests: s.requests,
                counters: s.counters.iter().map(|(c, v)| (c.name(), *v)).collect(),
                gauges: s.gauges.iter().map(|(c, v)| (c.name(), *v)).collect(),
                hists: s.hists.iter().map(|(c, v)| (c.name(), v.clone())).collect(),
            };
            out.push_str(&serde_json::to_string(&line).expect("serialize sample line"));
            out.push('\n');
        }
        for e in &self.events {
            let line = EventLine { line: "event", requests: e.requests, kind: e.kind };
            out.push_str(&serde_json::to_string(&line).expect("serialize event line"));
            out.push('\n');
        }
        let end = EndLine {
            line: "end",
            samples: self.samples.len() as u64,
            events: self.events.len() as u64,
            events_dropped: self.events_dropped,
        };
        out.push_str(&serde_json::to_string(&end).expect("serialize end line"));
        out.push('\n');
        out
    }

    /// The trajectory of one gauge as `(requests, value)` pairs.
    pub fn gauge_series(&self, channel: Channel) -> Vec<(u64, f64)> {
        self.samples.iter().filter_map(|s| s.gauge(channel).map(|v| (s.requests, v))).collect()
    }

    /// The trajectory of one counter as `(requests, value)` pairs.
    pub fn counter_series(&self, channel: Channel) -> Vec<(u64, u64)> {
        self.samples.iter().filter_map(|s| s.counter(channel).map(|v| (s.requests, v))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        assert_eq!(Channel::ALL.len(), 27);
        for (i, c) in Channel::ALL.iter().enumerate() {
            // Names are unique and serde round-trips the unit variant.
            for d in &Channel::ALL[i + 1..] {
                assert_ne!(c.name(), d.name());
            }
            let json = serde_json::to_string(c).unwrap();
            assert_eq!(json, format!("\"{}\"", c.name()));
            let back: Channel = serde_json::from_str(&json).unwrap();
            assert_eq!(back, *c);
        }
    }

    #[test]
    fn kinds_are_blocked_in_registry_order() {
        // Counters, then gauges, then histograms — sample rows keep the
        // same shape as the registry listing.
        let first_gauge = Channel::ALL.iter().position(|c| c.kind() == ChannelKind::Gauge).unwrap();
        let first_hist =
            Channel::ALL.iter().position(|c| c.kind() == ChannelKind::Histogram).unwrap();
        assert!(first_gauge < first_hist);
        assert!(Channel::ALL[..first_gauge].iter().all(|c| c.kind() == ChannelKind::Counter));
        assert!(Channel::ALL[first_gauge..first_hist]
            .iter()
            .all(|c| c.kind() == ChannelKind::Gauge));
        assert!(Channel::ALL[first_hist..].iter().all(|c| c.kind() == ChannelKind::Histogram));
    }

    #[test]
    fn spec_defaults_and_selection() {
        let spec = TelemetrySpec::default();
        assert_eq!(spec.stride, DEFAULT_STRIDE);
        assert!(spec.records(Channel::WearCov));
        assert_eq!(spec.effective_event_capacity(), DEFAULT_EVENT_CAPACITY);

        let narrow = TelemetrySpec {
            channels: vec![Channel::DemandWrites],
            event_capacity: 4,
            ..TelemetrySpec::with_stride(10)
        };
        assert!(narrow.records(Channel::DemandWrites));
        assert!(!narrow.records(Channel::WearCov));
        assert_eq!(narrow.effective_event_capacity(), 4);
    }

    #[test]
    fn spec_json_round_trip_with_defaults() {
        let spec: TelemetrySpec = serde_json::from_str("{\"stride\": 500}").unwrap();
        assert_eq!(spec, TelemetrySpec::with_stride(500));
        let json = serde_json::to_string(&spec).unwrap();
        let back: TelemetrySpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn series_round_trips_through_json() {
        let series = Series {
            stride: 100,
            channels: vec![Channel::DemandWrites, Channel::WearCov],
            samples: vec![SamplePoint {
                requests: 100,
                counters: vec![(Channel::DemandWrites, 100)],
                gauges: vec![(Channel::WearCov, 0.25)],
                hists: vec![(Channel::LatencyNs, {
                    let mut h = LatencyHistogram::new();
                    h.record(60);
                    h.record(410);
                    h.snapshot()
                })],
            }],
            events: vec![Event { requests: 42, kind: EventKind::Merge { base: 8 } }],
            events_dropped: 1,
        };
        let json = serde_json::to_string(&series).unwrap();
        let back: Series = serde_json::from_str(&json).unwrap();
        assert_eq!(back, series);
    }

    #[test]
    fn json_lines_shape_and_determinism() {
        let series = Series {
            stride: 100,
            channels: vec![Channel::DemandWrites, Channel::CmtHitRate],
            samples: vec![SamplePoint {
                requests: 100,
                counters: vec![(Channel::DemandWrites, 100)],
                gauges: vec![(Channel::CmtHitRate, 0.5)],
                hists: vec![(Channel::LatencyNs, {
                    let mut h = LatencyHistogram::new();
                    h.record_n(60, 99);
                    h.record(900);
                    h.snapshot()
                })],
            }],
            events: vec![Event { requests: 7, kind: EventKind::Split { base: 0 } }],
            events_dropped: 0,
        };
        let text = series.to_json_lines();
        assert_eq!(text, series.to_json_lines());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"line\":\"meta\""));
        assert!(lines[0].contains("\"version\":2"));
        assert!(lines[1].contains("[\"DemandWrites\",100]"));
        assert!(lines[1].contains("\"hists\":[[\"LatencyNs\",{\"count\":100"));
        assert!(lines[2].contains("\"Split\""));
        assert!(lines[3].starts_with("{\"line\":\"end\""));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn sample_lookup_helpers() {
        let p = SamplePoint {
            requests: 10,
            counters: vec![(Channel::CmtHits, 3)],
            gauges: vec![(Channel::WearMean, 1.5)],
            hists: vec![(Channel::LatencyNs, LatencyHistogram::new().snapshot())],
        };
        assert_eq!(p.counter(Channel::CmtHits), Some(3));
        assert_eq!(p.counter(Channel::CmtMisses), None);
        assert_eq!(p.gauge(Channel::WearMean), Some(1.5));
        assert_eq!(p.gauge(Channel::WearCov), None);
        assert!(p.hist(Channel::LatencyNs).is_some());
    }
}
