//! Invariant checkers shared by unit, integration and property tests.
//!
//! The central correctness property of any wear-leveling scheme is that its
//! logical→physical mapping stays a *injection into the device* at all
//! times: two logical lines must never resolve to the same physical line,
//! or data would be silently lost. These helpers make that property cheap
//! to assert after arbitrary write sequences.

use crate::WearLeveler;

/// Check that `wl.translate` is injective over the whole logical space and
/// lands within `physical_lines`. Panics with a diagnostic on violation.
///
/// O(logical lines) time and memory — intended for tests, not hot loops.
pub fn check_permutation<W: WearLeveler + ?Sized>(wl: &W, physical_lines: u64) {
    let n = wl.logical_lines();
    let mut owner: Vec<u64> = vec![u64::MAX; physical_lines as usize];
    for la in 0..n {
        let pa = wl.translate(la);
        assert!(
            pa < physical_lines,
            "{}: la {la} translated to pa {pa} beyond device ({physical_lines} lines)",
            wl.name()
        );
        assert!(
            owner[pa as usize] == u64::MAX,
            "{}: la {la} and la {} both map to pa {pa}",
            wl.name(),
            owner[pa as usize]
        );
        owner[pa as usize] = la;
    }
}

/// Snapshot the full logical→physical mapping (for diffing before/after an
/// operation, e.g. to count how many lines a data exchange moved).
pub fn mapping_snapshot<W: WearLeveler + ?Sized>(wl: &W) -> Vec<u64> {
    (0..wl.logical_lines()).map(|la| wl.translate(la)).collect()
}

/// Number of logical lines whose physical location differs between two
/// snapshots taken with [`mapping_snapshot`].
pub fn moved_lines(before: &[u64], after: &[u64]) -> u64 {
    assert_eq!(before.len(), after.len(), "snapshots of different spaces");
    before.iter().zip(after).filter(|(b, a)| b != a).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nowl::NoWl;

    #[test]
    fn identity_is_a_permutation() {
        check_permutation(&NoWl::new(128), 128);
    }

    #[test]
    #[should_panic(expected = "beyond device")]
    fn detects_out_of_range() {
        check_permutation(&NoWl::new(128), 64);
    }

    #[test]
    fn snapshot_diffing_counts_moves() {
        let a = vec![0u64, 1, 2, 3];
        let b = vec![0u64, 2, 1, 3];
        assert_eq!(moved_lines(&a, &b), 2);
        assert_eq!(moved_lines(&a, &a), 0);
    }
}
