//! PCM-S — the hybrid (HWL) scheme adopted by SAWL's data-exchange module.
//!
//! Seznec, "Towards Phase Change Memory as a Secure Main Memory" (WEST '10),
//! as described in the paper's §2.1 and Fig. 2(a): a mapping table tracks
//! each logical region's physical region number (`prn`) and an intra-region
//! offset parameter (`key`); within a region, the physical offset is
//! `lao XOR key`. Wear-leveling events exchange two regions wholesale and
//! re-randomize both keys, dispersing writes "across the entire memory by
//! randomly exchanging the regions and shifting the location of its lines
//! simultaneously".
//!
//! **Swapping period.** A region is exchanged after `period × S` writes to
//! it (S = lines per region); the exchange rewrites both regions, 2·S line
//! writes, so the steady-state overhead is `2/period` regardless of the
//! region size — matching the percentages on the paper's Fig. 4 legend
//! (period 8 → 25%, 16 → 12.5%, 32 → 6.25%, 64 → 3.1%).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sawl_nvm::{La, NvmDevice, Pa};

use crate::exchange::{draw_key, SwapCounters};
use crate::region::RegionGeometry;
use crate::WearLeveler;

/// The PCM-S hybrid wear-leveling scheme.
#[derive(Debug, Clone)]
pub struct PcmS {
    geo: RegionGeometry,
    /// logical region -> physical region
    prn: Vec<u32>,
    /// logical region -> intra-region XOR key
    key: Vec<u32>,
    /// physical region -> logical region (inverse)
    p2l: Vec<u32>,
    /// swapping-period counters (exchange after period * S writes)
    swaps: SwapCounters,
    rng: SmallRng,
    exchanges: u64,
}

impl PcmS {
    /// PCM-S over `lines` logical lines in regions of `region_lines`, with
    /// the given swapping period (writes per line between exchanges).
    pub fn new(lines: u64, region_lines: u64, period: u64, seed: u64) -> Self {
        let geo = RegionGeometry::new(lines, region_lines);
        let regions = geo.regions() as usize;
        let mut rng = SmallRng::seed_from_u64(seed);
        // Start with identity placement but random keys, as hardware would
        // after a randomized boot.
        let key: Vec<u32> =
            (0..regions).map(|_| draw_key(&mut rng, geo.region_lines()) as u32).collect();
        Self {
            geo,
            prn: (0..regions as u32).collect(),
            key,
            p2l: (0..regions as u32).collect(),
            swaps: SwapCounters::new(regions, period),
            rng,
            exchanges: 0,
        }
    }

    /// Region exchanges performed so far.
    pub fn exchanges(&self) -> u64 {
        self.exchanges
    }

    /// The region geometry in use.
    pub fn geometry(&self) -> RegionGeometry {
        self.geo
    }

    /// Writes to a region that trigger its exchange.
    pub fn exchange_threshold(&self) -> u64 {
        self.swaps.threshold(self.geo.region_lines())
    }

    /// Checkpoint the mapping tables, swap counters, RNG, and exchange
    /// count. Geometry and period are configuration, rebuilt from the spec.
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_u32_slice(&self.prn);
        w.put_u32_slice(&self.key);
        w.put_u32_slice(&self.p2l);
        self.swaps.ckpt_save(w);
        w.put_rng(self.rng.state());
        w.put_u64(self.exchanges);
    }

    /// Restore state saved by [`ckpt_save`](Self::ckpt_save) into an
    /// instance built from the same spec.
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        let regions = self.geo.regions() as usize;
        let prn = r.get_u32_vec()?;
        let key = r.get_u32_vec()?;
        let p2l = r.get_u32_vec()?;
        if prn.len() != regions || key.len() != regions || p2l.len() != regions {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "pcm-s: table sizes {}/{}/{} for {regions} regions",
                prn.len(),
                key.len(),
                p2l.len()
            )));
        }
        for (l, &p) in prn.iter().enumerate() {
            if p as usize >= regions || p2l[p as usize] as usize != l {
                return Err(sawl_ckpt::CkptError::Corrupt(format!(
                    "pcm-s tables are not inverse permutations at logical region {l}"
                )));
            }
        }
        if key.iter().any(|&k| u64::from(k) >= self.geo.region_lines()) {
            return Err(sawl_ckpt::CkptError::Corrupt("pcm-s: key exceeds region size".into()));
        }
        self.swaps.ckpt_restore(r)?;
        let rng = r.get_rng()?;
        self.prn = prn;
        self.key = key;
        self.p2l = p2l;
        self.rng = SmallRng::from_state(rng);
        self.exchanges = r.get_u64()?;
        Ok(())
    }

    /// Exchange logical region `a` with a uniformly random other region,
    /// re-randomizing both keys and charging 2·S overhead writes.
    fn exchange(&mut self, a: u32, dev: &mut NvmDevice) {
        let regions = self.geo.regions();
        if regions == 1 {
            // Degenerate: only re-randomize the key (still shifts lines).
            let s = self.geo.region_lines();
            self.key[0] = draw_key(&mut self.rng, s) as u32;
            dev.write_wl_range(0, s);
            self.swaps.reset(0);
            self.exchanges += 1;
            return;
        }
        let mut b = a;
        while b == a {
            b = self.rng.random_range(0..regions) as u32;
        }
        let s = self.geo.region_lines();
        let (pa, pb) = (self.prn[a as usize], self.prn[b as usize]);
        // Swap placements and draw fresh keys.
        self.prn[a as usize] = pb;
        self.prn[b as usize] = pa;
        self.p2l[pa as usize] = b;
        self.p2l[pb as usize] = a;
        self.key[a as usize] = draw_key(&mut self.rng, s) as u32;
        self.key[b as usize] = draw_key(&mut self.rng, s) as u32;
        // Every line of both physical regions is rewritten at its new home;
        // each is one contiguous burst on the device's range path.
        dev.write_wl_range(u64::from(pa) * s, s);
        dev.write_wl_range(u64::from(pb) * s, s);
        // Only the triggering region's counter resets (see SwapCounters::
        // reset), keeping the steady-state overhead exactly 2/period.
        self.swaps.reset(a as usize);
        self.exchanges += 1;
    }
}

impl WearLeveler for PcmS {
    fn name(&self) -> &'static str {
        "pcm-s"
    }

    fn logical_lines(&self) -> u64 {
        self.geo.lines()
    }

    #[inline]
    fn translate(&self, la: La) -> Pa {
        let lrn = self.geo.region_of(la) as usize;
        let lao = self.geo.offset_of(la);
        let pao = lao ^ u64::from(self.key[lrn]);
        u64::from(self.prn[lrn]) * self.geo.region_lines() + pao
    }

    fn write(&mut self, la: La, dev: &mut NvmDevice) -> Pa {
        let pa = self.translate(la);
        dev.write(pa);
        let lrn = self.geo.region_of(la) as usize;
        if self.swaps.record_write(lrn, self.geo.region_lines()) {
            self.exchange(lrn as u32, dev);
        }
        pa
    }

    fn write_run(&mut self, la: La, n: u64, dev: &mut NvmDevice) -> u64 {
        // Scalar-first, then batch: one `write` serves the next request
        // (and any exchange it triggers), then every following write up to
        // — but excluding — the next exchange trigger hits the same
        // physical line and is applied in closed form.
        let lrn = self.geo.region_of(la) as usize;
        let mut done = 0;
        while done < n {
            self.write(la, dev);
            done += 1;
            if dev.is_dead() || done >= n {
                break;
            }
            let gap = self.swaps.until_trigger(lrn, self.geo.region_lines()) - 1;
            let k = (n - done).min(gap);
            if k == 0 {
                continue;
            }
            let (applied, _) = dev.write_run(self.translate(la), k);
            self.swaps.add(lrn, applied);
            done += applied;
            if applied < k {
                break; // device died inside the batch
            }
        }
        done
    }

    fn quiet_writes(&self, la: La) -> u64 {
        // The mapping only moves at the region's exchange trigger; every
        // write strictly before it repeats the same physical line with no
        // overhead traffic. (`until_trigger` is trigger-inclusive, so the
        // trigger write itself is excluded.)
        let lrn = self.geo.region_of(la) as usize;
        self.swaps.until_trigger(lrn, self.geo.region_lines()) - 1
    }

    fn onchip_bits(&self) -> u64 {
        // Per logical region: prn + key + a 20-bit write counter (the
        // paper's §2.2 item 4 counts prn and key; the counter is required
        // to trigger exchanges).
        let entry = u64::from(self.geo.region_bits()) + u64::from(self.geo.offset_bits()) + 20;
        self.geo.regions() * entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_permutation, mapping_snapshot, moved_lines};
    use sawl_nvm::NvmConfig;

    fn dev(lines: u64, endurance: u32) -> NvmDevice {
        NvmDevice::new(
            NvmConfig::builder()
                .lines(lines)
                .banks(1)
                .endurance(endurance)
                .spare_shift(4)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn translation_uses_xor_key_within_region() {
        let wl = PcmS::new(256, 16, 8, 1);
        // Within one region, translated offsets must be a permutation of
        // the region's offsets.
        let base_region = wl.translate(0) >> 4;
        let mut offsets: Vec<u64> = (0..16).map(|la| wl.translate(la) & 15).collect();
        for la in 0..16 {
            assert_eq!(wl.translate(la) >> 4, base_region, "la {la} left its region");
        }
        offsets.sort_unstable();
        assert_eq!(offsets, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn is_permutation_initially_and_after_traffic() {
        let mut wl = PcmS::new(1 << 10, 1 << 4, 4, 2);
        check_permutation(&wl, 1 << 10);
        let mut d = dev(1 << 10, 1_000_000);
        let mut x = 777u64;
        for _ in 0..100_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            wl.write(x % (1 << 10), &mut d);
        }
        assert!(wl.exchanges() > 0);
        check_permutation(&wl, 1 << 10);
    }

    #[test]
    fn exchange_fires_at_threshold_and_costs_2s() {
        let mut wl = PcmS::new(256, 16, 4, 3);
        let mut d = dev(256, 1_000_000);
        let threshold = wl.exchange_threshold(); // 4 * 16 = 64
        assert_eq!(threshold, 64);
        for _ in 0..threshold {
            wl.write(5, &mut d);
        }
        assert_eq!(wl.exchanges(), 1);
        assert_eq!(d.wear().overhead_writes, 32); // 2 regions * 16 lines
    }

    #[test]
    fn exchange_moves_exactly_two_regions() {
        let mut wl = PcmS::new(256, 16, 4, 4);
        let mut d = dev(256, 1_000_000);
        let before = mapping_snapshot(&wl);
        for _ in 0..wl.exchange_threshold() {
            wl.write(0, &mut d);
        }
        let after = mapping_snapshot(&wl);
        let moved = moved_lines(&before, &after);
        // Both exchanged regions move entirely (keys re-randomized); a line
        // may coincidentally keep its address, so allow a little slack.
        assert!((28..=32).contains(&moved), "moved {moved}");
    }

    #[test]
    fn raa_migrates_across_whole_memory() {
        let mut wl = PcmS::new(1 << 12, 4, 8, 5);
        let mut d = dev(1 << 12, 1_000_000);
        let mut regions_seen = std::collections::HashSet::new();
        for _ in 0..200_000 {
            wl.write(0, &mut d);
            regions_seen.insert(wl.translate(0) >> 2);
        }
        // 200k writes / (8*4) per exchange = ~6250 exchanges; the hot
        // region must have visited a large share of the 1024 regions.
        assert!(regions_seen.len() > 256, "visited only {} regions", regions_seen.len());
    }

    #[test]
    fn overhead_fraction_is_two_over_period() {
        for period in [8u64, 16, 32, 64] {
            let mut wl = PcmS::new(1 << 10, 1 << 3, period, 6);
            let mut d = dev(1 << 10, u32::MAX);
            let n = 500_000;
            let mut x = 9u64;
            for _ in 0..n {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                wl.write(x % (1 << 10), &mut d);
            }
            let measured = d.wear().overhead_writes as f64 / n as f64;
            let nominal = 2.0 / period as f64; // overhead writes per demand write
            assert!(
                (measured - nominal).abs() < 0.01,
                "period {period}: measured {measured}, nominal {nominal}"
            );
        }
    }

    #[test]
    fn better_lifetime_with_more_regions_under_attack() {
        // The paper's Fig. 4 trend: more regions (smaller region size) ->
        // longer lifetime under BPA-like traffic. RAA is the extreme case.
        let life = |region_lines: u64| {
            let mut wl = PcmS::new(1 << 10, region_lines, 16, 7);
            let mut d = dev(1 << 10, 2_000);
            while !d.is_dead() {
                wl.write(0, &mut d);
            }
            d.normalized_lifetime()
        };
        let coarse = life(1 << 7);
        let fine = life(1 << 2);
        assert!(fine > coarse, "fine {fine} <= coarse {coarse}");
    }

    #[test]
    fn single_region_rekeys_without_partner() {
        let mut wl = PcmS::new(64, 64, 2, 8);
        let mut d = dev(64, 1_000_000);
        for _ in 0..128 {
            wl.write(0, &mut d);
        }
        assert_eq!(wl.exchanges(), 1);
        check_permutation(&wl, 64);
    }
}
