//! Region-Based Start-Gap (RBSG) — the rotation-based AWL representative.
//!
//! Qureshi et al., "Enhancing lifetime and security of PCM-based main
//! memory with start-gap wear leveling" (MICRO '09). Each region owns one
//! spare *gap* slot. Every `period` writes to a region, the gap moves one
//! slot down (one line is copied into the gap), so over a full round every
//! line of the region shifts by one slot and wear rotates through the
//! region.
//!
//! The hardware implementation keeps only two registers per region (START
//! and GAP); translation is pure arithmetic. We keep the same O(1) state —
//! `rounds` plus the current gap position — and derive the slot of a
//! logical line algebraically; the `matches_reference_rotation` test checks
//! the algebra against an explicitly simulated data array.
//!
//! The region a logical line belongs to never changes ("static address
//! mapping"), which is why the paper rules RBSG out under RAA: the attacked
//! region "receives an extremely, disproportionally large number of writes,
//! and fails in several hours" (§2.2). The `raa_confines_wear_to_one_region`
//! test shows the failure mode.

use sawl_nvm::{La, NvmDevice, Pa};

use crate::WearLeveler;

/// One region's rotation state.
#[derive(Debug, Clone, Copy)]
struct RegionState {
    /// Completed rounds, modulo slots (= N+1).
    rounds: u64,
    /// Current gap slot in [0, N].
    gap: u64,
    /// Demand writes to this region since the last gap move.
    writes: u64,
}

/// Region-based Start-Gap.
#[derive(Debug, Clone)]
pub struct StartGap {
    /// Logical lines per region (N). Each region owns N+1 physical slots.
    region_lines: u64,
    regions: u64,
    period: u64,
    state: Vec<RegionState>,
    gap_moves: u64,
}

impl StartGap {
    /// Create with `regions` regions of `region_lines` logical lines each;
    /// the gap advances after every `period` writes to a region.
    ///
    /// The scheme needs `regions * (region_lines + 1)` physical lines.
    pub fn new(regions: u64, region_lines: u64, period: u64) -> Self {
        assert!(regions > 0 && region_lines > 0);
        assert!(period > 0, "gap period must be non-zero");
        let init = RegionState { rounds: 0, gap: region_lines, writes: 0 };
        Self { region_lines, regions, period, state: vec![init; regions as usize], gap_moves: 0 }
    }

    /// Physical lines the device must provide.
    pub fn physical_lines(&self) -> u64 {
        self.regions * (self.region_lines + 1)
    }

    /// Total gap movements performed (each is one overhead line write).
    pub fn gap_moves(&self) -> u64 {
        self.gap_moves
    }

    /// Number of physical slots per region (N + 1).
    #[inline]
    fn slots(&self) -> u64 {
        self.region_lines + 1
    }

    /// Checkpoint the per-region rotation state and the gap-move counter.
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_u64(self.gap_moves);
        w.put_u64(self.state.len() as u64);
        for st in &self.state {
            w.put_u64(st.rounds);
            w.put_u64(st.gap);
            w.put_u64(st.writes);
        }
    }

    /// Restore state saved by [`ckpt_save`](Self::ckpt_save) into an
    /// instance built from the same spec.
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        let gap_moves = r.get_u64()?;
        let count = r.get_u64()?;
        if count != self.regions {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "start-gap: {count} regions in checkpoint, {} in instance",
                self.regions
            )));
        }
        let m = self.slots();
        let mut state = Vec::with_capacity(count as usize);
        for i in 0..count {
            let rounds = r.get_u64()?;
            let gap = r.get_u64()?;
            let writes = r.get_u64()?;
            if rounds >= m || gap >= m || writes >= self.period {
                return Err(sawl_ckpt::CkptError::Corrupt(format!(
                    "start-gap region {i}: rounds {rounds}, gap {gap}, writes {writes} \
                     out of range (slots {m}, period {})",
                    self.period
                )));
            }
            state.push(RegionState { rounds, gap, writes });
        }
        self.state = state;
        self.gap_moves = gap_moves;
        Ok(())
    }

    /// Gap position at the start of the current round.
    #[inline]
    fn round_start_gap(&self, st: &RegionState) -> u64 {
        (self.region_lines + st.rounds) % self.slots()
    }

    /// Slot of logical offset `local` within a region in state `st`.
    #[inline]
    fn slot_of(&self, st: &RegionState, local: u64) -> u64 {
        let m = self.slots();
        let s0 = (local + st.rounds) % m;
        // Lines whose round-start slot lies in [gap, round_start_gap) —
        // walking upward on the ring — have already been shifted this round.
        let lo = st.gap;
        let hi = self.round_start_gap(st);
        let moved = if lo == hi {
            false // round just started, nothing shifted yet
        } else if lo < hi {
            s0 >= lo && s0 < hi
        } else {
            s0 >= lo || s0 < hi
        };
        if moved {
            (s0 + 1) % m
        } else {
            s0
        }
    }

    /// Advance the gap of `region` by one slot, charging the copy.
    fn move_gap(&mut self, region: u64, dev: &mut NvmDevice) {
        let m = self.slots();
        let base = region * m;
        let st = &mut self.state[region as usize];
        // The line at slot gap-1 moves into the gap slot.
        let dest = st.gap;
        st.gap = (st.gap + m - 1) % m;
        dev.write_wl(base + dest);
        self.gap_moves += 1;
        // Round completes when the gap has travelled N slots.
        let start = (self.region_lines + st.rounds) % m;
        if st.gap == (start + 1) % m {
            st.rounds = (st.rounds + 1) % m;
        }
    }
}

impl WearLeveler for StartGap {
    fn name(&self) -> &'static str {
        "rbsg"
    }

    fn logical_lines(&self) -> u64 {
        self.regions * self.region_lines
    }

    #[inline]
    fn translate(&self, la: La) -> Pa {
        let region = la / self.region_lines;
        let local = la % self.region_lines;
        let st = &self.state[region as usize];
        region * self.slots() + self.slot_of(st, local)
    }

    fn write(&mut self, la: La, dev: &mut NvmDevice) -> Pa {
        let pa = self.translate(la);
        dev.write(pa);
        let region = la / self.region_lines;
        self.state[region as usize].writes += 1;
        if self.state[region as usize].writes >= self.period {
            self.state[region as usize].writes = 0;
            self.move_gap(region, dev);
        }
        pa
    }

    fn quiet_writes(&self, la: La) -> u64 {
        // The region's rotation only advances at the gap-move trigger;
        // every write strictly before it repeats the same slot.
        let region = (la / self.region_lines) as usize;
        self.period.saturating_sub(self.state[region].writes + 1)
    }

    fn onchip_bits(&self) -> u64 {
        // START + GAP + write counter per region.
        let slot_bits = 64 - self.slots().leading_zeros() as u64;
        self.regions * (2 * slot_bits + 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_permutation;
    use sawl_nvm::NvmConfig;

    fn dev_for(wl: &StartGap, endurance: u32) -> NvmDevice {
        NvmDevice::new(
            NvmConfig::builder()
                .lines(wl.physical_lines())
                .banks(1)
                .endurance(endurance)
                .spare_shift(2)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn initial_mapping_is_identity_with_gap_at_top() {
        let wl = StartGap::new(2, 8, 4);
        for la in 0..8 {
            assert_eq!(wl.translate(la), la);
        }
        // Second region's lines start after the first region's 9 slots.
        for la in 8..16 {
            assert_eq!(wl.translate(la), la + 1);
        }
    }

    /// Simulate the data movement explicitly and check the algebraic
    /// translation against it after every single gap move for several full
    /// rounds.
    #[test]
    fn matches_reference_rotation() {
        let n = 7u64; // deliberately odd region size
        let mut wl = StartGap::new(1, n, 1);
        let mut d = dev_for(&wl, 1_000_000);
        // slots: which logical line each physical slot holds (u64::MAX = gap)
        let mut slots: Vec<u64> = (0..n).chain(std::iter::once(u64::MAX)).collect();
        for step in 0..200 {
            // One demand write triggers one gap move (period = 1).
            wl.write(0, &mut d);
            // Mirror the move in the reference array: the line below the
            // gap moves into the gap.
            let gap_pos = slots.iter().position(|&x| x == u64::MAX).unwrap();
            let src = (gap_pos + slots.len() - 1) % slots.len();
            slots[gap_pos] = slots[src];
            slots[src] = u64::MAX;
            // Check every logical line against the algebra.
            for la in 0..n {
                let expect = slots.iter().position(|&x| x == la).unwrap() as u64;
                assert_eq!(wl.translate(la), expect, "step {step}: la {la} expected slot {expect}");
            }
        }
    }

    #[test]
    fn stays_a_permutation_under_traffic() {
        let mut wl = StartGap::new(4, 16, 3);
        let mut d = dev_for(&wl, 1_000_000);
        let mut x = 0x12345678u64;
        for _ in 0..3000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            wl.write(x % wl.logical_lines(), &mut d);
        }
        check_permutation(&wl, wl.physical_lines());
    }

    #[test]
    fn gap_move_charges_one_write() {
        let mut wl = StartGap::new(1, 8, 4);
        let mut d = dev_for(&wl, 1_000_000);
        for _ in 0..4 {
            wl.write(0, &mut d);
        }
        assert_eq!(wl.gap_moves(), 1);
        assert_eq!(d.wear().overhead_writes, 1);
    }

    #[test]
    fn full_round_rotates_region_by_one() {
        let n = 8u64;
        let mut wl = StartGap::new(1, n, 1);
        let mut d = dev_for(&wl, 1_000_000);
        // N+1 moves complete one round plus... after N moves every line has
        // shifted one slot; write N times to trigger N moves.
        for _ in 0..n {
            wl.write(0, &mut d);
        }
        for la in 0..n {
            assert_eq!(wl.translate(la), (la + 1) % (n + 1), "la {la}");
        }
    }

    #[test]
    fn rotation_spreads_wear_within_region_under_raa() {
        let n = 15u64;
        let mut wl = StartGap::new(1, n, 2);
        let mut d = dev_for(&wl, 1_000_000);
        for _ in 0..20_000 {
            wl.write(0, &mut d);
        }
        // Every slot of the region should have received wear.
        let counts = d.write_counts();
        assert!(counts.iter().all(|&c| c > 0), "unworn slot: {counts:?}");
        // And no slot should hold more than ~3x the mean.
        let mean = counts.iter().map(|&c| u64::from(c)).sum::<u64>() as f64 / counts.len() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / mean < 3.5, "max {max} vs mean {mean}");
    }

    #[test]
    fn raa_confines_wear_to_one_region() {
        // The paper's point: the attacked region takes all the wear.
        let mut wl = StartGap::new(8, 15, 2);
        let mut d = dev_for(&wl, 500);
        while !d.is_dead() {
            wl.write(0, &mut d);
        }
        // All failed lines are inside region 0's 16 slots.
        let counts = d.write_counts();
        let outside: u64 = counts[16..].iter().map(|&c| u64::from(c)).sum();
        assert_eq!(outside, 0, "wear escaped the attacked region");
        // The region's 16 slots plus the 32 spares bound the attainable
        // lifetime at (16+32)*Wmax / (128*Wmax) = 0.375 of ideal.
        assert!(d.normalized_lifetime() <= 0.375);
    }

    #[test]
    fn reads_do_not_advance_the_gap() {
        let mut wl = StartGap::new(1, 8, 1);
        let mut d = dev_for(&wl, 1_000_000);
        for la in 0..8 {
            wl.read(la, &mut d);
        }
        assert_eq!(wl.gap_moves(), 0);
    }
}
