//! MWSR — multi-way wear leveling, the second hybrid (HWL) comparator.
//!
//! Yu & Du, "Increasing Endurance and Security of Phase-Change Memory with
//! Multi-Way Wear-Leveling" (IEEE TC '14), as summarized in the paper's
//! §2.1 and Fig. 2(b): regions migrate *gradually*. A logical region keeps
//! two placements — the previous round's (`prev`) and the current round's
//! (`cur`) — and its lines move one at a time from the old placement to the
//! new one; a per-region pointer tracks how far the migration has
//! progressed, so translation consults the old or the new placement
//! depending on the line's offset.
//!
//! Our implementation rotates migrations through one spare physical region
//! (the "free way"): a region beginning migration targets the current
//! spare; when its last line lands, its old physical region becomes the new
//! spare. One migration is active at a time (a single migration engine in
//! the controller); wear-leveling triggers that arrive while the engine is
//! busy advance the active migration.
//!
//! Each step moves one line (one overhead write), so the steady-state
//! overhead is `1/period` — half of PCM-S's. The flip side, highlighted by
//! the paper's §2.2 item 4 and Fig. 5, is the *metadata*: two placements
//! and two keys per region roughly double the per-entry storage, so a fixed
//! on-chip cache affords MWSR only half as many regions as PCM-S.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sawl_nvm::{La, NvmDevice, Pa};

use crate::region::RegionGeometry;
use crate::WearLeveler;

/// Per-region placement (physical region + intra-region XOR key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Placement {
    prn: u32,
    key: u32,
}

/// The MWSR hybrid wear-leveling scheme.
#[derive(Debug, Clone)]
pub struct Mwsr {
    geo: RegionGeometry,
    /// Completed placement of each logical region.
    cur: Vec<Placement>,
    /// Migration target of the active region (valid when `active` matches).
    next: Placement,
    /// Logical region currently migrating, if any.
    active: Option<u32>,
    /// Number of line offsets already moved for the active migration;
    /// offsets `< migrated` translate through `next`.
    migrated: u64,
    /// The physical region currently unmapped (migration target).
    spare: u32,
    /// Demand writes per logical region since its last completed migration.
    ctr: Vec<u32>,
    /// Writes to a region per migration step.
    period: u64,
    rng: SmallRng,
    migrations_completed: u64,
    /// Alternate migration starts between the triggering (hot) region and a
    /// round-robin sweep, modelling MWSR's rounds in which *every* region
    /// periodically rotates to a new way. Without the sweep the single
    /// spare would ping-pong a hot region between two physical locations.
    rotate_next: bool,
    rr_victim: u32,
}

impl Mwsr {
    /// MWSR over `lines` logical lines in regions of `region_lines` with
    /// one migration step per `period` writes to a region.
    ///
    /// The device must provide `lines + region_lines` physical lines (one
    /// spare region).
    pub fn new(lines: u64, region_lines: u64, period: u64, seed: u64) -> Self {
        assert!(period > 0, "period must be non-zero");
        let geo = RegionGeometry::new(lines, region_lines);
        let regions = geo.regions() as usize;
        let mut rng = SmallRng::seed_from_u64(seed);
        let cur: Vec<Placement> = (0..regions)
            .map(|i| Placement {
                prn: i as u32,
                key: (rng.random::<u64>() & (geo.region_lines() - 1)) as u32,
            })
            .collect();
        Self {
            geo,
            cur,
            next: Placement { prn: 0, key: 0 },
            active: None,
            migrated: 0,
            spare: regions as u32, // the extra physical region
            ctr: vec![0; regions],
            period,
            rng,
            migrations_completed: 0,
            rotate_next: false,
            rr_victim: 0,
        }
    }

    /// Physical lines the device must provide (logical + one spare region).
    pub fn physical_lines(&self) -> u64 {
        self.geo.lines() + self.geo.region_lines()
    }

    /// Completed region migrations.
    pub fn migrations_completed(&self) -> u64 {
        self.migrations_completed
    }

    /// Physical address of logical offset `off` under placement `p`.
    #[inline]
    fn place(&self, p: Placement, off: u64) -> u64 {
        u64::from(p.prn) * self.geo.region_lines() + (off ^ u64::from(p.key))
    }

    /// Checkpoint the placements, migration engine, counters, and RNG.
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_u64(self.cur.len() as u64);
        for p in &self.cur {
            w.put_u32(p.prn);
            w.put_u32(p.key);
        }
        w.put_u32(self.next.prn);
        w.put_u32(self.next.key);
        w.put_opt_u64(self.active.map(u64::from));
        w.put_u64(self.migrated);
        w.put_u32(self.spare);
        w.put_u32_slice(&self.ctr);
        w.put_rng(self.rng.state());
        w.put_u64(self.migrations_completed);
        w.put_bool(self.rotate_next);
        w.put_u32(self.rr_victim);
    }

    /// Restore state saved by [`ckpt_save`](Self::ckpt_save) into an
    /// instance built from the same spec.
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        let regions = self.geo.regions();
        let count = r.get_u64()?;
        if count != regions {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "mwsr: {count} placements in checkpoint, {regions} regions in instance"
            )));
        }
        let mut cur = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let prn = r.get_u32()?;
            let key = r.get_u32()?;
            cur.push(Placement { prn, key });
        }
        let next = Placement { prn: r.get_u32()?, key: r.get_u32()? };
        let active = r.get_opt_u64()?;
        let migrated = r.get_u64()?;
        let spare = r.get_u32()?;
        let ctr = r.get_u32_vec()?;
        let rng = r.get_rng()?;
        let migrations_completed = r.get_u64()?;
        let rotate_next = r.get_bool()?;
        let rr_victim = r.get_u32()?;
        // One spare region: valid prns span [0, regions].
        if cur.iter().any(|p| u64::from(p.prn) > regions)
            || u64::from(spare) > regions
            || ctr.len() != regions as usize
            || u64::from(rr_victim) >= regions
        {
            return Err(sawl_ckpt::CkptError::Corrupt("mwsr: placement state malformed".into()));
        }
        let active = match active {
            None => {
                // An idle engine is either fresh (no migration yet) or
                // parked right after a completed pass, which leaves
                // `migrated` at the full region length until the next
                // migration rearms it.
                if migrated != 0 && migrated != self.geo.region_lines() {
                    return Err(sawl_ckpt::CkptError::Corrupt(
                        "mwsr: idle engine with mid-flight migration progress".into(),
                    ));
                }
                None
            }
            Some(lrn) => {
                if lrn >= regions || migrated >= self.geo.region_lines() {
                    return Err(sawl_ckpt::CkptError::Corrupt(format!(
                        "mwsr: active migration of region {lrn} at offset {migrated} \
                         out of range"
                    )));
                }
                Some(lrn as u32)
            }
        };
        self.cur = cur;
        self.next = next;
        self.active = active;
        self.migrated = migrated;
        self.spare = spare;
        self.ctr = ctr;
        self.rng = SmallRng::from_state(rng);
        self.migrations_completed = migrations_completed;
        self.rotate_next = rotate_next;
        self.rr_victim = rr_victim;
        Ok(())
    }

    /// Advance the active migration by one line, or start a migration for
    /// `trigger_region` if the engine is idle.
    fn step(&mut self, trigger_region: u32, dev: &mut NvmDevice) {
        let lrn = match self.active {
            Some(lrn) => lrn,
            None => {
                // Begin a migration into the spare. Alternate between the
                // triggering (hot) region and the round-robin victim so the
                // spare keeps rotating through the whole memory.
                let target = if self.rotate_next {
                    let v = self.rr_victim;
                    self.rr_victim = (self.rr_victim + 1) % self.geo.regions() as u32;
                    v
                } else {
                    trigger_region
                };
                self.rotate_next = !self.rotate_next;
                self.next = Placement {
                    prn: self.spare,
                    key: (self.rng.random::<u64>() & (self.geo.region_lines() - 1)) as u32,
                };
                self.active = Some(target);
                self.migrated = 0;
                target
            }
        };
        // Move the next line to its new home (one overhead write).
        let off = self.migrated;
        dev.write_wl(self.place(self.next, off));
        self.migrated += 1;
        if self.migrated == self.geo.region_lines() {
            // Migration complete: the old placement's region becomes spare.
            let old = self.cur[lrn as usize];
            self.cur[lrn as usize] = self.next;
            self.spare = old.prn;
            self.active = None;
            self.ctr[lrn as usize] = 0;
            self.migrations_completed += 1;
        }
    }
}

impl WearLeveler for Mwsr {
    fn name(&self) -> &'static str {
        "mwsr"
    }

    fn logical_lines(&self) -> u64 {
        self.geo.lines()
    }

    #[inline]
    fn translate(&self, la: La) -> Pa {
        let lrn = self.geo.region_of(la) as u32;
        let off = self.geo.offset_of(la);
        if self.active == Some(lrn) && off < self.migrated {
            self.place(self.next, off)
        } else {
            self.place(self.cur[lrn as usize], off)
        }
    }

    fn write(&mut self, la: La, dev: &mut NvmDevice) -> Pa {
        let pa = self.translate(la);
        dev.write(pa);
        let lrn = self.geo.region_of(la) as usize;
        self.ctr[lrn] += 1;
        if u64::from(self.ctr[lrn]) >= self.period {
            self.ctr[lrn] = 0;
            self.step(lrn as u32, dev);
        }
        pa
    }

    fn write_run(&mut self, la: La, n: u64, dev: &mut NvmDevice) -> u64 {
        // The mapping of `la` only changes in `step`, which fires every
        // `period` writes to its region: serve one write scalar (with any
        // step it triggers), then apply the rest of the pre-step gap in
        // closed form on the device.
        let lrn = self.geo.region_of(la) as usize;
        let mut done = 0;
        while done < n {
            self.write(la, dev);
            done += 1;
            if dev.is_dead() || done >= n {
                break;
            }
            let gap = (self.period - u64::from(self.ctr[lrn])).max(1) - 1;
            let k = (n - done).min(gap);
            if k == 0 {
                continue;
            }
            let (applied, _) = dev.write_run(self.translate(la), k);
            self.ctr[lrn] += applied as u32;
            done += applied;
            if applied < k {
                break;
            }
        }
        done
    }

    fn quiet_writes(&self, la: La) -> u64 {
        // Only `step` (every `period` writes to the region) can move the
        // mapping or write lines; everything strictly before the trigger
        // write is quiet.
        let lrn = self.geo.region_of(la) as usize;
        (self.period - u64::from(self.ctr[lrn])).max(1) - 1
    }

    fn onchip_bits(&self) -> u64 {
        // Per region: two placements (prn + key each) + a 20-bit counter —
        // the "two physical addresses, two offset addresses and a write
        // counter" of the paper's §2.2 item 4.
        let addr = u64::from(self.geo.region_bits()) + u64::from(self.geo.offset_bits());
        self.geo.regions() * (2 * addr + 20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_permutation;
    use sawl_nvm::NvmConfig;

    fn dev_for(wl: &Mwsr, endurance: u32) -> NvmDevice {
        NvmDevice::new(
            NvmConfig::builder()
                .lines(wl.physical_lines())
                .banks(1)
                .endurance(endurance)
                .spare_shift(4)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn initial_mapping_is_a_permutation() {
        let wl = Mwsr::new(256, 16, 8, 1);
        check_permutation(&wl, wl.physical_lines());
    }

    #[test]
    fn permutation_holds_mid_migration() {
        let mut wl = Mwsr::new(256, 16, 2, 2);
        let mut d = dev_for(&wl, 1_000_000);
        // Trigger a few steps so a migration is active but incomplete.
        for _ in 0..6 {
            wl.write(3, &mut d);
        }
        assert!(wl.active.is_some());
        assert!(wl.migrated > 0 && wl.migrated < 16);
        check_permutation(&wl, wl.physical_lines());
    }

    #[test]
    fn migration_completes_and_frees_old_region() {
        let mut wl = Mwsr::new(256, 16, 1, 3);
        let mut d = dev_for(&wl, 1_000_000);
        let old_prn = wl.cur[0].prn;
        // period 1: every write steps the engine; 16 steps complete one
        // migration of region 0.
        for _ in 0..16 {
            wl.write(0, &mut d);
        }
        assert_eq!(wl.migrations_completed(), 1);
        assert_eq!(wl.spare, old_prn);
        assert_ne!(wl.cur[0].prn, old_prn);
        check_permutation(&wl, wl.physical_lines());
    }

    #[test]
    fn busy_engine_defers_other_regions() {
        let mut wl = Mwsr::new(256, 16, 2, 4);
        let mut d = dev_for(&wl, 1_000_000);
        // Start migrating region 0.
        wl.write(0, &mut d);
        wl.write(0, &mut d);
        assert_eq!(wl.active, Some(0));
        // Triggers from region 5 advance region 0's migration.
        for _ in 0..8 {
            wl.write(5 * 16, &mut d);
        }
        assert!(wl.active == Some(0) || wl.migrations_completed() == 1);
        check_permutation(&wl, wl.physical_lines());
    }

    #[test]
    fn overhead_is_one_per_period() {
        let mut wl = Mwsr::new(1 << 10, 1 << 3, 16, 5);
        let mut d = dev_for(&wl, u32::MAX);
        let n = 200_000u64;
        let mut x = 3u64;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            wl.write(x % (1 << 10), &mut d);
        }
        let frac = d.wear().overhead_writes as f64 / n as f64;
        assert!((frac - 1.0 / 16.0).abs() < 0.01, "overhead {frac}");
    }

    #[test]
    fn raa_migrates_hot_line_across_memory() {
        let mut wl = Mwsr::new(1 << 12, 4, 8, 6);
        let mut d = dev_for(&wl, 1_000_000);
        let mut homes = std::collections::HashSet::new();
        for _ in 0..200_000 {
            wl.write(0, &mut d);
            homes.insert(wl.translate(0));
        }
        assert!(homes.len() > 100, "hot line visited only {} homes", homes.len());
    }

    #[test]
    fn metadata_is_roughly_double_pcms() {
        let mwsr = Mwsr::new(1 << 12, 1 << 4, 8, 7).onchip_bits();
        let pcms = crate::PcmS::new(1 << 12, 1 << 4, 8, 7).onchip_bits();
        let ratio = mwsr as f64 / pcms as f64;
        assert!((1.3..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn lifetime_comparable_to_pcms_under_raa() {
        // §2.2 item 3: "PCM-S and MWSR algorithms perform similarly in the
        // lifetime measure".
        let life_mwsr = {
            let mut wl = Mwsr::new(1 << 10, 4, 16, 8);
            let mut d = dev_for(&wl, 2_000);
            while !d.is_dead() {
                wl.write(0, &mut d);
            }
            d.normalized_lifetime()
        };
        let life_pcms = {
            let mut wl = crate::PcmS::new(1 << 10, 4, 16, 8);
            let mut d = NvmDevice::new(
                NvmConfig::builder()
                    .lines(1 << 10)
                    .banks(1)
                    .endurance(2_000)
                    .spare_shift(4)
                    .build()
                    .unwrap(),
            );
            while !d.is_dead() {
                wl.write(0, &mut d);
            }
            d.normalized_lifetime()
        };
        let ratio = life_mwsr / life_pcms;
        assert!((0.4..2.5).contains(&ratio), "mwsr {life_mwsr} vs pcm-s {life_pcms}");
    }

    #[test]
    fn ckpt_round_trips_the_idle_state_after_a_completed_migration() {
        let mut wl = Mwsr::new(256, 16, 2, 4);
        let mut d = dev_for(&wl, 1_000_000);
        // Drive one full migration: the engine parks with `active == None`
        // but `migrated` left at the full region length — a state an
        // earlier restore validation wrongly rejected as corrupt.
        while wl.migrations_completed() == 0 {
            wl.write(0, &mut d);
        }
        while wl.active.is_some() {
            wl.write(0, &mut d);
        }
        assert_eq!(wl.migrated, wl.geo.region_lines(), "completion leaves migrated parked");

        let mut w = sawl_ckpt::Writer::new();
        wl.ckpt_save(&mut w);
        let payload = w.into_payload();
        let mut twin = Mwsr::new(256, 16, 2, 4);
        let mut r = sawl_ckpt::Reader::new(&payload);
        twin.ckpt_restore(&mut r).unwrap();
        r.finish().unwrap();
        let mut w2 = sawl_ckpt::Writer::new();
        twin.ckpt_save(&mut w2);
        assert_eq!(payload, w2.into_payload(), "restore lost state");
    }
}
