//! Security Refresh — the randomized-algebraic (AWL) representative.
//!
//! Seong et al., "Security Refresh: prevent malicious wear-out and increase
//! durability for phase-change memory with dynamically randomized address
//! mapping" (ISCA '10). A Security Refresh (SR) region maps address `a` to
//! `a XOR key`. The key is re-randomized gradually: a *refresh pointer*
//! sweeps the region; addresses already swept map with the current key
//! `k1`, the rest still map with the previous key `k0`. One refresh step
//! swaps a pair of lines (two line writes) and retires **two** addresses
//! (`p` and its partner `p ^ k0 ^ k1`), so half the steps find their pair
//! already done and are free.
//!
//! The paper evaluates the **two-level** configuration ([`Tlsr`], Fig. 3):
//! an inner SR per region randomizes the intra-region offset, and an outer
//! SR over the entire space randomizes the *region bits* of each line, so
//! lines migrate across regions. The outer swapping period is fixed at 32
//! and the inner varies (8–64), matching §2.2: total write overhead is
//! `1/inner + 1/32` (each step costs 2 writes but fires for half the
//! addresses), i.e. 15.6% / 9.4% / 6.25% / 4.7% for inner periods
//! 8/16/32/64 — exactly the percentages on the paper's Fig. 3 legend.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sawl_nvm::{La, NvmDevice, Pa};

use crate::region::RegionGeometry;
use crate::WearLeveler;

/// One Security Refresh instance over a power-of-two address space, with
/// keys restricted to `key_mask` (so the outer level of TLSR can shuffle
/// only the region bits).
#[derive(Debug, Clone)]
pub struct SrInstance {
    size: u64,
    key_mask: u64,
    k0: u64,
    k1: u64,
    /// Refresh pointer: addresses `< rp` (or with partner `< rp`) have been
    /// remapped to `k1` this round.
    rp: u64,
}

impl SrInstance {
    /// New instance over `size` (power-of-two) addresses; keys drawn from
    /// `key_mask`. The initial mapping is the identity.
    pub fn new(size: u64, key_mask: u64, rng: &mut impl Rng) -> Self {
        assert!(size.is_power_of_two(), "SR size must be a power of two");
        assert!(key_mask < size, "key mask must fit the address space");
        let k1 = rng.random::<u64>() & key_mask;
        Self { size, key_mask, k0: 0, k1, rp: 0 }
    }

    /// Whether `a` has been remapped to the current key this round.
    #[inline]
    fn refreshed(&self, a: u64) -> bool {
        a < self.rp || (a ^ self.k0 ^ self.k1) < self.rp
    }

    /// Current mapping of address `a`.
    #[inline]
    pub fn map(&self, a: u64) -> u64 {
        debug_assert!(a < self.size);
        a ^ if self.refreshed(a) { self.k1 } else { self.k0 }
    }

    /// Perform one refresh step. Returns the pair of slots whose contents
    /// were exchanged (each costs one line write), or `None` when the
    /// pointer's pair was already handled earlier in the round.
    pub fn step(&mut self, rng: &mut impl Rng) -> Option<(u64, u64)> {
        let p = self.rp;
        let partner = p ^ self.k0 ^ self.k1;
        // Swap only if this pair hasn't been handled (partner ahead of the
        // pointer) and the keys actually differ.
        let result = if partner > p {
            // Data of `p` moves from p^k0 to p^k1; the occupant (partner's
            // data) moves the other way. Both slots are written.
            Some((p ^ self.k0, p ^ self.k1))
        } else {
            None
        };
        self.rp += 1;
        if self.rp == self.size {
            // Round complete: the old key retires, draw a fresh one.
            self.k0 = self.k1;
            self.k1 = rng.random::<u64>() & self.key_mask;
            self.rp = 0;
        }
        result
    }

    /// Size of the instance's address space.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Checkpoint the keys and refresh pointer (size and key mask are
    /// configuration, rebuilt from the spec).
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_u64(self.k0);
        w.put_u64(self.k1);
        w.put_u64(self.rp);
    }

    /// Restore state saved by [`ckpt_save`](Self::ckpt_save) into an
    /// instance built with the same size and key mask.
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        let k0 = r.get_u64()?;
        let k1 = r.get_u64()?;
        let rp = r.get_u64()?;
        if k0 & !self.key_mask != 0 || k1 & !self.key_mask != 0 {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "security-refresh: keys {k0:#x}/{k1:#x} exceed mask {:#x}",
                self.key_mask
            )));
        }
        if rp >= self.size {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "security-refresh: refresh pointer {rp} out of range for size {}",
                self.size
            )));
        }
        self.k0 = k0;
        self.k1 = k1;
        self.rp = rp;
        Ok(())
    }
}

/// Single-level Security Refresh as a standalone wear leveler (one SR
/// region spanning the whole device). Also the building block reused by the
/// tiered architecture to wear-level the translation lines.
#[derive(Debug, Clone)]
pub struct SecurityRefresh {
    sr: SrInstance,
    period: u64,
    writes: u64,
    rng: SmallRng,
    refresh_steps: u64,
}

impl SecurityRefresh {
    /// SR over `lines` (power of two) with one refresh step per `period`
    /// demand writes.
    pub fn new(lines: u64, period: u64, seed: u64) -> Self {
        assert!(period > 0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let sr = SrInstance::new(lines, lines - 1, &mut rng);
        Self { sr, period, writes: 0, rng, refresh_steps: 0 }
    }

    /// Refresh steps executed (including pair-skipped ones).
    pub fn refresh_steps(&self) -> u64 {
        self.refresh_steps
    }

    /// Checkpoint the SR state, trigger counter, and key-drawing RNG.
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        self.sr.ckpt_save(w);
        w.put_u64(self.writes);
        w.put_rng(self.rng.state());
        w.put_u64(self.refresh_steps);
    }

    /// Restore state saved by [`ckpt_save`](Self::ckpt_save) into an
    /// instance built from the same spec.
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        self.sr.ckpt_restore(r)?;
        let writes = r.get_u64()?;
        if writes >= self.period {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "security-refresh: write counter {writes} out of range for period {}",
                self.period
            )));
        }
        let rng = r.get_rng()?;
        self.writes = writes;
        self.rng = SmallRng::from_state(rng);
        self.refresh_steps = r.get_u64()?;
        Ok(())
    }
}

impl WearLeveler for SecurityRefresh {
    fn name(&self) -> &'static str {
        "sr"
    }

    fn logical_lines(&self) -> u64 {
        self.sr.size()
    }

    #[inline]
    fn translate(&self, la: La) -> Pa {
        self.sr.map(la)
    }

    fn write(&mut self, la: La, dev: &mut NvmDevice) -> Pa {
        let pa = self.sr.map(la);
        dev.write(pa);
        self.writes += 1;
        if self.writes >= self.period {
            self.writes = 0;
            self.refresh_steps += 1;
            if let Some((s1, s2)) = self.sr.step(&mut self.rng) {
                dev.write_wl(s1);
                dev.write_wl(s2);
            }
        }
        pa
    }

    fn quiet_writes(&self, _la: La) -> u64 {
        // The mapping only moves in `step`; the trigger write is excluded
        // because `step` always advances the refresh pointer (changing the
        // translation of refreshed addresses) even when it swaps nothing.
        (self.period - self.writes).saturating_sub(1)
    }

    fn write_run(&mut self, la: La, n: u64, dev: &mut NvmDevice) -> u64 {
        // The SR mapping only moves in `step`, every `period` writes: the
        // whole window up to (and including) the step trigger shares one
        // translation, so it collapses into a single device run.
        let mut done = 0;
        while done < n {
            let pa = self.sr.map(la);
            let window = (n - done).min(self.period - self.writes);
            let (applied, _) = dev.write_run(pa, window);
            self.writes += applied;
            done += applied;
            if applied < window {
                break;
            }
            if self.writes >= self.period {
                self.writes = 0;
                self.refresh_steps += 1;
                if let Some((s1, s2)) = self.sr.step(&mut self.rng) {
                    dev.write_wl(s1);
                    dev.write_wl(s2);
                }
            }
            if dev.is_dead() {
                break;
            }
        }
        done
    }

    fn onchip_bits(&self) -> u64 {
        // Two keys + refresh pointer + write counter.
        let bits = 64 - (self.sr.size() - 1).leading_zeros() as u64;
        3 * bits + 64
    }
}

/// Two-level Security Refresh (TLSR), the configuration of the paper's
/// Fig. 3: inner SR per region over the offset bits, outer SR over the
/// whole space restricted to the region bits.
#[derive(Debug, Clone)]
pub struct Tlsr {
    geo: RegionGeometry,
    outer: SrInstance,
    inner: Vec<SrInstance>,
    /// Demand writes to each (intermediate) region since its last inner step.
    inner_writes: Vec<u32>,
    inner_period: u64,
    outer_writes: u64,
    outer_period: u64,
    rng: SmallRng,
}

impl Tlsr {
    /// TLSR over `lines` split into regions of `region_lines`; inner refresh
    /// every `inner_period` writes to a region, outer refresh every
    /// `outer_period` writes to the memory (the paper fixes this at 32).
    pub fn new(
        lines: u64,
        region_lines: u64,
        inner_period: u64,
        outer_period: u64,
        seed: u64,
    ) -> Self {
        assert!(inner_period > 0 && outer_period > 0);
        let geo = RegionGeometry::new(lines, region_lines);
        let mut rng = SmallRng::seed_from_u64(seed);
        let region_mask = (geo.regions() - 1) << geo.offset_bits();
        let outer = SrInstance::new(lines, region_mask, &mut rng);
        let inner = (0..geo.regions())
            .map(|_| SrInstance::new(geo.region_lines(), geo.region_lines() - 1, &mut rng))
            .collect();
        Self {
            geo,
            outer,
            inner,
            inner_writes: vec![0; geo.regions() as usize],
            inner_period,
            outer_writes: 0,
            outer_period,
            rng,
        }
    }

    /// Map an intermediate (post-outer) address to physical via the inner
    /// instance of its region.
    #[inline]
    fn inner_map(&self, intermediate: u64) -> u64 {
        let region = self.geo.region_of(intermediate);
        let off = self.geo.offset_of(intermediate);
        self.geo.combine(region, self.inner[region as usize].map(off))
    }

    /// Expected write-overhead fraction of this configuration
    /// (`1/inner + 1/outer`), matching the paper's legend percentages.
    pub fn nominal_overhead(&self) -> f64 {
        1.0 / self.inner_period as f64 + 1.0 / self.outer_period as f64
    }

    /// Checkpoint both SR levels, all trigger counters, and the RNG.
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        self.outer.ckpt_save(w);
        w.put_u64(self.inner.len() as u64);
        for sr in &self.inner {
            sr.ckpt_save(w);
        }
        w.put_u32_slice(&self.inner_writes);
        w.put_u64(self.outer_writes);
        w.put_rng(self.rng.state());
    }

    /// Restore state saved by [`ckpt_save`](Self::ckpt_save) into an
    /// instance built from the same spec.
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        self.outer.ckpt_restore(r)?;
        let regions = r.get_u64()?;
        if regions != self.inner.len() as u64 {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "tlsr: {regions} inner instances in checkpoint, {} in instance",
                self.inner.len()
            )));
        }
        for sr in &mut self.inner {
            sr.ckpt_restore(r)?;
        }
        let inner_writes = r.get_u32_vec()?;
        if inner_writes.len() != self.inner.len()
            || inner_writes.iter().any(|&wr| u64::from(wr) >= self.inner_period)
        {
            return Err(sawl_ckpt::CkptError::Corrupt(
                "tlsr: inner write counters malformed".into(),
            ));
        }
        let outer_writes = r.get_u64()?;
        if outer_writes >= self.outer_period {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "tlsr: outer counter {outer_writes} out of range for period {}",
                self.outer_period
            )));
        }
        let rng = r.get_rng()?;
        self.inner_writes = inner_writes;
        self.outer_writes = outer_writes;
        self.rng = SmallRng::from_state(rng);
        Ok(())
    }
}

impl WearLeveler for Tlsr {
    fn name(&self) -> &'static str {
        "tlsr"
    }

    fn logical_lines(&self) -> u64 {
        self.geo.lines()
    }

    #[inline]
    fn translate(&self, la: La) -> Pa {
        self.inner_map(self.outer.map(la))
    }

    fn write(&mut self, la: La, dev: &mut NvmDevice) -> Pa {
        let intermediate = self.outer.map(la);
        let region = self.geo.region_of(intermediate) as usize;
        let pa = self.inner_map(intermediate);
        dev.write(pa);

        // Inner level: per-region counter.
        self.inner_writes[region] += 1;
        if u64::from(self.inner_writes[region]) >= self.inner_period {
            self.inner_writes[region] = 0;
            if let Some((o1, o2)) = self.inner[region].step(&mut self.rng) {
                dev.write_wl(self.geo.combine(region as u64, o1));
                dev.write_wl(self.geo.combine(region as u64, o2));
            }
        }

        // Outer level: global counter; the swapped intermediate slots are
        // physically located through the inner mapping of their regions.
        self.outer_writes += 1;
        if self.outer_writes >= self.outer_period {
            self.outer_writes = 0;
            if let Some((i1, i2)) = self.outer.step(&mut self.rng) {
                dev.write_wl(self.inner_map(i1));
                dev.write_wl(self.inner_map(i2));
            }
        }
        pa
    }

    fn quiet_writes(&self, la: La) -> u64 {
        // Both SR levels move only on their periodic steps. The trigger
        // write itself is excluded even though a step may swap nothing:
        // `SrInstance::step` always advances the refresh pointer, which
        // changes the translation of already-refreshed addresses.
        let intermediate = self.outer.map(la);
        let region = self.geo.region_of(intermediate) as usize;
        let inner_gap = self.inner_period - u64::from(self.inner_writes[region]);
        let outer_gap = self.outer_period - self.outer_writes;
        inner_gap.min(outer_gap).saturating_sub(1)
    }

    fn write_run(&mut self, la: La, n: u64, dev: &mut NvmDevice) -> u64 {
        // Both SR levels move only on their periodic steps; between steps
        // the translation of `la` is frozen. The whole window up to (and
        // including) the nearer of the two step triggers shares one
        // translation — one map plus one device run per window, instead of
        // a scalar write (two full translations) at the head of each.
        let mut done = 0;
        while done < n {
            let intermediate = self.outer.map(la);
            let region = self.geo.region_of(intermediate) as usize;
            let off = self.geo.offset_of(intermediate);
            let pa = self.geo.combine(region as u64, self.inner[region].map(off));
            let inner_gap = self.inner_period - u64::from(self.inner_writes[region]);
            let outer_gap = self.outer_period - self.outer_writes;
            let window = (n - done).min(inner_gap.min(outer_gap));
            let (applied, _) = dev.write_run(pa, window);
            self.inner_writes[region] += applied as u32;
            self.outer_writes += applied;
            done += applied;
            if applied < window {
                break;
            }
            if u64::from(self.inner_writes[region]) >= self.inner_period {
                self.inner_writes[region] = 0;
                if let Some((o1, o2)) = self.inner[region].step(&mut self.rng) {
                    dev.write_wl(self.geo.combine(region as u64, o1));
                    dev.write_wl(self.geo.combine(region as u64, o2));
                }
            }
            if self.outer_writes >= self.outer_period {
                self.outer_writes = 0;
                if let Some((i1, i2)) = self.outer.step(&mut self.rng) {
                    dev.write_wl(self.inner_map(i1));
                    dev.write_wl(self.inner_map(i2));
                }
            }
            if dev.is_dead() {
                break;
            }
        }
        done
    }

    fn onchip_bits(&self) -> u64 {
        let ob = u64::from(self.geo.offset_bits());
        let rb = u64::from(self.geo.region_bits());
        // Outer: 2 keys (region bits) + pointer + counter.
        let outer = 2 * rb + (rb + ob) + 64;
        // Inner per region: 2 keys + pointer + 32-bit counter.
        let inner = self.geo.regions() * (3 * ob + 32);
        outer + inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_permutation;
    use sawl_nvm::NvmConfig;

    fn dev(lines: u64, endurance: u32) -> NvmDevice {
        NvmDevice::new(
            NvmConfig::builder()
                .lines(lines)
                .banks(1)
                .endurance(endurance)
                .spare_shift(4)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn sr_instance_starts_identity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let sr = SrInstance::new(64, 63, &mut rng);
        for a in 0..64 {
            assert_eq!(sr.map(a), a);
        }
    }

    #[test]
    fn sr_instance_is_bijective_mid_round() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sr = SrInstance::new(64, 63, &mut rng);
        for step in 0..300 {
            sr.step(&mut rng);
            let mut seen = [false; 64];
            for a in 0..64 {
                let m = sr.map(a) as usize;
                assert!(!seen[m], "step {step}: collision at {m}");
                seen[m] = true;
            }
        }
    }

    #[test]
    fn sr_full_round_applies_new_key_everywhere() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sr = SrInstance::new(32, 31, &mut rng);
        let k1 = sr.k1;
        for _ in 0..32 {
            sr.step(&mut rng);
        }
        // Round completed: k1 became k0.
        assert_eq!(sr.k0, k1);
        assert_eq!(sr.rp, 0);
        for a in 0..32 {
            assert_eq!(sr.map(a), a ^ k1);
        }
    }

    #[test]
    fn sr_pair_trick_halves_the_swaps() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut sr = SrInstance::new(256, 255, &mut rng);
        let mut swaps = 0;
        for _ in 0..256 {
            if sr.step(&mut rng).is_some() {
                swaps += 1;
            }
        }
        // Each swap retires two addresses -> exactly half the steps swap
        // (unless the drawn key was 0, which seed 4 avoids).
        assert_eq!(swaps, 128);
    }

    #[test]
    fn sr_wear_leveler_spreads_raa() {
        let mut wl = SecurityRefresh::new(256, 4, 7);
        let mut d = dev(256, 1_000_000);
        for _ in 0..100_000 {
            wl.write(0, &mut d);
        }
        // The hammered logical line must have visited many physical lines.
        let touched = d.write_counts().iter().filter(|&&c| c > 0).count();
        assert!(touched > 128, "RAA wear only touched {touched} lines");
        check_permutation(&wl, 256);
    }

    #[test]
    fn tlsr_starts_identity_and_stays_permutation() {
        let mut wl = Tlsr::new(1 << 10, 1 << 4, 8, 32, 11);
        for la in 0..1 << 10 {
            assert_eq!(wl.translate(la), la);
        }
        let mut d = dev(1 << 10, 1_000_000);
        let mut x = 0xDEADBEEFu64;
        for _ in 0..50_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            wl.write(x % (1 << 10), &mut d);
        }
        check_permutation(&wl, 1 << 10);
    }

    #[test]
    fn tlsr_outer_level_migrates_lines_across_regions() {
        let mut wl = Tlsr::new(1 << 10, 1 << 4, 8, 8, 13);
        let mut d = dev(1 << 10, 1_000_000);
        let start_region = wl.translate(0) >> 4;
        let mut seen_regions = std::collections::HashSet::new();
        for _ in 0..400_000 {
            wl.write(0, &mut d);
            seen_regions.insert(wl.translate(0) >> 4);
        }
        assert!(seen_regions.len() > 4, "line never left region {start_region}: {seen_regions:?}");
    }

    #[test]
    fn tlsr_overhead_matches_nominal() {
        let mut wl = Tlsr::new(1 << 12, 1 << 6, 8, 32, 17);
        assert!((wl.nominal_overhead() - 0.15625).abs() < 1e-12);
        let mut d = dev(1 << 12, u32::MAX);
        let mut x = 1u64;
        let n = 1_000_000;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            wl.write(x % (1 << 12), &mut d);
        }
        let measured = d.wear().overhead_writes as f64 / n as f64;
        // Pair-skipping is exactly half on average; allow sampling slack.
        assert!((measured - 0.15625).abs() < 0.01, "overhead {measured} vs nominal 0.15625");
    }

    #[test]
    fn tlsr_paper_legend_overheads() {
        for (inner, expect) in [(8u64, 0.15625), (16, 0.09375), (32, 0.0625), (64, 0.046875)] {
            let wl = Tlsr::new(1 << 10, 1 << 4, inner, 32, 1);
            assert!((wl.nominal_overhead() - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn sr_survives_longer_than_baseline_under_raa() {
        // SR only protects when a refresh round completes well within the
        // cell endurance (round = lines * period writes); this is exactly
        // the paper's observation that big SR regions on weak MLC cells do
        // not get enough exchanges. Use a small region to see the benefit.
        let lifetime = |mut wl: Box<dyn WearLeveler>, lines: u64| {
            let mut d = dev(lines, 300);
            while !d.is_dead() {
                wl.write(0, &mut d);
            }
            d.normalized_lifetime()
        };
        let base = lifetime(Box::new(crate::NoWl::new(64)), 64);
        let sr = lifetime(Box::new(SecurityRefresh::new(64, 2, 3)), 64);
        assert!(sr > 3.0 * base, "sr {sr} vs baseline {base}");
    }

    #[test]
    fn sr_big_region_weak_cells_barely_beats_baseline() {
        // The quantitative motivation of §2.2: when one refresh round costs
        // more writes than a cell can endure, SR degenerates.
        let mut wl = SecurityRefresh::new(1 << 10, 8, 3);
        let mut d = dev(1 << 10, 300);
        while !d.is_dead() {
            wl.write(0, &mut d);
        }
        assert!(d.normalized_lifetime() < 0.15);
    }
}
