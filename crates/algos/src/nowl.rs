//! The two reference points every experiment is measured against.
//!
//! * [`NoWl`] — identity mapping, no data exchange. This is the "Baseline
//!   (without any wear-leveling scheme)" of Figs. 16 and 17: best possible
//!   performance, worst possible lifetime under skewed writes.
//! * [`Ideal`] — an oracle that spreads consecutive writes round-robin over
//!   every physical line regardless of the requested address. It realizes
//!   the paper's "ideal lifetime, which indicates the lifespan of NVM with
//!   fully uniform writes" and is used to normalize all lifetime results.
//!   (It is not implementable in hardware — data would be unrecoverable —
//!   but as a lifetime yardstick only the wear pattern matters.)

use sawl_nvm::{La, NvmDevice, Pa};

use crate::WearLeveler;

/// Identity mapping; no wear leveling at all.
#[derive(Debug, Clone)]
pub struct NoWl {
    lines: u64,
}

impl NoWl {
    /// Baseline over `lines` logical (= physical) lines.
    pub fn new(lines: u64) -> Self {
        assert!(lines > 0);
        Self { lines }
    }

    /// The identity mapping has no mutable state; the checkpoint records
    /// only the line count so a resume can verify the spec matches.
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_u64(self.lines);
    }

    /// Validate a [`ckpt_save`](Self::ckpt_save) record against this
    /// instance (nothing to restore).
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        let lines = r.get_u64()?;
        if lines != self.lines {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "baseline: checkpoint covers {lines} lines, instance has {}",
                self.lines
            )));
        }
        Ok(())
    }
}

impl WearLeveler for NoWl {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn logical_lines(&self) -> u64 {
        self.lines
    }

    #[inline]
    fn translate(&self, la: La) -> Pa {
        debug_assert!(la < self.lines);
        la
    }

    #[inline]
    fn write(&mut self, la: La, dev: &mut NvmDevice) -> Pa {
        dev.write(la);
        la
    }

    fn write_run(&mut self, la: La, n: u64, dev: &mut NvmDevice) -> u64 {
        // The mapping is static, so a whole run is one device call.
        let (done, _) = dev.write_run(la, n);
        done
    }

    fn quiet_writes(&self, _la: La) -> u64 {
        // No wear leveling: every write is quiet, forever.
        u64::MAX
    }

    fn onchip_bits(&self) -> u64 {
        0
    }
}

/// Round-robin oracle achieving perfectly uniform wear.
#[derive(Debug, Clone)]
pub struct Ideal {
    lines: u64,
    cursor: u64,
}

impl Ideal {
    /// Oracle over `lines` physical lines.
    pub fn new(lines: u64) -> Self {
        assert!(lines > 0);
        Self { lines, cursor: 0 }
    }

    /// Checkpoint the round-robin cursor.
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_u64(self.lines);
        w.put_u64(self.cursor);
    }

    /// Restore a cursor saved by [`ckpt_save`](Self::ckpt_save).
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        let lines = r.get_u64()?;
        if lines != self.lines {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "ideal: checkpoint covers {lines} lines, instance has {}",
                self.lines
            )));
        }
        let cursor = r.get_u64()?;
        if cursor >= self.lines {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "ideal: cursor {cursor} out of range for {} lines",
                self.lines
            )));
        }
        self.cursor = cursor;
        Ok(())
    }
}

impl WearLeveler for Ideal {
    fn name(&self) -> &'static str {
        "ideal"
    }

    fn logical_lines(&self) -> u64 {
        self.lines
    }

    /// The oracle has no stable mapping; for reads it reports identity.
    #[inline]
    fn translate(&self, la: La) -> Pa {
        la
    }

    #[inline]
    fn write(&mut self, _la: La, dev: &mut NvmDevice) -> Pa {
        let pa = self.cursor;
        self.cursor += 1;
        if self.cursor == self.lines {
            self.cursor = 0;
        }
        dev.write(pa);
        pa
    }

    fn onchip_bits(&self) -> u64 {
        64 // one cursor register
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sawl_nvm::NvmConfig;

    fn dev(lines: u64, endurance: u32) -> NvmDevice {
        NvmDevice::new(
            NvmConfig::builder()
                .lines(lines)
                .banks(1)
                .endurance(endurance)
                .spare_shift(4)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn nowl_concentrates_wear_exactly_where_written() {
        let mut d = dev(64, 1000);
        let mut wl = NoWl::new(64);
        for _ in 0..100 {
            wl.write(7, &mut d);
        }
        assert_eq!(d.write_count(7), 100);
        assert_eq!(d.write_count(8), 0);
    }

    #[test]
    fn ideal_achieves_near_ideal_lifetime_under_raa() {
        let mut d = dev(64, 100);
        let mut wl = Ideal::new(64);
        // Hammer one logical address; the oracle spreads wear perfectly.
        while !d.is_dead() {
            wl.write(0, &mut d);
        }
        let nl = d.normalized_lifetime();
        assert!(nl > 0.95, "ideal oracle reached only {nl} of ideal lifetime");
    }

    #[test]
    fn ideal_wear_is_flat() {
        let mut d = dev(64, 1000);
        let mut wl = Ideal::new(64);
        for _ in 0..640 {
            wl.write(3, &mut d);
        }
        let stats = d.wear_stats();
        assert_eq!(stats.max, 10);
        assert_eq!(stats.min, 10);
    }

    #[test]
    fn nowl_dies_fast_under_raa() {
        let mut d = dev(64, 100);
        let mut wl = NoWl::new(64);
        let mut writes = 0u64;
        while !d.is_dead() {
            wl.write(0, &mut d);
            writes += 1;
            assert!(writes < 1_000_000, "baseline survived implausibly long");
        }
        // Device dies after spares (4) + 1 failures of the same hammered
        // line... the same PA keeps failing its replacement every 100
        // writes: 5 * 100 = 500 writes.
        assert_eq!(writes, 500);
        assert!(d.normalized_lifetime() < 0.1);
    }
}
