//! Region geometry shared by the region-based schemes.
//!
//! All region-based schemes in the paper split the (power-of-two) logical
//! space into equal power-of-two regions; a logical address is then
//! `(region number, offset)`. Keeping the split in one type avoids each
//! scheme re-deriving masks and shifts.

use serde::{Deserialize, Serialize};

/// Power-of-two split of a power-of-two address space into regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionGeometry {
    lines_log2: u32,
    region_log2: u32,
}

impl RegionGeometry {
    /// Split `lines` (power of two) into regions of `region_lines` (power of
    /// two, `<= lines`).
    pub fn new(lines: u64, region_lines: u64) -> Self {
        assert!(lines.is_power_of_two() && lines > 0, "lines must be a power of two");
        assert!(
            region_lines.is_power_of_two() && region_lines > 0 && region_lines <= lines,
            "region size must be a power of two <= lines"
        );
        Self { lines_log2: lines.trailing_zeros(), region_log2: region_lines.trailing_zeros() }
    }

    /// Total lines in the space.
    #[inline]
    pub fn lines(&self) -> u64 {
        1 << self.lines_log2
    }

    /// Lines per region.
    #[inline]
    pub fn region_lines(&self) -> u64 {
        1 << self.region_log2
    }

    /// Number of regions.
    #[inline]
    pub fn regions(&self) -> u64 {
        1 << (self.lines_log2 - self.region_log2)
    }

    /// log2 of lines per region (number of offset bits).
    #[inline]
    pub fn offset_bits(&self) -> u32 {
        self.region_log2
    }

    /// log2 of the region count (number of region bits).
    #[inline]
    pub fn region_bits(&self) -> u32 {
        self.lines_log2 - self.region_log2
    }

    /// Region number of an address.
    #[inline]
    pub fn region_of(&self, la: u64) -> u64 {
        la >> self.region_log2
    }

    /// Offset of an address within its region.
    #[inline]
    pub fn offset_of(&self, la: u64) -> u64 {
        la & (self.region_lines() - 1)
    }

    /// Recombine a region number and an offset into an address.
    #[inline]
    pub fn combine(&self, region: u64, offset: u64) -> u64 {
        debug_assert!(region < self.regions());
        debug_assert!(offset < self.region_lines());
        (region << self.region_log2) | offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_recombine_round_trip() {
        let g = RegionGeometry::new(1 << 10, 1 << 4);
        for la in [0u64, 1, 15, 16, 17, 1023] {
            assert_eq!(g.combine(g.region_of(la), g.offset_of(la)), la);
        }
    }

    #[test]
    fn counts_are_consistent() {
        let g = RegionGeometry::new(4096, 64);
        assert_eq!(g.regions(), 64);
        assert_eq!(g.region_lines(), 64);
        assert_eq!(g.lines(), 4096);
        assert_eq!(g.offset_bits(), 6);
        assert_eq!(g.region_bits(), 6);
    }

    #[test]
    fn degenerate_single_region() {
        let g = RegionGeometry::new(256, 256);
        assert_eq!(g.regions(), 1);
        assert_eq!(g.region_of(255), 0);
        assert_eq!(g.offset_of(255), 255);
    }

    #[test]
    fn degenerate_one_line_regions() {
        let g = RegionGeometry::new(256, 1);
        assert_eq!(g.regions(), 256);
        assert_eq!(g.region_of(17), 17);
        assert_eq!(g.offset_of(17), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_region() {
        let _ = RegionGeometry::new(256, 3);
    }

    #[test]
    #[should_panic(expected = "<= lines")]
    fn rejects_region_larger_than_space() {
        let _ = RegionGeometry::new(64, 128);
    }
}
