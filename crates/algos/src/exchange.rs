//! Shared PCM-S exchange bookkeeping.
//!
//! Every scheme that adopts the PCM-S data-exchange module (§2.1) keeps the
//! same two pieces of per-region wear-leveling state:
//!
//! * a **demand-write counter** per logical region, compared against
//!   `period × S` (S = lines per region) to decide when the region is due
//!   for an exchange — the "swapping period" of the paper's Fig. 4;
//! * an **intra-region XOR key**, re-drawn uniformly from `[0, S)` each
//!   time the region is (re)placed, which is what shifts line positions
//!   inside the region.
//!
//! [`SwapCounters`] and [`draw_key`] centralize that machinery so
//! [`PcmS`](crate::PcmS), NWL and the SAWL engine's exchange policy share
//! one implementation instead of three copies. SAWL's variable-granularity
//! twist — counters folded on merge and halved on split (§3.2) — lives here
//! too, as it is pure counter bookkeeping.

use rand::Rng;

/// Per-region demand-write counters driving the swapping-period trigger.
#[derive(Debug, Clone)]
pub struct SwapCounters {
    /// Demand writes to each region since its last triggered exchange.
    ctr: Vec<u32>,
    /// Writes-per-line swapping period.
    period: u64,
}

impl SwapCounters {
    /// Counters for `slots` regions with the given writes-per-line period.
    pub fn new(slots: usize, period: u64) -> Self {
        assert!(period > 0, "swapping period must be non-zero");
        Self { ctr: vec![0; slots], period }
    }

    /// The writes-per-line swapping period.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Writes to a region of `region_lines` lines that trigger its exchange.
    pub fn threshold(&self, region_lines: u64) -> u64 {
        self.period * region_lines
    }

    /// Count one demand write to the region at `slot`; `true` when the
    /// region has reached its exchange threshold.
    #[inline]
    pub fn record_write(&mut self, slot: usize, region_lines: u64) -> bool {
        let c = &mut self.ctr[slot];
        *c += 1;
        u64::from(*c) >= self.period * region_lines
    }

    /// Count `k` demand writes to the region at `slot` that are known not
    /// to reach the exchange threshold — the bulk half of run-length
    /// batching. Callers bound `k` by [`SwapCounters::until_trigger`];
    /// equivalent to `k` non-triggering [`SwapCounters::record_write`]s.
    #[inline]
    pub fn add(&mut self, slot: usize, k: u64) {
        self.ctr[slot] += k as u32;
    }

    /// Writes to the region at `slot` remaining until the one that reaches
    /// its exchange threshold, inclusive (so `until_trigger - 1` writes
    /// are guaranteed not to trigger).
    #[inline]
    pub fn until_trigger(&self, slot: usize, region_lines: u64) -> u64 {
        (self.period * region_lines).saturating_sub(u64::from(self.ctr[slot])).max(1)
    }

    /// Reset a region's counter after its exchange. Only the *triggering*
    /// region resets — an exchange partner relocated as a bystander keeps
    /// its own cadence, which is what pins the steady-state overhead at
    /// exactly `2/period`.
    pub fn reset(&mut self, slot: usize) {
        self.ctr[slot] = 0;
    }

    /// Current counter value of a region.
    pub fn get(&self, slot: usize) -> u32 {
        self.ctr[slot]
    }

    /// Zero every counter. Crash recovery uses this: the counters live in
    /// volatile on-chip SRAM and do not survive a power loss, so every
    /// region restarts its swapping-period cadence from zero.
    pub fn clear(&mut self) {
        self.ctr.fill(0);
    }

    /// Fold two merging regions' counters into the merged region's slot
    /// (SAWL region-merge): the merged region has absorbed both halves'
    /// write pressure.
    pub fn fold_into(&mut self, a: usize, b: usize, dst: usize) {
        let merged = self.ctr[a].saturating_add(self.ctr[b]);
        self.ctr[a] = 0;
        self.ctr[b] = 0;
        self.ctr[dst] = merged;
    }

    /// Halve a splitting region's counter across its two children (SAWL
    /// region-split): each half keeps its share of the accumulated
    /// pressure so neither restarts from zero.
    pub fn halve_into(&mut self, base: usize, half: usize) {
        let c = self.ctr[base];
        self.ctr[base] = c / 2;
        self.ctr[half] = c / 2;
    }

    /// Checkpoint the demand-write counters (the period is configuration,
    /// rebuilt from the spec).
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_u32_slice(&self.ctr);
    }

    /// Restore counters saved by [`ckpt_save`](Self::ckpt_save) into an
    /// instance built with the same slot count.
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        let ctr = r.get_u32_vec()?;
        if ctr.len() != self.ctr.len() {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "swap counters: {} slots in checkpoint, {} in instance",
                ctr.len(),
                self.ctr.len()
            )));
        }
        self.ctr = ctr;
        Ok(())
    }
}

/// Draw a fresh intra-region XOR key uniform over `[0, region_lines)`.
/// `region_lines` must be a power of two (region sizes always are).
#[inline]
pub fn draw_key<R: Rng + ?Sized>(rng: &mut R, region_lines: u64) -> u64 {
    debug_assert!(region_lines.is_power_of_two());
    rng.random::<u64>() & (region_lines - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fires_exactly_at_period_times_region_lines() {
        let mut c = SwapCounters::new(4, 4);
        assert_eq!(c.threshold(16), 64);
        for _ in 0..63 {
            assert!(!c.record_write(2, 16));
        }
        assert!(c.record_write(2, 16));
        c.reset(2);
        assert_eq!(c.get(2), 0);
    }

    #[test]
    fn other_slots_are_untouched() {
        let mut c = SwapCounters::new(3, 8);
        c.record_write(0, 4);
        c.record_write(0, 4);
        assert_eq!(c.get(0), 2);
        assert_eq!(c.get(1), 0);
        assert_eq!(c.get(2), 0);
    }

    #[test]
    fn fold_sums_and_clears_sources() {
        let mut c = SwapCounters::new(4, 1);
        for _ in 0..5 {
            c.record_write(0, 100);
        }
        for _ in 0..3 {
            c.record_write(2, 100);
        }
        // Merged region keeps both halves' pressure even when dst == a.
        c.fold_into(0, 2, 0);
        assert_eq!(c.get(0), 8);
        assert_eq!(c.get(2), 0);
    }

    #[test]
    fn halve_splits_pressure_across_children() {
        let mut c = SwapCounters::new(4, 1);
        for _ in 0..9 {
            c.record_write(1, 100);
        }
        c.halve_into(1, 3);
        assert_eq!(c.get(1), 4);
        assert_eq!(c.get(3), 4);
    }

    #[test]
    fn draw_key_stays_in_region() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert!(draw_key(&mut rng, 64) < 64);
        }
        assert_eq!(draw_key(&mut rng, 1), 0);
    }
}
