//! Segment Swapping — the table-based (TBWL) representative.
//!
//! Zhou et al., "A durable and energy efficient main memory using phase
//! change memory technology" (ISCA '09), as summarized in the paper's §2.1
//! and Fig. 1(a): the memory is divided into segments; a table records the
//! logical→physical segment mapping and per-segment write counts. When a
//! segment accumulates `swap_period` writes since its last swap, its data
//! is exchanged with the **least-written** segment, and the table entries
//! are swapped.
//!
//! Crucially, the intra-segment offset is *never* remapped — which is
//! exactly why the paper rules the scheme out for MLC NVM: a Repeated
//! Address Attack keeps hitting the same offset in whatever segment the
//! logical page lands on, so one line per segment wears out at full attack
//! rate (§2.2 item 1). The `raa_defeats_segment_swapping` test below
//! demonstrates the vulnerability.

use sawl_nvm::{La, NvmDevice, Pa};

use crate::region::RegionGeometry;
use crate::WearLeveler;

/// Table-based segment swapping.
#[derive(Debug, Clone)]
pub struct SegmentSwap {
    geo: RegionGeometry,
    /// logical segment -> physical segment
    l2p: Vec<u32>,
    /// physical segment -> logical segment (inverse, for the swap)
    p2l: Vec<u32>,
    /// lifetime writes per physical segment (drives the "least used" pick)
    seg_writes: Vec<u64>,
    /// writes to each physical segment since it last swapped
    seg_since_swap: Vec<u64>,
    /// writes to a segment between swaps
    swap_period: u64,
    /// total data-exchange line writes charged so far
    swaps_performed: u64,
}

impl SegmentSwap {
    /// Create over `lines` logical lines split into `segment_lines`-line
    /// segments, swapping a segment after `swap_period` writes to it.
    pub fn new(lines: u64, segment_lines: u64, swap_period: u64) -> Self {
        assert!(swap_period > 0, "swap period must be non-zero");
        let geo = RegionGeometry::new(lines, segment_lines);
        let segs = geo.regions() as usize;
        Self {
            geo,
            l2p: (0..segs as u32).collect(),
            p2l: (0..segs as u32).collect(),
            seg_writes: vec![0; segs],
            seg_since_swap: vec![0; segs],
            swap_period,
            swaps_performed: 0,
        }
    }

    /// Number of segment swaps performed so far.
    pub fn swaps_performed(&self) -> u64 {
        self.swaps_performed
    }

    /// Exchange the data of two physical segments, charging every line
    /// write to the device, and update both tables.
    fn swap_segments(&mut self, pa_seg: u32, pb_seg: u32, dev: &mut NvmDevice) {
        let s = self.geo.region_lines();
        // Writing both segments' contents to their new homes costs 2*S line
        // writes (the transfer buffers live in the controller), one
        // contiguous burst per segment on the device's range path.
        dev.write_wl_range(u64::from(pa_seg) * s, s);
        dev.write_wl_range(u64::from(pb_seg) * s, s);
        let la_seg = self.p2l[pa_seg as usize];
        let lb_seg = self.p2l[pb_seg as usize];
        self.l2p[la_seg as usize] = pb_seg;
        self.l2p[lb_seg as usize] = pa_seg;
        self.p2l[pa_seg as usize] = lb_seg;
        self.p2l[pb_seg as usize] = la_seg;
        self.seg_since_swap[pa_seg as usize] = 0;
        self.seg_since_swap[pb_seg as usize] = 0;
        self.swaps_performed += 1;
    }

    /// Checkpoint the mapping tables and per-segment counters. Geometry and
    /// the swap period are configuration, rebuilt from the spec.
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_u32_slice(&self.l2p);
        w.put_u32_slice(&self.p2l);
        w.put_u64_slice(&self.seg_writes);
        w.put_u64_slice(&self.seg_since_swap);
        w.put_u64(self.swaps_performed);
    }

    /// Restore state saved by [`ckpt_save`](Self::ckpt_save) into an
    /// instance built from the same spec. Rejects table shapes that do not
    /// match the geometry or tables that are not inverse permutations.
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        let segs = self.geo.regions() as usize;
        let l2p = r.get_u32_vec()?;
        let p2l = r.get_u32_vec()?;
        let seg_writes = r.get_u64_vec()?;
        let seg_since_swap = r.get_u64_vec()?;
        let swaps_performed = r.get_u64()?;
        for (name, len) in [
            ("l2p", l2p.len()),
            ("p2l", p2l.len()),
            ("seg_writes", seg_writes.len()),
            ("seg_since_swap", seg_since_swap.len()),
        ] {
            if len != segs {
                return Err(sawl_ckpt::CkptError::Corrupt(format!(
                    "segment-swap {name}: {len} entries for {segs} segments"
                )));
            }
        }
        for (l, &p) in l2p.iter().enumerate() {
            if p as usize >= segs || p2l[p as usize] as usize != l {
                return Err(sawl_ckpt::CkptError::Corrupt(format!(
                    "segment-swap tables are not inverse permutations at logical segment {l}"
                )));
            }
        }
        self.l2p = l2p;
        self.p2l = p2l;
        self.seg_writes = seg_writes;
        self.seg_since_swap = seg_since_swap;
        self.swaps_performed = swaps_performed;
        Ok(())
    }

    /// Physical segment with the fewest lifetime writes (excluding `not`).
    fn coldest_segment(&self, not: u32) -> u32 {
        let mut best = u32::MAX;
        let mut best_writes = u64::MAX;
        for (i, &w) in self.seg_writes.iter().enumerate() {
            if i as u32 != not && w < best_writes {
                best_writes = w;
                best = i as u32;
            }
        }
        best
    }
}

impl WearLeveler for SegmentSwap {
    fn name(&self) -> &'static str {
        "segment-swap"
    }

    fn logical_lines(&self) -> u64 {
        self.geo.lines()
    }

    #[inline]
    fn translate(&self, la: La) -> Pa {
        let seg = self.geo.region_of(la);
        let off = self.geo.offset_of(la);
        // The intra-segment offset is preserved — the RAA weakness.
        u64::from(self.l2p[seg as usize]) * self.geo.region_lines() + off
    }

    fn write(&mut self, la: La, dev: &mut NvmDevice) -> Pa {
        let pa = self.translate(la);
        dev.write(pa);
        let pseg = (pa >> self.geo.offset_bits()) as usize;
        self.seg_writes[pseg] += 1;
        self.seg_since_swap[pseg] += 1;
        if self.seg_since_swap[pseg] >= self.swap_period && self.geo.regions() > 1 {
            let coldest = self.coldest_segment(pseg as u32);
            self.swap_segments(pseg as u32, coldest, dev);
        }
        // The demand write may have remapped; report where it landed.
        pa
    }

    fn quiet_writes(&self, la: La) -> u64 {
        // The table only changes at a segment's swap trigger; with a
        // single segment the trigger is disabled outright and every write
        // is quiet.
        if self.geo.regions() == 1 {
            return u64::MAX;
        }
        let pseg = (self.translate(la) >> self.geo.offset_bits()) as usize;
        self.swap_period.saturating_sub(self.seg_since_swap[pseg] + 1)
    }

    fn onchip_bits(&self) -> u64 {
        // Mapping entry + inverse + two counters per segment.
        let segs = self.geo.regions();
        let entry_bits = u64::from(self.geo.region_bits()) * 2 + 64 + 64;
        segs * entry_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_permutation, mapping_snapshot, moved_lines};
    use sawl_nvm::NvmConfig;

    fn dev(lines: u64, endurance: u32) -> NvmDevice {
        NvmDevice::new(
            NvmConfig::builder()
                .lines(lines)
                .banks(1)
                .endurance(endurance)
                .spare_shift(4)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn starts_as_identity() {
        let wl = SegmentSwap::new(256, 16, 100);
        for la in 0..256 {
            assert_eq!(wl.translate(la), la);
        }
    }

    #[test]
    fn swap_triggers_after_period_and_remaps() {
        let mut d = dev(256, 1_000_000);
        let mut wl = SegmentSwap::new(256, 16, 10);
        let before = mapping_snapshot(&wl);
        for _ in 0..10 {
            wl.write(0, &mut d);
        }
        assert_eq!(wl.swaps_performed(), 1);
        let after = mapping_snapshot(&wl);
        // Exactly two segments' worth of lines moved.
        assert_eq!(moved_lines(&before, &after), 32);
        check_permutation(&wl, 256);
    }

    #[test]
    fn swap_charges_write_overhead() {
        let mut d = dev(256, 1_000_000);
        let mut wl = SegmentSwap::new(256, 16, 10);
        for _ in 0..10 {
            wl.write(0, &mut d);
        }
        assert_eq!(d.wear().overhead_writes, 32);
        assert_eq!(d.wear().demand_writes, 10);
    }

    #[test]
    fn swaps_target_the_coldest_segment() {
        let mut d = dev(256, 1_000_000);
        let mut wl = SegmentSwap::new(256, 16, 10);
        // Warm up segment 1 so it is NOT the coldest.
        for _ in 0..5 {
            wl.write(16, &mut d);
        }
        // Trigger a swap from segment 0; it must pick a never-written
        // segment (anything but 0 and 1).
        for _ in 0..10 {
            wl.write(0, &mut d);
        }
        let new_seg = wl.translate(0) >> 4;
        assert_ne!(new_seg, 0);
        assert_ne!(new_seg, 1);
    }

    #[test]
    fn permutation_holds_under_mixed_traffic() {
        let mut d = dev(512, 1_000_000);
        let mut wl = SegmentSwap::new(512, 8, 7);
        let mut x = 88172645463325252u64;
        for _ in 0..5000 {
            // xorshift for cheap pseudo-random addresses
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            wl.write(x % 512, &mut d);
        }
        check_permutation(&wl, 512);
    }

    #[test]
    fn raa_defeats_segment_swapping() {
        // The paper's §2.2 point: the attacked offset wears out at full
        // rate because offsets never remap. Lifetime stays near the
        // no-wear-leveling floor despite constant swapping.
        let mut d = dev(1 << 12, 200);
        let mut wl = SegmentSwap::new(1 << 12, 64, 50);
        let mut demand = 0u64;
        while !d.is_dead() {
            wl.write(0, &mut d);
            demand += 1;
            assert!(demand < 10_000_000);
        }
        let nl = d.normalized_lifetime();
        // 4 spares per 2^12/2^4... spare_shift 4 -> 256 spares; attacked
        // offset fails every 200 writes; even with swapping the offset
        // inherits fresh segments but the *offset line* of each is the only
        // one wearing: lifetime stays far below 50% of ideal.
        assert!(nl < 0.5, "segment swapping unexpectedly resisted RAA: {nl}");
    }

    #[test]
    fn single_segment_never_swaps() {
        let mut d = dev(64, 1_000_000);
        let mut wl = SegmentSwap::new(64, 64, 5);
        for _ in 0..100 {
            wl.write(1, &mut d);
        }
        assert_eq!(wl.swaps_performed(), 0);
        assert_eq!(d.wear().overhead_writes, 0);
    }

    #[test]
    fn onchip_bits_scale_with_segments() {
        let small = SegmentSwap::new(1 << 10, 1 << 6, 10).onchip_bits();
        let large = SegmentSwap::new(1 << 10, 1 << 2, 10).onchip_bits();
        assert!(large > small * 8);
    }
}
