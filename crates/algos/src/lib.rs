//! # sawl-algos — baseline wear-leveling algorithms
//!
//! The paper classifies existing wear-leveling schemes into three families
//! (§2.1) and evaluates one or two representatives of each; this crate
//! implements all of them behind a single [`WearLeveler`] trait:
//!
//! | family | scheme | module | paper's verdict on MLC NVM |
//! |--------|--------|--------|----------------------------|
//! | table-based (TBWL) | Segment Swapping | [`segment_swap`] | RAA-vulnerable (static intra-segment offset) |
//! | algebraic (AWL) | Region-Based Start-Gap | [`start_gap`] | RAA-vulnerable (static region mapping) |
//! | algebraic (AWL) | two-level Security Refresh | [`security_refresh`] | survives RAA, lifetime collapses (Fig. 3) |
//! | hybrid (HWL) | PCM-S | [`pcms`] | long lifetime, huge on-chip table (Figs. 4-5) |
//! | hybrid (HWL) | MWSR | [`mwsr`] | like PCM-S, bigger table entries |
//! | — | no wear leveling | [`nowl`] | the IPC baseline of Fig. 17 |
//! | — | ideal oracle | [`nowl`] | defines "ideal lifetime" = lines × Wmax |
//!
//! ## Simulation contract
//!
//! A wear leveler owns the logical→physical permutation for a device. The
//! experiment drivers funnel every demand request through [`WearLeveler::write`]
//! / [`WearLeveler::read`]; the scheme translates the address, applies the
//! demand write to the [`NvmDevice`], and runs its own remapping machinery,
//! charging any data-movement writes to the device via
//! [`NvmDevice::write_wl`]. Wear-leveling data exchanges are modelled as the
//! set of physical lines rewritten; reads performed during an exchange do
//! not wear cells and are not charged.
//!
//! Every scheme maintains the invariant that `translate` is injective over
//! the logical space — verified by [`verify::check_permutation`] and by
//! property tests in each module.

pub mod exchange;
pub mod mwsr;
pub mod nowl;
pub mod pcms;
pub mod region;
pub mod security_refresh;
pub mod segment_swap;
pub mod start_gap;
pub mod verify;

pub use exchange::SwapCounters;
pub use mwsr::Mwsr;
pub use nowl::{Ideal, NoWl};
pub use pcms::PcmS;
pub use region::RegionGeometry;
pub use security_refresh::{SecurityRefresh, Tlsr};
pub use segment_swap::SegmentSwap;
pub use start_gap::StartGap;

use sawl_nvm::{La, NvmDevice, Pa};

/// Outcome of one [`WearLeveler::recover`] pass after a power-loss event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovery {
    /// Whether recovery fully completed. `false` means another power loss
    /// fired during replay; the mapping is still recoverable — call
    /// [`WearLeveler::recover`] again (replay is idempotent).
    pub complete: bool,
    /// An interrupted operation was rolled forward (its journaled updates
    /// replayed).
    pub replayed: bool,
    /// An interrupted operation was rolled back (nothing of it had landed).
    pub rolled_back: bool,
}

impl Recovery {
    /// A completed recovery that found nothing to repair.
    pub const CLEAN: Self = Self { complete: true, replayed: false, rolled_back: false };
}

/// A wear-leveling scheme: owns the logical→physical line mapping of one
/// device and decides when to exchange data to spread wear.
pub trait WearLeveler {
    /// Short name used on report axes ("tlsr", "pcm-s", ...).
    fn name(&self) -> &'static str;

    /// Number of logical lines served. May be smaller than the device's
    /// physical line count when the scheme reserves gap/spare space
    /// (Start-Gap, MWSR).
    fn logical_lines(&self) -> u64;

    /// Current physical location of logical line `la`, without side
    /// effects. `la` must be `< logical_lines()`.
    fn translate(&self, la: La) -> Pa;

    /// Serve a demand write to `la`: apply it to the device at the current
    /// translation and run the scheme's wear-leveling machinery (which may
    /// remap lines and charge overhead writes). Returns the physical address
    /// the demand write landed on.
    fn write(&mut self, la: La, dev: &mut NvmDevice) -> Pa;

    /// Serve a demand read. Default: translate and count the read.
    fn read(&mut self, la: La, dev: &mut NvmDevice) -> Pa {
        let pa = self.translate(la);
        dev.read(pa);
        pa
    }

    /// Serve `n` consecutive demand writes to the same logical line.
    /// Bit-equivalent to calling [`write`](WearLeveler::write) `n` times,
    /// stopping once the device dies; returns the number of writes served.
    ///
    /// Attack workloads dwell on one address for thousands of consecutive
    /// writes, so schemes whose mapping only changes at periodic
    /// wear-leveling events override this to run the writes between events
    /// through [`NvmDevice::write_run`] in O(1). The default is the plain
    /// scalar loop.
    fn write_run(&mut self, la: La, n: u64, dev: &mut NvmDevice) -> u64 {
        let mut done = 0;
        while done < n && !dev.is_dead() {
            self.write(la, dev);
            done += 1;
        }
        done
    }

    /// Lower bound on how many *further* consecutive demand writes to `la`
    /// are **quiet**: they keep [`translate`](WearLeveler::translate)`(la)`
    /// unchanged, perform no device reads, post no overhead writes, and
    /// advance no [`op_counts`](WearLeveler::op_counts) counter — each one
    /// is exactly one demand write to the same physical line.
    ///
    /// The timed driver batches exactly this many writes through one
    /// memory-controller event stream fast path; anything the scheme might
    /// do (exchange, gap move, refresh step, CMT miss, adaptation sample)
    /// must lie strictly *beyond* the returned count. `0` — the default —
    /// is always safe and simply keeps the driver scalar.
    ///
    /// Pure observation: must not change scheme state.
    fn quiet_writes(&self, _la: La) -> u64 {
        0
    }

    /// Bring the scheme back to a consistent state after a power-loss
    /// event: restore device power, resolve any interrupted wear-leveling
    /// operation, and rebuild volatile (cache/counter) state.
    ///
    /// Default: restore power and report a clean recovery — correct for the
    /// algebraic and table-based baselines, whose entire mapping lives in
    /// on-chip registers modeled as durable (cf. the paper's assumption
    /// that the GTD-class registers survive power loss). Tiered schemes
    /// with NVM-resident tables override this with journal replay/rollback.
    fn recover(&mut self, dev: &mut NvmDevice) -> Recovery {
        dev.restore_power();
        Recovery::CLEAN
    }

    /// Bits of mapping state the scheme must keep **on chip** for correct
    /// operation (tables, keys, pointers, counters). This is the hardware
    /// overhead axis of the paper's Fig. 5 / §4.5.
    fn onchip_bits(&self) -> u64;

    /// Fill `out` with whatever telemetry signals the scheme tracks (CMT
    /// counters, adaptation state, journal ops). Pure observation: must
    /// not change scheme state. The default reports nothing — correct for
    /// schemes without caches or journals.
    fn telemetry_sample(&self, _out: &mut sawl_telemetry::SchemeSample) {}

    /// Start buffering discrete adaptation events (merge/split/exchange/
    /// threshold crossings) in a bounded ring of `capacity` entries.
    /// Default: no-op for schemes that emit no events.
    fn telemetry_events_enable(&mut self, _capacity: usize) {}

    /// Drain the event ring as `(events_oldest_first, dropped_count)`, and
    /// stop buffering. `None` when no ring was enabled (or the scheme
    /// never buffers events).
    fn telemetry_events_take(&mut self) -> Option<(Vec<sawl_telemetry::Event>, u64)> {
        None
    }

    /// Cumulative wear-leveling operation counts. The timing driver diffs
    /// this around each request to attribute that request's overhead
    /// writes to a cause (data exchange vs. merge/split reorganization).
    /// Default: all zero — correct for schemes that report nothing; their
    /// overhead writes are then attributed to exchanges, which is what
    /// every non-SAWL scheme performs.
    fn op_counts(&self) -> OpCounts {
        OpCounts::default()
    }
}

/// Cumulative operation counters reported by
/// [`WearLeveler::op_counts`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Completed data exchanges (remap/swap moves).
    pub exchanges: u64,
    /// Completed region reorganizations (SAWL's merges + splits).
    pub reorgs: u64,
}

/// Blanket impl so drivers can hold `Box<dyn WearLeveler>`.
impl<W: WearLeveler + ?Sized> WearLeveler for Box<W> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn logical_lines(&self) -> u64 {
        (**self).logical_lines()
    }

    fn translate(&self, la: La) -> Pa {
        (**self).translate(la)
    }

    fn write(&mut self, la: La, dev: &mut NvmDevice) -> Pa {
        (**self).write(la, dev)
    }

    fn read(&mut self, la: La, dev: &mut NvmDevice) -> Pa {
        (**self).read(la, dev)
    }

    fn write_run(&mut self, la: La, n: u64, dev: &mut NvmDevice) -> u64 {
        (**self).write_run(la, n, dev)
    }
    fn quiet_writes(&self, la: La) -> u64 {
        (**self).quiet_writes(la)
    }

    fn recover(&mut self, dev: &mut NvmDevice) -> Recovery {
        (**self).recover(dev)
    }

    fn onchip_bits(&self) -> u64 {
        (**self).onchip_bits()
    }

    fn telemetry_sample(&self, out: &mut sawl_telemetry::SchemeSample) {
        (**self).telemetry_sample(out)
    }

    fn telemetry_events_enable(&mut self, capacity: usize) {
        (**self).telemetry_events_enable(capacity)
    }

    fn telemetry_events_take(&mut self) -> Option<(Vec<sawl_telemetry::Event>, u64)> {
        (**self).telemetry_events_take()
    }

    fn op_counts(&self) -> OpCounts {
        (**self).op_counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sawl_nvm::NvmConfig;

    #[test]
    fn boxed_wear_leveler_delegates() {
        let cfg = NvmConfig::builder().lines(64).banks(1).endurance(100).build().unwrap();
        let mut dev = NvmDevice::new(cfg);
        let mut wl: Box<dyn WearLeveler> = Box::new(NoWl::new(64));
        assert_eq!(wl.name(), "baseline");
        assert_eq!(wl.logical_lines(), 64);
        assert_eq!(wl.translate(5), 5);
        assert_eq!(wl.write(5, &mut dev), 5);
        assert_eq!(wl.read(6, &mut dev), 6);
        assert_eq!(wl.onchip_bits(), 0);
    }
}
