//! Checkpoint round-trips for every baseline scheme: restoring into a
//! freshly built twin must reproduce the exact mutable state (re-encoding
//! is byte-identical) and the twin must continue in lockstep with the
//! original on an identical device.

use sawl_algos::WearLeveler;
use sawl_algos::{Ideal, Mwsr, NoWl, PcmS, SecurityRefresh, SegmentSwap, StartGap, Tlsr};
use sawl_ckpt::{Reader, Writer};
use sawl_nvm::{NvmConfig, NvmDevice};

fn dev(lines: u64) -> NvmDevice {
    NvmDevice::new(
        NvmConfig::builder()
            .lines(lines)
            .banks(1)
            .endurance(1_000_000)
            .spare_shift(4)
            .build()
            .unwrap(),
    )
}

/// Drive `n` pseudo-random writes over `span` logical lines.
fn traffic<W: WearLeveler>(wl: &mut W, d: &mut NvmDevice, span: u64, n: u64, mut x: u64) {
    for _ in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        wl.write(x % span, d);
    }
}

/// Warm the scheme up, checkpoint it, restore into `twin`, then check that
/// (a) re-encoding the twin is byte-identical and (b) the twin continues in
/// lockstep with the original on a cloned device.
fn roundtrip<W: WearLeveler>(
    mut wl: W,
    mut twin: W,
    mut d: NvmDevice,
    save: impl Fn(&W, &mut Writer),
    restore: impl Fn(&mut W, &mut Reader<'_>) -> Result<(), sawl_ckpt::CkptError>,
) {
    let span = wl.logical_lines();
    traffic(&mut wl, &mut d, span, 5_000, 0x9E3779B97F4A7C15);

    let mut w = Writer::new();
    save(&wl, &mut w);
    let payload = w.into_payload();

    let mut r = Reader::new(&payload);
    restore(&mut twin, &mut r).expect("restore");
    r.finish().expect("no trailing bytes");

    let mut w2 = Writer::new();
    save(&twin, &mut w2);
    assert_eq!(payload, w2.into_payload(), "re-encode differs: state not fully captured");

    let mut d2 = d.clone();
    let mut x = 0xDEADBEEFCAFEu64;
    for i in 0..2_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let la = x % span;
        assert_eq!(wl.translate(la), twin.translate(la), "translate diverged at step {i}");
        let pa1 = wl.write(la, &mut d);
        let pa2 = twin.write(la, &mut d2);
        assert_eq!(pa1, pa2, "write landed differently at step {i}");
    }
    assert_eq!(d.wear(), d2.wear(), "device wear diverged after resume");
    assert_eq!(d.write_counts(), d2.write_counts(), "per-line wear diverged after resume");
}

#[test]
fn nowl_roundtrips() {
    roundtrip(
        NoWl::new(256),
        NoWl::new(256),
        dev(256),
        |w, wr| w.ckpt_save(wr),
        |w, r| w.ckpt_restore(r),
    );
}

#[test]
fn ideal_roundtrips() {
    roundtrip(
        Ideal::new(256),
        Ideal::new(256),
        dev(256),
        |w, wr| w.ckpt_save(wr),
        |w, r| w.ckpt_restore(r),
    );
}

#[test]
fn segment_swap_roundtrips() {
    roundtrip(
        SegmentSwap::new(512, 16, 40),
        SegmentSwap::new(512, 16, 40),
        dev(512),
        |w, wr| w.ckpt_save(wr),
        |w, r| w.ckpt_restore(r),
    );
}

#[test]
fn start_gap_roundtrips() {
    let wl = StartGap::new(8, 15, 3);
    let d = dev(wl.physical_lines());
    roundtrip(wl, StartGap::new(8, 15, 3), d, |w, wr| w.ckpt_save(wr), |w, r| w.ckpt_restore(r));
}

#[test]
fn security_refresh_roundtrips() {
    roundtrip(
        SecurityRefresh::new(512, 4, 7),
        SecurityRefresh::new(512, 4, 7),
        dev(512),
        |w, wr| w.ckpt_save(wr),
        |w, r| w.ckpt_restore(r),
    );
}

#[test]
fn tlsr_roundtrips() {
    roundtrip(
        Tlsr::new(1 << 9, 1 << 4, 8, 32, 11),
        Tlsr::new(1 << 9, 1 << 4, 8, 32, 11),
        dev(1 << 9),
        |w, wr| w.ckpt_save(wr),
        |w, r| w.ckpt_restore(r),
    );
}

#[test]
fn pcms_roundtrips() {
    roundtrip(
        PcmS::new(512, 16, 8, 5),
        PcmS::new(512, 16, 8, 5),
        dev(512),
        |w, wr| w.ckpt_save(wr),
        |w, r| w.ckpt_restore(r),
    );
}

#[test]
fn mwsr_roundtrips() {
    let wl = Mwsr::new(512, 16, 8, 6);
    let d = dev(wl.physical_lines());
    roundtrip(wl, Mwsr::new(512, 16, 8, 6), d, |w, wr| w.ckpt_save(wr), |w, r| w.ckpt_restore(r));
}

#[test]
fn restore_rejects_mismatched_shapes() {
    // A checkpoint from a differently-shaped instance must come back as a
    // typed Corrupt error, never a panic or silent partial load.
    let mut w = Writer::new();
    SegmentSwap::new(512, 16, 40).ckpt_save(&mut w);
    let payload = w.into_payload();
    let mut small = SegmentSwap::new(256, 16, 40);
    let err = small.ckpt_restore(&mut Reader::new(&payload)).unwrap_err();
    assert!(matches!(err, sawl_ckpt::CkptError::Corrupt(_)), "{err}");

    let mut w = Writer::new();
    StartGap::new(8, 15, 3).ckpt_save(&mut w);
    let payload = w.into_payload();
    let mut other = StartGap::new(4, 15, 3);
    assert!(other.ckpt_restore(&mut Reader::new(&payload)).is_err());

    // Truncation anywhere inside a scheme record errors cleanly too.
    let mut w = Writer::new();
    Mwsr::new(512, 16, 8, 6).ckpt_save(&mut w);
    let payload = w.into_payload();
    for cut in [0, 1, payload.len() / 2, payload.len() - 1] {
        let mut twin = Mwsr::new(512, 16, 8, 6);
        assert!(
            twin.ckpt_restore(&mut Reader::new(&payload[..cut])).is_err(),
            "truncation at {cut} not rejected"
        );
    }
}
