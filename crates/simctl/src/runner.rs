//! Parallel experiment sweeps.
//!
//! Figure sweeps are dozens of independent, CPU-bound simulations; this
//! module fans them out over the machine's cores. Each worker pulls the
//! next item off a shared atomic cursor — work-stealing degenerate to a
//! single deque — so long-running configurations don't leave cores idle
//! behind a static partition, and streams its `(index, result)` pairs back
//! over a crossbeam channel. Results are reassembled in input order, and
//! every run derives its own seed from its id, so the sweep's output is
//! independent of scheduling.
//!
//! The fan-out honors a `SAWL_THREADS` environment override (clamped to at
//! least 1) so CI and shared machines can bound the worker count
//! deterministically; unset or unparsable values fall back to the
//! machine's available parallelism. A process-wide programmatic override
//! ([`set_thread_override`], the `--threads` CLI flag) beats the
//! environment. Worker count never changes results — every run is seeded
//! from its own id and results are reassembled in input order — so the
//! knobs only bound the resource footprint.

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::channel;

/// Process-wide thread-count override set by CLI flags; 0 means unset.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Set (or clear, with `None`) the programmatic worker-count override.
/// Takes precedence over `SAWL_THREADS`; values clamp to at least 1. This
/// is how `--threads N` flags plumb into every [`parallel_map`] sweep.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.map_or(0, |n| n.max(1)), Ordering::Relaxed);
}

/// Parse a raw `SAWL_THREADS` value into a worker count (clamped to ≥ 1).
/// `None` means fall back to the machine's parallelism — silently when the
/// variable is unset, with a one-line stderr warning when it is set but
/// unparsable, so a typo'd override doesn't silently change the sweep's
/// resource footprint.
fn parse_thread_override(raw: Option<&str>) -> Option<usize> {
    let raw = raw?;
    match raw.trim().parse::<usize>() {
        Ok(n) => Some(n.max(1)),
        Err(_) => {
            eprintln!(
                "warning: SAWL_THREADS={raw:?} is not a thread count; \
                 falling back to available parallelism"
            );
            None
        }
    }
}

/// Worker threads to use: the programmatic override when set (a `--threads`
/// flag), else the `SAWL_THREADS` override (clamped to ≥ 1), otherwise the
/// machine's available parallelism.
fn configured_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => {}
        n => return n,
    }
    match parse_thread_override(std::env::var("SAWL_THREADS").ok().as_deref()) {
        Some(n) => n,
        None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
    }
}

/// Apply `f` to every item on all cores; results keep the input order.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = configured_threads().min(items.len());
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = channel::bounded::<(usize, R)>(threads * 2);
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            scope.spawn(|| {
                // Move the clone into the worker; the last drop closes the
                // channel once every worker finishes.
                let tx = tx;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(&items[i]);
                    if tx.send((i, r)).is_err() {
                        break; // receiver gone: nothing left to report to
                    }
                }
            });
        }
        drop(tx);
        // Collect on the calling thread while workers run.
        for (i, r) in rx {
            results[i] = Some(r);
        }
    });
    results.into_iter().map(|r| r.expect("worker skipped an item")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let count = AtomicU64::new(0);
        let items: Vec<u32> = (0..500).collect();
        let _ = parallel_map(&items, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = parallel_map(&Vec::<u32>::new(), |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let out = parallel_map(&[41], |&x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with very different costs: the atomic cursor ensures no
        // static partition straggles. We only check correctness here.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, |&x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 100_000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn thread_env_override_is_honored() {
        // One test covers every SAWL_THREADS case — and the programmatic
        // override's precedence over it — so the env/global mutations
        // can't race each other across the test harness's threads. The
        // other tests in this module are thread-count-agnostic, so a
        // transient override cannot affect their outcomes.
        let items: Vec<u64> = (0..64).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3).collect();

        std::env::set_var("SAWL_THREADS", "1");
        assert_eq!(configured_threads(), 1);
        assert_eq!(parallel_map(&items, |&x| x * 3), expect);

        std::env::set_var("SAWL_THREADS", "2");
        assert_eq!(configured_threads(), 2);
        assert_eq!(parallel_map(&items, |&x| x * 3), expect);

        // The --threads flag (programmatic override) beats the env var,
        // clamps to >= 1, and clears back to the env behind it.
        set_thread_override(Some(3));
        assert_eq!(configured_threads(), 3);
        assert_eq!(parallel_map(&items, |&x| x * 3), expect);
        set_thread_override(Some(0));
        assert_eq!(configured_threads(), 1);
        set_thread_override(None);
        assert_eq!(configured_threads(), 2);

        // Zero clamps up to one worker instead of hanging or panicking.
        std::env::set_var("SAWL_THREADS", "0");
        assert_eq!(configured_threads(), 1);

        // Garbage falls back to the machine's parallelism.
        std::env::set_var("SAWL_THREADS", "lots");
        assert!(configured_threads() >= 1);

        std::env::remove_var("SAWL_THREADS");
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn thread_override_parses_numbers_and_warns_on_garbage() {
        // Pure-function cases, no env mutation: unset is a silent
        // fallback, numbers parse (with whitespace, clamped to >= 1), and
        // garbage falls back with a warning (visible with --nocapture).
        assert_eq!(parse_thread_override(None), None);
        assert_eq!(parse_thread_override(Some("3")), Some(3));
        assert_eq!(parse_thread_override(Some(" 8 ")), Some(8));
        assert_eq!(parse_thread_override(Some("0")), Some(1));
        assert_eq!(parse_thread_override(Some("lots")), None);
        assert_eq!(parse_thread_override(Some("")), None);
        assert_eq!(parse_thread_override(Some("-2")), None);
    }

    #[test]
    fn results_can_outnumber_channel_capacity() {
        // More items than the bounded channel's capacity: backpressure
        // must not deadlock the workers.
        let items: Vec<u32> = (0..10_000).collect();
        let out = parallel_map(&items, |&x| x + 1);
        assert_eq!(out.len(), 10_000);
        assert_eq!(out[9_999], 10_000);
    }
}
