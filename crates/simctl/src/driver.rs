//! The shared request pump.
//!
//! Every run in the suite — lifetime, performance, adaptation traces, the
//! examples — is at its core the same loop: pull requests from an address
//! stream and route writes/reads through a wear leveler against a device.
//! This module is that loop, written once. The figure binaries never
//! hand-roll it; they describe *what* to run ([`crate::scenario`]) and the
//! driver does the running.

use sawl_algos::WearLeveler;
use sawl_nvm::NvmDevice;
use sawl_trace::{AddressStream, MemReq};

/// Drive `requests` requests from `stream` through `wl`.
pub fn pump<W, S>(wl: &mut W, dev: &mut NvmDevice, stream: &mut S, requests: u64)
where
    W: WearLeveler + ?Sized,
    S: AddressStream + ?Sized,
{
    for _ in 0..requests {
        let req = stream.next_req();
        if req.write {
            wl.write(req.la, dev);
        } else {
            wl.read(req.la, dev);
        }
    }
}

/// Like [`pump`], invoking `observe` after every request with the request,
/// the physical address it resolved to, and the post-request engine and
/// device state — the hook the timing models feed from.
pub fn pump_observed<W, S, F>(
    wl: &mut W,
    dev: &mut NvmDevice,
    stream: &mut S,
    requests: u64,
    mut observe: F,
) where
    W: WearLeveler + ?Sized,
    S: AddressStream + ?Sized,
    F: FnMut(MemReq, u64, &W, &NvmDevice),
{
    for _ in 0..requests {
        let req = stream.next_req();
        let pa = if req.write { wl.write(req.la, dev) } else { wl.read(req.la, dev) };
        observe(req, pa, wl, dev);
    }
}

/// The lifetime loop: drive only the stream's writes (reads do not wear
/// cells) until the device dies or `cap` demand writes have been served.
pub fn pump_writes<W, S>(wl: &mut W, dev: &mut NvmDevice, stream: &mut S, cap: u64)
where
    W: WearLeveler + ?Sized,
    S: AddressStream + ?Sized,
{
    while !dev.is_dead() && dev.wear().demand_writes < cap {
        let req = stream.next_req();
        if req.write {
            wl.write(req.la, dev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sawl_algos::{Ideal, NoWl};
    use sawl_nvm::NvmConfig;
    use sawl_trace::Uniform;

    fn device(lines: u64, endurance: u32) -> NvmDevice {
        NvmDevice::new(
            NvmConfig::builder()
                .lines(lines)
                .banks(1)
                .endurance(endurance)
                .spare_shift(6)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn pump_serves_exactly_the_requested_count() {
        let mut wl = NoWl::new(1 << 10);
        let mut dev = device(1 << 10, u32::MAX);
        let mut stream = Uniform::new(1 << 10, 0.5, 3);
        pump(&mut wl, &mut dev, &mut stream, 10_000);
        let w = dev.wear();
        assert_eq!(w.demand_writes + w.reads, 10_000);
    }

    #[test]
    fn pump_observed_sees_every_request_in_order() {
        let mut wl = NoWl::new(1 << 8);
        let mut dev = device(1 << 8, u32::MAX);
        let mut stream = Uniform::new(1 << 8, 1.0, 3);
        let mut seen = 0u64;
        pump_observed(&mut wl, &mut dev, &mut stream, 500, |req, pa, w, d| {
            assert_eq!(pa, req.la, "identity scheme must not remap");
            assert_eq!(w.translate(req.la), pa);
            seen += 1;
            assert_eq!(d.wear().demand_writes, seen);
        });
        assert_eq!(seen, 500);
    }

    #[test]
    fn pump_writes_stops_at_death() {
        let mut wl = Ideal::new(1 << 6);
        let mut dev = device(1 << 6, 100);
        let mut stream = Uniform::new(1 << 6, 1.0, 3);
        pump_writes(&mut wl, &mut dev, &mut stream, u64::MAX);
        assert!(dev.is_dead());
    }

    #[test]
    fn pump_writes_respects_the_cap() {
        let mut wl = Ideal::new(1 << 6);
        let mut dev = device(1 << 6, u32::MAX);
        let mut stream = Uniform::new(1 << 6, 1.0, 3);
        pump_writes(&mut wl, &mut dev, &mut stream, 1_234);
        assert_eq!(dev.wear().demand_writes, 1_234);
    }

    #[test]
    fn pump_skips_reads_in_lifetime_mode() {
        let mut wl = NoWl::new(1 << 8);
        let mut dev = device(1 << 8, u32::MAX);
        // Write ratio 0.5: roughly half the requests are reads and must
        // not be issued to the device at all.
        let mut stream = Uniform::new(1 << 8, 0.5, 9);
        pump_writes(&mut wl, &mut dev, &mut stream, 1_000);
        assert_eq!(dev.wear().demand_writes, 1_000);
        assert_eq!(dev.wear().reads, 0);
    }
}
