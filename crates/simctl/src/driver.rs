//! The shared request pump.
//!
//! Every run in the suite — lifetime, performance, adaptation traces, the
//! examples — is at its core the same loop: pull requests from an address
//! stream and route writes/reads through a wear leveler against a device.
//! This module is that loop, written once. The figure binaries never
//! hand-roll it; they describe *what* to run ([`crate::scenario`]) and the
//! driver does the running.
//!
//! The loop is **batched**: requests are drained from the stream into a
//! reusable [`BLOCK`]-request buffer via [`AddressStream::fill`], so the
//! per-request cost of a `Box<dyn AddressStream>` is one virtual dispatch
//! (and one RNG state load) per block rather than per request. The request
//! sequence each pump applies is bit-identical to the scalar
//! `next_req`-per-request loop it replaced — `fill` guarantees it, and the
//! driver equivalence tests enforce it end to end.

use std::error::Error;
use std::fmt;

use sawl_algos::WearLeveler;
use sawl_core::ConfigError;
use sawl_nvm::{FaultPlanError, NvmDevice};
use sawl_trace::{AddressStream, MemReq, ReqRun, WearObservation};

use crate::telemetry::TelemetryRun;
use crate::timing::TimingRun;

/// Requests drained from the stream per batch. Big enough to amortize the
/// virtual dispatch and RNG setup, small enough to stay cache-resident
/// (4096 × 16 B = 64 KiB).
pub const BLOCK: usize = 4096;

/// Consecutive reads [`pump_writes`] tolerates before declaring the
/// workload write-free and bailing out instead of spinning forever.
pub const READ_SPIN_LIMIT: u64 = 16 << 20;

/// A defect in a run's specification or workload, surfaced as a value so
/// spec-driven entry points (`sawl-sim`, JSON scenarios) can report it and
/// exit nonzero instead of panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum DriverError {
    /// The workload produced [`READ_SPIN_LIMIT`] consecutive reads without
    /// a single demand write; a lifetime run over it can never finish.
    WriteFreeStream {
        /// The offending stream's display name.
        stream: String,
    },
    /// The scheme's configuration is structurally invalid.
    Config(ConfigError),
    /// The fault plan is invalid for the target device.
    FaultPlan(FaultPlanError),
    /// A scheme/device/probe geometry defect in the spec.
    Spec(String),
    /// A checkpoint file could not be written, read, or restored (I/O,
    /// corruption, version skew, or a spec mismatch). Carries the
    /// rendered [`sawl_ckpt::CkptError`]/IO reason; the run is not lost —
    /// an earlier checkpoint or a fresh start both remain valid.
    Checkpoint(String),
    /// A finished run's report failed to serialize (diagnostic path for
    /// what would otherwise be a panic in the CLI).
    Report(String),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::WriteFreeStream { stream } => write!(
                f,
                "{READ_SPIN_LIMIT} consecutive reads without a single demand write — the \
                 workload (stream \"{stream}\") produces no writes, so a lifetime run can \
                 never finish; fix the workload's write ratio"
            ),
            Self::Config(e) => write!(f, "invalid scheme config: {e}"),
            Self::FaultPlan(e) => write!(f, "invalid fault plan: {e}"),
            Self::Spec(msg) => write!(f, "invalid spec: {msg}"),
            Self::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            Self::Report(msg) => write!(f, "cannot serialize report: {msg}"),
        }
    }
}

impl Error for DriverError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Config(e) => Some(e),
            Self::FaultPlan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for DriverError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

impl From<FaultPlanError> for DriverError {
    fn from(e: FaultPlanError) -> Self {
        Self::FaultPlan(e)
    }
}

/// Recovery bookkeeping accumulated by one [`pump_writes`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpStats {
    /// Power-loss events the pump recovered from.
    pub recoveries: u64,
    /// Recovery passes that replayed a journaled in-flight operation.
    pub journal_replays: u64,
    /// Recovery passes that rolled a journaled operation back.
    pub journal_rollbacks: u64,
}

/// Feed the device's current wear statistics to an observation-driven
/// stream (the FTL/GC feedback loop, [`sawl_trace::GcFeedback`]). Every
/// pump calls this immediately before each batch pull, so the stream sees
/// the device at deterministic request offsets — the property the
/// batched-vs-scalar equivalence tests rely on. Streams that do not ask
/// for observations cost one branch per *block*, nothing per request.
///
/// The device's incremental wear probe is enabled on first use: runs
/// without an observing stream never pay the probe's per-write upkeep.
pub fn feed_observation<S>(stream: &mut S, dev: &mut NvmDevice)
where
    S: AddressStream + ?Sized,
{
    if !stream.wants_observation() {
        return;
    }
    if !dev.wear_probe_enabled() {
        dev.enable_wear_probe();
    }
    let snap = dev.wear_snapshot().expect("wear probe just enabled");
    let w = dev.wear();
    stream.observe_wear(&WearObservation {
        demand_writes: w.demand_writes,
        overhead_writes: w.overhead_writes,
        wear_mean: snap.mean,
        wear_cov: snap.cov,
        wear_max: snap.max,
    });
}

/// Drive `requests` requests from `stream` through `wl`.
pub fn pump<W, S>(wl: &mut W, dev: &mut NvmDevice, stream: &mut S, requests: u64)
where
    W: WearLeveler + ?Sized,
    S: AddressStream + ?Sized,
{
    let mut buf = [MemReq::read(0); BLOCK];
    let mut left = requests;
    while left > 0 {
        let n = left.min(BLOCK as u64) as usize;
        feed_observation(stream, dev);
        let filled = stream.fill(&mut buf[..n]);
        for req in &buf[..filled] {
            if req.write {
                wl.write(req.la, dev);
            } else {
                wl.read(req.la, dev);
            }
        }
        left -= filled as u64;
        assert!(filled == n, "address streams are infinite; fill must not short a block");
    }
}

/// [`pump`] with an optional telemetry recorder. Every request — read or
/// write — advances the sampling clock by one, so a sample lands after
/// the request with 1-based index `k * stride` regardless of batching.
///
/// `None` delegates to the plain [`pump`] loop, so a disabled recorder
/// costs the hot path nothing at all — not even a per-request branch.
pub fn pump_telemetry<W, S>(
    wl: &mut W,
    dev: &mut NvmDevice,
    stream: &mut S,
    requests: u64,
    telemetry: Option<&mut TelemetryRun>,
) where
    W: WearLeveler + ?Sized,
    S: AddressStream + ?Sized,
{
    let Some(t) = telemetry else {
        return pump(wl, dev, stream, requests);
    };
    let mut buf = [MemReq::read(0); BLOCK];
    let mut left = requests;
    while left > 0 {
        let n = left.min(BLOCK as u64) as usize;
        feed_observation(stream, dev);
        let filled = stream.fill(&mut buf[..n]);
        for req in &buf[..filled] {
            if req.write {
                wl.write(req.la, dev);
            } else {
                wl.read(req.la, dev);
            }
            t.note_served(1, wl, dev);
        }
        left -= filled as u64;
        assert!(filled == n, "address streams are infinite; fill must not short a block");
    }
}

/// Like [`pump`], invoking `observe` after every request with the request,
/// the physical address it resolved to, and the post-request engine and
/// device state — the hook the timing models feed from.
pub fn pump_observed<W, S, F>(
    wl: &mut W,
    dev: &mut NvmDevice,
    stream: &mut S,
    requests: u64,
    mut observe: F,
) where
    W: WearLeveler + ?Sized,
    S: AddressStream + ?Sized,
    F: FnMut(MemReq, u64, &W, &NvmDevice),
{
    let mut buf = [MemReq::read(0); BLOCK];
    let mut left = requests;
    while left > 0 {
        let n = left.min(BLOCK as u64) as usize;
        feed_observation(stream, dev);
        let filled = stream.fill(&mut buf[..n]);
        for &req in &buf[..filled] {
            let pa = if req.write { wl.write(req.la, dev) } else { wl.read(req.la, dev) };
            observe(req, pa, wl, dev);
        }
        left -= filled as u64;
        assert!(filled == n, "address streams are infinite; fill must not short a block");
    }
}

/// The lifetime loop: drive only the stream's writes (reads do not wear
/// cells) until the device dies or `cap` demand writes have been served.
/// Stops within one request of either condition, exactly like the scalar
/// loop: the per-request check happens inside the block walk.
///
/// The workload is drained at *run* granularity
/// ([`AddressStream::fill_runs`]): each run of consecutive writes to the
/// same logical address is handed to [`WearLeveler::write_run`] as one
/// call, letting schemes with a batched override (PCM-S, MWSR, security
/// refresh, SAWL) collapse the run into counter arithmetic — and letting
/// run-structured generators (BPA, RAA) skip materializing the request
/// sequence entirely. The default `write_run` is a scalar loop, so the
/// request sequence every scheme observes — and the resulting device
/// state — is bit-identical to the per-request loop; the scenario
/// equivalence tests enforce this end to end.
///
/// When the device carries a fault plan, a scheduled power loss surfaces
/// here as a short `write_run`: the pump drives [`WearLeveler::recover`]
/// until a pass completes (replay is idempotent, so repeated losses during
/// recovery are fine), counts the recovery, and re-serves whatever the
/// interrupted run did not complete. Returns the recovery bookkeeping, or
/// a [`DriverError::WriteFreeStream`] after [`READ_SPIN_LIMIT`]
/// consecutive reads — a stream that never produces writes (write ratio 0,
/// or a phase schedule degenerating to reads) would otherwise spin forever
/// without advancing `demand_writes`.
pub fn pump_writes<W, S>(
    wl: &mut W,
    dev: &mut NvmDevice,
    stream: &mut S,
    cap: u64,
) -> Result<PumpStats, DriverError>
where
    W: WearLeveler + ?Sized,
    S: AddressStream + ?Sized,
{
    let mut scratch = [MemReq::read(0); BLOCK];
    let mut runs: Vec<ReqRun> = Vec::new();
    let mut consecutive_reads = 0u64;
    let mut stats = PumpStats::default();
    'blocks: while !dev.is_dead() && dev.wear().demand_writes < cap {
        feed_observation(stream, dev);
        stream.fill_runs(&mut runs, &mut scratch);
        for run in &runs {
            if !run.write {
                consecutive_reads += run.len;
                if consecutive_reads >= READ_SPIN_LIMIT {
                    return Err(DriverError::WriteFreeStream { stream: stream.name().to_string() });
                }
                continue;
            }
            consecutive_reads = 0;
            let mut served = 0u64;
            while served < run.len {
                let n = (run.len - served).min(cap - dev.wear().demand_writes);
                let done = wl.write_run(run.la, n, dev);
                if dev.is_dead() || dev.wear().demand_writes >= cap {
                    break 'blocks;
                }
                if dev.power_lost() {
                    // Replay is idempotent; keep recovering until a pass
                    // runs to completion without another scheduled power
                    // loss.
                    loop {
                        let r = wl.recover(dev);
                        stats.journal_replays += u64::from(r.replayed);
                        stats.journal_rollbacks += u64::from(r.rolled_back);
                        if r.complete {
                            break;
                        }
                    }
                    stats.recoveries += 1;
                    // Replayed data movement wears cells too and can finish
                    // off a nearly-dead device.
                    if dev.is_dead() {
                        break 'blocks;
                    }
                    // Whatever the interrupted run did not serve is retried
                    // by the next inner-loop iteration.
                    served += done;
                    continue;
                }
                debug_assert_eq!(done, n, "write_run must complete unless the device died");
                served += done;
            }
        }
    }
    Ok(stats)
}

/// [`pump_writes`] with an optional telemetry recorder.
///
/// The sampling clock counts *served demand writes* (the lifetime-probe
/// request index). Each batched `write_run` is clamped at the recorder's
/// [`until_sample`](TelemetryRun::until_sample) boundary, so samples land
/// after the request with 1-based index `k * stride` — exactly where the
/// scalar per-request loop would take them (`telemetry_alignment.rs` pins
/// this). A sample on the killing or cap-reaching write is still taken;
/// writes dropped by a power loss are not counted as served.
///
/// `None` delegates to the plain [`pump_writes`] loop, so a disabled
/// recorder costs the hot path nothing at all — not even a per-run branch.
pub fn pump_writes_telemetry<W, S>(
    wl: &mut W,
    dev: &mut NvmDevice,
    stream: &mut S,
    cap: u64,
    telemetry: Option<&mut TelemetryRun>,
) -> Result<PumpStats, DriverError>
where
    W: WearLeveler + ?Sized,
    S: AddressStream + ?Sized,
{
    let Some(t) = telemetry else {
        return pump_writes(wl, dev, stream, cap);
    };
    let mut scratch = [MemReq::read(0); BLOCK];
    let mut runs: Vec<ReqRun> = Vec::new();
    let mut consecutive_reads = 0u64;
    let mut stats = PumpStats::default();
    'blocks: while !dev.is_dead() && dev.wear().demand_writes < cap {
        feed_observation(stream, dev);
        stream.fill_runs(&mut runs, &mut scratch);
        for run in &runs {
            if !run.write {
                consecutive_reads += run.len;
                if consecutive_reads >= READ_SPIN_LIMIT {
                    return Err(DriverError::WriteFreeStream { stream: stream.name().to_string() });
                }
                continue;
            }
            consecutive_reads = 0;
            let mut served = 0u64;
            while served < run.len {
                let n =
                    (run.len - served).min(cap - dev.wear().demand_writes).min(t.until_sample());
                let done = wl.write_run(run.la, n, dev);
                t.note_served(done, wl, dev);
                if dev.is_dead() || dev.wear().demand_writes >= cap {
                    break 'blocks;
                }
                if dev.power_lost() {
                    // Replay is idempotent; keep recovering until a pass
                    // runs to completion without another scheduled power
                    // loss.
                    loop {
                        let r = wl.recover(dev);
                        stats.journal_replays += u64::from(r.replayed);
                        stats.journal_rollbacks += u64::from(r.rolled_back);
                        if r.complete {
                            break;
                        }
                    }
                    stats.recoveries += 1;
                    // Replayed data movement wears cells too and can finish
                    // off a nearly-dead device.
                    if dev.is_dead() {
                        break 'blocks;
                    }
                    // Whatever the interrupted run did not serve is retried
                    // by the next inner-loop iteration.
                    served += done;
                    continue;
                }
                debug_assert_eq!(done, n, "write_run must complete unless the device died");
                served += done;
            }
        }
    }
    Ok(stats)
}

/// [`pump_writes_telemetry`] with the closed-loop timing model attached.
///
/// Timing needs the physical address and the per-request device/scheme
/// counter deltas of every write, but it does **not** need them one write
/// at a time: a span the scheme certifies as *quiet*
/// ([`WearLeveler::quiet_writes`] — stable translation, no device reads,
/// no overhead writes, no op-count movement) produces `n` copies of one
/// event, which the controller advances in closed form
/// ([`TimingRun::observe_run`]). Everything else — the first write after a
/// mapping move, CMT misses, exchange/merge/split triggers, telemetry
/// sample boundaries — is served scalar, so the observed event stream, and
/// with it every nanosecond, histogram slot and stall counter, is
/// bit-identical to the scalar reference loop (`latency_alignment.rs` pins
/// this for every scheme variant).
///
/// Devices with an armed fault plan can drop writes (power loss) or add
/// retries mid-span, so they take the scalar serve loop unconditionally,
/// as does a spec with [`TimingSpec::scalar_serve`] set.
///
/// The telemetry clock advances per served write exactly as in the batched
/// pump: quiet spans are clamped at the recorder's
/// [`until_sample`](TelemetryRun::until_sample) boundary, so samples land
/// on identical request indices.
///
/// [`TimingSpec::scalar_serve`]: sawl_timing::TimingSpec
pub fn pump_writes_timed<W, S>(
    wl: &mut W,
    dev: &mut NvmDevice,
    stream: &mut S,
    cap: u64,
    mut telemetry: Option<&mut TelemetryRun>,
    timing: &mut TimingRun,
) -> Result<PumpStats, DriverError>
where
    W: WearLeveler + ?Sized,
    S: AddressStream + ?Sized,
{
    if dev.fault_plan_armed() || timing.scalar_serve() {
        return pump_writes_timed_scalar(wl, dev, stream, cap, telemetry, timing);
    }
    let mut scratch = [MemReq::read(0); BLOCK];
    let mut runs: Vec<ReqRun> = Vec::new();
    let mut consecutive_reads = 0u64;
    let stats = PumpStats::default();
    timing.prime(wl, dev);
    'blocks: while !dev.is_dead() && dev.wear().demand_writes < cap {
        feed_observation(stream, dev);
        stream.fill_runs(&mut runs, &mut scratch);
        for run in &runs {
            if !run.write {
                consecutive_reads += run.len;
                if consecutive_reads >= READ_SPIN_LIMIT {
                    return Err(DriverError::WriteFreeStream { stream: stream.name().to_string() });
                }
                continue;
            }
            consecutive_reads = 0;
            let mut served = 0u64;
            while served < run.len {
                let until =
                    telemetry.as_deref().map_or(u64::MAX, |t: &TelemetryRun| t.until_sample());
                let n = wl
                    .quiet_writes(run.la)
                    .min(run.len - served)
                    .min(cap - dev.wear().demand_writes)
                    .min(until);
                let done = if n == 0 {
                    // Not certified quiet (mapping move, CMT miss, trigger
                    // or sample boundary ahead): serve scalar and let the
                    // builder diff the deltas.
                    let pa = wl.write(run.la, dev);
                    timing.observe(true, pa, wl, dev);
                    1
                } else {
                    // The whole span repeats one physical line; the killing
                    // write (if the device dies mid-span) is still served
                    // and observed, exactly as in the scalar loop.
                    let pa = wl.translate(run.la);
                    let done = wl.write_run(run.la, n, dev);
                    debug_assert!(done > 0, "write_run served nothing on a live device");
                    timing.observe_run(true, pa, done, wl, dev);
                    done
                };
                if let Some(t) = telemetry.as_deref_mut() {
                    t.note_served_timed(done, wl, dev, timing);
                }
                served += done;
                if dev.is_dead() || dev.wear().demand_writes >= cap {
                    break 'blocks;
                }
            }
        }
    }
    Ok(stats)
}

/// The scalar serve loop of [`pump_writes_timed`]: one
/// [`WearLeveler::write`] and one observed event per request, with full
/// power-loss recovery. Fault-armed runs use it for correctness; fast
/// runs use it as the measured baseline (`TimingSpec::scalar_serve`).
///
/// A write dropped by a power loss is neither observed by the timing model
/// nor counted as served; the recovery's own data movement is charged to
/// the next observed request's overhead delta.
fn pump_writes_timed_scalar<W, S>(
    wl: &mut W,
    dev: &mut NvmDevice,
    stream: &mut S,
    cap: u64,
    mut telemetry: Option<&mut TelemetryRun>,
    timing: &mut TimingRun,
) -> Result<PumpStats, DriverError>
where
    W: WearLeveler + ?Sized,
    S: AddressStream + ?Sized,
{
    let mut scratch = [MemReq::read(0); BLOCK];
    let mut runs: Vec<ReqRun> = Vec::new();
    let mut consecutive_reads = 0u64;
    let mut stats = PumpStats::default();
    timing.prime(wl, dev);
    'blocks: while !dev.is_dead() && dev.wear().demand_writes < cap {
        feed_observation(stream, dev);
        stream.fill_runs(&mut runs, &mut scratch);
        for run in &runs {
            if !run.write {
                consecutive_reads += run.len;
                if consecutive_reads >= READ_SPIN_LIMIT {
                    return Err(DriverError::WriteFreeStream { stream: stream.name().to_string() });
                }
                continue;
            }
            consecutive_reads = 0;
            let mut served = 0u64;
            while served < run.len {
                let before = dev.wear().demand_writes;
                let pa = wl.write(run.la, dev);
                if dev.power_lost() {
                    // Replay is idempotent; keep recovering until a pass
                    // runs to completion without another scheduled loss.
                    loop {
                        let r = wl.recover(dev);
                        stats.journal_replays += u64::from(r.replayed);
                        stats.journal_rollbacks += u64::from(r.rolled_back);
                        if r.complete {
                            break;
                        }
                    }
                    stats.recoveries += 1;
                    if dev.is_dead() {
                        break 'blocks;
                    }
                    // A dropped write is retried; a landed one is observed
                    // below on the retry path's next iteration only if it
                    // actually advanced the demand counter.
                    served += dev.wear().demand_writes - before;
                    continue;
                }
                timing.observe(true, pa, wl, dev);
                if let Some(t) = telemetry.as_deref_mut() {
                    t.note_served_timed(1, wl, dev, timing);
                }
                served += 1;
                if dev.is_dead() || dev.wear().demand_writes >= cap {
                    break 'blocks;
                }
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sawl_algos::{Ideal, NoWl};
    use sawl_nvm::NvmConfig;
    use sawl_trace::Uniform;

    fn device(lines: u64, endurance: u32) -> NvmDevice {
        NvmDevice::new(
            NvmConfig::builder()
                .lines(lines)
                .banks(1)
                .endurance(endurance)
                .spare_shift(6)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn pump_serves_exactly_the_requested_count() {
        let mut wl = NoWl::new(1 << 10);
        let mut dev = device(1 << 10, u32::MAX);
        let mut stream = Uniform::new(1 << 10, 0.5, 3);
        pump(&mut wl, &mut dev, &mut stream, 10_000);
        let w = dev.wear();
        assert_eq!(w.demand_writes + w.reads, 10_000);
    }

    #[test]
    fn pump_observed_sees_every_request_in_order() {
        let mut wl = NoWl::new(1 << 8);
        let mut dev = device(1 << 8, u32::MAX);
        let mut stream = Uniform::new(1 << 8, 1.0, 3);
        let mut seen = 0u64;
        pump_observed(&mut wl, &mut dev, &mut stream, 500, |req, pa, w, d| {
            assert_eq!(pa, req.la, "identity scheme must not remap");
            assert_eq!(w.translate(req.la), pa);
            seen += 1;
            assert_eq!(d.wear().demand_writes, seen);
        });
        assert_eq!(seen, 500);
    }

    #[test]
    fn pump_writes_stops_at_death() {
        let mut wl = Ideal::new(1 << 6);
        let mut dev = device(1 << 6, 100);
        let mut stream = Uniform::new(1 << 6, 1.0, 3);
        pump_writes(&mut wl, &mut dev, &mut stream, u64::MAX).unwrap();
        assert!(dev.is_dead());
    }

    #[test]
    fn pump_writes_respects_the_cap() {
        let mut wl = Ideal::new(1 << 6);
        let mut dev = device(1 << 6, u32::MAX);
        let mut stream = Uniform::new(1 << 6, 1.0, 3);
        pump_writes(&mut wl, &mut dev, &mut stream, 1_234).unwrap();
        assert_eq!(dev.wear().demand_writes, 1_234);
    }

    #[test]
    fn pump_skips_reads_in_lifetime_mode() {
        let mut wl = NoWl::new(1 << 8);
        let mut dev = device(1 << 8, u32::MAX);
        // Write ratio 0.5: roughly half the requests are reads and must
        // not be issued to the device at all.
        let mut stream = Uniform::new(1 << 8, 0.5, 9);
        pump_writes(&mut wl, &mut dev, &mut stream, 1_000).unwrap();
        assert_eq!(dev.wear().demand_writes, 1_000);
        assert_eq!(dev.wear().reads, 0);
    }

    #[test]
    fn pump_writes_bails_on_a_write_free_stream() {
        // Write ratio 0: the scalar loop would spin forever; the guard must
        // bail with a typed error once READ_SPIN_LIMIT reads pass without a
        // single write.
        let mut wl = NoWl::new(1 << 8);
        let mut dev = device(1 << 8, u32::MAX);
        let mut stream = Uniform::new(1 << 8, 0.0, 9);
        let err = pump_writes(&mut wl, &mut dev, &mut stream, 1_000).unwrap_err();
        assert_eq!(err, DriverError::WriteFreeStream { stream: "uniform".into() });
        assert!(err.to_string().contains("produces no writes"), "{err}");
    }

    #[test]
    fn pump_writes_tolerates_long_read_runs_between_writes() {
        // Writes reset the consecutive-read counter: a tiny write ratio
        // must not trip the guard.
        let mut wl = NoWl::new(1 << 8);
        let mut dev = device(1 << 8, u32::MAX);
        let mut stream = Uniform::new(1 << 8, 0.001, 9);
        pump_writes(&mut wl, &mut dev, &mut stream, 50).unwrap();
        assert_eq!(dev.wear().demand_writes, 50);
    }

    #[test]
    fn pump_writes_recovers_from_scheduled_power_losses() {
        let mut wl = Ideal::new(1 << 6);
        let mut dev = device(1 << 6, u32::MAX);
        dev.install_fault_plan(&sawl_nvm::FaultPlan {
            power_loss_at_writes: vec![10, 25, 400],
            ..Default::default()
        })
        .unwrap();
        let mut stream = Uniform::new(1 << 6, 1.0, 3);
        let stats = pump_writes(&mut wl, &mut dev, &mut stream, 1_000).unwrap();
        assert_eq!(stats.recoveries, 3);
        assert_eq!(dev.fault_counters().power_losses, 3);
        assert_eq!(dev.fault_counters().power_restores, 3);
        // Every dropped request is retried after recovery: the cap is
        // still reached exactly.
        assert_eq!(dev.wear().demand_writes, 1_000);
        assert!(!dev.power_lost());
    }

    /// The scalar reference loops `pump`/`pump_writes` replaced; the block
    /// pumps must produce identical device state.
    fn scalar_pump<W: WearLeveler, S: AddressStream>(
        wl: &mut W,
        dev: &mut NvmDevice,
        stream: &mut S,
        requests: u64,
    ) {
        for _ in 0..requests {
            let req = stream.next_req();
            if req.write {
                wl.write(req.la, dev);
            } else {
                wl.read(req.la, dev);
            }
        }
    }

    fn scalar_pump_writes<W: WearLeveler, S: AddressStream>(
        wl: &mut W,
        dev: &mut NvmDevice,
        stream: &mut S,
        cap: u64,
    ) {
        while !dev.is_dead() && dev.wear().demand_writes < cap {
            let req = stream.next_req();
            if req.write {
                wl.write(req.la, dev);
            }
        }
    }

    #[test]
    fn batched_pump_matches_scalar_reference() {
        // Request counts straddle block boundaries on purpose.
        for requests in [0u64, 1, 100, 4_096, 4_097, 10_000] {
            let mut wl_a = NoWl::new(1 << 10);
            let mut dev_a = device(1 << 10, 1_000);
            let mut s_a = Uniform::new(1 << 10, 0.5, 17);
            pump(&mut wl_a, &mut dev_a, &mut s_a, requests);

            let mut wl_b = NoWl::new(1 << 10);
            let mut dev_b = device(1 << 10, 1_000);
            let mut s_b = Uniform::new(1 << 10, 0.5, 17);
            scalar_pump(&mut wl_b, &mut dev_b, &mut s_b, requests);

            assert_eq!(dev_a.wear(), dev_b.wear(), "{requests} requests");
            assert_eq!(dev_a.write_counts(), dev_b.write_counts());
        }
    }

    #[test]
    fn batched_pump_writes_matches_scalar_reference() {
        let mut wl_a = Ideal::new(1 << 6);
        let mut dev_a = device(1 << 6, 200);
        let mut s_a = Uniform::new(1 << 6, 0.7, 23);
        pump_writes(&mut wl_a, &mut dev_a, &mut s_a, u64::MAX).unwrap();

        let mut wl_b = Ideal::new(1 << 6);
        let mut dev_b = device(1 << 6, 200);
        let mut s_b = Uniform::new(1 << 6, 0.7, 23);
        scalar_pump_writes(&mut wl_b, &mut dev_b, &mut s_b, u64::MAX);

        assert!(dev_a.is_dead() && dev_b.is_dead());
        assert_eq!(dev_a.wear(), dev_b.wear());
        assert_eq!(dev_a.demand_writes_at_death(), dev_b.demand_writes_at_death());
        assert_eq!(dev_a.write_counts(), dev_b.write_counts());
    }

    #[test]
    fn pump_observed_matches_scalar_order_across_blocks() {
        let mut wl = NoWl::new(1 << 8);
        let mut dev = device(1 << 8, u32::MAX);
        let mut stream = Uniform::new(1 << 8, 0.5, 3);
        let mut observed: Vec<MemReq> = Vec::new();
        pump_observed(&mut wl, &mut dev, &mut stream, 9_000, |req, _, _, _| observed.push(req));

        let mut reference = Uniform::new(1 << 8, 0.5, 3);
        let expected: Vec<MemReq> = (0..9_000).map(|_| reference.next_req()).collect();
        assert_eq!(observed, expected);
    }
}
