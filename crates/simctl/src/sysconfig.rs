//! Table 1 — the simulated system configuration, as a printable value.
//!
//! The reproduction scales the device geometry per experiment (DESIGN.md
//! §4); this struct records both the paper's configuration and the scaled
//! values actually used, so the `tab1_config` binary can print the two
//! side by side.

use serde::{Deserialize, Serialize};

/// One configuration row: component, paper value, reproduction value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigRow {
    /// Component name.
    pub component: String,
    /// The paper's Table 1 value.
    pub paper: String,
    /// What this reproduction uses (and why it differs, briefly).
    pub ours: String,
}

/// The full Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// All rows in Table 1 order.
    pub rows: Vec<ConfigRow>,
}

impl Default for SystemConfig {
    fn default() -> Self {
        let r = |component: &str, paper: &str, ours: &str| ConfigRow {
            component: component.into(),
            paper: paper.into(),
            ours: ours.into(),
        };
        Self {
            rows: vec![
                r("CPU", "8 cores, x86-64, 3.2 GHz", "8-core closed-loop model, 3.2 GHz"),
                r("Private L1 cache", "64KB", "absorbed into per-benchmark mem/kilo-instr"),
                r("Shared L2 cache", "512KB", "absorbed into per-benchmark mem/kilo-instr"),
                r("CMT cache", "256KB", "256KB (entries = bytes*8 / entry bits)"),
                r("DRAM/PCM capacity", "128MB / 8GB", "scaled: 2^16-2^24 lines per DESIGN.md §4"),
                r(
                    "Read/Write latency",
                    "DRAM 50/50ns, PCM 50/350ns",
                    "identical (sawl-nvm::LatencyConfig)",
                ),
                r(
                    "Address translation latency",
                    "cache hit 5ns, miss 55ns",
                    "identical (per-request in sawl-timing)",
                ),
                r("Memory scheduling", "FR-FCFS, queue 128", "per-bank FCFS, window 32"),
                r("Banks", "32 x 2GB", "32 banks, low-bit interleaved"),
                r(
                    "Cell endurance",
                    "1e5 / 1e6 writes",
                    "1e3 / 1e4 (uniform 100x scale, ratios preserved)",
                ),
            ],
        }
    }
}

impl SystemConfig {
    /// Render as an aligned table via the report module.
    pub fn to_table(&self) -> crate::report::Table {
        let mut t = crate::report::Table::new(
            "Table 1: simulated system configuration (paper vs reproduction)",
            &["component", "paper", "reproduction"],
        );
        for row in &self.rows {
            t.row(vec![row.component.clone(), row.paper.clone(), row.ours.clone()]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_table1_row() {
        let c = SystemConfig::default();
        let names: Vec<&str> = c.rows.iter().map(|r| r.component.as_str()).collect();
        for expected in ["CPU", "CMT cache", "Read/Write latency", "Address translation latency"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        assert!(c.rows.len() >= 7);
    }

    #[test]
    fn renders_as_table() {
        let s = SystemConfig::default().to_table().to_aligned_string();
        assert!(s.contains("3.2 GHz"));
        assert!(s.contains("350ns"));
    }
}
