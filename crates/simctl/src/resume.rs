//! Resumable lifetime runs: the lifetime pump, sliced into stream-batch
//! steps with checkpoint/restore at the batch boundaries.
//!
//! ## Why batch boundaries
//!
//! The batched drivers ([`crate::driver`]) consume the workload one
//! [`fill_runs`](AddressStream::fill_runs) call (one [`BLOCK`]-request
//! batch) at a time and serve every run the batch produced before pulling
//! the next. A checkpoint taken *between* batches therefore needs no
//! mid-run bookkeeping at all: the stream cursor is just the number of
//! completed batches, and resume rebuilds the stream from its spec and
//! seed and replays that many `fill_runs` calls into a scratch buffer
//! ([`AddressStream::skip_batches`]), discarding the output. Everything
//! else — scheme, device, recovery tallies, telemetry cursor — restores
//! through the per-crate `ckpt_save`/`ckpt_restore` pattern.
//!
//! ## Equivalence contract
//!
//! [`ResumableRun`] serves runs with exactly the clamping, power-loss
//! recovery and telemetry-boundary logic of
//! [`pump_writes_telemetry`](crate::driver::pump_writes_telemetry), so a
//! run driven to completion through [`step`](ResumableRun::step) — with or
//! without an intervening save/kill/restore cycle — produces a
//! [`LifetimeResult`] and telemetry series byte-identical to
//! [`run_lifetime`](crate::lifetime::run_lifetime) on the same experiment
//! (`resume_equivalence.rs` pins this for every scheme variant).
//!
//! ## What cannot be checkpointed
//!
//! The closed-loop timing model accumulates an HDR histogram and
//! controller queue state with no serialization; a spec carrying a
//! `timing` block is rejected up front with a typed
//! [`DriverError::Spec`] rather than silently dropping latency data.

use std::path::Path;

use sawl_algos::WearLeveler;
use sawl_ckpt::{CkptError, Reader, Writer};
use sawl_nvm::NvmDevice;
use sawl_trace::{AddressStream, CursorKind, MemReq, ReqRun};

use crate::driver::{feed_observation, DriverError, PumpStats, BLOCK, READ_SPIN_LIMIT};
use crate::lifetime::{build_result, LifetimeExperiment, LifetimeResult};
use crate::seed::stable_seed;
use crate::spec::SchemeInstance;
use crate::telemetry::TelemetryRun;

/// Default demand-write interval between periodic checkpoints (2^28 ≈
/// 268M writes). Sized from the release pump's measured rates: the
/// bulk-served BPA probe retires ~8 GW/s, so one interval is ~33ms of
/// compute against a ~0.5ms fsync'd save — under 2% overhead even for
/// the fastest workload (`checkpoint_overhead.rs` pins the 5% budget).
/// Per-request workloads run orders of magnitude slower, so a crash
/// still loses at most seconds-to-minutes of work.
pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 1 << 28;

/// A lifetime run that can be paused, checkpointed, and resumed.
///
/// Construction mirrors [`run_lifetime`](crate::lifetime::run_lifetime):
/// the experiment's id seeds the scheme, device, fault plan and workload
/// deterministically. Driving the run happens through [`step`] — one
/// stream batch per call — and a checkpoint taken between steps captures
/// the complete mutable state.
///
/// [`step`]: Self::step
pub struct ResumableRun {
    exp: LifetimeExperiment,
    wl: SchemeInstance,
    dev: NvmDevice,
    stream: Box<dyn AddressStream + Send>,
    telemetry: Option<TelemetryRun>,
    cap: u64,
    /// Completed `fill_runs` batches — the stream's resume cursor.
    batches: u64,
    consecutive_reads: u64,
    stats: PumpStats,
    /// Reused run buffer (same role as the pump's local).
    runs: Vec<ReqRun>,
    /// Reused request scratch. The pump keeps this on the stack for the
    /// whole run; re-initializing 64 KiB per batch would dwarf the cost
    /// of serving a bulk-run batch.
    scratch: Box<[MemReq; BLOCK]>,
}

impl ResumableRun {
    /// Build a fresh run from `exp`, exactly as `run_lifetime` would.
    ///
    /// Rejects specs with a `timing` block ([`DriverError::Spec`]): the
    /// timing model has no checkpoint form.
    pub fn new(exp: &LifetimeExperiment) -> Result<Self, DriverError> {
        if exp.timing.is_some() {
            return Err(DriverError::Spec(
                "the closed-loop timing model cannot be checkpointed; drop the spec's \
                 `timing` block to run resumably, or run without checkpointing"
                    .into(),
            ));
        }
        let seed = stable_seed(&exp.id);
        let phys = exp.scheme.physical_lines(exp.data_lines);
        let mut wl = exp.scheme.try_instantiate(exp.data_lines, seed)?;
        let mut dev = exp.device.try_build(phys, seed)?;
        if let Some(plan) = &exp.fault {
            dev.install_fault_plan(plan)?;
        }
        let telemetry = match &exp.telemetry {
            Some(spec) if spec.stride == 0 => {
                return Err(DriverError::Spec("telemetry stride must be >= 1".into()));
            }
            Some(spec) => {
                let run = TelemetryRun::new(&exp.id, spec);
                run.attach(&mut wl, &mut dev);
                Some(run)
            }
            None => None,
        };
        let stream = exp.workload.try_build(wl.logical_lines(), seed)?;
        if stream.wants_observation() && stream.cursor_kind() == CursorKind::Replay {
            // A replay cursor fast-forwards by regenerating batches open
            // loop, but an observation-driven stream's output depends on
            // device feedback the fast-forward cannot reproduce.
            return Err(DriverError::Spec(format!(
                "stream \"{}\" is observation-driven but only supports replay cursors, \
                 so a resumed run could not reproduce it",
                stream.name()
            )));
        }
        let cap = if exp.max_demand_writes == 0 {
            4 * dev.config().ideal_lifetime_writes()
        } else {
            exp.max_demand_writes
        };
        Ok(Self {
            exp: exp.clone(),
            wl,
            dev,
            stream,
            telemetry,
            cap,
            batches: 0,
            consecutive_reads: 0,
            stats: PumpStats::default(),
            runs: Vec::new(),
            scratch: Box::new([MemReq::read(0); BLOCK]),
        })
    }

    /// Build a run from `exp` and restore it from the checkpoint at
    /// `path`. I/O and container problems (missing file, truncation, bad
    /// checksum, version skew) and state mismatches all surface as
    /// [`DriverError::Checkpoint`].
    pub fn resume(exp: &LifetimeExperiment, path: &Path) -> Result<Self, DriverError> {
        let payload = sawl_ckpt::read_file(path)
            .map_err(|e| DriverError::Checkpoint(format!("cannot read {}: {e}", path.display())))?;
        let mut run = Self::new(exp)?;
        let mut r = Reader::new(&payload);
        run.ckpt_restore(&mut r).and_then(|()| r.finish()).map_err(|e| {
            DriverError::Checkpoint(format!("cannot restore {}: {e}", path.display()))
        })?;
        Ok(run)
    }

    /// The run is over: the device died or the demand-write cap was hit.
    pub fn finished(&self) -> bool {
        self.dev.is_dead() || self.dev.wear().demand_writes >= self.cap
    }

    /// Demand writes served so far.
    pub fn demand_writes(&self) -> u64 {
        self.dev.wear().demand_writes
    }

    /// The run's demand-write cap.
    pub fn cap(&self) -> u64 {
        self.cap
    }

    /// Completed stream batches (the checkpoint cursor).
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// The experiment this run executes.
    pub fn experiment(&self) -> &LifetimeExperiment {
        &self.exp
    }

    /// Serve one stream batch ([`BLOCK`] requests). Returns `false` once
    /// the run is [`finished`](Self::finished). Checkpoints are valid
    /// only between `step` calls — that is the batch boundary the stream
    /// cursor counts.
    pub fn step(&mut self) -> Result<bool, DriverError> {
        if self.finished() {
            return Ok(false);
        }
        let mut runs = std::mem::take(&mut self.runs);
        feed_observation(self.stream.as_mut(), &mut self.dev);
        self.stream.fill_runs(&mut runs, &mut self.scratch[..]);
        self.batches += 1;
        let served = self.serve_batch(&runs);
        self.runs = runs;
        served?;
        Ok(!self.finished())
    }

    /// Drive the run to completion without checkpointing.
    pub fn run_to_end(&mut self) -> Result<(), DriverError> {
        while self.step()? {}
        Ok(())
    }

    /// Drive the run to completion, writing a checkpoint to `path` every
    /// `interval` demand writes and once more when the run finishes (so a
    /// restart after completion resumes into an already-finished run and
    /// reports immediately). `should_stop` is polled at every batch
    /// boundary; returning `true` checkpoints and pauses the run early
    /// (the caller decides whether that is a graceful shutdown or an
    /// interrupt). Returns whether the run finished.
    pub fn run_with_checkpoints(
        &mut self,
        path: &Path,
        interval: u64,
        mut should_stop: impl FnMut() -> bool,
    ) -> Result<bool, DriverError> {
        let interval = interval.max(1);
        let mut next = self.demand_writes().saturating_add(interval);
        while self.step()? {
            if should_stop() {
                self.save(path)?;
                return Ok(false);
            }
            if self.demand_writes() >= next {
                self.save(path)?;
                next = self.demand_writes().saturating_add(interval);
            }
        }
        self.save(path)?;
        Ok(true)
    }

    /// Serve every run of one batch with the exact clamping, recovery and
    /// telemetry logic of `pump_writes_telemetry` (and of `pump_writes`
    /// when no recorder is attached — the recorder only observes, so the
    /// unified loop is state-identical either way).
    fn serve_batch(&mut self, runs: &[ReqRun]) -> Result<(), DriverError> {
        for run in runs {
            if !run.write {
                self.consecutive_reads += run.len;
                if self.consecutive_reads >= READ_SPIN_LIMIT {
                    return Err(DriverError::WriteFreeStream {
                        stream: self.stream.name().to_string(),
                    });
                }
                continue;
            }
            self.consecutive_reads = 0;
            let mut served = 0u64;
            while served < run.len {
                let until = self.telemetry.as_ref().map_or(u64::MAX, TelemetryRun::until_sample);
                let n = (run.len - served).min(self.cap - self.dev.wear().demand_writes).min(until);
                let done = self.wl.write_run(run.la, n, &mut self.dev);
                if let Some(t) = self.telemetry.as_mut() {
                    t.note_served(done, &self.wl, &self.dev);
                }
                if self.dev.is_dead() || self.dev.wear().demand_writes >= self.cap {
                    return Ok(());
                }
                if self.dev.power_lost() {
                    // Replay is idempotent; keep recovering until a pass
                    // runs to completion without another scheduled power
                    // loss.
                    loop {
                        let r = self.wl.recover(&mut self.dev);
                        self.stats.journal_replays += u64::from(r.replayed);
                        self.stats.journal_rollbacks += u64::from(r.rolled_back);
                        if r.complete {
                            break;
                        }
                    }
                    self.stats.recoveries += 1;
                    // Replayed data movement wears cells too and can
                    // finish off a nearly-dead device.
                    if self.dev.is_dead() {
                        return Ok(());
                    }
                    // Whatever the interrupted run did not serve is
                    // retried by the next inner-loop iteration.
                    served += done;
                    continue;
                }
                debug_assert_eq!(done, n, "write_run must complete unless the device died");
                served += done;
            }
        }
        Ok(())
    }

    /// Serialize the run's complete mutable state. The payload opens with
    /// the experiment's canonical JSON so a resume against a different
    /// spec is rejected before any state is interpreted.
    pub fn ckpt_save(&self, w: &mut Writer) {
        let spec = serde_json::to_string(&self.exp).expect("experiment specs serialize infallibly");
        w.put_str(&spec);
        w.put_u64(self.cap);
        w.put_u64(self.batches);
        // The stream cursor: state-cursor streams serialize their full
        // position (RNG, phase, replay offset, GC mode); replay-cursor
        // streams rely on the batch count alone and are fast-forwarded by
        // regeneration on restore.
        match self.stream.cursor_kind() {
            CursorKind::Replay => w.put_u8(0),
            CursorKind::State => {
                w.put_u8(1);
                self.stream.cursor_save(w);
            }
        }
        w.put_u64(self.consecutive_reads);
        w.put_u64(self.stats.recoveries);
        w.put_u64(self.stats.journal_replays);
        w.put_u64(self.stats.journal_rollbacks);
        match &self.telemetry {
            None => w.put_bool(false),
            Some(t) => {
                w.put_bool(true);
                t.ckpt_save(w);
            }
        }
        self.wl.ckpt_save(w);
        self.dev.ckpt_save(w);
    }

    /// Restore state saved by [`ckpt_save`](Self::ckpt_save) into a run
    /// freshly built from the same experiment, then fast-forward the
    /// stream to the checkpointed batch cursor.
    pub fn ckpt_restore(&mut self, r: &mut Reader<'_>) -> Result<(), CkptError> {
        let saved_spec = r.get_str()?;
        let spec = serde_json::to_string(&self.exp).expect("experiment specs serialize infallibly");
        if saved_spec != spec {
            let saved_id = serde_json::from_str::<LifetimeExperiment>(&saved_spec)
                .map(|e| e.id)
                .unwrap_or_else(|_| "<unparseable>".into());
            return Err(CkptError::Corrupt(format!(
                "checkpoint belongs to a different experiment (saved id {saved_id:?}, \
                 resuming {:?} — the full specs differ)",
                self.exp.id
            )));
        }
        let cap = r.get_u64()?;
        if cap != self.cap {
            return Err(CkptError::Corrupt(format!(
                "demand-write cap {cap} does not match the rebuilt run's {}",
                self.cap
            )));
        }
        self.batches = r.get_u64()?;
        let cursor_tag = r.get_u8()?;
        let expected_tag = match self.stream.cursor_kind() {
            CursorKind::Replay => 0,
            CursorKind::State => 1,
        };
        if cursor_tag != expected_tag {
            return Err(CkptError::Corrupt(format!(
                "stream cursor tag {cursor_tag} does not match the rebuilt stream's \
                 {:?} cursor",
                self.stream.cursor_kind()
            )));
        }
        if cursor_tag == 1 {
            self.stream.cursor_restore(r)?;
        }
        self.consecutive_reads = r.get_u64()?;
        self.stats = PumpStats {
            recoveries: r.get_u64()?,
            journal_replays: r.get_u64()?,
            journal_rollbacks: r.get_u64()?,
        };
        let has_telemetry = r.get_bool()?;
        if has_telemetry != self.telemetry.is_some() {
            return Err(CkptError::Corrupt(format!(
                "checkpoint {} a telemetry cursor but the rebuilt run {}",
                if has_telemetry { "carries" } else { "lacks" },
                if self.telemetry.is_some() { "expects one" } else { "has none" },
            )));
        }
        if let Some(t) = self.telemetry.as_mut() {
            t.ckpt_restore(r)?;
        }
        self.wl.ckpt_restore(r)?;
        self.dev.ckpt_restore(r)?;
        if cursor_tag == 0 {
            // Replay cursor: fast-forward the freshly built stream by
            // regenerating (and discarding) the completed batches.
            let mut scratch = [MemReq::read(0); BLOCK];
            self.stream.skip_batches(self.batches, &mut scratch);
        }
        Ok(())
    }

    /// Write the run's checkpoint atomically to `path` (tmp + fsync +
    /// rename, via [`sawl_ckpt::write_file`]).
    pub fn save(&self, path: &Path) -> Result<(), DriverError> {
        let mut w = Writer::new();
        self.ckpt_save(&mut w);
        sawl_ckpt::write_file(path, &w.into_payload())
            .map_err(|e| DriverError::Checkpoint(format!("cannot write {}: {e}", path.display())))
    }

    /// Finish the run: drain the telemetry recorder and assemble the
    /// [`LifetimeResult`] exactly as `run_lifetime` does.
    pub fn into_result(mut self) -> LifetimeResult {
        let series = self.telemetry.take().map(|t| t.finish(&mut self.wl));
        let workload = self.stream.name().to_string();
        build_result(&self.exp, workload, &self.dev, &self.stats, series, None)
    }
}

impl std::fmt::Debug for ResumableRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResumableRun")
            .field("id", &self.exp.id)
            .field("demand_writes", &self.demand_writes())
            .field("cap", &self.cap)
            .field("batches", &self.batches)
            .field("finished", &self.finished())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::run_lifetime;
    use crate::spec::{DeviceSpec, SchemeSpec, WorkloadSpec};
    use sawl_telemetry::TelemetrySpec;
    use sawl_timing::TimingSpec;

    fn exp() -> LifetimeExperiment {
        LifetimeExperiment {
            id: "resume/unit".into(),
            scheme: SchemeSpec::PcmS { region_lines: 4, period: 16 },
            workload: WorkloadSpec::Bpa { writes_per_target: 512 },
            data_lines: 1 << 10,
            device: DeviceSpec { endurance: 1_000, ..Default::default() },
            max_demand_writes: 60_000,
            fault: None,
            telemetry: Some(TelemetrySpec::with_stride(10_000)),
            timing: None,
        }
    }

    #[test]
    fn stepped_run_matches_run_lifetime() {
        let e = exp();
        let reference = run_lifetime(&e).unwrap();
        let mut run = ResumableRun::new(&e).unwrap();
        run.run_to_end().unwrap();
        assert_eq!(run.into_result(), reference);
    }

    #[test]
    fn save_restore_midway_is_byte_identical() {
        let e = exp();
        let reference = run_lifetime(&e).unwrap();

        let mut run = ResumableRun::new(&e).unwrap();
        for _ in 0..3 {
            assert!(run.step().unwrap(), "run ended before the kill point");
        }
        let mut w = Writer::new();
        run.ckpt_save(&mut w);
        let payload = w.into_payload();
        drop(run); // the "killed" process

        let mut resumed = ResumableRun::new(&e).unwrap();
        let mut r = Reader::new(&payload);
        resumed.ckpt_restore(&mut r).unwrap();
        r.finish().unwrap();

        // Re-encoding the restored run reproduces the payload bit for bit.
        let mut w2 = Writer::new();
        resumed.ckpt_save(&mut w2);
        assert_eq!(payload, w2.into_payload(), "restore lost state");

        resumed.run_to_end().unwrap();
        assert_eq!(resumed.into_result(), reference);
    }

    #[test]
    fn timing_specs_are_rejected() {
        let mut e = exp();
        e.timing = Some(TimingSpec::default());
        let err = ResumableRun::new(&e).unwrap_err();
        assert!(matches!(err, DriverError::Spec(_)), "{err:?}");
        assert!(err.to_string().contains("timing"), "{err}");
    }

    #[test]
    fn restore_rejects_a_different_experiment() {
        let e = exp();
        let mut run = ResumableRun::new(&e).unwrap();
        run.step().unwrap();
        let mut w = Writer::new();
        run.ckpt_save(&mut w);
        let payload = w.into_payload();

        let mut other = exp();
        other.id = "resume/other".into();
        let mut twin = ResumableRun::new(&other).unwrap();
        let err = twin.ckpt_restore(&mut Reader::new(&payload)).unwrap_err();
        assert!(matches!(err, CkptError::Corrupt(_)), "{err:?}");
        assert!(err.to_string().contains("different experiment"), "{err}");
    }

    #[test]
    fn file_round_trip_and_corruption_rejection() {
        let dir = std::env::temp_dir().join("sawl-resume-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");

        let e = exp();
        let mut run = ResumableRun::new(&e).unwrap();
        let finished = run.run_with_checkpoints(&path, 20_000, || false).unwrap();
        assert!(finished);
        let reference = run.into_result();

        // Resuming the finished checkpoint reports the same result.
        let mut resumed = ResumableRun::resume(&e, &path).unwrap();
        assert!(resumed.finished());
        resumed.run_to_end().unwrap();
        assert_eq!(resumed.into_result(), reference);

        // A missing file is a typed checkpoint error, not a panic.
        let missing = ResumableRun::resume(&e, &dir.join("nope.ckpt")).unwrap_err();
        assert!(matches!(missing, DriverError::Checkpoint(_)), "{missing:?}");

        // Bit rot: flip one payload byte — checksum rejects it.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = ResumableRun::resume(&e, &path).unwrap_err();
        assert!(matches!(err, DriverError::Checkpoint(_)), "{err:?}");
        assert!(err.to_string().contains("checksum"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }
}
