//! `sawl-sim` — run a custom experiment from a JSON spec.
//!
//! ```text
//! sawl-sim lifetime <spec.json> [--telemetry out.json] [--timing] [--progress]
//!                   [--checkpoint ckpt] [--checkpoint-interval N] [--resume]
//! sawl-sim perf     <spec.json>
//! sawl-sim example  lifetime|perf   print a template spec
//! ```
//!
//! Specs are the serde form of [`sawl_simctl::LifetimeExperiment`] /
//! [`sawl_simctl::PerfExperiment`]; results are printed as pretty JSON so
//! the tool composes with jq-style pipelines.
//!
//! `--telemetry out.json` samples the run's time series (the spec's own
//! `telemetry` block if present, otherwise a default 100k-write stride)
//! and writes it to `out.json` as JSON lines — one `meta` line, one line
//! per sample/event, one `end` line — instead of embedding it in the
//! stdout result. `--timing` attaches the closed-loop controller model
//! (the spec's own `timing` block if present, otherwise the Table 1
//! default) so the result carries the latency distribution and stall
//! breakdown. `--progress` adds a throttled stderr ticker.
//!
//! ## Checkpointing and interruption
//!
//! `--checkpoint ckpt` writes an atomic, checksummed checkpoint of the
//! run to `ckpt` every `--checkpoint-interval` demand writes (default
//! ~268M) and when the run ends; `--resume` restores the run from that
//! file and continues it **byte-identically** — the final report and
//! telemetry series match an uninterrupted run exactly. Checkpointing
//! requires an untimed run (the timing model has no checkpoint form).
//!
//! Untimed lifetime runs install a SIGINT/SIGTERM handler: an
//! interrupted run stops at the next batch boundary, still writes its
//! telemetry stream and checkpoint (if requested), prints the partial
//! report, and exits 3 instead of losing the run.
//!
//! Exit codes: `0` success, `1` runtime failure (I/O, write-free
//! workload, unreadable checkpoint), `2` bad usage or an invalid spec,
//! `3` interrupted (partial report emitted).

use std::path::Path;
use std::process::ExitCode;

use sawl_simctl::{
    run_lifetime, run_perf, stable_seed, DeviceSpec, DriverError, FaultPlan, LifetimeExperiment,
    PerfExperiment, ResumableRun, SchemeSpec, TelemetrySpec, TimingSpec, WorkloadSpec,
    DEFAULT_CHECKPOINT_INTERVAL,
};
use sawl_trace::{SpecBenchmark, TraceWriter};

const USAGE: &str = "usage:\n  sawl-sim lifetime <spec.json> [--telemetry out.json] [--timing] [--progress] [--threads N] [--checkpoint ckpt] [--checkpoint-interval N] [--resume]\n  sawl-sim perf <spec.json> [--threads N]\n  sawl-sim record <spec.json> <out.trc> --requests N\n  sawl-sim example lifetime|perf";

/// Exit code for a run stopped by SIGINT/SIGTERM after emitting its
/// partial report.
const EXIT_INTERRUPTED: u8 = 3;

/// Spec problems exit 2 (the input is wrong, rerunning won't help);
/// runtime failures exit 1.
fn driver_exit_code(e: &DriverError) -> u8 {
    match e {
        DriverError::Spec(_) | DriverError::Config(_) | DriverError::FaultPlan(_) => 2,
        DriverError::WriteFreeStream { .. }
        | DriverError::Checkpoint(_)
        | DriverError::Report(_) => 1,
    }
}

/// SIGINT/SIGTERM latch: the handler only sets a flag; the run loop polls
/// it at batch boundaries so interrupted runs stop at a consistent point,
/// flush their telemetry, and report partially instead of vanishing.
#[cfg(unix)]
mod interrupt {
    use std::os::raw::c_int;
    use std::sync::atomic::{AtomicBool, Ordering};

    static STOP: AtomicBool = AtomicBool::new(false);

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    extern "C" fn latch(_signum: c_int) {
        STOP.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, latch as extern "C" fn(c_int) as usize);
            signal(SIGTERM, latch as extern "C" fn(c_int) as usize);
        }
    }

    pub fn requested() -> bool {
        STOP.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod interrupt {
    pub fn install() {}

    pub fn requested() -> bool {
        false
    }
}

/// Parsed command line for the run modes.
#[derive(Debug, PartialEq)]
struct RunArgs {
    spec_path: String,
    telemetry_out: Option<String>,
    timing: bool,
    progress: bool,
    threads: Option<usize>,
    checkpoint: Option<String>,
    checkpoint_interval: Option<u64>,
    resume: bool,
}

/// Parse `<spec.json> [--telemetry out.json] [--timing] [--progress]
/// [--threads N] [--checkpoint ckpt] [--checkpoint-interval N]
/// [--resume]`.
fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut spec_path = None;
    let mut telemetry_out = None;
    let mut timing = false;
    let mut progress = false;
    let mut threads = None;
    let mut checkpoint = None;
    let mut checkpoint_interval = None;
    let mut resume = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--telemetry" => match it.next() {
                Some(path) => telemetry_out = Some(path.clone()),
                None => return Err("--telemetry needs an output path".into()),
            },
            "--timing" => timing = true,
            "--progress" => progress = true,
            "--threads" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) => threads = Some(n.max(1)),
                Some(Err(_)) => return Err("--threads needs a worker count".into()),
                None => return Err("--threads needs a worker count".into()),
            },
            "--checkpoint" => match it.next() {
                Some(path) => checkpoint = Some(path.clone()),
                None => return Err("--checkpoint needs a file path".into()),
            },
            "--checkpoint-interval" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) if n >= 1 => checkpoint_interval = Some(n),
                Some(_) => {
                    return Err("--checkpoint-interval needs a demand-write count >= 1".into())
                }
                None => return Err("--checkpoint-interval needs a demand-write count >= 1".into()),
            },
            "--resume" => resume = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path if spec_path.is_none() => spec_path = Some(path.to_string()),
            extra => return Err(format!("unexpected argument {extra}")),
        }
    }
    let Some(spec_path) = spec_path else { return Err("missing <spec.json>".into()) };
    if checkpoint.is_none() && (checkpoint_interval.is_some() || resume) {
        return Err("--checkpoint-interval/--resume need --checkpoint <path>".into());
    }
    Ok(RunArgs {
        spec_path,
        telemetry_out,
        timing,
        progress,
        threads,
        checkpoint,
        checkpoint_interval,
        resume,
    })
}

/// Fold the CLI telemetry flags into the experiment's own `telemetry`
/// block: `--telemetry` supplies a default spec when the JSON has none,
/// `--progress` turns the ticker on either way.
fn apply_telemetry_flags(spec: &mut Option<TelemetrySpec>, args: &RunArgs) {
    if spec.is_none() && (args.telemetry_out.is_some() || args.progress) {
        *spec = Some(TelemetrySpec::default());
    }
    if let (Some(spec), true) = (spec.as_mut(), args.progress) {
        spec.progress = true;
    }
}

/// `--timing` supplies the Table 1 timing model when the JSON has none
/// (an explicit `timing` block always wins).
fn apply_timing_flag(spec: &mut Option<TimingSpec>, args: &RunArgs) {
    if spec.is_none() && args.timing {
        *spec = Some(TimingSpec::default());
    }
}

fn template_lifetime() -> LifetimeExperiment {
    LifetimeExperiment {
        id: "custom/lifetime".into(),
        scheme: SchemeSpec::sawl_default(4096),
        workload: WorkloadSpec::Bpa { writes_per_target: 10_000 },
        data_lines: 1 << 16,
        device: DeviceSpec::default(),
        max_demand_writes: 0,
        fault: Some(FaultPlan::default()),
        telemetry: Some(TelemetrySpec::default()),
        timing: Some(TimingSpec::default()),
    }
}

fn template_perf() -> PerfExperiment {
    PerfExperiment {
        id: "custom/perf".into(),
        scheme: SchemeSpec::Nwl { granularity: 4, cmt_entries: 4096, swap_period: 128 },
        benchmark: SpecBenchmark::Soplex,
        data_lines: 1 << 20,
        device: DeviceSpec { endurance: u32::MAX, ..Default::default() },
        requests: 10_000_000,
        warmup_requests: 1_000_000,
    }
}

/// Serialize a report through the typed error path instead of panicking
/// on a (pathological) serialization failure.
fn report_json<T: serde::Serialize>(value: &T) -> Result<String, (String, u8)> {
    serde_json::to_string_pretty(value).map_err(|e| {
        let err = DriverError::Report(e.to_string());
        (err.to_string(), driver_exit_code(&err))
    })
}

/// Run a lifetime spec end to end; returns the stdout JSON plus the exit
/// code (`0` finished, [`EXIT_INTERRUPTED`] for a partial report after
/// SIGINT/SIGTERM), or `(message, exit code)` on failure. When
/// `telemetry_out` is set, the series is split out of the result and
/// written there as JSON lines — for interrupted runs too.
fn run_lifetime_cli(raw: &str, args: &RunArgs) -> Result<(String, u8), (String, u8)> {
    let mut exp = serde_json::from_str::<LifetimeExperiment>(raw)
        .map_err(|e| (format!("invalid lifetime spec {}: {e}", args.spec_path), 2))?;
    apply_telemetry_flags(&mut exp.telemetry, args);
    apply_timing_flag(&mut exp.timing, args);
    let fail = |e: DriverError| (format!("lifetime run failed: {e}"), driver_exit_code(&e));

    let (mut result, interrupted) = if exp.timing.is_some() {
        // The timing model has no checkpoint form and its pump has no
        // interruption point; timed runs stay on the one-shot path.
        if args.checkpoint.is_some() {
            return Err((
                "--checkpoint cannot be combined with a timed run (the closed-loop timing \
                 model has no checkpoint form); drop --timing / the spec's `timing` block"
                    .into(),
                2,
            ));
        }
        (run_lifetime(&exp).map_err(fail)?, false)
    } else {
        let mut run = match (&args.checkpoint, args.resume) {
            (Some(path), true) => ResumableRun::resume(&exp, Path::new(path)).map_err(fail)?,
            _ => ResumableRun::new(&exp).map_err(fail)?,
        };
        let finished = match &args.checkpoint {
            Some(path) => {
                let interval = args.checkpoint_interval.unwrap_or(DEFAULT_CHECKPOINT_INTERVAL);
                run.run_with_checkpoints(Path::new(path), interval, interrupt::requested)
                    .map_err(fail)?
            }
            None => {
                let mut finished = true;
                while run.step().map_err(fail)? {
                    if interrupt::requested() {
                        finished = false;
                        break;
                    }
                }
                finished
            }
        };
        (run.into_result(), !finished)
    };

    if let Some(out_path) = &args.telemetry_out {
        let series = result.telemetry.take().expect("telemetry was requested");
        std::fs::write(out_path, series.to_json_lines())
            .map_err(|e| (format!("cannot write {out_path}: {e}"), 1))?;
    }
    let json = report_json(&result)?;
    if interrupted {
        eprintln!(
            "interrupted at {} demand writes; partial report follows{}",
            result.demand_writes,
            match &args.checkpoint {
                Some(path) => format!(", checkpoint saved to {path}"),
                None => String::new(),
            }
        );
        return Ok((json, EXIT_INTERRUPTED));
    }
    Ok((json, 0))
}

/// Parsed command line for `record`.
#[derive(Debug, PartialEq)]
struct RecordArgs {
    spec_path: String,
    out_path: String,
    requests: u64,
}

/// Parse `<spec.json> <out.trc> --requests N`.
fn parse_record_args(args: &[String]) -> Result<RecordArgs, String> {
    let mut spec_path = None;
    let mut out_path = None;
    let mut requests = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--requests" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) if n >= 1 => requests = Some(n),
                Some(_) => return Err("--requests needs a request count >= 1".into()),
                None => return Err("--requests needs a request count >= 1".into()),
            },
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path if spec_path.is_none() => spec_path = Some(path.to_string()),
            path if out_path.is_none() => out_path = Some(path.to_string()),
            extra => return Err(format!("unexpected argument {extra}")),
        }
    }
    let Some(spec_path) = spec_path else { return Err("missing <spec.json>".into()) };
    let Some(out_path) = out_path else { return Err("missing <out.trc>".into()) };
    let Some(requests) = requests else { return Err("missing --requests N".into()) };
    Ok(RecordArgs { spec_path, out_path, requests })
}

/// Record a spec's workload — built exactly as a lifetime run would build
/// it (same derived seed, same logical space) — into a binary trace file.
/// Replaying the trace through any scheme then reproduces the live
/// generator run byte for byte.
fn run_record_cli(raw: &str, args: &RecordArgs) -> Result<(String, u8), (String, u8)> {
    let exp = serde_json::from_str::<LifetimeExperiment>(raw)
        .map_err(|e| (format!("invalid lifetime spec {}: {e}", args.spec_path), 2))?;
    let seed = stable_seed(&exp.id);
    let mut stream = exp
        .workload
        .try_build(exp.data_lines, seed)
        .map_err(|e| (format!("record failed: {e}"), driver_exit_code(&e)))?;
    if stream.wants_observation() {
        // A wear-feedback stream's output depends on the device it runs
        // against; recording it open loop (no device) would produce a trace
        // no live run matches.
        return Err((
            format!(
                "workload \"{}\" is observation-driven (it reacts to device wear) and cannot \
                 be recorded open loop; record a generator workload instead",
                stream.name()
            ),
            2,
        ));
    }
    let name = stream.name().to_string();
    let io_fail = |e: std::io::Error| (format!("cannot write {}: {e}", args.out_path), 1u8);
    let file = std::fs::File::create(&args.out_path)
        .map_err(|e| (format!("cannot create {}: {e}", args.out_path), 1))?;
    let mut w = TraceWriter::with_name(std::io::BufWriter::new(file), exp.data_lines, &name)
        .map_err(io_fail)?;
    w.record(&mut *stream, args.requests).map_err(io_fail)?;
    let (out, count) = w.finish().map_err(io_fail)?;
    out.into_inner().map_err(|e| io_fail(e.into_error()))?;
    #[derive(serde::Serialize)]
    struct RecordReport {
        trace: String,
        workload: String,
        space_lines: u64,
        requests: u64,
    }
    let report = RecordReport {
        trace: args.out_path.clone(),
        workload: name,
        space_lines: exp.data_lines,
        requests: count,
    };
    Ok((report_json(&report)?, 0))
}

fn run_perf_cli(raw: &str, args: &RunArgs) -> Result<(String, u8), (String, u8)> {
    if args.telemetry_out.is_some() || args.progress || args.timing {
        return Err((
            "perf runs do not support --telemetry/--timing/--progress (perf always carries \
             its own timing model)"
                .into(),
            2,
        ));
    }
    if args.checkpoint.is_some() {
        return Err((
            "perf runs do not support --checkpoint/--resume (the timing model has no \
             checkpoint form)"
                .into(),
            2,
        ));
    }
    let exp = serde_json::from_str::<PerfExperiment>(raw)
        .map_err(|e| (format!("invalid perf spec {}: {e}", args.spec_path), 2))?;
    let result =
        run_perf(&exp).map_err(|e| (format!("perf run failed: {e}"), driver_exit_code(&e)))?;
    Ok((report_json(&result)?, 0))
}

fn print_or_fail(out: Result<String, (String, u8)>) -> ExitCode {
    match out {
        Ok(json) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Err((msg, code)) => {
            eprintln!("{msg}");
            ExitCode::from(code)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("example") => match args.get(2).map(String::as_str) {
            Some("lifetime") => print_or_fail(report_json(&template_lifetime())),
            Some("perf") => print_or_fail(report_json(&template_perf())),
            _ => {
                eprintln!("{USAGE}");
                ExitCode::from(2)
            }
        },
        Some("record") => {
            let rec_args = match parse_record_args(&args[2..]) {
                Ok(a) => a,
                Err(msg) => {
                    eprintln!("{msg}\n{USAGE}");
                    return ExitCode::from(2);
                }
            };
            let raw = match std::fs::read_to_string(&rec_args.spec_path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", rec_args.spec_path);
                    return ExitCode::FAILURE;
                }
            };
            match run_record_cli(&raw, &rec_args) {
                Ok((json, code)) => {
                    println!("{json}");
                    ExitCode::from(code)
                }
                Err((msg, code)) => {
                    eprintln!("{msg}");
                    ExitCode::from(code)
                }
            }
        }
        Some(mode @ ("lifetime" | "perf")) => {
            let run_args = match parse_run_args(&args[2..]) {
                Ok(a) => a,
                Err(msg) => {
                    eprintln!("{msg}\n{USAGE}");
                    return ExitCode::from(2);
                }
            };
            // Worker-count flag beats the SAWL_THREADS env var; worker
            // count never changes results, only the resource footprint.
            if run_args.threads.is_some() {
                sawl_simctl::set_thread_override(run_args.threads);
            }
            let raw = match std::fs::read_to_string(&run_args.spec_path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", run_args.spec_path);
                    return ExitCode::FAILURE;
                }
            };
            interrupt::install();
            let out = if mode == "lifetime" {
                run_lifetime_cli(&raw, &run_args)
            } else {
                run_perf_cli(&raw, &run_args)
            };
            match out {
                Ok((json, code)) => {
                    println!("{json}");
                    ExitCode::from(code)
                }
                Err((msg, code)) => {
                    eprintln!("{msg}");
                    ExitCode::from(code)
                }
            }
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sawl_core::ConfigError;
    use sawl_simctl::FaultPlanError;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn plain_args(spec_path: &str) -> RunArgs {
        RunArgs {
            spec_path: spec_path.into(),
            telemetry_out: None,
            timing: false,
            progress: false,
            threads: None,
            checkpoint: None,
            checkpoint_interval: None,
            resume: false,
        }
    }

    #[test]
    fn driver_errors_display_a_one_line_reason() {
        let cases: Vec<(DriverError, &str)> = vec![
            (
                DriverError::WriteFreeStream { stream: "raa".into() },
                "consecutive reads without a single demand write",
            ),
            (
                DriverError::Config(ConfigError::CmtTooSmall(1)),
                "invalid scheme config: CMT needs at least two entries, got 1",
            ),
            (
                DriverError::FaultPlan(FaultPlanError::RateOutOfRange(1.5)),
                "invalid fault plan: transient_rate must be in [0, 1), got 1.5",
            ),
            (
                DriverError::Spec("telemetry stride must be >= 1".into()),
                "invalid spec: telemetry stride must be >= 1",
            ),
            (DriverError::Checkpoint("bad checksum".into()), "checkpoint error: bad checksum"),
            (
                DriverError::Report("key must be a string".into()),
                "cannot serialize report: key must be a string",
            ),
        ];
        for (err, expect) in cases {
            let shown = err.to_string();
            assert!(shown.contains(expect), "{shown:?} missing {expect:?}");
            assert!(!shown.contains('\n'), "multi-line error: {shown:?}");
        }
    }

    #[test]
    fn spec_class_errors_exit_2_runtime_errors_exit_1() {
        assert_eq!(driver_exit_code(&DriverError::Spec("x".into())), 2);
        assert_eq!(driver_exit_code(&DriverError::Config(ConfigError::CmtTooSmall(1))), 2);
        assert_eq!(
            driver_exit_code(&DriverError::FaultPlan(FaultPlanError::PowerEventsNotSorted)),
            2
        );
        assert_eq!(driver_exit_code(&DriverError::WriteFreeStream { stream: "raa".into() }), 1);
        assert_eq!(driver_exit_code(&DriverError::Checkpoint("torn".into())), 1);
        assert_eq!(driver_exit_code(&DriverError::Report("nan".into())), 1);
    }

    #[test]
    fn run_args_parse_flags_in_any_order() {
        assert_eq!(parse_run_args(&strs(&["spec.json"])).unwrap(), plain_args("spec.json"));
        assert_eq!(
            parse_run_args(&strs(&[
                "--progress",
                "spec.json",
                "--telemetry",
                "t.json",
                "--timing"
            ]))
            .unwrap(),
            RunArgs {
                telemetry_out: Some("t.json".into()),
                timing: true,
                progress: true,
                ..plain_args("spec.json")
            }
        );
        // --threads parses, clamps to >= 1, and rejects garbage.
        let with_threads = parse_run_args(&strs(&["spec.json", "--threads", "4"])).unwrap();
        assert_eq!(with_threads.threads, Some(4));
        assert_eq!(
            parse_run_args(&strs(&["spec.json", "--threads", "0"])).unwrap().threads,
            Some(1)
        );
        assert!(parse_run_args(&strs(&["spec.json", "--threads"])).is_err());
        assert!(parse_run_args(&strs(&["spec.json", "--threads", "lots"])).is_err());
        assert!(parse_run_args(&strs(&[])).is_err());
        assert!(parse_run_args(&strs(&["spec.json", "--telemetry"])).is_err());
        assert!(parse_run_args(&strs(&["spec.json", "--bogus"])).is_err());
        assert!(parse_run_args(&strs(&["a.json", "b.json"])).is_err());
    }

    #[test]
    fn checkpoint_flags_parse_and_validate() {
        let parsed = parse_run_args(&strs(&[
            "spec.json",
            "--checkpoint",
            "run.ckpt",
            "--checkpoint-interval",
            "50000",
            "--resume",
        ]))
        .unwrap();
        assert_eq!(parsed.checkpoint.as_deref(), Some("run.ckpt"));
        assert_eq!(parsed.checkpoint_interval, Some(50_000));
        assert!(parsed.resume);
        // The dependent flags demand --checkpoint.
        assert!(parse_run_args(&strs(&["spec.json", "--resume"])).is_err());
        assert!(parse_run_args(&strs(&["spec.json", "--checkpoint-interval", "5"])).is_err());
        // The interval must be a positive count.
        assert!(parse_run_args(&strs(&["s", "--checkpoint", "c", "--checkpoint-interval", "0"]))
            .is_err());
        assert!(parse_run_args(&strs(&["spec.json", "--checkpoint"])).is_err());
    }

    #[test]
    fn telemetry_flags_fold_into_the_spec() {
        let args = |telemetry_out: Option<&str>, progress| RunArgs {
            telemetry_out: telemetry_out.map(String::from),
            progress,
            ..plain_args("s.json")
        };
        // No flags, no spec: stays off.
        let mut spec = None;
        apply_telemetry_flags(&mut spec, &args(None, false));
        assert_eq!(spec, None);
        // --telemetry with no spec block: default stride.
        apply_telemetry_flags(&mut spec, &args(Some("t.json"), false));
        assert_eq!(spec, Some(TelemetrySpec::default()));
        // --progress flips the ticker on an explicit block, keeping it.
        let mut spec = Some(TelemetrySpec::with_stride(7));
        apply_telemetry_flags(&mut spec, &args(None, true));
        let spec = spec.unwrap();
        assert!(spec.progress);
        assert_eq!(spec.stride, 7);
    }

    #[test]
    fn lifetime_cli_splits_telemetry_to_json_lines() {
        let exp = LifetimeExperiment {
            id: "cli/test".into(),
            scheme: SchemeSpec::PcmS { region_lines: 4, period: 16 },
            workload: WorkloadSpec::Bpa { writes_per_target: 512 },
            data_lines: 1 << 10,
            device: DeviceSpec { endurance: 500, ..Default::default() },
            max_demand_writes: 30_000,
            fault: None,
            telemetry: Some(TelemetrySpec::with_stride(10_000)),
            timing: None,
        };
        let raw = serde_json::to_string(&exp).unwrap();
        let dir = std::env::temp_dir().join("sawl-sim-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("telemetry.json");
        let args = RunArgs {
            telemetry_out: Some(out.to_str().unwrap().to_string()),
            ..plain_args("spec.json")
        };
        let (stdout, code) = run_lifetime_cli(&raw, &args).unwrap();
        assert_eq!(code, 0);
        // The series went to the file, not the stdout result.
        assert!(!stdout.contains("\"samples\""), "{stdout}");
        let lines = std::fs::read_to_string(&out).unwrap();
        assert!(lines.starts_with("{\"line\":\"meta\""), "{lines}");
        assert_eq!(lines.matches("{\"line\":\"sample\"").count(), 3);
        assert!(lines.ends_with('\n'));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lifetime_cli_checkpoints_and_resumes_byte_identically() {
        let exp = LifetimeExperiment {
            id: "cli/ckpt".into(),
            scheme: SchemeSpec::PcmS { region_lines: 4, period: 16 },
            workload: WorkloadSpec::Bpa { writes_per_target: 512 },
            data_lines: 1 << 10,
            device: DeviceSpec { endurance: 500, ..Default::default() },
            max_demand_writes: 30_000,
            fault: None,
            telemetry: None,
            timing: None,
        };
        let raw = serde_json::to_string(&exp).unwrap();
        let dir = std::env::temp_dir().join("sawl-sim-cli-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("run.ckpt");

        let (reference, code) = run_lifetime_cli(&raw, &plain_args("spec.json")).unwrap();
        assert_eq!(code, 0);

        let args = RunArgs {
            checkpoint: Some(ckpt.to_str().unwrap().to_string()),
            checkpoint_interval: Some(10_000),
            ..plain_args("spec.json")
        };
        let (first, code) = run_lifetime_cli(&raw, &args).unwrap();
        assert_eq!(code, 0);
        assert_eq!(first, reference);
        assert!(ckpt.exists(), "final checkpoint must be written");

        // Resuming the finished checkpoint reproduces the report exactly.
        let args = RunArgs { resume: true, ..args };
        let (resumed, code) = run_lifetime_cli(&raw, &args).unwrap();
        assert_eq!(code, 0);
        assert_eq!(resumed, reference);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lifetime_cli_rejects_checkpointed_timed_runs() {
        let mut exp = template_lifetime();
        exp.data_lines = 1 << 10;
        exp.fault = None;
        let raw = serde_json::to_string(&exp).unwrap();
        let args = RunArgs {
            checkpoint: Some("run.ckpt".into()),
            timing: true,
            ..plain_args("spec.json")
        };
        let (msg, code) = run_lifetime_cli(&raw, &args).unwrap_err();
        assert_eq!(code, 2, "{msg}");
        assert!(msg.contains("timing"), "{msg}");
    }

    #[test]
    fn lifetime_cli_maps_bad_specs_to_exit_2() {
        let args = plain_args("spec.json");
        let (_, code) = run_lifetime_cli("{not json", &args).unwrap_err();
        assert_eq!(code, 2);
        let mut exp = template_lifetime();
        exp.data_lines = 1 << 10;
        exp.fault = Some(FaultPlan { transient_rate: 1.5, ..Default::default() });
        let raw = serde_json::to_string(&exp).unwrap();
        let (msg, code) = run_lifetime_cli(&raw, &args).unwrap_err();
        assert_eq!(code, 2, "{msg}");
        assert!(msg.contains("invalid fault plan"), "{msg}");
    }

    #[test]
    fn lifetime_cli_maps_missing_checkpoints_to_exit_1() {
        let mut exp = template_lifetime();
        exp.data_lines = 1 << 10;
        exp.fault = None;
        exp.timing = None;
        exp.max_demand_writes = 10_000;
        let raw = serde_json::to_string(&exp).unwrap();
        let args = RunArgs {
            checkpoint: Some("/nonexistent-dir/run.ckpt".into()),
            resume: true,
            ..plain_args("spec.json")
        };
        let (msg, code) = run_lifetime_cli(&raw, &args).unwrap_err();
        assert_eq!(code, 1, "{msg}");
        assert!(msg.contains("checkpoint error"), "{msg}");
    }

    #[test]
    fn record_args_parse_and_validate() {
        let parsed =
            parse_record_args(&strs(&["spec.json", "out.trc", "--requests", "1000"])).unwrap();
        assert_eq!(
            parsed,
            RecordArgs {
                spec_path: "spec.json".into(),
                out_path: "out.trc".into(),
                requests: 1000
            }
        );
        assert!(parse_record_args(&strs(&["spec.json", "out.trc"])).is_err());
        assert!(parse_record_args(&strs(&["spec.json", "--requests", "10"])).is_err());
        assert!(parse_record_args(&strs(&["s", "o", "--requests", "0"])).is_err());
        assert!(parse_record_args(&strs(&["s", "o", "x", "--requests", "1"])).is_err());
    }

    #[test]
    fn record_cli_writes_a_replayable_trace() {
        let dir = std::env::temp_dir().join(format!("sawl-sim-record-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("ycsb.trc");
        let exp = LifetimeExperiment {
            id: "cli/record".into(),
            scheme: SchemeSpec::Ideal,
            workload: WorkloadSpec::Ycsb {
                hot_lines: 128,
                exponent: 1.1,
                write_ratio: 0.9,
                rotate_every: 500,
                drift: 16,
            },
            data_lines: 1 << 10,
            device: DeviceSpec::default(),
            max_demand_writes: 0,
            fault: None,
            telemetry: None,
            timing: None,
        };
        let raw = serde_json::to_string(&exp).unwrap();
        let args = RecordArgs {
            spec_path: "spec.json".into(),
            out_path: out.to_str().unwrap().to_string(),
            requests: 5_000,
        };
        let (json, code) = run_record_cli(&raw, &args).unwrap();
        assert_eq!(code, 0);
        assert!(json.contains("\"workload\": \"ycsb\""), "{json}");
        assert!(json.contains("\"requests\": 5000"), "{json}");

        // The recorded trace replays the exact live sequence: the header
        // carries a real count (backpatched, not the until-EOF marker),
        // the recorded name, and the stream's requests in order.
        let mut replay =
            sawl_trace::TraceFileStream::open(&out).expect("recorded trace must parse");
        assert_eq!(replay.name(), "ycsb");
        use sawl_trace::AddressStream;
        let mut live = exp.workload.try_build(exp.data_lines, stable_seed(&exp.id)).unwrap();
        for i in 0..5_000 {
            assert_eq!(replay.next_req(), live.next_req(), "request {i}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_cli_rejects_observation_driven_workloads() {
        let exp = LifetimeExperiment {
            id: "cli/record-gc".into(),
            scheme: SchemeSpec::Ideal,
            workload: WorkloadSpec::GcFeedback {
                exponent: 1.0,
                write_ratio: 1.0,
                base_threshold: 0.1,
                waf_gain: 0.2,
                cov_gain: 0.2,
                gc_burst: 64,
            },
            data_lines: 1 << 10,
            device: DeviceSpec::default(),
            max_demand_writes: 0,
            fault: None,
            telemetry: None,
            timing: None,
        };
        let raw = serde_json::to_string(&exp).unwrap();
        let args = RecordArgs {
            spec_path: "spec.json".into(),
            out_path: "unused.trc".into(),
            requests: 100,
        };
        let (msg, code) = run_record_cli(&raw, &args).unwrap_err();
        assert_eq!(code, 2, "{msg}");
        assert!(msg.contains("observation-driven"), "{msg}");
    }

    #[test]
    fn record_cli_rejects_corrupt_trace_replay_specs() {
        // A lifetime spec pointing at a malformed trace file dies with the
        // typed spec error (exit 2), in the CLI as in the library.
        let dir = std::env::temp_dir().join(format!("sawl-sim-badtrc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.trc");
        std::fs::write(&bad, b"JUNKJUNKJUNKJUNKJUNKJUNKJUNK").unwrap();
        let exp = LifetimeExperiment {
            id: "cli/bad-trace".into(),
            scheme: SchemeSpec::Ideal,
            workload: WorkloadSpec::TraceFile { path: bad.to_str().unwrap().to_string() },
            data_lines: 1 << 10,
            device: DeviceSpec { endurance: 500, ..Default::default() },
            max_demand_writes: 10_000,
            fault: None,
            telemetry: None,
            timing: None,
        };
        let raw = serde_json::to_string(&exp).unwrap();
        let (msg, code) = run_lifetime_cli(&raw, &plain_args("spec.json")).unwrap_err();
        assert_eq!(code, 2, "{msg}");
        assert!(msg.contains("bad trace magic"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn perf_cli_rejects_telemetry_flags() {
        let args = RunArgs { telemetry_out: Some("t.json".into()), ..plain_args("spec.json") };
        let (msg, code) = run_perf_cli("{}", &args).unwrap_err();
        assert_eq!(code, 2);
        assert!(msg.contains("perf runs do not support"), "{msg}");
        let args = RunArgs { checkpoint: Some("c.ckpt".into()), ..plain_args("spec.json") };
        let (msg, code) = run_perf_cli("{}", &args).unwrap_err();
        assert_eq!(code, 2);
        assert!(msg.contains("checkpoint"), "{msg}");
    }
}
