//! `sawl-sim` — run a custom experiment from a JSON spec.
//!
//! ```text
//! sawl-sim lifetime <spec.json>   run a lifetime experiment
//! sawl-sim perf     <spec.json>   run a performance experiment
//! sawl-sim example  lifetime|perf print a template spec
//! ```
//!
//! Specs are the serde form of [`sawl_simctl::LifetimeExperiment`] /
//! [`sawl_simctl::PerfExperiment`]; results are printed as pretty JSON so
//! the tool composes with jq-style pipelines.

use std::process::ExitCode;

use sawl_simctl::{
    run_lifetime, run_perf, DeviceSpec, FaultPlan, LifetimeExperiment, PerfExperiment, SchemeSpec,
    WorkloadSpec,
};
use sawl_trace::SpecBenchmark;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sawl-sim lifetime <spec.json>\n  sawl-sim perf <spec.json>\n  sawl-sim example lifetime|perf"
    );
    ExitCode::from(2)
}

fn template_lifetime() -> LifetimeExperiment {
    LifetimeExperiment {
        id: "custom/lifetime".into(),
        scheme: SchemeSpec::sawl_default(4096),
        workload: WorkloadSpec::Bpa { writes_per_target: 10_000 },
        data_lines: 1 << 16,
        device: DeviceSpec::default(),
        max_demand_writes: 0,
        fault: Some(FaultPlan::default()),
    }
}

fn template_perf() -> PerfExperiment {
    PerfExperiment {
        id: "custom/perf".into(),
        scheme: SchemeSpec::Nwl { granularity: 4, cmt_entries: 4096, swap_period: 128 },
        benchmark: SpecBenchmark::Soplex,
        data_lines: 1 << 20,
        device: DeviceSpec { endurance: u32::MAX, ..Default::default() },
        requests: 10_000_000,
        warmup_requests: 1_000_000,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("example") => match args.get(2).map(String::as_str) {
            Some("lifetime") => {
                println!("{}", serde_json::to_string_pretty(&template_lifetime()).unwrap());
                ExitCode::SUCCESS
            }
            Some("perf") => {
                println!("{}", serde_json::to_string_pretty(&template_perf()).unwrap());
                ExitCode::SUCCESS
            }
            _ => usage(),
        },
        Some(mode @ ("lifetime" | "perf")) => {
            let Some(path) = args.get(2) else { return usage() };
            let raw = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Both failure classes — an unparsable spec and a structurally
            // invalid run (bad config, bad geometry, bad fault plan,
            // write-free workload) — exit nonzero with a one-line reason.
            let out = if mode == "lifetime" {
                serde_json::from_str::<LifetimeExperiment>(&raw)
                    .map_err(|e| format!("invalid {mode} spec {path}: {e}"))
                    .and_then(|exp| {
                        run_lifetime(&exp).map_err(|e| format!("{mode} run failed: {e}"))
                    })
                    .map(|r| serde_json::to_string_pretty(&r).unwrap())
            } else {
                serde_json::from_str::<PerfExperiment>(&raw)
                    .map_err(|e| format!("invalid {mode} spec {path}: {e}"))
                    .and_then(|exp| run_perf(&exp).map_err(|e| format!("{mode} run failed: {e}")))
                    .map(|r| serde_json::to_string_pretty(&r).unwrap())
            };
            match out {
                Ok(json) => {
                    println!("{json}");
                    ExitCode::SUCCESS
                }
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
