//! Scenarios: workload × scheme × device → report.
//!
//! A [`Scenario`] is one point of an experiment grid — which scheme, which
//! workload, which device, and which [`Probe`] to take. [`run`] executes
//! one scenario through the shared [driver](crate::driver);
//! [`run_all`] shards a whole grid across the machine's cores through
//! [`parallel_map`](crate::runner::parallel_map), which is how every sweep
//! binary gets its parallelism — serial hand-rolled sweeps don't exist in
//! this codebase.
//!
//! The three probes mirror the paper's three kinds of numbers:
//!
//! * [`Probe::Lifetime`] — §4.3: write until the device dies, report the
//!   normalized lifetime (delegates to [`crate::lifetime`]).
//! * [`Probe::Perf`] — §4.4: replay a SPEC-like benchmark through the
//!   timing model, report IPC degradation (delegates to [`crate::perf`]).
//! * [`Probe::Trace`] — §4.2, Figs. 12–14: replay a fixed request count on
//!   a wear-free device and report the CMT hit rate, plus the engine's
//!   full adaptation history when the scheme is SAWL.

use serde::{Deserialize, Serialize};

use sawl_core::{History, SawlStats};
use sawl_nvm::{FaultPlan, NvmDevice};
use sawl_telemetry::{Series, TelemetrySpec};
use sawl_timing::TimingSpec;

use crate::driver::{pump_telemetry, DriverError};
use crate::lifetime::{run_lifetime, LifetimeExperiment, LifetimeResult};
use crate::perf::{run_perf, PerfExperiment, PerfResult};
use crate::runner::parallel_map;
use crate::seed::stable_seed;
use crate::spec::{DeviceSpec, SchemeSpec, TranslationKind, WorkloadSpec};
use crate::telemetry::TelemetryRun;

/// What to measure when a scenario runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Probe {
    /// Write until the device dies (or `max_demand_writes`; 0 = 4× the
    /// ideal lifetime) and report the normalized lifetime.
    Lifetime {
        /// Safety cap on demand writes (0 = 4× the ideal lifetime).
        max_demand_writes: u64,
    },
    /// Replay the workload (which must be a SPEC-like benchmark) through
    /// the closed-loop timing model and report IPC degradation.
    Perf {
        /// Requests to replay while measuring.
        requests: u64,
        /// Requests to replay before measurement starts.
        warmup_requests: u64,
    },
    /// Replay a fixed request count and report hit rate and, for SAWL,
    /// the adaptation history.
    Trace {
        /// Requests to replay.
        requests: u64,
    },
}

/// One experiment point: scheme × workload × device, plus the probe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable id; seeds the run and labels the report.
    pub id: String,
    /// Scheme under test.
    pub scheme: SchemeSpec,
    /// Workload driving it.
    pub workload: WorkloadSpec,
    /// Logical data lines (power of two).
    pub data_lines: u64,
    /// Device parameters.
    pub device: DeviceSpec,
    /// What to measure.
    pub probe: Probe,
    /// Deterministic fault plan for the run (lifetime probes only; `None`
    /// — or a zero plan — leaves the run byte-identical to fault-free).
    #[serde(default)]
    pub fault: Option<FaultPlan>,
    /// Optional time-series telemetry (lifetime and trace probes; [`run`]
    /// rejects perf probes carrying one — the timing loop replays requests
    /// outside the telemetry clock).
    #[serde(default)]
    pub telemetry: Option<TelemetrySpec>,
    /// Optional closed-loop timing model (lifetime probes only; perf
    /// probes always carry their own timing model, trace probes replay on
    /// a wear-free device with no latency semantics).
    #[serde(default)]
    pub timing: Option<TimingSpec>,
}

impl Scenario {
    /// A lifetime scenario running until device death.
    pub fn lifetime(
        id: impl Into<String>,
        scheme: SchemeSpec,
        workload: WorkloadSpec,
        data_lines: u64,
        device: DeviceSpec,
    ) -> Self {
        Self {
            id: id.into(),
            scheme,
            workload,
            data_lines,
            device,
            probe: Probe::Lifetime { max_demand_writes: 0 },
            fault: None,
            telemetry: None,
            timing: None,
        }
    }

    /// A performance scenario over a SPEC-like benchmark.
    pub fn perf(
        id: impl Into<String>,
        scheme: SchemeSpec,
        benchmark: sawl_trace::SpecBenchmark,
        data_lines: u64,
        requests: u64,
        warmup_requests: u64,
    ) -> Self {
        Self {
            id: id.into(),
            scheme,
            workload: WorkloadSpec::Spec(benchmark),
            data_lines,
            device: DeviceSpec { endurance: u32::MAX, ..Default::default() },
            probe: Probe::Perf { requests, warmup_requests },
            fault: None,
            telemetry: None,
            timing: None,
        }
    }

    /// A trace scenario on a wear-free device (hit-rate/adaptation runs
    /// never wear anything out).
    pub fn trace(
        id: impl Into<String>,
        scheme: SchemeSpec,
        workload: WorkloadSpec,
        data_lines: u64,
        requests: u64,
    ) -> Self {
        Self {
            id: id.into(),
            scheme,
            workload,
            data_lines,
            device: DeviceSpec { endurance: u32::MAX, ..Default::default() },
            probe: Probe::Trace { requests },
            fault: None,
            telemetry: None,
            timing: None,
        }
    }

    /// Replace the demand-write cap (lifetime probes only).
    pub fn with_write_cap(mut self, cap: u64) -> Self {
        match &mut self.probe {
            Probe::Lifetime { max_demand_writes } => *max_demand_writes = cap,
            _ => panic!("write caps apply to lifetime scenarios"),
        }
        self
    }

    /// Attach a fault plan (lifetime probes only; [`run`] rejects other
    /// probes carrying one).
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Attach a telemetry spec (lifetime and trace probes; [`run`] rejects
    /// perf probes carrying one).
    pub fn with_telemetry(mut self, spec: TelemetrySpec) -> Self {
        self.telemetry = Some(spec);
        self
    }

    /// Attach a timing model (lifetime probes only; [`run`] rejects other
    /// probes carrying one).
    pub fn with_timing(mut self, spec: TimingSpec) -> Self {
        self.timing = Some(spec);
        self
    }
}

/// The SAWL-specific outcome of a trace scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptationTrace {
    /// The engine's sampled time series (Figs. 12–14).
    pub history: History,
    /// Run totals: merges, splits, exchanges, decisions.
    pub stats: SawlStats,
}

/// Outcome of a trace scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceReport {
    /// Experiment id.
    pub id: String,
    /// Scheme name.
    pub scheme: String,
    /// Workload name.
    pub workload: String,
    /// Whole-run CMT hit rate (1.0 for schemes without a CMT).
    pub hit_rate: f64,
    /// Wear-leveling writes per demand write.
    pub overhead_fraction: f64,
    /// Demand writes served.
    pub demand_writes: u64,
    /// The adaptation time series, when the scheme is SAWL.
    pub adaptation: Option<AdaptationTrace>,
    /// Sampled time series, present when the scenario asked for one.
    #[serde(default)]
    pub telemetry: Option<Series>,
}

impl TraceReport {
    /// The adaptation trace; panics when the scheme was not SAWL.
    pub fn adaptation(&self) -> &AdaptationTrace {
        self.adaptation.as_ref().expect("scenario scheme was not SAWL")
    }
}

/// Outcome of a scenario, by probe kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Report {
    /// From a [`Probe::Lifetime`] run.
    Lifetime(LifetimeResult),
    /// From a [`Probe::Perf`] run.
    Perf(PerfResult),
    /// From a [`Probe::Trace`] run.
    Trace(TraceReport),
}

impl Report {
    /// The lifetime result; panics on a non-lifetime report.
    pub fn lifetime(&self) -> &LifetimeResult {
        match self {
            Self::Lifetime(r) => r,
            _ => panic!("report is not from a lifetime probe"),
        }
    }

    /// The performance result; panics on a non-perf report.
    pub fn perf(&self) -> &PerfResult {
        match self {
            Self::Perf(r) => r,
            _ => panic!("report is not from a perf probe"),
        }
    }

    /// The trace result; panics on a non-trace report.
    pub fn trace(&self) -> &TraceReport {
        match self {
            Self::Trace(r) => r,
            _ => panic!("report is not from a trace probe"),
        }
    }
}

/// Run one scenario to completion.
pub fn run(s: &Scenario) -> Result<Report, DriverError> {
    if s.fault.is_some() && !matches!(s.probe, Probe::Lifetime { .. }) {
        return Err(DriverError::Spec(format!(
            "fault plans apply to lifetime scenarios, but \"{}\" carries a {:?} probe",
            s.id, s.probe
        )));
    }
    if s.telemetry.is_some() && matches!(s.probe, Probe::Perf { .. }) {
        return Err(DriverError::Spec(format!(
            "telemetry applies to lifetime and trace scenarios, but \"{}\" carries a perf probe",
            s.id
        )));
    }
    if s.timing.is_some() && !matches!(s.probe, Probe::Lifetime { .. }) {
        return Err(DriverError::Spec(format!(
            "timing models apply to lifetime scenarios, but \"{}\" carries a {:?} probe",
            s.id, s.probe
        )));
    }
    match s.probe {
        Probe::Lifetime { max_demand_writes } => {
            Ok(Report::Lifetime(run_lifetime(&LifetimeExperiment {
                id: s.id.clone(),
                scheme: s.scheme.clone(),
                workload: s.workload.clone(),
                data_lines: s.data_lines,
                device: s.device,
                max_demand_writes,
                fault: s.fault.clone(),
                telemetry: s.telemetry.clone(),
                timing: s.timing,
            })?))
        }
        Probe::Perf { requests, warmup_requests } => {
            let WorkloadSpec::Spec(benchmark) = s.workload else {
                return Err(DriverError::Spec(format!(
                    "perf scenarios need a SPEC-like benchmark workload, got {:?}",
                    s.workload
                )));
            };
            Ok(Report::Perf(run_perf(&PerfExperiment {
                id: s.id.clone(),
                scheme: s.scheme.clone(),
                benchmark,
                data_lines: s.data_lines,
                device: s.device,
                requests,
                warmup_requests,
            })?))
        }
        Probe::Trace { requests } => Ok(Report::Trace(run_trace(s, requests)?)),
    }
}

/// Run a grid of scenarios, sharded across cores; reports keep the input
/// order. The first defective scenario's error is returned.
pub fn run_all(scenarios: &[Scenario]) -> Result<Vec<Report>, DriverError> {
    parallel_map(scenarios, run).into_iter().collect()
}

fn run_trace(s: &Scenario, requests: u64) -> Result<TraceReport, DriverError> {
    let seed = stable_seed(&s.id);
    let phys = s.scheme.physical_lines(s.data_lines);
    let mut dev = s.device.try_build(phys, seed)?;
    let mut stream = s.workload.try_build(s.data_lines, seed)?;

    // One monomorphic pump over the enum instance; the concrete engines
    // are recovered afterwards for their post-run introspection.
    let mut wl = s.scheme.try_instantiate(s.data_lines, seed)?;
    let mut telemetry = match &s.telemetry {
        Some(spec) if spec.stride == 0 => {
            return Err(DriverError::Spec("telemetry stride must be >= 1".into()));
        }
        Some(spec) => {
            let run = TelemetryRun::new(&s.id, spec);
            run.attach(&mut wl, &mut dev);
            Some(run)
        }
        None => None,
    };
    pump_telemetry(&mut wl, &mut dev, &mut *stream, requests, telemetry.as_mut());
    let series = telemetry.map(|t| t.finish(&mut wl));
    let (hit_rate, adaptation) = if let Some(sawl) = wl.as_sawl() {
        let stats = sawl.stats();
        (stats.hit_rate(), Some(AdaptationTrace { history: sawl.history().clone(), stats }))
    } else if let Some(nwl) = wl.as_nwl() {
        (nwl.mapping_stats().hit_rate(), None)
    } else {
        debug_assert_ne!(
            s.scheme.translation_kind(),
            TranslationKind::Tiered,
            "tiered schemes must take the concrete paths above"
        );
        (1.0, None)
    };

    let wear = dev.wear();
    Ok(TraceReport {
        id: s.id.clone(),
        scheme: s.scheme.name(),
        workload: s.workload.name(),
        hit_rate,
        overhead_fraction: if wear.demand_writes == 0 {
            0.0
        } else {
            wear.overhead_writes as f64 / wear.demand_writes as f64
        },
        demand_writes: wear.demand_writes,
        adaptation,
        telemetry: series,
    })
}

/// Wear-free device sized for a scheme's physical-line requirement.
pub fn wearless_device(physical_lines: u64) -> NvmDevice {
    DeviceSpec { endurance: u32::MAX, ..Default::default() }.build(physical_lines, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sawl_core::SawlConfig;
    use sawl_trace::SpecBenchmark;

    fn sawl_spec() -> SchemeSpec {
        SchemeSpec::Sawl(SawlConfig {
            cmt_entries: 64,
            swap_period: 16,
            sample_interval: 500,
            observation_window: 2_000,
            settling_window: 1_000,
            ..SawlConfig::default()
        })
    }

    #[test]
    fn lifetime_scenario_matches_direct_experiment() {
        let s = Scenario::lifetime(
            "scn/lifetime",
            SchemeSpec::PcmS { region_lines: 8, period: 16 },
            WorkloadSpec::Bpa { writes_per_target: 500 },
            1 << 10,
            DeviceSpec { endurance: 500, ..Default::default() },
        );
        let via_scenario = run(&s).unwrap().lifetime().clone();
        let direct = run_lifetime(&LifetimeExperiment {
            id: "scn/lifetime".into(),
            scheme: s.scheme.clone(),
            workload: s.workload.clone(),
            data_lines: s.data_lines,
            device: s.device,
            max_demand_writes: 0,
            fault: None,
            telemetry: None,
            timing: None,
        })
        .unwrap();
        assert_eq!(via_scenario, direct, "the scenario layer must not change results");
    }

    #[test]
    fn perf_scenario_matches_direct_experiment() {
        let s = Scenario::perf(
            "scn/perf",
            SchemeSpec::Nwl { granularity: 4, cmt_entries: 64, swap_period: 64 },
            SpecBenchmark::Gcc,
            1 << 12,
            20_000,
            0,
        );
        let via_scenario = run(&s).unwrap().perf().clone();
        let direct = run_perf(&PerfExperiment {
            id: "scn/perf".into(),
            scheme: s.scheme.clone(),
            benchmark: SpecBenchmark::Gcc,
            data_lines: s.data_lines,
            device: s.device,
            requests: 20_000,
            warmup_requests: 0,
        })
        .unwrap();
        assert_eq!(via_scenario, direct);
    }

    #[test]
    fn trace_scenario_reports_sawl_adaptation() {
        let s = Scenario::trace(
            "scn/trace/sawl",
            sawl_spec(),
            WorkloadSpec::Uniform { write_ratio: 1.0 },
            1 << 12,
            20_000,
        );
        let r = run(&s).unwrap();
        let t = r.trace();
        assert!(t.hit_rate > 0.0 && t.hit_rate < 1.0, "hit rate {}", t.hit_rate);
        let adapt = t.adaptation();
        assert_eq!(adapt.history.len(), 20_000 / 500);
        assert_eq!(t.demand_writes, 20_000);
    }

    #[test]
    fn trace_scenario_reports_nwl_hit_rate_without_adaptation() {
        let s = Scenario::trace(
            "scn/trace/nwl",
            SchemeSpec::Nwl { granularity: 4, cmt_entries: 64, swap_period: 1 << 20 },
            WorkloadSpec::Uniform { write_ratio: 0.5 },
            1 << 12,
            20_000,
        );
        let t = run(&s).unwrap().trace().clone();
        assert!(t.hit_rate > 0.0 && t.hit_rate < 1.0);
        assert!(t.adaptation.is_none());
    }

    #[test]
    fn trace_scenario_on_onchip_scheme_reports_full_hit_rate() {
        let s = Scenario::trace(
            "scn/trace/pcms",
            SchemeSpec::PcmS { region_lines: 8, period: 64 },
            WorkloadSpec::Uniform { write_ratio: 1.0 },
            1 << 10,
            5_000,
        );
        let t = run(&s).unwrap().trace().clone();
        assert_eq!(t.hit_rate, 1.0);
        assert_eq!(t.demand_writes, 5_000);
    }

    #[test]
    fn run_all_keeps_grid_order() {
        let grid: Vec<Scenario> = (0..6)
            .map(|i| {
                Scenario::lifetime(
                    format!("scn/grid/{i}"),
                    SchemeSpec::PcmS { region_lines: 8, period: 8 + i },
                    WorkloadSpec::Bpa { writes_per_target: 400 },
                    1 << 10,
                    DeviceSpec { endurance: 400, ..Default::default() },
                )
            })
            .collect();
        let reports = run_all(&grid).unwrap();
        assert_eq!(reports.len(), 6);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.lifetime().id, format!("scn/grid/{i}"));
        }
    }

    #[test]
    fn trace_telemetry_tracks_the_engine_history() {
        let base = Scenario::trace(
            "scn/trace/telemetry",
            sawl_spec(),
            WorkloadSpec::Uniform { write_ratio: 1.0 },
            1 << 12,
            20_000,
        );
        let plain = run(&base).unwrap().trace().clone();
        // Sample at the engine's own interval: one telemetry sample per
        // History row, observing identical post-tick state.
        let s = base.with_telemetry(TelemetrySpec::with_stride(500));
        let t = run(&s).unwrap().trace().clone();
        let series = t.telemetry.clone().unwrap();
        let history = &t.adaptation().history;
        assert_eq!(series.samples.len(), history.len());
        for (point, row) in series.samples.iter().zip(history.samples()) {
            assert_eq!(point.requests, row.requests);
            assert_eq!(
                point.gauge(sawl_telemetry::Channel::CmtHitRate),
                Some(row.instant_hit_rate)
            );
            assert_eq!(
                point.gauge(sawl_telemetry::Channel::CmtWindowedHitRate),
                Some(row.windowed_hit_rate)
            );
            assert_eq!(
                point.gauge(sawl_telemetry::Channel::RegionSizeCached),
                Some(row.cached_region_size)
            );
        }
        // The recorder is observation-only: everything else matches the
        // uninstrumented run.
        assert_eq!(t.hit_rate, plain.hit_rate);
        assert_eq!(t.demand_writes, plain.demand_writes);
        assert_eq!(t.adaptation().history.samples(), plain.adaptation().history.samples());
    }

    #[test]
    fn lifetime_scenario_carries_timing() {
        let s = Scenario::lifetime(
            "scn/lifetime/timing",
            SchemeSpec::PcmS { region_lines: 8, period: 16 },
            WorkloadSpec::Bpa { writes_per_target: 500 },
            1 << 10,
            DeviceSpec { endurance: 500, ..Default::default() },
        )
        .with_write_cap(20_000)
        .with_timing(TimingSpec::default());
        let r = run(&s).unwrap().lifetime().clone();
        let latency = r.latency.expect("timing was attached");
        assert_eq!(latency.requests, r.demand_writes);
        assert!(latency.p99_ns >= latency.p50_ns);
    }

    #[test]
    fn non_lifetime_scenarios_reject_timing() {
        let s = Scenario::trace(
            "scn/trace/timing",
            sawl_spec(),
            WorkloadSpec::Uniform { write_ratio: 1.0 },
            1 << 12,
            1_000,
        )
        .with_timing(TimingSpec::default());
        let err = run(&s).unwrap_err();
        assert!(matches!(err, DriverError::Spec(_)), "{err:?}");
        assert!(err.to_string().contains("timing models apply"), "{err}");
    }

    #[test]
    fn perf_scenarios_reject_telemetry() {
        let s = Scenario::perf(
            "scn/perf/telemetry",
            SchemeSpec::Nwl { granularity: 4, cmt_entries: 64, swap_period: 64 },
            SpecBenchmark::Gcc,
            1 << 12,
            1_000,
            0,
        )
        .with_telemetry(TelemetrySpec::default());
        let err = run(&s).unwrap_err();
        assert!(matches!(err, DriverError::Spec(_)), "{err:?}");
    }

    #[test]
    fn scenarios_serialize_round_trip() {
        let s = Scenario::trace(
            "scn/json",
            sawl_spec(),
            WorkloadSpec::Spec(SpecBenchmark::Soplex),
            1 << 12,
            1_000,
        );
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
