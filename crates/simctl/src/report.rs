//! Result rendering: aligned console tables and CSV files.
//!
//! Every figure binary prints an aligned table (the "rows/series the paper
//! reports") and writes the same data as CSV under `results/` so the
//! numbers in EXPERIMENTS.md can be regenerated and diffed.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple rectangular table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned console table.
    pub fn to_aligned_string(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV (headers + rows; fields quoted when needed).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Write the CSV rendering to a file, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Format a float with the given precision.
pub fn fmt(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_rendering() {
        let mut t = Table::new("demo", &["scheme", "lifetime"]);
        t.row(vec!["tlsr".into(), "42.0".into()]);
        t.row(vec!["pcm-s-long".into(), "7".into()]);
        let s = t.to_aligned_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("scheme"));
        // Right-aligned: "7" should be padded to the width of "lifetime".
        assert!(s.contains("         7"), "{s}");
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(vec!["x,y".into(), "quote\"inside".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"quote\"\"inside\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_round_trips_through_file() {
        let mut t = Table::new("", &["k", "v"]);
        t.row(vec!["x".into(), "1".into()]);
        let dir = std::env::temp_dir().join("sawl-report-test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, t.to_csv());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.4213), "42.1");
        assert_eq!(fmt(6.54321, 2), "6.54");
    }
}
