//! # sawl-simctl — experiment control plane
//!
//! Everything needed to turn the crates below into the paper's numbers:
//!
//! * [`spec`] — serializable descriptions of schemes, workloads and
//!   devices; a `(SchemeSpec, WorkloadSpec, DeviceSpec)` triple plus a seed
//!   fully determines a run, so every figure is reproducible from its
//!   config JSON.
//! * [`scenario`] — a [`Scenario`](scenario::Scenario) names one
//!   experiment point (scheme × workload × device × probe);
//!   [`run_all`](scenario::run_all) shards a grid of them across cores.
//!   This is the layer every figure binary and example talks to.
//! * [`driver`] — the one shared request pump the scenario probes drive
//!   requests through; no binary hand-rolls the request loop.
//! * [`lifetime`] — the lifetime probe: run demand writes through a
//!   wear leveler until the device exhausts its spare pool and report the
//!   normalized lifetime (the paper's §4.3 metric).
//! * [`perf`] — the performance probe: replay a workload through a scheme
//!   while feeding the closed-loop timing simulator, reporting CMT hit
//!   rate, mean memory latency, and IPC degradation versus the
//!   no-wear-leveling baseline (§4.4).
//! * [`runner`] — a work-stealing parallel map used to sweep experiment
//!   grids across cores; results keep their input order and every run is
//!   seeded deterministically ([`seed`]).
//! * [`report`] — CSV and aligned-table rendering for the figure binaries.
//! * [`sysconfig`] — the Table 1 system configuration, printable.

pub mod driver;
pub mod lifetime;
pub mod perf;
pub mod report;
pub mod resume;
pub mod runner;
pub mod scenario;
pub mod seed;
pub mod spec;
pub mod sysconfig;
pub mod telemetry;
pub mod timing;

pub use driver::{
    feed_observation, pump, pump_observed, pump_telemetry, pump_writes, pump_writes_telemetry,
    pump_writes_timed, DriverError, PumpStats, BLOCK,
};
pub use lifetime::{run_lifetime, LifetimeExperiment, LifetimeResult};
pub use perf::{run_perf, PerfExperiment, PerfResult};
pub use report::Table;
pub use resume::{ResumableRun, DEFAULT_CHECKPOINT_INTERVAL};
pub use runner::{parallel_map, set_thread_override};
pub use scenario::{
    run as run_scenario, run_all, AdaptationTrace, Probe, Report, Scenario, TraceReport,
};
pub use seed::stable_seed;
pub use spec::{
    DeviceSpec, DiurnalPhase, SchemeInstance, SchemeSpec, TranslationKind, WorkloadSpec,
};
pub use sysconfig::SystemConfig;

pub use telemetry::{device_sample, TelemetryRun};
pub use timing::{EventBuilder, LatencyReport, TimingRun};

// Fault vocabulary, re-exported so spec authors don't need a direct
// `sawl-nvm` dependency to describe a faulted run.
pub use sawl_nvm::{FaultCounters, FaultPlan, FaultPlanError};

// Telemetry vocabulary, likewise re-exported for spec authors.
pub use sawl_telemetry::{Channel, Event, EventKind, Series, TelemetrySpec};

// Timing vocabulary, likewise re-exported for spec authors.
pub use sawl_timing::{ClosedLoopConfig, Percentile, TimingSpec};
