//! # sawl-simctl — experiment control plane
//!
//! Everything needed to turn the crates below into the paper's numbers:
//!
//! * [`spec`] — serializable descriptions of schemes, workloads and
//!   devices; a `(SchemeSpec, WorkloadSpec, DeviceSpec)` triple plus a seed
//!   fully determines a run, so every figure is reproducible from its
//!   config JSON.
//! * [`lifetime`] — the lifetime driver: run demand writes through a
//!   wear leveler until the device exhausts its spare pool and report the
//!   normalized lifetime (the paper's §4.3 metric).
//! * [`perf`] — the performance driver: replay a workload through a scheme
//!   while feeding the closed-loop timing simulator, reporting CMT hit
//!   rate, mean memory latency, and IPC degradation versus the
//!   no-wear-leveling baseline (§4.4).
//! * [`runner`] — a work-stealing parallel map used to sweep experiment
//!   grids across cores; results keep their input order and every run is
//!   seeded deterministically ([`seed`]).
//! * [`report`] — CSV and aligned-table rendering for the figure binaries.
//! * [`sysconfig`] — the Table 1 system configuration, printable.

pub mod lifetime;
pub mod perf;
pub mod report;
pub mod runner;
pub mod seed;
pub mod spec;
pub mod sysconfig;

pub use lifetime::{run_lifetime, LifetimeExperiment, LifetimeResult};
pub use perf::{run_perf, PerfExperiment, PerfResult};
pub use report::Table;
pub use runner::parallel_map;
pub use seed::stable_seed;
pub use spec::{DeviceSpec, SchemeSpec, TranslationKind, WorkloadSpec};
pub use sysconfig::SystemConfig;
