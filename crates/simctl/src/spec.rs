//! Serializable experiment specifications.
//!
//! A run is `(SchemeSpec, WorkloadSpec, DeviceSpec, seed)`. The spec layer
//! owns the fiddly geometry coupling: each scheme dictates how many
//! physical lines the device must provide (Start-Gap's gap slots, MWSR's
//! spare region, the tiered schemes' translation region), and the workload
//! is generated over the scheme's *logical* space.

use serde::{Deserialize, Serialize};

use sawl_algos::{
    Ideal, Mwsr, NoWl, PcmS, SecurityRefresh, SegmentSwap, StartGap, Tlsr, WearLeveler,
};
use sawl_core::{Sawl, SawlConfig};
use sawl_nvm::{EnduranceModel, NvmConfig, NvmDevice};
use sawl_tiered::{Nwl, NwlConfig};
use sawl_trace::{
    AddressStream, Bpa, GcFeedback, Interleave, Phased, Raa, SpecBenchmark, TraceFileStream,
    Uniform, Ycsb, ZipfStream,
};

use crate::driver::DriverError;
use crate::seed::derive;

/// How a scheme translates addresses — determines the per-request
/// translation latency in the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TranslationKind {
    /// No translation at all (the Fig. 17 baseline).
    None,
    /// Full mapping state on chip: every translation costs the SRAM hit
    /// latency (BWL, the algebraic schemes).
    OnChip,
    /// Tiered: hit/miss against the CMT decides 5 ns vs 55 ns.
    Tiered,
}

/// Wear-leveling scheme selector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchemeSpec {
    /// No wear leveling (identity mapping).
    Baseline,
    /// Round-robin oracle (normalization yardstick).
    Ideal,
    /// Table-based Segment Swapping.
    SegmentSwap {
        /// Lines per segment.
        segment_lines: u64,
        /// Writes to a segment between swaps.
        swap_period: u64,
    },
    /// Region-Based Start-Gap.
    Rbsg {
        /// Number of regions.
        regions: u64,
        /// Logical lines per region.
        region_lines: u64,
        /// Writes per gap movement.
        period: u64,
    },
    /// Single-level Security Refresh over the whole space.
    SingleSr {
        /// Writes per refresh step.
        period: u64,
    },
    /// Two-level Security Refresh.
    Tlsr {
        /// Lines per region.
        region_lines: u64,
        /// Inner swapping period.
        inner_period: u64,
        /// Outer swapping period (the paper fixes 32).
        outer_period: u64,
    },
    /// PCM-S hybrid (also the "BWL" of Fig. 17 — full table on chip).
    PcmS {
        /// Lines per region.
        region_lines: u64,
        /// Writes per line between exchanges.
        period: u64,
    },
    /// MWSR hybrid.
    Mwsr {
        /// Lines per region.
        region_lines: u64,
        /// Writes to a region per migration step.
        period: u64,
    },
    /// Naive tiered scheme at a fixed granularity (NWL-4 / NWL-64).
    Nwl {
        /// Region size in lines.
        granularity: u64,
        /// CMT capacity in entries.
        cmt_entries: usize,
        /// PCM-S swapping period.
        swap_period: u64,
    },
    /// Self-adaptive wear leveling (the paper's scheme). Carries the full
    /// engine configuration so ablations (thresholds, mechanism switches)
    /// are expressible as specs; the embedded `data_lines` and `seed` are
    /// replaced by the experiment's geometry and derived seed at build
    /// time.
    Sawl(SawlConfig),
}

impl SchemeSpec {
    /// Short display name matching the paper's legends.
    pub fn name(&self) -> String {
        match self {
            Self::Baseline => "baseline".into(),
            Self::Ideal => "ideal".into(),
            Self::SegmentSwap { .. } => "segment-swap".into(),
            Self::Rbsg { .. } => "rbsg".into(),
            Self::SingleSr { .. } => "sr".into(),
            Self::Tlsr { inner_period, .. } => format!("tlsr/{inner_period}"),
            Self::PcmS { period, .. } => format!("pcm-s/{period}"),
            Self::Mwsr { period, .. } => format!("mwsr/{period}"),
            Self::Nwl { granularity, .. } => format!("nwl-{granularity}"),
            Self::Sawl(_) => "sawl".into(),
        }
    }

    /// Translation cost class for the timing model.
    pub fn translation_kind(&self) -> TranslationKind {
        match self {
            Self::Baseline | Self::Ideal => TranslationKind::None,
            Self::Nwl { .. } | Self::Sawl(_) => TranslationKind::Tiered,
            _ => TranslationKind::OnChip,
        }
    }

    /// SAWL defaults for a given data size and cache, paper parameters.
    pub fn sawl_default(cmt_entries: usize) -> Self {
        Self::Sawl(SawlConfig { cmt_entries, ..SawlConfig::default() })
    }

    /// Instantiate the scheme over `data_lines` logical lines, boxed. The
    /// concrete type behind the box is [`SchemeInstance`], so even dynamic
    /// callers get the enum-dispatched (devirtualized-per-variant) paths.
    pub fn build(&self, data_lines: u64, seed: u64) -> Box<dyn WearLeveler + Send> {
        Box::new(self.instantiate(data_lines, seed))
    }

    /// Instantiate the scheme as a concrete [`SchemeInstance`]. The probe
    /// loops are generic over `W: WearLeveler` and monomorphize against
    /// this enum, so the per-request `write`/`read`/`translate` calls are
    /// a predictable jump instead of a virtual call through a fat pointer.
    ///
    /// Panics on an invalid spec; spec-driven entry points use
    /// [`SchemeSpec::try_instantiate`] to surface the defect instead.
    pub fn instantiate(&self, data_lines: u64, seed: u64) -> SchemeInstance {
        self.try_instantiate(data_lines, seed)
            .unwrap_or_else(|e| panic!("invalid scheme spec: {e}"))
    }

    /// Fallible [`SchemeSpec::instantiate`]: geometry and configuration
    /// defects come back as a [`DriverError`] instead of a panic.
    pub fn try_instantiate(
        &self,
        data_lines: u64,
        seed: u64,
    ) -> Result<SchemeInstance, DriverError> {
        Ok(match *self {
            Self::Baseline => SchemeInstance::Baseline(NoWl::new(data_lines)),
            Self::Ideal => SchemeInstance::Ideal(Ideal::new(data_lines)),
            Self::SegmentSwap { segment_lines, swap_period } => SchemeInstance::SegmentSwap(
                SegmentSwap::new(data_lines, segment_lines, swap_period),
            ),
            Self::Rbsg { regions, region_lines, period } => {
                if regions * region_lines != data_lines {
                    return Err(DriverError::Spec(format!(
                        "RBSG geometry must cover the logical space: {regions} regions × \
                         {region_lines} lines != {data_lines} data lines"
                    )));
                }
                SchemeInstance::Rbsg(StartGap::new(regions, region_lines, period))
            }
            Self::SingleSr { period } => SchemeInstance::SingleSr(SecurityRefresh::new(
                data_lines,
                period,
                derive(seed, "sr"),
            )),
            Self::Tlsr { region_lines, inner_period, outer_period } => {
                SchemeInstance::Tlsr(Tlsr::new(
                    data_lines,
                    region_lines,
                    inner_period,
                    outer_period,
                    derive(seed, "tlsr"),
                ))
            }
            Self::PcmS { region_lines, period } => SchemeInstance::PcmS(PcmS::new(
                data_lines,
                region_lines,
                period,
                derive(seed, "pcms"),
            )),
            Self::Mwsr { region_lines, period } => SchemeInstance::Mwsr(Mwsr::new(
                data_lines,
                region_lines,
                period,
                derive(seed, "mwsr"),
            )),
            Self::Nwl { .. } => {
                SchemeInstance::Nwl(self.build_nwl(data_lines, seed).expect("variant is Nwl"))
            }
            Self::Sawl(ref cfg) => SchemeInstance::Sawl(
                Sawl::try_new(SawlConfig { data_lines, seed: derive(seed, "sawl"), ..cfg.clone() })
                    .map_err(DriverError::Config)?,
            ),
        })
    }

    /// Instantiate a concrete NWL engine when this spec selects one (the
    /// tiered drivers need the concrete type for CMT introspection).
    pub fn build_nwl(&self, data_lines: u64, seed: u64) -> Option<Nwl> {
        match *self {
            Self::Nwl { granularity, cmt_entries, swap_period } => Some(Nwl::new(NwlConfig {
                data_lines,
                granularity,
                cmt_entries,
                swap_period,
                gtd_period: 32,
                seed: derive(seed, "nwl"),
            })),
            _ => None,
        }
    }

    /// Instantiate a concrete SAWL engine when this spec selects one (the
    /// tiered drivers need the concrete type for history/stats access).
    pub fn build_sawl(&self, data_lines: u64, seed: u64) -> Option<Sawl> {
        match self {
            Self::Sawl(cfg) => Some(Sawl::new(SawlConfig {
                data_lines,
                seed: derive(seed, "sawl"),
                ..cfg.clone()
            })),
            _ => None,
        }
    }

    /// Physical lines the device must provide for this scheme over
    /// `data_lines` logical lines.
    pub fn physical_lines(&self, data_lines: u64) -> u64 {
        match *self {
            Self::Rbsg { regions, region_lines, .. } => regions * (region_lines + 1),
            Self::Mwsr { region_lines, .. } => data_lines + region_lines,
            Self::Nwl { granularity, .. } => {
                sawl_tiered::TieredLayout::new(data_lines, granularity).total_lines()
            }
            Self::Sawl(ref cfg) => {
                sawl_tiered::TieredLayout::new(data_lines, cfg.initial_granularity).total_lines()
            }
            _ => data_lines,
        }
    }
}

/// A fully-instantiated wear-leveling scheme, one variant per concrete
/// engine. Exists so the hot probe loops can be monomorphic: `pump` and
/// friends take `W: WearLeveler` and are compiled once against this enum,
/// turning the per-request dispatch into a match the branch predictor
/// resolves (the variant never changes within a run) instead of an opaque
/// indirect call. [`SchemeSpec::instantiate`] builds it with exactly the
/// same constructors and derived seeds as the boxed path, so results are
/// bit-identical either way.
#[allow(missing_docs)]
// One instance exists per running scenario, never in bulk collections, so
// the size spread between variants (SAWL's engine vs the tiny algebraic
// schemes) costs nothing; boxing the large variants would reintroduce the
// indirection this enum exists to remove.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum SchemeInstance {
    Baseline(NoWl),
    Ideal(Ideal),
    SegmentSwap(SegmentSwap),
    Rbsg(StartGap),
    SingleSr(SecurityRefresh),
    Tlsr(Tlsr),
    PcmS(PcmS),
    Mwsr(Mwsr),
    Nwl(Nwl),
    Sawl(Sawl),
}

impl SchemeInstance {
    /// The concrete SAWL engine, when this instance is one (trace probes
    /// read its adaptation history and stats after the run).
    pub fn as_sawl(&self) -> Option<&Sawl> {
        match self {
            Self::Sawl(s) => Some(s),
            _ => None,
        }
    }

    /// The concrete NWL engine, when this instance is one (trace probes
    /// read its CMT hit rate after the run).
    pub fn as_nwl(&self) -> Option<&Nwl> {
        match self {
            Self::Nwl(n) => Some(n),
            _ => None,
        }
    }
}

macro_rules! dispatch {
    ($self:expr, $inner:ident => $body:expr) => {
        match $self {
            SchemeInstance::Baseline($inner) => $body,
            SchemeInstance::Ideal($inner) => $body,
            SchemeInstance::SegmentSwap($inner) => $body,
            SchemeInstance::Rbsg($inner) => $body,
            SchemeInstance::SingleSr($inner) => $body,
            SchemeInstance::Tlsr($inner) => $body,
            SchemeInstance::PcmS($inner) => $body,
            SchemeInstance::Mwsr($inner) => $body,
            SchemeInstance::Nwl($inner) => $body,
            SchemeInstance::Sawl($inner) => $body,
        }
    };
}

impl SchemeInstance {
    /// Stable scheme tag embedded in checkpoints so a restore against the
    /// wrong scheme is rejected before any payload is interpreted.
    fn ckpt_tag(&self) -> u8 {
        match self {
            Self::Baseline(_) => 0,
            Self::Ideal(_) => 1,
            Self::SegmentSwap(_) => 2,
            Self::Rbsg(_) => 3,
            Self::SingleSr(_) => 4,
            Self::Tlsr(_) => 5,
            Self::PcmS(_) => 6,
            Self::Mwsr(_) => 7,
            Self::Nwl(_) => 8,
            Self::Sawl(_) => 9,
        }
    }

    /// Checkpoint the scheme's mutable state, prefixed with its scheme
    /// tag. Every variant serializes through its own `ckpt_save`.
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_u8(self.ckpt_tag());
        dispatch!(self, s => s.ckpt_save(w))
    }

    /// Restore state saved by [`ckpt_save`](Self::ckpt_save) into an
    /// instance built from the same spec and seed. Rejects a checkpoint
    /// written by a different scheme with a typed error.
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        let tag = r.get_u8()?;
        if tag != self.ckpt_tag() {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "scheme: checkpoint carries scheme tag {tag}, instance is {} (tag {})",
                self.name(),
                self.ckpt_tag()
            )));
        }
        dispatch!(self, s => s.ckpt_restore(r))
    }
}

impl WearLeveler for SchemeInstance {
    fn name(&self) -> &'static str {
        dispatch!(self, w => w.name())
    }

    fn logical_lines(&self) -> u64 {
        dispatch!(self, w => w.logical_lines())
    }

    #[inline]
    fn translate(&self, la: sawl_nvm::La) -> sawl_nvm::Pa {
        dispatch!(self, w => w.translate(la))
    }

    #[inline]
    fn write(&mut self, la: sawl_nvm::La, dev: &mut NvmDevice) -> sawl_nvm::Pa {
        dispatch!(self, w => w.write(la, dev))
    }

    #[inline]
    fn write_run(&mut self, la: sawl_nvm::La, n: u64, dev: &mut NvmDevice) -> u64 {
        dispatch!(self, w => w.write_run(la, n, dev))
    }

    #[inline]
    fn quiet_writes(&self, la: sawl_nvm::La) -> u64 {
        dispatch!(self, w => w.quiet_writes(la))
    }

    #[inline]
    fn read(&mut self, la: sawl_nvm::La, dev: &mut NvmDevice) -> sawl_nvm::Pa {
        dispatch!(self, w => w.read(la, dev))
    }

    fn recover(&mut self, dev: &mut NvmDevice) -> sawl_algos::Recovery {
        dispatch!(self, w => w.recover(dev))
    }

    fn onchip_bits(&self) -> u64 {
        dispatch!(self, w => w.onchip_bits())
    }

    fn telemetry_sample(&self, out: &mut sawl_telemetry::SchemeSample) {
        dispatch!(self, w => w.telemetry_sample(out))
    }

    fn telemetry_events_enable(&mut self, capacity: usize) {
        dispatch!(self, w => w.telemetry_events_enable(capacity))
    }

    fn telemetry_events_take(&mut self) -> Option<(Vec<sawl_telemetry::Event>, u64)> {
        dispatch!(self, w => w.telemetry_events_take())
    }

    fn op_counts(&self) -> sawl_algos::OpCounts {
        dispatch!(self, w => w.op_counts())
    }
}

/// Workload selector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// Repeated Address Attack on line 0.
    Raa,
    /// Birthday Paradox Attack with the given per-target dwell.
    Bpa {
        /// Writes to each randomly chosen target.
        writes_per_target: u64,
    },
    /// Uniform random traffic with a write ratio.
    Uniform {
        /// Fraction of requests that are writes.
        write_ratio: f64,
    },
    /// Zipf-popular traffic: line popularity follows a power law with the
    /// given exponent (rank 0 hottest), the heavy-tailed profile of real
    /// application heaps.
    Zipf {
        /// Zipf exponent (`s > 0`; 1.0 is the classic harmonic skew).
        exponent: f64,
        /// Fraction of requests that are writes.
        write_ratio: f64,
    },
    /// One of the 14 SPEC-like benchmark models.
    Spec(SpecBenchmark),
    /// YCSB-style key-value skew: Zipf popularity over a sliding hot
    /// window of `hot_lines` that rotates by `drift` lines every
    /// `rotate_every` requests (hot-set drift on a request clock).
    Ycsb {
        /// Hot-window size in lines.
        hot_lines: u64,
        /// Zipf exponent over the window.
        exponent: f64,
        /// Fraction of requests that are writes.
        write_ratio: f64,
        /// Requests between window rotations.
        rotate_every: u64,
        /// Lines the window slides per rotation.
        drift: u64,
    },
    /// Diurnal phase cycling: each phase serves its request budget in
    /// order, and the schedule wraps around — the day/night regime shifts
    /// a long-lived service sees.
    Diurnal {
        /// The phase schedule, in order.
        phases: Vec<DiurnalPhase>,
    },
    /// Multi-tenant round-robin interleaving: each tenant's stream gets
    /// the device for `slice` consecutive requests.
    MultiTenant {
        /// Requests per scheduling quantum.
        slice: u64,
        /// Per-tenant workloads (all built over the experiment's space).
        tenants: Vec<WorkloadSpec>,
    },
    /// FTL/GC-style feedback workload: Zipf host traffic with sequential
    /// cleaning bursts triggered by the device's own wear statistics
    /// (`base + waf_gain·(WAF−1) − cov_gain·wear_CoV`). Requires a driver
    /// that feeds wear observations.
    GcFeedback {
        /// Zipf exponent of the host traffic.
        exponent: f64,
        /// Fraction of host requests that are writes.
        write_ratio: f64,
        /// Base invalid-ratio trigger threshold.
        base_threshold: f64,
        /// Threshold gain on (WAF − 1).
        waf_gain: f64,
        /// Threshold gain on wear CoV.
        cov_gain: f64,
        /// Writes per cleaning burst.
        gc_burst: u64,
    },
    /// Replay a recorded binary trace file (see DESIGN.md §16). The
    /// trace's address space must match the experiment's logical space.
    TraceFile {
        /// Path to the `.trc` file.
        path: String,
    },
}

/// One phase of a [`WorkloadSpec::Diurnal`] schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalPhase {
    /// Workload served during this phase.
    pub workload: WorkloadSpec,
    /// Requests the phase serves before handing over.
    pub requests: u64,
}

impl WorkloadSpec {
    /// Display name. For the generator variants this matches the built
    /// stream's `AddressStream::name`, so spec-labelled and
    /// stream-labelled reports agree; trace replay reports under the name
    /// recorded in the trace header instead.
    pub fn name(&self) -> String {
        match self {
            Self::Raa => "raa".into(),
            Self::Bpa { .. } => "bpa".into(),
            Self::Uniform { .. } => "uniform".into(),
            Self::Zipf { .. } => "zipf".into(),
            Self::Spec(b) => b.name().into(),
            Self::Ycsb { .. } => "ycsb".into(),
            Self::Diurnal { phases } => format!(
                "phased({})",
                phases.iter().map(|p| p.workload.name()).collect::<Vec<_>>().join(">")
            ),
            Self::MultiTenant { tenants, .. } => {
                format!("multi({})", tenants.iter().map(|t| t.name()).collect::<Vec<_>>().join("+"))
            }
            Self::GcFeedback { .. } => "gc-feedback".into(),
            Self::TraceFile { path } => format!(
                "trace:{}",
                std::path::Path::new(path)
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default()
            ),
        }
    }

    /// Instantiate over `space` logical lines (power of two). Panics on an
    /// invalid spec; spec-driven entry points use
    /// [`WorkloadSpec::try_build`] to surface the defect instead.
    pub fn build(&self, space: u64, seed: u64) -> Box<dyn AddressStream + Send> {
        self.try_build(space, seed).unwrap_or_else(|e| panic!("invalid workload spec: {e}"))
    }

    /// Fallible [`WorkloadSpec::build`]: parameter defects, unreadable or
    /// malformed trace files, and space mismatches come back as a
    /// [`DriverError`] instead of a panic.
    pub fn try_build(
        &self,
        space: u64,
        seed: u64,
    ) -> Result<Box<dyn AddressStream + Send>, DriverError> {
        Ok(match self {
            Self::Raa => Box::new(Raa::new(0, space)),
            Self::Bpa { writes_per_target } => {
                Box::new(Bpa::new(space, *writes_per_target, derive(seed, "bpa")))
            }
            Self::Uniform { write_ratio } => {
                Self::check_ratio(*write_ratio)?;
                Box::new(Uniform::new(space, *write_ratio, derive(seed, "uniform")))
            }
            Self::Zipf { exponent, write_ratio } => {
                Self::check_ratio(*write_ratio)?;
                Box::new(ZipfStream::new(space, *exponent, *write_ratio, derive(seed, "zipf")))
            }
            Self::Spec(b) => Box::new(b.stream(space, derive(seed, b.name()))),
            Self::Ycsb { hot_lines, exponent, write_ratio, rotate_every, drift } => {
                Self::check_ratio(*write_ratio)?;
                if *hot_lines == 0 || *hot_lines > space {
                    return Err(DriverError::Spec(format!(
                        "ycsb hot window of {hot_lines} lines must fit the {space}-line space"
                    )));
                }
                if *rotate_every == 0 {
                    return Err(DriverError::Spec("ycsb rotate_every must be non-zero".into()));
                }
                Box::new(Ycsb::new(
                    space,
                    *hot_lines,
                    *exponent,
                    *write_ratio,
                    *rotate_every,
                    *drift,
                    derive(seed, "ycsb"),
                ))
            }
            Self::Diurnal { phases } => {
                if phases.is_empty() {
                    return Err(DriverError::Spec("diurnal schedule has no phases".into()));
                }
                let mut children = Vec::with_capacity(phases.len());
                for (i, p) in phases.iter().enumerate() {
                    if p.requests == 0 {
                        return Err(DriverError::Spec(format!(
                            "diurnal phase {i} has a zero request budget"
                        )));
                    }
                    children.push((
                        p.requests,
                        p.workload.try_build(space, derive(seed, &format!("phase{i}")))?,
                    ));
                }
                Box::new(Phased::new(children))
            }
            Self::MultiTenant { slice, tenants } => {
                if tenants.is_empty() {
                    return Err(DriverError::Spec("multi-tenant spec has no tenants".into()));
                }
                if *slice == 0 {
                    return Err(DriverError::Spec("multi-tenant slice must be non-zero".into()));
                }
                let mut children = Vec::with_capacity(tenants.len());
                for (i, t) in tenants.iter().enumerate() {
                    children.push(t.try_build(space, derive(seed, &format!("tenant{i}")))?);
                }
                Box::new(Interleave::new(children, *slice))
            }
            Self::GcFeedback {
                exponent,
                write_ratio,
                base_threshold,
                waf_gain,
                cov_gain,
                gc_burst,
            } => {
                Self::check_ratio(*write_ratio)?;
                if !(0.0..=1.0).contains(base_threshold) {
                    return Err(DriverError::Spec(format!(
                        "gc base threshold {base_threshold} must be a ratio in [0, 1]"
                    )));
                }
                if *gc_burst == 0 {
                    return Err(DriverError::Spec("gc burst must be non-zero".into()));
                }
                Box::new(GcFeedback::new(
                    space,
                    *exponent,
                    *write_ratio,
                    *base_threshold,
                    *waf_gain,
                    *cov_gain,
                    *gc_burst,
                    derive(seed, "gc-feedback"),
                ))
            }
            Self::TraceFile { path } => {
                let stream = TraceFileStream::open(std::path::Path::new(path))
                    .map_err(|e| DriverError::Spec(format!("trace file {path}: {e}")))?;
                // Schemes may round the logical space up (e.g. to a whole
                // number of regions), so a trace recorded against the
                // experiment's data size must still replay: any space the
                // trace's addresses cannot escape is acceptable.
                if stream.space_lines() > space {
                    return Err(DriverError::Spec(format!(
                        "trace file {path} covers {} lines but the experiment only maps {space}",
                        stream.space_lines()
                    )));
                }
                Box::new(stream)
            }
        })
    }

    fn check_ratio(write_ratio: f64) -> Result<(), DriverError> {
        if (0.0..=1.0).contains(&write_ratio) {
            Ok(())
        } else {
            Err(DriverError::Spec(format!("write ratio {write_ratio} must be in [0, 1]")))
        }
    }
}

/// Device parameters (geometry comes from the scheme).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Nominal cell endurance (the scaled Wmax, DESIGN.md §4).
    pub endurance: u32,
    /// Spare pool: spares = lines >> spare_shift (paper: 6).
    pub spare_shift: u32,
    /// Endurance process variation.
    pub variation: EnduranceModel,
    /// Banks.
    pub banks: u32,
}

impl Default for DeviceSpec {
    fn default() -> Self {
        Self { endurance: 10_000, spare_shift: 6, variation: EnduranceModel::Uniform, banks: 32 }
    }
}

impl DeviceSpec {
    /// Build a device with `physical_lines` lines. Panics on an invalid
    /// spec; spec-driven entry points use [`DeviceSpec::try_build`].
    pub fn build(&self, physical_lines: u64, seed: u64) -> NvmDevice {
        self.try_build(physical_lines, seed).unwrap_or_else(|e| panic!("invalid device spec: {e}"))
    }

    /// Fallible [`DeviceSpec::build`]: geometry defects come back as a
    /// [`DriverError`] instead of a panic.
    pub fn try_build(&self, physical_lines: u64, seed: u64) -> Result<NvmDevice, DriverError> {
        let banks = if u64::from(self.banks) > physical_lines { 1 } else { self.banks };
        NvmConfig::builder()
            .lines(physical_lines)
            .endurance(self.endurance)
            .spare_shift(self.spare_shift)
            .variation(self.variation)
            .banks(banks)
            .seed(derive(seed, "device"))
            .build()
            .map(NvmDevice::new)
            .map_err(|e| DriverError::Spec(format!("invalid device spec: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scheme_builds_and_serves_traffic() {
        let data_lines = 1 << 12;
        let specs = vec![
            SchemeSpec::Baseline,
            SchemeSpec::Ideal,
            SchemeSpec::SegmentSwap { segment_lines: 64, swap_period: 100 },
            SchemeSpec::Rbsg { regions: 16, region_lines: 256, period: 64 },
            SchemeSpec::SingleSr { period: 32 },
            SchemeSpec::Tlsr { region_lines: 64, inner_period: 8, outer_period: 32 },
            SchemeSpec::PcmS { region_lines: 16, period: 32 },
            SchemeSpec::Mwsr { region_lines: 16, period: 32 },
            SchemeSpec::Nwl { granularity: 4, cmt_entries: 128, swap_period: 128 },
            SchemeSpec::sawl_default(128),
        ];
        for spec in specs {
            let phys = spec.physical_lines(data_lines);
            assert!(phys >= data_lines, "{}", spec.name());
            let mut wl = spec.build(data_lines, 7);
            let mut dev = DeviceSpec::default().build(phys, 7);
            let mut stream =
                WorkloadSpec::Uniform { write_ratio: 0.5 }.build(wl.logical_lines(), 7);
            for _ in 0..2_000 {
                let r = stream.next_req();
                if r.write {
                    wl.write(r.la, &mut dev);
                } else {
                    wl.read(r.la, &mut dev);
                }
            }
            assert!(dev.wear().demand_writes > 0, "{}", spec.name());
        }
    }

    #[test]
    fn specs_serialize_round_trip() {
        let spec = SchemeSpec::Tlsr { region_lines: 64, inner_period: 8, outer_period: 32 };
        let json = serde_json::to_string(&spec).unwrap();
        let back: SchemeSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        let w = WorkloadSpec::Spec(SpecBenchmark::Soplex);
        let json = serde_json::to_string(&w).unwrap();
        assert_eq!(w, serde_json::from_str::<WorkloadSpec>(&json).unwrap());
    }

    #[test]
    fn translation_kinds() {
        assert_eq!(SchemeSpec::Baseline.translation_kind(), TranslationKind::None);
        assert_eq!(
            SchemeSpec::PcmS { region_lines: 4, period: 8 }.translation_kind(),
            TranslationKind::OnChip
        );
        assert_eq!(SchemeSpec::sawl_default(64).translation_kind(), TranslationKind::Tiered);
    }

    #[test]
    fn bad_specs_surface_typed_errors() {
        let err = SchemeSpec::Rbsg { regions: 3, region_lines: 100, period: 8 }
            .try_instantiate(1 << 10, 1)
            .unwrap_err();
        assert!(matches!(err, DriverError::Spec(_)), "{err:?}");
        assert!(err.to_string().contains("RBSG geometry"), "{err}");

        let bad = SchemeSpec::Sawl(SawlConfig { initial_granularity: 3, ..SawlConfig::default() });
        let err = bad.try_instantiate(1 << 10, 1).unwrap_err();
        assert!(matches!(err, DriverError::Config(_)), "{err:?}");
        assert!(err.to_string().contains("powers of two"), "{err}");
    }

    #[test]
    fn workload_names() {
        assert_eq!(WorkloadSpec::Raa.name(), "raa");
        assert_eq!(WorkloadSpec::Zipf { exponent: 1.0, write_ratio: 0.5 }.name(), "zipf");
        assert_eq!(WorkloadSpec::Spec(SpecBenchmark::Gcc).name(), "gcc");
    }

    #[test]
    fn zoo_workloads_round_trip_and_name_themselves() {
        let ycsb = WorkloadSpec::Ycsb {
            hot_lines: 64,
            exponent: 1.1,
            write_ratio: 0.8,
            rotate_every: 1_024,
            drift: 8,
        };
        let zoo = vec![
            (ycsb.clone(), "ycsb"),
            (
                WorkloadSpec::Diurnal {
                    phases: vec![
                        DiurnalPhase { workload: ycsb.clone(), requests: 100 },
                        DiurnalPhase {
                            workload: WorkloadSpec::Uniform { write_ratio: 0.3 },
                            requests: 50,
                        },
                    ],
                },
                "phased(ycsb>uniform)",
            ),
            (
                WorkloadSpec::MultiTenant {
                    slice: 32,
                    tenants: vec![
                        WorkloadSpec::Zipf { exponent: 1.2, write_ratio: 0.9 },
                        WorkloadSpec::Uniform { write_ratio: 0.5 },
                    ],
                },
                "multi(zipf+uniform)",
            ),
            (
                WorkloadSpec::GcFeedback {
                    exponent: 1.1,
                    write_ratio: 0.8,
                    base_threshold: 0.3,
                    waf_gain: 0.05,
                    cov_gain: 0.1,
                    gc_burst: 64,
                },
                "gc-feedback",
            ),
            (WorkloadSpec::TraceFile { path: "/some/dir/run.trc".into() }, "trace:run.trc"),
        ];
        for (w, name) in &zoo {
            assert_eq!(&w.name(), name);
            let json = serde_json::to_string(w).unwrap();
            assert_eq!(*w, serde_json::from_str::<WorkloadSpec>(&json).unwrap(), "{name}");
        }
    }

    #[test]
    fn zoo_workload_defects_surface_typed_spec_errors() {
        let cases: Vec<(WorkloadSpec, &str)> = vec![
            (
                WorkloadSpec::Ycsb {
                    hot_lines: 0,
                    exponent: 1.1,
                    write_ratio: 0.8,
                    rotate_every: 1_024,
                    drift: 8,
                },
                "hot window",
            ),
            (
                WorkloadSpec::Ycsb {
                    hot_lines: 64,
                    exponent: 1.1,
                    write_ratio: 0.8,
                    rotate_every: 0,
                    drift: 8,
                },
                "rotate_every",
            ),
            (WorkloadSpec::Diurnal { phases: vec![] }, "no phases"),
            (
                WorkloadSpec::Diurnal {
                    phases: vec![DiurnalPhase {
                        workload: WorkloadSpec::Uniform { write_ratio: 0.3 },
                        requests: 0,
                    }],
                },
                "request budget",
            ),
            (WorkloadSpec::MultiTenant { slice: 32, tenants: vec![] }, "no tenants"),
            (
                WorkloadSpec::MultiTenant {
                    slice: 0,
                    tenants: vec![WorkloadSpec::Uniform { write_ratio: 0.5 }],
                },
                "slice",
            ),
            (
                WorkloadSpec::GcFeedback {
                    exponent: 1.1,
                    write_ratio: 0.8,
                    base_threshold: 1.5,
                    waf_gain: 0.05,
                    cov_gain: 0.1,
                    gc_burst: 64,
                },
                "base threshold",
            ),
            (
                WorkloadSpec::GcFeedback {
                    exponent: 1.1,
                    write_ratio: 0.8,
                    base_threshold: 0.3,
                    waf_gain: 0.05,
                    cov_gain: 0.1,
                    gc_burst: 0,
                },
                "burst",
            ),
            (WorkloadSpec::TraceFile { path: "/nonexistent/missing.trc".into() }, "trace file"),
        ];
        for (w, needle) in cases {
            let err = match w.try_build(1 << 10, 1) {
                Err(e) => e,
                Ok(_) => panic!("{needle}: defective spec built a stream"),
            };
            assert!(matches!(err, DriverError::Spec(_)), "{needle}: {err:?}");
            assert!(err.to_string().contains(needle), "{needle}: {err}");
        }
    }

    #[test]
    fn zipf_workload_builds_and_round_trips() {
        let w = WorkloadSpec::Zipf { exponent: 1.1, write_ratio: 0.8 };
        let json = serde_json::to_string(&w).unwrap();
        assert_eq!(w, serde_json::from_str::<WorkloadSpec>(&json).unwrap());
        let mut stream = w.build(1 << 10, 5);
        let mut hot = 0u64;
        for _ in 0..10_000 {
            let r = stream.next_req();
            assert!(r.la < 1 << 10);
            hot += u64::from(r.la < 16);
        }
        assert!(hot > 3_000, "zipf skew missing: {hot}");
    }
}
