//! Driver-side timing glue: turns each served request into a [`MemEvent`]
//! for the closed-loop controller model and reports the run's latency
//! distribution and stall breakdown.
//!
//! ## Event construction (per request)
//!
//! * **Translation** comes from the scheme's [`TranslationKind`] — `None`
//!   for the untranslated baseline, a flat CMT `Hit` for on-chip schemes,
//!   and the *observed* hit/miss for tiered schemes, recovered from the
//!   device-read delta around the request (every CMT miss performs exactly
//!   one translation-line read; demand reads add one more device read).
//! * **Wear-leveling writes** are the device's overhead-write delta around
//!   the request, attributed to a cause by diffing the scheme's
//!   [`OpCounts`]: requests on which only `reorgs` advanced charge the
//!   delta to merge/split reorganization, only `exchanges` to data
//!   exchange, both to a proportional split. Schemes that report nothing
//!   (all baselines) leave the counters at zero and the delta lands on
//!   exchange — the only wear-leveling operation they perform.
//! * **Bank** is the physical address modulo the *timing model's* bank
//!   count (Table 1: 32), independent of the wear device's banking.

use serde::{Deserialize, Serialize};

use sawl_algos::{OpCounts, WearLeveler};
use sawl_nvm::NvmDevice;
use sawl_timing::{ClosedLoopSim, MemEvent, TimingSample, TimingSpec, Translation};

use crate::spec::TranslationKind;

/// Per-request [`MemEvent`] assembly state: carries the pre-request device
/// and scheme counters forward between observations.
#[derive(Debug, Clone)]
pub struct EventBuilder {
    kind: TranslationKind,
    banks: u32,
    hits: u64,
    misses: u64,
    reads_before: u64,
    ov_before: u64,
    ops_before: OpCounts,
}

impl EventBuilder {
    /// Builder for a scheme of the given translation class, spreading
    /// physical addresses over `banks` timing-model banks.
    pub fn new(kind: TranslationKind, banks: u32) -> Self {
        Self {
            kind,
            banks,
            hits: 0,
            misses: 0,
            reads_before: 0,
            ov_before: 0,
            ops_before: OpCounts::default(),
        }
    }

    /// Re-seed the carried counters from the current device/scheme state.
    /// Call after warmup (or any unobserved traffic) so the first observed
    /// request doesn't inherit the warmup's deltas.
    pub fn prime<W: WearLeveler + ?Sized>(&mut self, wl: &W, dev: &NvmDevice) {
        self.reads_before = dev.wear().reads;
        self.ov_before = dev.wear().overhead_writes;
        self.ops_before = wl.op_counts();
    }

    /// Assemble the event for the request that just completed: a demand
    /// `write`/read that resolved to physical address `pa`, with `wl` and
    /// `dev` in their post-request state.
    pub fn build<W: WearLeveler + ?Sized>(
        &mut self,
        write: bool,
        pa: u64,
        wl: &W,
        dev: &NvmDevice,
    ) -> MemEvent {
        let translation = match self.kind {
            TranslationKind::None => Translation::None,
            TranslationKind::OnChip => {
                self.hits += 1;
                Translation::Hit
            }
            TranslationKind::Tiered => {
                let device_reads = dev.wear().reads - self.reads_before;
                let translation_reads = device_reads - u64::from(!write);
                if translation_reads > 0 {
                    self.misses += 1;
                    Translation::Miss
                } else {
                    self.hits += 1;
                    Translation::Hit
                }
            }
        };
        let overhead = dev.wear().overhead_writes - self.ov_before;
        let ops = wl.op_counts();
        let d_ex = ops.exchanges - self.ops_before.exchanges;
        let d_re = ops.reorgs - self.ops_before.reorgs;
        let wl_writes = overhead.min(u64::from(u32::MAX)) as u32;
        let (exchange_writes, reorg_writes) = if d_re == 0 {
            (wl_writes, 0)
        } else if d_ex == 0 {
            (0, wl_writes)
        } else {
            // Both operations fired on this request: split the write delta
            // proportionally to the operation counts (integer, exchange
            // keeps the remainder).
            let re = (u64::from(wl_writes) * d_re / (d_ex + d_re)) as u32;
            (wl_writes - re, re)
        };
        self.reads_before = dev.wear().reads;
        self.ov_before = dev.wear().overhead_writes;
        self.ops_before = ops;
        MemEvent {
            bank: (pa % u64::from(self.banks)) as u32,
            write,
            translation,
            exchange_writes,
            reorg_writes,
        }
    }

    /// Assemble the one event shape shared by `n` *quiet* demand requests
    /// (see [`WearLeveler::quiet_writes`]) that just completed: same
    /// physical address, no device reads, no overhead writes, no
    /// wear-leveling operations. Equivalent to `n` [`build`] calls — each
    /// of which would see zero deltas and produce this exact event — in
    /// O(1).
    ///
    /// [`build`]: EventBuilder::build
    pub fn build_run<W: WearLeveler + ?Sized>(
        &mut self,
        write: bool,
        pa: u64,
        n: u64,
        wl: &W,
        dev: &NvmDevice,
    ) -> MemEvent {
        debug_assert!(n > 0);
        let translation = match self.kind {
            TranslationKind::None => Translation::None,
            TranslationKind::OnChip | TranslationKind::Tiered => {
                // Quiet runs never read a translation line: demand reads
                // account for every device read, so tiered lookups all hit.
                debug_assert_eq!(
                    dev.wear().reads - self.reads_before,
                    if write { 0 } else { n },
                    "quiet run performed translation reads"
                );
                self.hits += n;
                Translation::Hit
            }
        };
        debug_assert_eq!(
            dev.wear().overhead_writes,
            self.ov_before,
            "quiet run posted overhead writes"
        );
        debug_assert_eq!(wl.op_counts(), self.ops_before, "quiet run advanced op counters");
        self.reads_before = dev.wear().reads;
        self.ov_before = dev.wear().overhead_writes;
        self.ops_before = wl.op_counts();
        MemEvent {
            bank: (pa % u64::from(self.banks)) as u32,
            write,
            translation,
            exchange_writes: 0,
            reorg_writes: 0,
        }
    }

    /// Whole-run CMT hit rate: hits/(hits+misses) for tiered schemes, 1.0
    /// otherwise (no cache to miss).
    pub fn hit_rate(&self) -> f64 {
        match self.kind {
            TranslationKind::Tiered => {
                let t = self.hits + self.misses;
                if t == 0 {
                    0.0
                } else {
                    self.hits as f64 / t as f64
                }
            }
            _ => 1.0,
        }
    }
}

/// One run's live timing state: the controller simulator plus the event
/// builder feeding it.
#[derive(Debug, Clone)]
pub struct TimingRun {
    builder: EventBuilder,
    sim: ClosedLoopSim,
    scalar_serve: bool,
    keep_histogram: bool,
}

impl TimingRun {
    /// Timing model for one run of a scheme with the given translation
    /// class.
    pub fn new(spec: &TimingSpec, kind: TranslationKind) -> Self {
        let sim = spec.build();
        let banks = sim.config().banks;
        Self {
            builder: EventBuilder::new(kind, banks),
            sim,
            scalar_serve: spec.scalar_serve,
            keep_histogram: spec.keep_histogram,
        }
    }

    /// Whether the spec forces the timed driver onto the scalar serve path
    /// (see [`TimingSpec::scalar_serve`]).
    pub fn scalar_serve(&self) -> bool {
        self.scalar_serve
    }

    /// Re-seed the builder's carried counters (see [`EventBuilder::prime`]).
    pub fn prime<W: WearLeveler + ?Sized>(&mut self, wl: &W, dev: &NvmDevice) {
        self.builder.prime(wl, dev);
    }

    /// Feed the request that just completed into the controller model.
    pub fn observe<W: WearLeveler + ?Sized>(
        &mut self,
        write: bool,
        pa: u64,
        wl: &W,
        dev: &NvmDevice,
    ) {
        let e = self.builder.build(write, pa, wl, dev);
        self.sim.push(e);
    }

    /// Feed `n` quiet same-address requests that just completed — one
    /// event shape, advanced through the controller in closed form
    /// ([`ClosedLoopSim::push_n`]). Bit-identical to `n` scalar
    /// [`observe`](TimingRun::observe) calls over the same quiet span.
    pub fn observe_run<W: WearLeveler + ?Sized>(
        &mut self,
        write: bool,
        pa: u64,
        n: u64,
        wl: &W,
        dev: &NvmDevice,
    ) {
        if n == 0 {
            return;
        }
        let e = self.builder.build_run(write, pa, n, wl, dev);
        self.sim.push_n(e, n);
    }

    /// Snapshot for the telemetry stream: cumulative stall counters and
    /// the latency histogram as of now.
    pub fn sample(&self) -> TimingSample {
        self.sim.timing_sample()
    }

    /// Whole-run CMT hit rate observed by the builder.
    pub fn hit_rate(&self) -> f64 {
        self.builder.hit_rate()
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &ClosedLoopSim {
        &self.sim
    }

    /// Finish the run and summarize the latency distribution. When the
    /// spec asked for it, the full histogram snapshot rides along for
    /// slot-exact shard merging.
    pub fn finish(self) -> LatencyReport {
        let mut report = LatencyReport::from_sim(&self.sim);
        if self.keep_histogram {
            report.histogram = Some(self.sim.histogram().snapshot());
        }
        report
    }
}

/// Latency summary of one timed run: the tail percentiles the figures
/// report, plus the per-cause stall attribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyReport {
    /// Demand requests the timing model served.
    pub requests: u64,
    /// Mean demand latency, ns.
    pub mean_ns: f64,
    /// Median latency, ns (histogram bucket upper edge, ≤3.2% high).
    pub p50_ns: u64,
    /// 99th-percentile latency, ns.
    pub p99_ns: u64,
    /// 99.9th-percentile latency, ns.
    pub p999_ns: u64,
    /// Largest latency observed, ns (exact).
    pub max_ns: u64,
    /// Whether any recorded latency overflowed the histogram's ~2.1 s
    /// trackable range (percentiles above the overflow rank clamp to
    /// `max_ns`).
    pub saturated: bool,
    /// Stalled time attributed to bank-queue contention, ns.
    pub stall_queue_ns: f64,
    /// Stalled time attributed to CMT-miss translation, ns.
    pub stall_trans_miss_ns: f64,
    /// Stalled time attributed to background data-exchange writes, ns.
    pub stall_exchange_ns: f64,
    /// Stalled time attributed to background merge/split writes, ns.
    pub stall_reorg_ns: f64,
    /// Simulated wall-clock, ns.
    pub elapsed_ns: f64,
    /// Full histogram snapshot, present when the run's [`TimingSpec`]
    /// set `keep_histogram` — sharded sweeps merge these slot-exactly.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub histogram: Option<sawl_telemetry::HistogramSnapshot>,
}

impl LatencyReport {
    /// Summarize a finished simulator.
    pub fn from_sim(sim: &ClosedLoopSim) -> Self {
        let pctl = |p: f64| sim.latency_percentile(p).map_or(0, |x| x.ns);
        let stalls = sim.stalls();
        let hist = sim.histogram();
        Self {
            requests: sim.events(),
            mean_ns: sim.mean_latency_ns(),
            p50_ns: pctl(0.5),
            p99_ns: pctl(0.99),
            p999_ns: pctl(0.999),
            max_ns: hist.snapshot().max_ns,
            saturated: sim.latency_percentile(1.0).is_some_and(|x| x.saturated),
            stall_queue_ns: stalls.queue_ns,
            stall_trans_miss_ns: stalls.trans_miss_ns,
            stall_exchange_ns: stalls.exchange_ns,
            stall_reorg_ns: stalls.reorg_ns,
            elapsed_ns: sim.elapsed_ns(),
            histogram: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sawl_algos::NoWl;
    use sawl_nvm::NvmConfig;

    fn device(lines: u64) -> NvmDevice {
        NvmDevice::new(
            NvmConfig::builder()
                .lines(lines)
                .banks(1)
                .endurance(u32::MAX)
                .spare_shift(6)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn baseline_events_carry_no_translation_or_overhead() {
        let mut wl = NoWl::new(64);
        let mut dev = device(64);
        let mut b = EventBuilder::new(TranslationKind::None, 32);
        b.prime(&wl, &dev);
        let pa = wl.write(5, &mut dev);
        let e = b.build(true, pa, &wl, &dev);
        assert_eq!(e.translation, Translation::None);
        assert_eq!(e.wl_writes(), 0);
        assert_eq!(e.bank, 5);
        assert!(e.write);
        assert_eq!(b.hit_rate(), 1.0);
    }

    #[test]
    fn onchip_schemes_pay_a_flat_hit() {
        let mut wl = NoWl::new(64);
        let mut dev = device(64);
        let mut b = EventBuilder::new(TranslationKind::OnChip, 32);
        b.prime(&wl, &dev);
        let pa = wl.read(9, &mut dev);
        let e = b.build(false, pa, &wl, &dev);
        assert_eq!(e.translation, Translation::Hit);
        assert_eq!(b.hit_rate(), 1.0);
    }

    #[test]
    fn timed_run_reports_percentiles_and_stalls() {
        let mut wl = NoWl::new(1 << 10);
        let mut dev = device(1 << 10);
        let mut t = TimingRun::new(&TimingSpec::default(), TranslationKind::None);
        t.prime(&wl, &dev);
        for la in 0..5_000u64 {
            let pa = wl.write(la % (1 << 10), &mut dev);
            t.observe(true, pa, &wl, &dev);
        }
        let s = t.sample();
        assert_eq!(s.latency.count, 5_000);
        let r = t.finish();
        assert_eq!(r.requests, 5_000);
        assert!(r.p50_ns >= 350, "{}", r.p50_ns);
        assert!(r.p999_ns >= r.p99_ns && r.p99_ns >= r.p50_ns);
        assert!(r.max_ns as f64 >= r.mean_ns);
        assert!(!r.saturated);
        assert!(r.elapsed_ns > 0.0);
    }
}
