//! Lifetime experiments (§4.3).
//!
//! Drive demand writes through a wear leveler until the device dies (spare
//! pool exhausted) and report the **normalized lifetime**: demand writes
//! served divided by the ideal-lifetime write count `lines × Wmax` — the
//! same normalization the paper uses against its "ideal lifetime ... with
//! fully uniform writes".
//!
//! Reads are skipped in lifetime runs: they do not wear cells, and the
//! paper's BPA attack issues writes only. (SPEC-like workloads *do* contain
//! reads; for lifetime purposes we play only their writes, which preserves
//! the write-address distribution exactly.)

use serde::{Deserialize, Serialize};

use sawl_algos::WearLeveler;
use sawl_nvm::FaultPlan;
use sawl_telemetry::{Series, TelemetrySpec};
use sawl_timing::TimingSpec;

use crate::driver::{pump_writes_telemetry, pump_writes_timed, DriverError};
use crate::seed::stable_seed;
use crate::spec::{DeviceSpec, SchemeSpec, WorkloadSpec};
use crate::telemetry::TelemetryRun;
use crate::timing::{LatencyReport, TimingRun};

/// A lifetime run specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeExperiment {
    /// Human-readable id used for seeding and reports (e.g. "fig3/32k/8").
    pub id: String,
    /// Scheme under test.
    pub scheme: SchemeSpec,
    /// Workload.
    pub workload: WorkloadSpec,
    /// Logical data lines (power of two).
    pub data_lines: u64,
    /// Device endurance/spares.
    pub device: DeviceSpec,
    /// Safety cap on demand writes (0 = 4× the ideal lifetime).
    pub max_demand_writes: u64,
    /// Deterministic fault plan installed on the device before the run
    /// (`None` — or a zero plan — leaves the run byte-identical to the
    /// fault-free path).
    #[serde(default)]
    pub fault: Option<FaultPlan>,
    /// Optional time-series telemetry: sample the listed channels every
    /// `stride` demand writes. `None` keeps the run bit-identical to an
    /// uninstrumented one (the recorder only observes).
    #[serde(default)]
    pub telemetry: Option<TelemetrySpec>,
    /// Optional closed-loop timing model: serve every demand write through
    /// the multi-channel controller and report the latency distribution.
    /// `None` keeps the batched fast path; `Some` serves writes scalar
    /// (identical request sequence and device state — only slower) and
    /// fills [`LifetimeResult::latency`].
    #[serde(default)]
    pub timing: Option<TimingSpec>,
}

/// Outcome of a lifetime run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeResult {
    /// The experiment id.
    pub id: String,
    /// Scheme name.
    pub scheme: String,
    /// Workload name.
    pub workload: String,
    /// Demand writes served / (physical lines × Wmax).
    pub normalized_lifetime: f64,
    /// Demand writes served before death (or the cap).
    pub demand_writes: u64,
    /// Wear-leveling writes issued.
    pub overhead_writes: u64,
    /// overhead / demand.
    pub overhead_fraction: f64,
    /// Whether the device actually died (false = hit the write cap).
    pub device_died: bool,
    /// Coefficient of variation of final per-line wear.
    pub wear_cov: f64,
    /// Gini coefficient of final per-line wear.
    pub wear_gini: f64,
    /// Stuck-at lines remapped into the spare pool at plan-install time.
    #[serde(default)]
    pub stuck_lines_remapped: u64,
    /// Transient write faults injected and survived via verify-and-retry.
    #[serde(default)]
    pub transient_faults: u64,
    /// Power-loss events triggered during the run.
    #[serde(default)]
    pub power_losses: u64,
    /// Power losses the driver recovered from via [`WearLeveler::recover`].
    #[serde(default)]
    pub recoveries: u64,
    /// Recoveries that replayed a journaled in-flight operation.
    #[serde(default)]
    pub journal_replays: u64,
    /// Recoveries that rolled a journaled operation back.
    #[serde(default)]
    pub journal_rollbacks: u64,
    /// Spare lines left when the run ended (consumed by worn-out lines and
    /// stuck-at remaps alike).
    #[serde(default)]
    pub spares_remaining: u64,
    /// Sampled time series, present when the experiment asked for one.
    #[serde(default)]
    pub telemetry: Option<Series>,
    /// Latency distribution and stall attribution, present when the
    /// experiment attached a timing model.
    #[serde(default)]
    pub latency: Option<LatencyReport>,
}

/// Run one lifetime experiment to completion.
pub fn run_lifetime(exp: &LifetimeExperiment) -> Result<LifetimeResult, DriverError> {
    let seed = stable_seed(&exp.id);
    let phys = exp.scheme.physical_lines(exp.data_lines);
    // Concrete enum instance: the pump below monomorphizes against it, so
    // the per-write scheme call is static-dispatched.
    let mut wl = exp.scheme.try_instantiate(exp.data_lines, seed)?;
    let mut dev = exp.device.try_build(phys, seed)?;
    if let Some(plan) = &exp.fault {
        dev.install_fault_plan(plan)?;
    }
    let mut telemetry = match &exp.telemetry {
        Some(spec) if spec.stride == 0 => {
            return Err(DriverError::Spec("telemetry stride must be >= 1".into()));
        }
        Some(spec) => {
            let run = TelemetryRun::new(&exp.id, spec);
            run.attach(&mut wl, &mut dev);
            Some(run)
        }
        None => None,
    };
    let mut stream = exp.workload.try_build(wl.logical_lines(), seed)?;
    // The result reports the *stream's* name: for generators it equals the
    // spec name, and for trace replay it is the name recorded in the trace
    // header — which is what makes a replayed run's report byte-identical
    // to the live generator run it was recorded from.
    let workload_name = stream.name().to_string();

    let cap = if exp.max_demand_writes == 0 {
        4 * dev.config().ideal_lifetime_writes()
    } else {
        exp.max_demand_writes
    };

    // Reads are skipped by the lifetime pump: no wear, and lifetime is the
    // only output here.
    let mut timing = exp.timing.as_ref().map(|s| TimingRun::new(s, exp.scheme.translation_kind()));
    let pump = match timing.as_mut() {
        Some(t) => pump_writes_timed(&mut wl, &mut dev, &mut *stream, cap, telemetry.as_mut(), t)?,
        None => pump_writes_telemetry(&mut wl, &mut dev, &mut *stream, cap, telemetry.as_mut())?,
    };
    let latency = timing.map(TimingRun::finish);
    let series = telemetry.map(|t| t.finish(&mut wl));
    Ok(build_result(exp, workload_name, &dev, &pump, series, latency))
}

/// Assemble a [`LifetimeResult`] from a finished run's final device state
/// and pump bookkeeping — shared by [`run_lifetime`] and the resumable
/// checkpoint/resume path ([`crate::resume::ResumableRun`]), so both
/// report byte-identical results from identical state.
pub(crate) fn build_result(
    exp: &LifetimeExperiment,
    workload: String,
    dev: &sawl_nvm::NvmDevice,
    pump: &crate::driver::PumpStats,
    telemetry: Option<Series>,
    latency: Option<LatencyReport>,
) -> LifetimeResult {
    let wear = *dev.wear();
    let stats = dev.wear_stats();
    let faults = dev.fault_counters();
    // Normalize against the *logical* capacity so schemes with different
    // reserved space (gap slots, translation region) compare on the same
    // denominator — the paper's ideal lifetime of the user-visible device.
    let ideal = exp.data_lines as f64 * f64::from(exp.device.endurance);
    LifetimeResult {
        id: exp.id.clone(),
        scheme: exp.scheme.name(),
        workload,
        normalized_lifetime: wear.demand_writes as f64 / ideal,
        demand_writes: wear.demand_writes,
        overhead_writes: wear.overhead_writes,
        overhead_fraction: if wear.demand_writes == 0 {
            0.0
        } else {
            wear.overhead_writes as f64 / wear.demand_writes as f64
        },
        device_died: dev.is_dead(),
        wear_cov: stats.cov,
        wear_gini: stats.gini,
        stuck_lines_remapped: faults.stuck_lines_remapped,
        transient_faults: faults.transient_write_faults,
        power_losses: faults.power_losses,
        recoveries: pump.recoveries,
        journal_replays: pump.journal_replays,
        journal_rollbacks: pump.journal_rollbacks,
        spares_remaining: dev.spares_remaining(),
        telemetry,
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp(scheme: SchemeSpec, workload: WorkloadSpec, endurance: u32) -> LifetimeExperiment {
        LifetimeExperiment {
            id: format!("test/{}/{}", scheme.name(), workload.name()),
            scheme,
            workload,
            data_lines: 1 << 10,
            device: DeviceSpec { endurance, ..Default::default() },
            max_demand_writes: 0,
            fault: None,
            telemetry: None,
            timing: None,
        }
    }

    #[test]
    fn ideal_reaches_near_full_lifetime() {
        let r = run_lifetime(&exp(SchemeSpec::Ideal, WorkloadSpec::Raa, 500)).unwrap();
        assert!(r.device_died);
        assert!(r.normalized_lifetime > 0.9, "{}", r.normalized_lifetime);
        assert!(r.wear_cov < 0.1);
    }

    #[test]
    fn baseline_dies_early_under_raa() {
        let r = run_lifetime(&exp(SchemeSpec::Baseline, WorkloadSpec::Raa, 500)).unwrap();
        assert!(r.device_died);
        assert!(r.normalized_lifetime < 0.05, "{}", r.normalized_lifetime);
        assert!(r.wear_gini > 0.9);
    }

    #[test]
    fn pcms_beats_baseline_under_bpa() {
        let bpa = WorkloadSpec::Bpa { writes_per_target: 2048 };
        let base = run_lifetime(&exp(SchemeSpec::Baseline, bpa.clone(), 1000)).unwrap();
        let pcms = run_lifetime(&exp(SchemeSpec::PcmS { region_lines: 4, period: 16 }, bpa, 1000))
            .unwrap();
        assert!(
            pcms.normalized_lifetime > 3.0 * base.normalized_lifetime,
            "pcm-s {} vs baseline {}",
            pcms.normalized_lifetime,
            base.normalized_lifetime
        );
        assert!(pcms.overhead_fraction > 0.05);
    }

    #[test]
    fn results_are_reproducible() {
        let e = exp(
            SchemeSpec::Tlsr { region_lines: 64, inner_period: 8, outer_period: 32 },
            WorkloadSpec::Bpa { writes_per_target: 1024 },
            1000,
        );
        let a = run_lifetime(&e).unwrap();
        let b = run_lifetime(&e).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn write_cap_prevents_infinite_runs() {
        let mut e = exp(SchemeSpec::Ideal, WorkloadSpec::Raa, 1_000_000);
        e.max_demand_writes = 10_000;
        let r = run_lifetime(&e).unwrap();
        assert!(!r.device_died);
        assert_eq!(r.demand_writes, 10_000);
    }

    #[test]
    fn faulted_run_reports_fault_and_recovery_counters() {
        let mut e = exp(
            SchemeSpec::PcmS { region_lines: 4, period: 16 },
            WorkloadSpec::Bpa { writes_per_target: 512 },
            1_000_000,
        );
        e.max_demand_writes = 50_000;
        e.fault = Some(FaultPlan {
            stuck_lines: vec![3, 17],
            transient_rate: 0.001,
            power_loss_at_writes: vec![10_000, 30_000],
            seed: 11,
        });
        let r = run_lifetime(&e).unwrap();
        assert_eq!(r.stuck_lines_remapped, 2);
        assert!(r.transient_faults > 0, "{r:?}");
        assert_eq!(r.power_losses, 2);
        assert_eq!(r.recoveries, 2);
        assert_eq!(r.demand_writes, 50_000);
        assert!(r.spares_remaining < 1 << 4, "spares not consumed: {r:?}");
        // Faulted runs are exactly reproducible too.
        assert_eq!(r, run_lifetime(&e).unwrap());
    }

    #[test]
    fn telemetry_observes_without_changing_the_outcome() {
        let mut e = exp(
            SchemeSpec::PcmS { region_lines: 4, period: 16 },
            WorkloadSpec::Bpa { writes_per_target: 512 },
            500,
        );
        e.max_demand_writes = 40_000;
        let plain = run_lifetime(&e).unwrap();
        e.telemetry = Some(TelemetrySpec::with_stride(10_000));
        let mut teled = run_lifetime(&e).unwrap();
        let series = teled.telemetry.take().unwrap();
        // Stripping the series leaves a result identical to the
        // uninstrumented run: the recorder only observes.
        assert_eq!(teled, plain);
        assert_eq!(series.samples.len(), 4);
        assert_eq!(series.samples[0].requests, 10_000);
        assert_eq!(
            series.samples[3].counter(sawl_telemetry::Channel::DemandWrites),
            Some(plain.demand_writes)
        );
    }

    #[test]
    fn timing_observes_without_changing_the_outcome() {
        let mut e = exp(
            SchemeSpec::PcmS { region_lines: 4, period: 16 },
            WorkloadSpec::Bpa { writes_per_target: 512 },
            1_000_000,
        );
        e.max_demand_writes = 30_000;
        let plain = run_lifetime(&e).unwrap();
        e.timing = Some(TimingSpec::default());
        let mut timed = run_lifetime(&e).unwrap();
        let latency = timed.latency.take().unwrap();
        // Stripping the latency report leaves a result identical to the
        // batched untimed run: the scalar serving order is bit-equivalent.
        assert_eq!(timed, plain);
        assert_eq!(latency.requests, 30_000);
        assert!(latency.p999_ns >= latency.p99_ns && latency.p99_ns >= latency.p50_ns);
        assert!(latency.p50_ns >= 350, "writes cost at least the device write: {latency:?}");
        // PCM-S exchanges show up as exchange-attributed stall, never as
        // merge/split (it has no regions to reorganize).
        assert!(latency.stall_exchange_ns > 0.0, "{latency:?}");
        assert_eq!(latency.stall_reorg_ns, 0.0);
    }

    #[test]
    fn sawl_timing_attributes_reorg_stall() {
        use sawl_core::SawlConfig;
        let mut e = exp(
            SchemeSpec::Sawl(SawlConfig {
                cmt_entries: 64,
                swap_period: 16,
                sample_interval: 500,
                observation_window: 2_000,
                settling_window: 1_000,
                ..SawlConfig::default()
            }),
            WorkloadSpec::Zipf { exponent: 1.0, write_ratio: 1.0 },
            1_000_000,
        );
        e.max_demand_writes = 40_000;
        e.timing = Some(TimingSpec::default());
        let r = run_lifetime(&e).unwrap();
        let latency = r.latency.unwrap();
        // SAWL pays CMT misses and performs both exchanges and merges.
        assert!(latency.stall_trans_miss_ns > 0.0, "{latency:?}");
        assert!(latency.stall_exchange_ns > 0.0, "{latency:?}");
        assert!(latency.stall_reorg_ns > 0.0, "{latency:?}");
    }

    #[test]
    fn zero_telemetry_stride_is_a_spec_error() {
        let mut e = exp(SchemeSpec::Ideal, WorkloadSpec::Raa, 500);
        e.telemetry = Some(TelemetrySpec { stride: 0, ..Default::default() });
        let err = run_lifetime(&e).unwrap_err();
        assert!(matches!(err, DriverError::Spec(_)), "{err:?}");
    }

    #[test]
    fn invalid_fault_plan_is_a_typed_error() {
        let mut e = exp(SchemeSpec::Ideal, WorkloadSpec::Raa, 500);
        e.fault = Some(FaultPlan { transient_rate: 1.5, ..Default::default() });
        let err = run_lifetime(&e).unwrap_err();
        assert!(matches!(err, DriverError::FaultPlan(_)), "{err:?}");
    }
}
