//! Performance experiments (§4.4, Figs. 12–14, 17).
//!
//! Replay a workload through a scheme for a fixed number of requests,
//! feeding every request into the closed-loop timing simulator:
//!
//! * translation latency per request comes from the scheme's
//!   [`TranslationKind`] — 0 ns for the baseline, 5 ns flat for on-chip
//!   schemes, 5/55 ns by observed CMT hit/miss for tiered schemes;
//! * wear-leveling writes are charged to banks by diffing the device's
//!   overhead-write counter around each request.
//!
//! The IPC baseline (no wear leveling, no translation) replays the *same*
//! seeded workload, so the degradation isolates the scheme's cost exactly.

use serde::{Deserialize, Serialize};

use sawl_algos::WearLeveler;
use sawl_timing::{ipc_degradation, CpuModel, IpcEstimate, IpcModel, MemEvent};
use sawl_trace::SpecBenchmark;

use crate::driver::{pump, pump_observed, DriverError};
use crate::seed::stable_seed;
use crate::spec::{DeviceSpec, SchemeSpec, TranslationKind, WorkloadSpec};

/// A performance run specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfExperiment {
    /// Id used for seeding and reports.
    pub id: String,
    /// Scheme under test.
    pub scheme: SchemeSpec,
    /// Benchmark driving both the address stream and the CPU model.
    pub benchmark: SpecBenchmark,
    /// Logical data lines.
    pub data_lines: u64,
    /// Device parameters (endurance is irrelevant here; keep it high).
    pub device: DeviceSpec,
    /// Requests to replay while measuring.
    pub requests: u64,
    /// Requests to replay *before* measurement starts (not fed to the
    /// timing models). Adaptive schemes pay their granularity ramp here,
    /// the way gem5 evaluations fast-forward past warmup; the paper's
    /// 1e8+-request runs amortize the ramp naturally, our shorter ones
    /// must exclude it.
    #[serde(default)]
    pub warmup_requests: u64,
}

/// Outcome of a performance run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfResult {
    /// Experiment id.
    pub id: String,
    /// Scheme name.
    pub scheme: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Whole-run CMT hit rate (1.0 for non-tiered schemes).
    pub hit_rate: f64,
    /// IPC of the scheme.
    pub ipc: IpcEstimate,
    /// IPC of the no-wear-leveling baseline on the same stream.
    pub baseline_ipc: IpcEstimate,
    /// `1 - ipc/baseline` (Fig. 17's y-axis).
    pub ipc_degradation: f64,
    /// Wear-leveling writes per demand write.
    pub overhead_fraction: f64,
}

/// Hit/miss introspection for tiered schemes, via the device-read count:
/// every CMT miss performs exactly one translation-line read, and demand
/// reads add one more device read each — so
/// `misses = device_reads - demand_reads`.
struct TranslationTracker {
    kind: TranslationKind,
    hits: u64,
    misses: u64,
}

impl TranslationTracker {
    fn latency_ns(&mut self, reads_before: u64, reads_after: u64, was_read: bool) -> f64 {
        match self.kind {
            TranslationKind::None => 0.0,
            TranslationKind::OnChip => 5.0,
            TranslationKind::Tiered => {
                let device_reads = reads_after - reads_before;
                let translation_reads = device_reads - u64::from(was_read);
                if translation_reads > 0 {
                    self.misses += 1;
                    55.0
                } else {
                    self.hits += 1;
                    5.0
                }
            }
        }
    }

    fn hit_rate(&self) -> f64 {
        match self.kind {
            TranslationKind::Tiered => {
                let t = self.hits + self.misses;
                if t == 0 {
                    0.0
                } else {
                    self.hits as f64 / t as f64
                }
            }
            _ => 1.0,
        }
    }
}

/// Run one performance experiment.
pub fn run_perf(exp: &PerfExperiment) -> Result<PerfResult, DriverError> {
    let seed = stable_seed(&exp.id);
    let cpu = CpuModel::for_benchmark(exp.benchmark);
    let banks = exp.device.banks;

    // Scheme pass, monomorphized over the concrete enum instance.
    let phys = exp.scheme.physical_lines(exp.data_lines);
    let mut wl = exp.scheme.try_instantiate(exp.data_lines, seed)?;
    let mut dev = exp.device.try_build(phys, seed)?;
    let workload = WorkloadSpec::Spec(exp.benchmark);
    let mut stream = workload.build(wl.logical_lines(), seed);
    let mut tracker =
        TranslationTracker { kind: exp.scheme.translation_kind(), hits: 0, misses: 0 };
    let mut ipc_model = IpcModel::new(cpu);
    // Baseline pass shares the identical request sequence: regenerate the
    // stream with the same seed and replay it with zero-cost translation.
    let mut base_stream = workload.build(exp.data_lines, seed);
    let mut base_model = IpcModel::new(cpu);

    pump(&mut wl, &mut dev, &mut *stream, exp.warmup_requests);
    // Keep the baseline stream aligned with the scheme's through warmup.
    for _ in 0..exp.warmup_requests {
        let _ = base_stream.next_req();
    }

    // The observer diffs the device's read and overhead-write counters
    // around each request, so it carries the pre-request values forward
    // from the end of the previous observation.
    let mut reads_before = dev.wear().reads;
    let mut ov_before = dev.wear().overhead_writes;
    pump_observed(&mut wl, &mut dev, &mut *stream, exp.requests, |req, pa, _, d| {
        let translation_ns = tracker.latency_ns(reads_before, d.wear().reads, !req.write);
        let wl_writes = (d.wear().overhead_writes - ov_before).min(u64::from(u32::MAX)) as u32;
        reads_before = d.wear().reads;
        ov_before = d.wear().overhead_writes;
        ipc_model.push(MemEvent {
            bank: (pa % u64::from(banks)) as u32,
            write: req.write,
            translation_ns,
            wl_writes,
        });

        let base_req = base_stream.next_req();
        base_model.push(MemEvent {
            bank: (base_req.la % u64::from(banks)) as u32,
            write: base_req.write,
            translation_ns: 0.0,
            wl_writes: 0,
        });
    });

    let ipc = ipc_model.estimate();
    let baseline_ipc = base_model.estimate();
    let wear = dev.wear();
    Ok(PerfResult {
        id: exp.id.clone(),
        scheme: exp.scheme.name(),
        benchmark: exp.benchmark.name().into(),
        hit_rate: tracker.hit_rate(),
        ipc,
        baseline_ipc,
        ipc_degradation: ipc_degradation(baseline_ipc, ipc),
        overhead_fraction: if wear.demand_writes == 0 {
            0.0
        } else {
            wear.overhead_writes as f64 / wear.demand_writes as f64
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp(scheme: SchemeSpec, bench: SpecBenchmark) -> PerfExperiment {
        PerfExperiment {
            id: format!("perf-test/{}/{}", scheme.name(), bench.name()),
            scheme,
            benchmark: bench,
            data_lines: 1 << 14,
            device: DeviceSpec { endurance: u32::MAX, ..Default::default() },
            requests: 60_000,
            warmup_requests: 0,
        }
    }

    #[test]
    fn baseline_has_zero_degradation() {
        let r = run_perf(&exp(SchemeSpec::Baseline, SpecBenchmark::Gcc)).unwrap();
        assert!(r.ipc_degradation.abs() < 1e-9, "{}", r.ipc_degradation);
        assert_eq!(r.hit_rate, 1.0);
    }

    #[test]
    fn tiered_scheme_reports_hit_rate_below_one() {
        let r = run_perf(&exp(
            SchemeSpec::Nwl { granularity: 4, cmt_entries: 64, swap_period: 1 << 20 },
            SpecBenchmark::Mcf,
        ))
        .unwrap();
        assert!(r.hit_rate > 0.0 && r.hit_rate < 1.0, "hit rate {}", r.hit_rate);
        assert!(r.ipc_degradation > 0.0);
    }

    #[test]
    fn aggressive_swapping_costs_ipc() {
        let lazy =
            run_perf(&exp(SchemeSpec::PcmS { region_lines: 4, period: 256 }, SpecBenchmark::Lbm))
                .unwrap();
        let eager =
            run_perf(&exp(SchemeSpec::PcmS { region_lines: 4, period: 8 }, SpecBenchmark::Lbm))
                .unwrap();
        assert!(
            eager.ipc_degradation > lazy.ipc_degradation,
            "eager {} vs lazy {}",
            eager.ipc_degradation,
            lazy.ipc_degradation
        );
        // Steady-state overhead is 2/period = 0.25; the short run includes
        // the ramp-up before regions first reach their thresholds.
        assert!(eager.overhead_fraction > 0.08, "{}", eager.overhead_fraction);
    }

    #[test]
    fn results_reproducible() {
        let e = exp(SchemeSpec::sawl_default(256), SpecBenchmark::Bzip2);
        assert_eq!(run_perf(&e).unwrap(), run_perf(&e).unwrap());
    }
}
