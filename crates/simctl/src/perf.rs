//! Performance experiments (§4.4, Figs. 12–14, 17).
//!
//! Replay a workload through a scheme for a fixed number of requests,
//! feeding every request into the closed-loop multi-channel controller
//! model as a [`sawl_timing::MemEvent`] (assembled by
//! [`EventBuilder`](crate::timing::EventBuilder)):
//!
//! * the translation outcome comes from the scheme's [`TranslationKind`] —
//!   none for the baseline, a flat CMT hit for on-chip schemes, the
//!   observed hit/miss for tiered schemes;
//! * wear-leveling writes are charged to banks by diffing the device's
//!   overhead-write counter around each request, attributed to exchange
//!   vs. merge/split via [`WearLeveler::op_counts`].
//!
//! The IPC baseline (no wear leveling, no translation) replays the *same*
//! seeded workload, so the degradation isolates the scheme's cost exactly.
//! Beyond the Fig. 17 mean, each pass's simulator keeps the latency
//! histogram and stall attribution, summarized as a
//! [`LatencyReport`](crate::timing::LatencyReport) per result.

use serde::{Deserialize, Serialize};

use sawl_algos::WearLeveler;
use sawl_timing::{ipc_degradation, CpuModel, IpcEstimate, IpcModel, MemEvent};
use sawl_trace::SpecBenchmark;

use crate::driver::{pump, pump_observed, DriverError};
use crate::seed::stable_seed;
use crate::spec::{DeviceSpec, SchemeSpec, WorkloadSpec};
use crate::timing::{EventBuilder, LatencyReport};

/// A performance run specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfExperiment {
    /// Id used for seeding and reports.
    pub id: String,
    /// Scheme under test.
    pub scheme: SchemeSpec,
    /// Benchmark driving both the address stream and the CPU model.
    pub benchmark: SpecBenchmark,
    /// Logical data lines.
    pub data_lines: u64,
    /// Device parameters (endurance is irrelevant here; keep it high).
    pub device: DeviceSpec,
    /// Requests to replay while measuring.
    pub requests: u64,
    /// Requests to replay *before* measurement starts (not fed to the
    /// timing models). Adaptive schemes pay their granularity ramp here,
    /// the way gem5 evaluations fast-forward past warmup; the paper's
    /// 1e8+-request runs amortize the ramp naturally, our shorter ones
    /// must exclude it.
    #[serde(default)]
    pub warmup_requests: u64,
}

/// Outcome of a performance run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfResult {
    /// Experiment id.
    pub id: String,
    /// Scheme name.
    pub scheme: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Whole-run CMT hit rate (1.0 for non-tiered schemes).
    pub hit_rate: f64,
    /// IPC of the scheme.
    pub ipc: IpcEstimate,
    /// IPC of the no-wear-leveling baseline on the same stream.
    pub baseline_ipc: IpcEstimate,
    /// `1 - ipc/baseline` (Fig. 17's y-axis).
    pub ipc_degradation: f64,
    /// Wear-leveling writes per demand write.
    pub overhead_fraction: f64,
    /// Latency distribution and stall attribution of the scheme pass.
    #[serde(default)]
    pub latency: Option<LatencyReport>,
    /// Latency distribution of the baseline pass on the same stream.
    #[serde(default)]
    pub baseline_latency: Option<LatencyReport>,
}

/// Run one performance experiment.
pub fn run_perf(exp: &PerfExperiment) -> Result<PerfResult, DriverError> {
    let seed = stable_seed(&exp.id);
    let cpu = CpuModel::for_benchmark(exp.benchmark);

    // Scheme pass, monomorphized over the concrete enum instance.
    let phys = exp.scheme.physical_lines(exp.data_lines);
    let mut wl = exp.scheme.try_instantiate(exp.data_lines, seed)?;
    let mut dev = exp.device.try_build(phys, seed)?;
    let workload = WorkloadSpec::Spec(exp.benchmark);
    let mut stream = workload.build(wl.logical_lines(), seed);
    let mut ipc_model = IpcModel::new(cpu);
    let banks = ipc_model.sim().config().banks;
    let mut builder = EventBuilder::new(exp.scheme.translation_kind(), banks);
    // Baseline pass shares the identical request sequence: regenerate the
    // stream with the same seed and replay it with zero-cost translation.
    let mut base_stream = workload.build(exp.data_lines, seed);
    let mut base_model = IpcModel::new(cpu);

    pump(&mut wl, &mut dev, &mut *stream, exp.warmup_requests);
    // Keep the baseline stream aligned with the scheme's through warmup.
    for _ in 0..exp.warmup_requests {
        let _ = base_stream.next_req();
    }

    // The builder diffs the device's read/overhead counters and the
    // scheme's op counts around each request, so seed it with the
    // post-warmup values.
    builder.prime(&wl, &dev);
    pump_observed(&mut wl, &mut dev, &mut *stream, exp.requests, |req, pa, w, d| {
        ipc_model.push(builder.build(req.write, pa, w, d));

        // The baseline performs no translation and no wear leveling: its
        // events carry the untranslated address and nothing else.
        let base_req = base_stream.next_req();
        let bank = (base_req.la % u64::from(banks)) as u32;
        base_model.push(if base_req.write { MemEvent::write(bank) } else { MemEvent::read(bank) });
    });

    let ipc = ipc_model.estimate();
    let baseline_ipc = base_model.estimate();
    let wear = dev.wear();
    Ok(PerfResult {
        id: exp.id.clone(),
        scheme: exp.scheme.name(),
        benchmark: exp.benchmark.name().into(),
        hit_rate: builder.hit_rate(),
        ipc,
        baseline_ipc,
        ipc_degradation: ipc_degradation(baseline_ipc, ipc),
        overhead_fraction: if wear.demand_writes == 0 {
            0.0
        } else {
            wear.overhead_writes as f64 / wear.demand_writes as f64
        },
        latency: Some(LatencyReport::from_sim(ipc_model.sim())),
        baseline_latency: Some(LatencyReport::from_sim(base_model.sim())),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp(scheme: SchemeSpec, bench: SpecBenchmark) -> PerfExperiment {
        PerfExperiment {
            id: format!("perf-test/{}/{}", scheme.name(), bench.name()),
            scheme,
            benchmark: bench,
            data_lines: 1 << 14,
            device: DeviceSpec { endurance: u32::MAX, ..Default::default() },
            requests: 60_000,
            warmup_requests: 0,
        }
    }

    #[test]
    fn baseline_has_zero_degradation() {
        let r = run_perf(&exp(SchemeSpec::Baseline, SpecBenchmark::Gcc)).unwrap();
        assert!(r.ipc_degradation.abs() < 1e-9, "{}", r.ipc_degradation);
        assert_eq!(r.hit_rate, 1.0);
    }

    #[test]
    fn tiered_scheme_reports_hit_rate_below_one() {
        let r = run_perf(&exp(
            SchemeSpec::Nwl { granularity: 4, cmt_entries: 64, swap_period: 1 << 20 },
            SpecBenchmark::Mcf,
        ))
        .unwrap();
        assert!(r.hit_rate > 0.0 && r.hit_rate < 1.0, "hit rate {}", r.hit_rate);
        assert!(r.ipc_degradation > 0.0);
    }

    #[test]
    fn aggressive_swapping_costs_ipc() {
        let lazy =
            run_perf(&exp(SchemeSpec::PcmS { region_lines: 4, period: 256 }, SpecBenchmark::Lbm))
                .unwrap();
        let eager =
            run_perf(&exp(SchemeSpec::PcmS { region_lines: 4, period: 8 }, SpecBenchmark::Lbm))
                .unwrap();
        assert!(
            eager.ipc_degradation > lazy.ipc_degradation,
            "eager {} vs lazy {}",
            eager.ipc_degradation,
            lazy.ipc_degradation
        );
        // Steady-state overhead is 2/period = 0.25; the short run includes
        // the ramp-up before regions first reach their thresholds.
        assert!(eager.overhead_fraction > 0.08, "{}", eager.overhead_fraction);
    }

    #[test]
    fn results_reproducible() {
        let e = exp(SchemeSpec::sawl_default(256), SpecBenchmark::Bzip2);
        assert_eq!(run_perf(&e).unwrap(), run_perf(&e).unwrap());
    }
}
