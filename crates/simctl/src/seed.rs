//! Deterministic seed derivation.
//!
//! Every run's RNG seed is a stable hash of its configuration string, so
//! re-running any experiment — on any machine, in any sweep order —
//! reproduces the same numbers. (Rust's `DefaultHasher` is not stable
//! across releases, hence the hand-rolled FNV-1a.)

/// 64-bit FNV-1a over the input string.
pub fn stable_seed(s: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Combine a base seed with a label (sub-stream derivation).
pub fn derive(base: u64, label: &str) -> u64 {
    stable_seed(&format!("{base:x}:{label}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vector() {
        // FNV-1a("") = offset basis.
        assert_eq!(stable_seed(""), 0xcbf2_9ce4_8422_2325);
        // Published vector: FNV-1a("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(stable_seed("a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn distinct_inputs_distinct_seeds() {
        assert_ne!(stable_seed("fig3/tlsr/8"), stable_seed("fig3/tlsr/16"));
        assert_ne!(derive(1, "x"), derive(2, "x"));
        assert_ne!(derive(1, "x"), derive(1, "y"));
    }

    #[test]
    fn deterministic() {
        assert_eq!(stable_seed("abc"), stable_seed("abc"));
    }
}
