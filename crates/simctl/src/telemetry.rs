//! Driver-side telemetry glue: owns the [`Recorder`] during a pump and
//! gathers [`DeviceSample`]/[`SchemeSample`] pairs at each stride boundary.
//!
//! ## Sampling clock (request-index granularity)
//!
//! The recorder's stride counts **served requests**: demand writes for
//! lifetime pumps (reads are not part of lifetime workloads), every
//! request for trace pumps. The batched [`pump_writes`] clamps each
//! `write_run` at [`TelemetryRun::until_sample`], so a sample lands after
//! the request with 1-based index `k * stride` no matter how requests are
//! batched — the batched and scalar drivers observe identical sample
//! points (pinned by `telemetry_alignment.rs`). Because the engine's own
//! adaptation sampling runs *inside* the request, a boundary sample always
//! observes post-tick state, which is what makes the recorder's
//! SAWL channels line up with the engine's `History`.
//!
//! [`pump_writes`]: crate::driver::pump_writes

use std::time::Instant;

use sawl_algos::WearLeveler;
use sawl_nvm::NvmDevice;
use sawl_telemetry::{DeviceSample, Recorder, SchemeSample, Series, TelemetrySpec};

use crate::timing::TimingRun;

/// One run's live telemetry state: the recorder plus the optional stderr
/// progress ticker.
#[derive(Debug)]
pub struct TelemetryRun {
    rec: Recorder,
    id: String,
    progress: bool,
    started: Instant,
    last_progress: Instant,
}

/// Build a [`DeviceSample`] from the device's counters, fault counters and
/// (if enabled) incremental wear probe.
pub fn device_sample(dev: &NvmDevice) -> DeviceSample {
    let wear = dev.wear();
    let faults = dev.fault_counters();
    let snap = dev.wear_snapshot();
    DeviceSample {
        demand_writes: wear.demand_writes,
        overhead_writes: wear.overhead_writes,
        wear_mean: snap.map(|s| s.mean),
        wear_cov: snap.map(|s| s.cov),
        wear_max: snap.map(|s| u64::from(s.max)),
        spares_remaining: dev.spares_remaining(),
        power_losses: faults.power_losses,
        transient_faults: faults.transient_write_faults,
    }
}

impl TelemetryRun {
    /// Recorder for one run. `id` labels progress lines.
    pub fn new(id: &str, spec: &TelemetrySpec) -> Self {
        let now = Instant::now();
        Self {
            rec: Recorder::new(spec.clone()),
            id: id.to_string(),
            progress: spec.progress,
            started: now,
            last_progress: now,
        }
    }

    /// Enable the producer-side instrumentation this run needs: the
    /// device's incremental wear probe and the scheme's event ring.
    pub fn attach<W: WearLeveler + ?Sized>(&self, wl: &mut W, dev: &mut NvmDevice) {
        dev.enable_wear_probe();
        wl.telemetry_events_enable(self.rec.spec().effective_event_capacity());
    }

    /// Requests the driver may serve before the next sample boundary
    /// (always >= 1); batched pumps clamp their runs to it.
    pub fn until_sample(&self) -> u64 {
        self.rec.until_sample()
    }

    /// Advance the clock by `k` served requests and sample at a boundary.
    pub fn note_served<W: WearLeveler + ?Sized>(&mut self, k: u64, wl: &W, dev: &NvmDevice) {
        self.note_inner(k, wl, dev, None);
    }

    /// [`note_served`](Self::note_served) for timed runs: boundary samples
    /// additionally capture the timing model's stall counters and latency
    /// histogram. The timing snapshot is taken only at a boundary, so the
    /// per-request cost off-boundary is unchanged.
    pub fn note_served_timed<W: WearLeveler + ?Sized>(
        &mut self,
        k: u64,
        wl: &W,
        dev: &NvmDevice,
        timing: &TimingRun,
    ) {
        self.note_inner(k, wl, dev, Some(timing));
    }

    fn note_inner<W: WearLeveler + ?Sized>(
        &mut self,
        k: u64,
        wl: &W,
        dev: &NvmDevice,
        timing: Option<&TimingRun>,
    ) {
        if self.rec.note_served(k) {
            let mut scheme = SchemeSample::default();
            wl.telemetry_sample(&mut scheme);
            let sample = timing.map(|t| t.sample());
            self.rec.record(&device_sample(dev), &scheme, sample.as_ref());
            if self.progress {
                self.progress_tick(dev);
            }
        }
    }

    /// Checkpoint the recorder's sampling cursor and gathered samples.
    /// The progress ticker's wall-clock state is not written — it is
    /// cosmetic and restarts on resume.
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        self.rec.ckpt_save(w);
    }

    /// Restore the cursor captured by [`ckpt_save`](Self::ckpt_save) into
    /// a run freshly built from the same spec.
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        self.rec.ckpt_restore(r)
    }

    /// Finish the run: drain the scheme's event ring into the series.
    pub fn finish<W: WearLeveler + ?Sized>(self, wl: &mut W) -> Series {
        let (events, dropped) = wl.telemetry_events_take().unwrap_or_default();
        self.rec.into_series(events, dropped)
    }

    /// Stderr ticker, throttled to ~5 lines per second.
    fn progress_tick(&mut self, dev: &NvmDevice) {
        let now = Instant::now();
        if now.duration_since(self.last_progress).as_millis() < 200 {
            return;
        }
        self.last_progress = now;
        eprintln!(
            "[{}] {} requests served, {} demand writes, {:.1}s",
            self.id,
            self.rec.served(),
            dev.wear().demand_writes,
            self.started.elapsed().as_secs_f64()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sawl_algos::NoWl;
    use sawl_nvm::NvmConfig;
    use sawl_telemetry::Channel;

    fn device(lines: u64) -> NvmDevice {
        NvmDevice::new(
            NvmConfig::builder()
                .lines(lines)
                .banks(1)
                .endurance(1_000)
                .spare_shift(6)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn attach_enables_the_wear_probe_and_samples_it() {
        let mut wl = NoWl::new(64);
        let mut dev = device(64);
        let mut run = TelemetryRun::new("t", &TelemetrySpec::with_stride(4));
        run.attach(&mut wl, &mut dev);
        assert!(dev.wear_probe_enabled());
        for i in 0..8u64 {
            wl.write(i % 64, &mut dev);
            run.note_served(1, &wl, &dev);
        }
        let series = run.finish(&mut wl);
        assert_eq!(series.samples.len(), 2);
        assert_eq!(series.samples[0].requests, 4);
        assert_eq!(series.samples[1].requests, 8);
        assert!(series.samples[1].gauge(Channel::WearCov).is_some());
        assert_eq!(series.samples[1].counter(Channel::DemandWrites), Some(8));
        // NoWl has no CMT, no journal, no events.
        assert_eq!(series.samples[0].counter(Channel::CmtHits), None);
        assert!(series.events.is_empty());
    }

    #[test]
    fn device_sample_reads_fault_counters() {
        let mut dev = device(64);
        dev.enable_wear_probe();
        dev.write(0);
        let s = device_sample(&dev);
        assert_eq!(s.demand_writes, 1);
        assert_eq!(s.wear_max, Some(1));
        assert_eq!(s.power_losses, 0);
        assert_eq!(s.spares_remaining, dev.spares_remaining());
    }
}
