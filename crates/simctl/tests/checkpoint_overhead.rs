//! Pins the acceptance bound on checkpointing cost: at the default
//! interval, a checkpointed BPA run must stay within 5% of the plain
//! pump's wall time. Timing-sensitive, so the test is `#[ignore]`d in
//! the ordinary (debug) suite and run in release by the CI `serve-smoke`
//! job:
//!
//! ```text
//! cargo test --release -p sawl-simctl --test checkpoint_overhead -- --ignored
//! ```

use std::time::{Duration, Instant};

use sawl_simctl::{
    run_lifetime, DeviceSpec, LifetimeExperiment, ResumableRun, SchemeSpec, WorkloadSpec,
    DEFAULT_CHECKPOINT_INTERVAL,
};

fn probe() -> LifetimeExperiment {
    LifetimeExperiment {
        id: "ci/checkpoint-overhead".into(),
        scheme: SchemeSpec::PcmS { region_lines: 16, period: 32 },
        // Bulk-served BPA bursts are the pump's fastest path (~8 GW/s in
        // release), which makes this the *worst case* for checkpointing:
        // any workload that does per-request work gives each save far
        // more compute to amortize against.
        workload: WorkloadSpec::Bpa { writes_per_target: 512 },
        data_lines: 1 << 12,
        device: DeviceSpec { endurance: 1 << 22, ..Default::default() },
        // Two periodic checkpoints at the default interval, plus the
        // final one — the steady-state cost, not just the epilogue.
        max_demand_writes: 5 << 27,
        fault: None,
        telemetry: None,
        timing: None,
    }
}

fn best_of<F: FnMut()>(rounds: usize, mut f: F) -> Duration {
    (0..rounds)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .unwrap()
}

#[test]
#[ignore = "wall-clock comparison; run in release via the CI serve-smoke job"]
fn checkpointing_at_the_default_interval_costs_under_five_percent() {
    let exp = probe();
    let dir = std::env::temp_dir().join(format!("sawl-ckpt-overhead-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("probe.ckpt");

    // Warm-up, and correctness anchor: the checkpointed run must produce
    // the plain run's bytes before its timing means anything.
    let reference = run_lifetime(&exp).unwrap();
    assert!(
        reference.demand_writes >= 2 * DEFAULT_CHECKPOINT_INTERVAL,
        "probe must span at least two default intervals to measure steady-state \
         cost (got {} demand writes)",
        reference.demand_writes
    );
    let mut warm = ResumableRun::new(&exp).unwrap();
    warm.run_with_checkpoints(&path, DEFAULT_CHECKPOINT_INTERVAL, || false).unwrap();
    assert_eq!(warm.into_result(), reference);

    let plain = best_of(5, || {
        run_lifetime(&exp).unwrap();
    });
    let checkpointed = best_of(5, || {
        let mut run = ResumableRun::new(&exp).unwrap();
        run.run_with_checkpoints(&path, DEFAULT_CHECKPOINT_INTERVAL, || false).unwrap();
    });

    let ratio = checkpointed.as_secs_f64() / plain.as_secs_f64();
    eprintln!(
        "checkpoint overhead: plain {:?}, checkpointed {:?}, ratio {ratio:.4}",
        plain, checkpointed
    );
    assert!(
        ratio < 1.05,
        "checkpointing cost {:.2}% exceeds the 5% budget (plain {plain:?}, \
         checkpointed {checkpointed:?})",
        (ratio - 1.0) * 100.0
    );
    std::fs::remove_dir_all(&dir).ok();
}
