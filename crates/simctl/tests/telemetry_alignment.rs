//! Batched-vs-scalar telemetry sample alignment.
//!
//! Telemetry sampling is defined at **request-index granularity**: a
//! sample lands after the request with 1-based index `k * stride`,
//! regardless of how the driver batches requests into blocks or collapses
//! them into `write_run` calls. These tests pin that contract by running
//! the batched lifetime pump against a scalar one-request-at-a-time
//! reference and requiring the two `Series` to be **identical** — every
//! sample point, every counter, every gauge bit — across schemes,
//! workloads, and strides that deliberately straddle block boundaries.

use sawl_algos::WearLeveler;
use sawl_simctl::{
    run_lifetime, stable_seed, DeviceSpec, LifetimeExperiment, SchemeSpec, Series, TelemetryRun,
    TelemetrySpec, WorkloadSpec,
};
use sawl_trace::AddressStream;

/// Scalar reference: one request at a time, `note_served(1)` after every
/// demand write — the definitionally correct sampling clock.
fn scalar_series(exp: &LifetimeExperiment) -> Series {
    let seed = stable_seed(&exp.id);
    let phys = exp.scheme.physical_lines(exp.data_lines);
    let mut wl = exp.scheme.instantiate(exp.data_lines, seed);
    let mut dev = exp.device.build(phys, seed);
    let spec = exp.telemetry.clone().expect("alignment reference needs a telemetry spec");
    let mut run = TelemetryRun::new(&exp.id, &spec);
    run.attach(&mut wl, &mut dev);
    let mut stream = exp.workload.build(wl.logical_lines(), seed);
    let cap = if exp.max_demand_writes == 0 {
        4 * dev.config().ideal_lifetime_writes()
    } else {
        exp.max_demand_writes
    };

    while !dev.is_dead() && dev.wear().demand_writes < cap {
        let req = stream.next_req();
        if !req.write {
            continue;
        }
        wl.write(req.la, &mut dev);
        run.note_served(1, &wl, &dev);
    }
    run.finish(&mut wl)
}

fn exp(scheme: SchemeSpec, workload: WorkloadSpec, stride: u64) -> LifetimeExperiment {
    LifetimeExperiment {
        id: format!("align/{}/{}/{stride}", scheme.name(), workload.name()),
        scheme,
        workload,
        data_lines: 1 << 9,
        device: DeviceSpec { endurance: 200, ..Default::default() },
        max_demand_writes: 0,
        fault: None,
        telemetry: Some(TelemetrySpec::with_stride(stride)),
        timing: None,
    }
}

#[test]
fn batched_samples_align_with_the_scalar_clock() {
    let schemes = [
        SchemeSpec::PcmS { region_lines: 16, period: 32 },
        SchemeSpec::Nwl { granularity: 4, cmt_entries: 64, swap_period: 1 << 10 },
        SchemeSpec::sawl_default(64),
    ];
    for scheme in schemes {
        for workload in [
            WorkloadSpec::Uniform { write_ratio: 0.5 },
            WorkloadSpec::Bpa { writes_per_target: 512 },
        ] {
            // 777 never divides the 4096-request block, 4096 always
            // coincides with it, 1 samples on every single write.
            for stride in [777u64, 4_096, 1] {
                let e = exp(scheme.clone(), workload.clone(), stride);
                let batched = run_lifetime(&e).unwrap().telemetry.expect("series requested");
                let scalar = scalar_series(&e);
                assert_eq!(batched, scalar, "sample misalignment in {}", e.id);
                assert!(
                    batched
                        .samples
                        .iter()
                        .enumerate()
                        .all(|(i, p)| p.requests == (i as u64 + 1) * stride),
                    "boundary drift in {}",
                    e.id
                );
            }
        }
    }
}

#[test]
fn run_collapsing_workload_samples_mid_run() {
    // RAA collapses whole blocks into single `write_run` calls; the
    // stride clamp must still split those runs at every boundary.
    let e = exp(SchemeSpec::PcmS { region_lines: 16, period: 32 }, WorkloadSpec::Raa, 100);
    let batched = run_lifetime(&e).unwrap().telemetry.expect("series requested");
    assert_eq!(batched, scalar_series(&e), "RAA run batching broke sample alignment");
    assert!(batched.samples.len() > 10, "expected many samples, got {}", batched.samples.len());
}
