//! Fault-injection and crash-recovery integration: power losses injected
//! into full lifetime runs and directly into SAWL's journaled operations
//! (merge / split / exchange), followed by `recover()` and a full
//! invariant check — the acceptance path for the fault layer.

use sawl_core::{Sawl, SawlConfig};
use sawl_nvm::{FaultPlan, NvmConfig, NvmDevice};
use sawl_simctl::{
    run_lifetime, DeviceSpec, FaultCounters, LifetimeExperiment, SchemeSpec, WorkloadSpec,
};

fn sawl_small() -> Sawl {
    Sawl::new(SawlConfig {
        data_lines: 1 << 10,
        initial_granularity: 4,
        max_granularity: 64,
        cmt_entries: 64,
        swap_period: 16,
        seed: 7,
        ..SawlConfig::default()
    })
}

fn device_for(sawl: &Sawl) -> NvmDevice {
    NvmDevice::new(
        NvmConfig::builder()
            .lines(sawl.required_physical_lines())
            .banks(1)
            .endurance(u32::MAX)
            .build()
            .unwrap(),
    )
}

/// Schedule a power loss `writes_ahead` total writes from now.
fn crash_in(dev: &mut NvmDevice, writes_ahead: u64) {
    dev.install_fault_plan(&FaultPlan {
        power_loss_at_writes: vec![dev.wear().total_writes + writes_ahead],
        ..FaultPlan::default()
    })
    .unwrap();
}

#[test]
fn sawl_lifetime_survives_dense_power_losses_and_faults() {
    let exp = LifetimeExperiment {
        id: "fault/lifetime-sawl".into(),
        scheme: SchemeSpec::sawl_default(512),
        workload: WorkloadSpec::Bpa { writes_per_target: 512 },
        data_lines: 1 << 10,
        device: DeviceSpec { endurance: 1_000_000, ..Default::default() },
        max_demand_writes: 80_000,
        fault: Some(FaultPlan {
            stuck_lines: vec![5, 100],
            transient_rate: 0.0005,
            power_loss_at_writes: vec![5_000, 20_000, 45_000, 70_000, 90_000],
            seed: 13,
        }),
        telemetry: None,
        timing: None,
    };
    let r = run_lifetime(&exp).unwrap();
    assert_eq!(r.demand_writes, 80_000, "run must complete despite the crashes");
    assert_eq!(r.stuck_lines_remapped, 2);
    assert!(r.transient_faults > 0, "transient rate 5e-4 over >80k writes must fire");
    assert!(r.power_losses >= 4, "expected dense crashes, saw {}", r.power_losses);
    assert_eq!(r.recoveries, r.power_losses, "every crash must be recovered");
    assert!(r.spares_remaining < 1 << 4, "stuck lines consume spares");
    // Reproducible: faults are part of the deterministic configuration.
    assert_eq!(r, run_lifetime(&exp).unwrap());
}

#[test]
fn power_loss_mid_merge_replays_and_passes_invariants() {
    let mut sawl = sawl_small();
    let mut dev = device_for(&sawl);

    // A merge journals its updates, then pays the translation-line write
    // and the 2Q-line data recharge. Crash a few writes in: the journaled
    // update has landed, so recovery must roll the merge forward.
    crash_in(&mut dev, 3);
    let merged = sawl.merge(0, &mut dev);
    assert!(!merged, "the crash interrupts the merge");
    assert!(dev.power_lost());
    assert!(sawl.journal().has_pending());

    let rec = sawl.recover(&mut dev);
    assert!(rec.complete);
    assert!(rec.replayed, "a landed update must be rolled forward");
    assert!(!rec.rolled_back);
    assert!(!dev.power_lost());
    assert!(!sawl.journal().has_pending());
    assert_eq!(sawl.journal().replays(), 1);
    sawl.check_invariants();

    // The merged region exists: its entry covers 8 lines.
    use sawl_algos::WearLeveler;
    let before: Vec<u64> = (0..sawl.logical_lines()).map(|la| sawl.translate(la)).collect();

    // Recovery is idempotent: a second recover() on the healthy state is
    // clean and moves nothing.
    let rec2 = sawl.recover(&mut dev);
    assert!(rec2.complete && !rec2.replayed && !rec2.rolled_back);
    sawl.check_invariants();
    let after: Vec<u64> = (0..sawl.logical_lines()).map(|la| sawl.translate(la)).collect();
    assert_eq!(before, after);
}

#[test]
fn power_loss_exactly_on_the_journal_land_boundary() {
    use sawl_algos::WearLeveler;

    // Count the merge's device writes on a fault-free twin: W writes
    // from journal record to final data recharge, then the commit.
    let mut reference = sawl_small();
    let mut ref_dev = device_for(&reference);
    let before = ref_dev.wear().total_writes;
    assert!(reference.merge(0, &mut ref_dev));
    let w = ref_dev.wear().total_writes - before;
    assert!(w > 2, "a merge must pay translation + recharge writes, saw {w}");

    // Crash on the merge's final write (1-based index W): every earlier
    // journaled update has landed, so recovery rolls the record forward.
    let mut sawl = sawl_small();
    let mut dev = device_for(&sawl);
    crash_in(&mut dev, w - 1);
    assert!(!sawl.merge(0, &mut dev), "the crash interrupts the last write");
    assert!(sawl.journal().has_pending());
    let rec = sawl.recover(&mut dev);
    assert!(rec.complete && rec.replayed && !rec.rolled_back, "{rec:?}");
    sawl.check_invariants();
    let replayed: Vec<u64> = (0..sawl.logical_lines()).map(|la| sawl.translate(la)).collect();
    let committed: Vec<u64> =
        (0..reference.logical_lines()).map(|la| reference.translate(la)).collect();
    assert_eq!(replayed, committed, "replay must converge on the committed merge");

    // One write later the merge lands in full and commits before the
    // lights go out: recovery finds a clean journal and moves nothing.
    let mut sawl = sawl_small();
    let mut dev = device_for(&sawl);
    crash_in(&mut dev, w);
    assert!(sawl.merge(0, &mut dev), "the power loss lands after the commit");
    assert!(!sawl.journal().has_pending());
    dev.write(0); // a raw device write fires the scheduled loss
    assert!(dev.power_lost());
    let rec = sawl.recover(&mut dev);
    assert!(rec.complete && !rec.replayed && !rec.rolled_back, "{rec:?}");
    sawl.check_invariants();
}

#[test]
fn power_loss_before_split_lands_rolls_back() {
    let mut sawl = sawl_small();
    let mut dev = device_for(&sawl);

    // Merge once (fault-free) so there is a region to split back down.
    assert!(sawl.merge(0, &mut dev));
    use sawl_algos::WearLeveler;
    let before: Vec<u64> = (0..sawl.logical_lines()).map(|la| sawl.translate(la)).collect();

    // Crash on the split's *first* write: no journaled update lands, so
    // recovery must discard the record and keep the pre-split mapping.
    crash_in(&mut dev, 0);
    assert!(!sawl.split(0, &mut dev));
    assert!(sawl.journal().has_pending());

    let rec = sawl.recover(&mut dev);
    assert!(rec.complete);
    assert!(rec.rolled_back, "nothing landed: the split must be rolled back");
    assert!(!rec.replayed);
    assert_eq!(sawl.journal().rollbacks(), 1);
    sawl.check_invariants();
    let after: Vec<u64> = (0..sawl.logical_lines()).map(|la| sawl.translate(la)).collect();
    assert_eq!(before, after, "a rolled-back split must not move any line");
}

#[test]
fn power_loss_mid_exchange_replays_and_translation_stays_injective() {
    let mut sawl = sawl_small();
    let mut dev = device_for(&sawl);

    crash_in(&mut dev, 2);
    sawl.exchange(64, &mut dev);
    assert!(dev.power_lost());
    assert!(sawl.journal().has_pending());

    let rec = sawl.recover(&mut dev);
    assert!(rec.complete && rec.replayed);
    sawl.check_invariants();

    use sawl_algos::WearLeveler;
    let mut seen = std::collections::HashSet::new();
    for la in 0..sawl.logical_lines() {
        assert!(seen.insert(sawl.translate(la)), "translation lost injectivity at {la}");
    }
}

#[test]
fn chained_power_losses_during_recovery_eventually_complete() {
    let mut sawl = sawl_small();
    let mut dev = device_for(&sawl);

    // First crash interrupts the merge; the next two events are spaced so
    // tightly that they also interrupt the recovery's own replay writes.
    let t = dev.wear().total_writes;
    dev.install_fault_plan(&FaultPlan {
        power_loss_at_writes: vec![t + 3, t + 4, t + 5],
        ..FaultPlan::default()
    })
    .unwrap();
    assert!(!sawl.merge(0, &mut dev));

    let mut rounds = 0;
    loop {
        let rec = sawl.recover(&mut dev);
        rounds += 1;
        if rec.complete {
            break;
        }
        assert!(rounds < 16, "recovery failed to converge");
    }
    assert!(rounds >= 2, "the chained events must interrupt at least one replay");
    assert!(!sawl.journal().has_pending());
    sawl.check_invariants();
    let f: FaultCounters = dev.fault_counters();
    assert_eq!(f.power_losses, 3);
    assert_eq!(f.power_restores, 3);
}
