//! Batched-vs-scalar latency histogram alignment.
//!
//! The timing-enabled lifetime pump drains its workload at *run*
//! granularity but serves every write scalar, feeding the closed-loop
//! controller one event per request. These tests pin two contracts:
//!
//! * the telemetry series a timed run emits — including every histogram
//!   sample taken on the served-request clock — is **bit-identical** to a
//!   scalar `next_req`-per-request reference loop, for every scheme
//!   variant in the suite;
//! * attaching the timing model does not perturb the run itself: the
//!   timed [`LifetimeResult`] minus its latency report equals the plain
//!   batched run's result.

use sawl_algos::WearLeveler;
use sawl_simctl::{
    run_lifetime, stable_seed, DeviceSpec, LatencyReport, LifetimeExperiment, SchemeSpec, Series,
    TelemetryRun, TelemetrySpec, TimingRun, TimingSpec, WorkloadSpec,
};
use sawl_trace::AddressStream;

/// Every `SchemeSpec` variant, sized for a 2^9-line device.
fn all_schemes() -> Vec<SchemeSpec> {
    vec![
        SchemeSpec::Baseline,
        SchemeSpec::Ideal,
        SchemeSpec::SegmentSwap { segment_lines: 64, swap_period: 1 << 10 },
        SchemeSpec::Rbsg { regions: 4, region_lines: 128, period: 64 },
        SchemeSpec::SingleSr { period: 32 },
        SchemeSpec::Tlsr { region_lines: 64, inner_period: 8, outer_period: 32 },
        SchemeSpec::PcmS { region_lines: 16, period: 32 },
        SchemeSpec::Mwsr { region_lines: 16, period: 32 },
        SchemeSpec::Nwl { granularity: 4, cmt_entries: 64, swap_period: 1 << 10 },
        SchemeSpec::sawl_default(64),
    ]
}

fn exp(scheme: SchemeSpec, workload: WorkloadSpec, timed: bool) -> LifetimeExperiment {
    LifetimeExperiment {
        id: format!("latency-align/{}/{}", scheme.name(), workload.name()),
        scheme,
        workload,
        data_lines: 1 << 9,
        device: DeviceSpec { endurance: 200, ..Default::default() },
        max_demand_writes: 25_000,
        fault: None,
        // 777 never coincides with the 4096-request fill block, so samples
        // land mid-run.
        telemetry: Some(TelemetrySpec::with_stride(777)),
        timing: timed.then(TimingSpec::default),
    }
}

/// Scalar reference: one request at a time, one observed write at a time —
/// the definitionally correct served-request clock for histogram samples.
fn scalar_run(exp: &LifetimeExperiment) -> (Series, LatencyReport) {
    let seed = stable_seed(&exp.id);
    let phys = exp.scheme.physical_lines(exp.data_lines);
    let mut wl = exp.scheme.instantiate(exp.data_lines, seed);
    let mut dev = exp.device.build(phys, seed);
    let spec = exp.telemetry.clone().expect("alignment reference needs a telemetry spec");
    let mut timing =
        TimingRun::new(exp.timing.as_ref().expect("timing spec"), exp.scheme.translation_kind());
    let mut run = TelemetryRun::new(&exp.id, &spec);
    run.attach(&mut wl, &mut dev);
    let mut stream = exp.workload.build(wl.logical_lines(), seed);
    timing.prime(&wl, &dev);

    while !dev.is_dead() && dev.wear().demand_writes < exp.max_demand_writes {
        let req = stream.next_req();
        if !req.write {
            continue;
        }
        let pa = wl.write(req.la, &mut dev);
        timing.observe(true, pa, &wl, &dev);
        run.note_served_timed(1, &wl, &dev, &timing);
    }
    (run.finish(&mut wl), timing.finish())
}

#[test]
fn timed_histogram_samples_align_with_the_scalar_clock() {
    for scheme in all_schemes() {
        for workload in [
            WorkloadSpec::Uniform { write_ratio: 0.5 },
            WorkloadSpec::Bpa { writes_per_target: 512 },
        ] {
            let e = exp(scheme.clone(), workload, true);
            let r = run_lifetime(&e).unwrap();
            let batched = r.telemetry.expect("series requested");
            let (scalar, scalar_latency) = scalar_run(&e);
            assert_eq!(
                batched.to_json_lines(),
                scalar.to_json_lines(),
                "histogram sample misalignment in {}",
                e.id
            );
            assert_eq!(r.latency, Some(scalar_latency), "latency report drift in {}", e.id);
            assert!(
                batched.to_json_lines().contains("LatencyNs"),
                "timed series must carry histogram samples in {}",
                e.id
            );
        }
    }
}

#[test]
fn attaching_timing_does_not_perturb_the_run() {
    for scheme in all_schemes() {
        let timed =
            run_lifetime(&exp(scheme.clone(), WorkloadSpec::Bpa { writes_per_target: 512 }, true))
                .unwrap();
        let mut plain =
            run_lifetime(&exp(scheme, WorkloadSpec::Bpa { writes_per_target: 512 }, false))
                .unwrap();
        assert!(timed.latency.is_some() && plain.latency.is_none());
        // The plain run samples on the same clock but records no timing,
        // so only the per-sample stall counters and histograms differ.
        plain.latency = timed.latency.clone();
        let strip = |mut r: sawl_simctl::LifetimeResult| {
            r.telemetry = None;
            r
        };
        assert_eq!(strip(timed), strip(plain), "timing perturbed the run outcome");
    }
}
