//! The checkpoint/resume contract, pinned for every scheme:
//!
//! 1. **Kill-point equivalence** — a run checkpointed at a random batch
//!    boundary, torn down, and resumed from the file produces a
//!    [`LifetimeResult`] (telemetry series included) equal to an
//!    uninterrupted run, for all 10 `SchemeSpec` variants under BPA,
//!    Zipf, drifting YCSB, diurnal phases, tenant interleaving, GC
//!    feedback, and binary trace replay. The restored run also
//!    re-encodes to the exact bytes it was loaded from.
//! 2. **Container rejection** — truncated, bit-rotted, wrong-magic and
//!    wrong-version checkpoint files come back as typed
//!    [`DriverError::Checkpoint`] errors: never a panic, never a silent
//!    partial load.

use std::path::PathBuf;

use proptest::prelude::*;

use sawl_simctl::{
    run_lifetime, DeviceSpec, DriverError, LifetimeExperiment, ResumableRun, SchemeSpec,
    TelemetrySpec, WorkloadSpec,
};

/// Every `SchemeSpec` variant, sized for a 2^9-line device.
fn all_schemes() -> Vec<SchemeSpec> {
    vec![
        SchemeSpec::Baseline,
        SchemeSpec::Ideal,
        SchemeSpec::SegmentSwap { segment_lines: 64, swap_period: 1 << 10 },
        SchemeSpec::Rbsg { regions: 4, region_lines: 128, period: 64 },
        SchemeSpec::SingleSr { period: 32 },
        SchemeSpec::Tlsr { region_lines: 64, inner_period: 8, outer_period: 32 },
        SchemeSpec::PcmS { region_lines: 16, period: 32 },
        SchemeSpec::Mwsr { region_lines: 16, period: 32 },
        SchemeSpec::Nwl { granularity: 4, cmt_entries: 64, swap_period: 1 << 10 },
        SchemeSpec::sawl_default(64),
    ]
}

/// Workloads under test: the two classic generators plus every workload
/// zoo addition — drifting YCSB, diurnal phases, tenant interleaving,
/// closed-loop GC feedback, and binary trace replay.
const WORKLOAD_KINDS: u64 = 7;

/// A shared on-disk trace for the `TraceFile` workload, recorded once
/// per process. Oversized so no capped run reaches EOF.
fn shared_trace() -> String {
    use sawl_trace::{AddressStream as _, TraceWriter};
    static PATH: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    PATH.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("sawl-resume-equiv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shared.trc");
        let spec = WorkloadSpec::Ycsb {
            hot_lines: 64,
            exponent: 1.1,
            write_ratio: 0.8,
            rotate_every: 2_048,
            drift: 16,
        };
        let mut gen = spec.try_build(1 << 9, sawl_simctl::stable_seed("resume-trace")).unwrap();
        let mut w =
            TraceWriter::with_name(std::io::Cursor::new(Vec::new()), 1 << 9, gen.name()).unwrap();
        w.record(gen.as_mut(), 400_000).unwrap();
        let (out, _) = w.finish().unwrap();
        std::fs::write(&path, out.into_inner()).unwrap();
        path.to_str().unwrap().to_string()
    })
    .clone()
}

fn workload_for(pick: u64) -> WorkloadSpec {
    match pick {
        0 => WorkloadSpec::Bpa { writes_per_target: 512 },
        1 => WorkloadSpec::Zipf { exponent: 1.0, write_ratio: 0.7 },
        2 => WorkloadSpec::Ycsb {
            hot_lines: 64,
            exponent: 1.1,
            write_ratio: 0.7,
            rotate_every: 2_048,
            drift: 16,
        },
        3 => WorkloadSpec::Diurnal {
            phases: vec![
                sawl_simctl::DiurnalPhase {
                    workload: WorkloadSpec::Ycsb {
                        hot_lines: 48,
                        exponent: 1.2,
                        write_ratio: 0.9,
                        rotate_every: 1_024,
                        drift: 8,
                    },
                    requests: 3_000,
                },
                sawl_simctl::DiurnalPhase {
                    workload: WorkloadSpec::Uniform { write_ratio: 0.3 },
                    requests: 1_500,
                },
            ],
        },
        4 => WorkloadSpec::MultiTenant {
            slice: 64,
            tenants: vec![
                WorkloadSpec::Zipf { exponent: 1.2, write_ratio: 0.9 },
                WorkloadSpec::Uniform { write_ratio: 0.5 },
            ],
        },
        5 => WorkloadSpec::GcFeedback {
            exponent: 1.1,
            write_ratio: 0.8,
            base_threshold: 0.3,
            waf_gain: 0.05,
            cov_gain: 0.1,
            gc_burst: 256,
        },
        _ => WorkloadSpec::TraceFile { path: shared_trace() },
    }
}

fn experiment(scheme: SchemeSpec, workload: u64, tag: u64) -> LifetimeExperiment {
    LifetimeExperiment {
        id: format!("resume-equiv/{}/{workload}/{tag}", scheme.name()),
        scheme,
        workload: workload_for(workload),
        data_lines: 1 << 9,
        // Endurance above the BPA dwell (512) so no line dies inside one
        // attack burst: runs span many stream batches and the kill point
        // actually lands mid-run.
        device: DeviceSpec { endurance: 2_000, ..Default::default() },
        max_demand_writes: 60_000,
        fault: None,
        telemetry: Some(TelemetrySpec::with_stride(5_000)),
        timing: None,
    }
}

fn scratch_file(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sawl-resume-equiv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.ckpt"))
}

/// Drive `exp` to `kill_batches`, checkpoint to a file, drop the run
/// (the simulated SIGKILL), resume from the file, finish, and compare
/// against the uninterrupted reference.
fn kill_and_resume_matches(exp: &LifetimeExperiment, kill_batches: u64, tag: &str) {
    let reference = run_lifetime(exp).unwrap();

    let path = scratch_file(tag);
    let mut run = ResumableRun::new(exp).unwrap();
    for _ in 0..kill_batches {
        if !run.step().unwrap() {
            break; // the run may end before the kill point — still valid
        }
    }
    run.save(&path).unwrap();
    drop(run);

    let mut resumed = ResumableRun::resume(exp, &path).unwrap();
    // The restored run re-encodes to the same bytes: stream cursors
    // (RNG state, phase clocks, trace positions) serialize
    // deterministically through the checkpoint frame.
    let resave = scratch_file(&format!("{tag}-resave"));
    resumed.save(&resave).unwrap();
    assert_eq!(
        std::fs::read(&path).unwrap(),
        std::fs::read(&resave).unwrap(),
        "{}: resumed checkpoint re-encoded differently",
        exp.id
    );
    std::fs::remove_file(&resave).ok();
    resumed.run_to_end().unwrap();
    assert_eq!(
        resumed.into_result(),
        reference,
        "{}: killed at batch {kill_batches}, resume diverged",
        exp.id
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn every_scheme_resumes_identically_under_every_workload() {
    for (i, scheme) in all_schemes().into_iter().enumerate() {
        for workload in 0..WORKLOAD_KINDS {
            let exp = experiment(scheme.clone(), workload, 0);
            kill_and_resume_matches(&exp, 3, &format!("exhaustive-{i}-{workload}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    #[test]
    fn random_kill_points_resume_identically(
        scheme_pick in 0usize..10,
        workload in 0u64..WORKLOAD_KINDS,
        kill_batches in 1u64..24,
        tag in 0u64..1 << 12,
    ) {
        let scheme = all_schemes().swap_remove(scheme_pick);
        let exp = experiment(scheme, workload, tag);
        kill_and_resume_matches(
            &exp,
            kill_batches,
            &format!("prop-{scheme_pick}-{workload}-{kill_batches}-{tag}"),
        );
    }
}

// ---- container rejection -----------------------------------------------

/// A valid on-disk checkpoint for corruption experiments.
fn valid_checkpoint(exp: &LifetimeExperiment, tag: &str) -> (PathBuf, Vec<u8>) {
    let path = scratch_file(tag);
    let mut run = ResumableRun::new(exp).unwrap();
    for _ in 0..3 {
        if !run.step().unwrap() {
            break;
        }
    }
    run.save(&path).unwrap();
    (path.clone(), std::fs::read(&path).unwrap())
}

fn resume_err(exp: &LifetimeExperiment, path: &PathBuf) -> String {
    match ResumableRun::resume(exp, path) {
        Err(DriverError::Checkpoint(msg)) => msg,
        Err(other) => panic!("expected a Checkpoint error, got {other:?}"),
        Ok(_) => panic!("corrupted checkpoint loaded silently"),
    }
}

#[test]
fn corrupted_checkpoint_files_are_rejected_with_typed_errors() {
    let exp = experiment(SchemeSpec::sawl_default(64), 0, 99);
    let (path, bytes) = valid_checkpoint(&exp, "corrupt");

    // Sanity: the pristine file resumes.
    assert!(ResumableRun::resume(&exp, &path).is_ok());

    // Truncation at every structurally interesting length: inside the
    // magic, inside the header, inside the payload, inside the checksum.
    for cut in [0, 4, 11, 19, bytes.len() / 2, bytes.len() - 3] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let msg = resume_err(&exp, &path);
        assert!(!msg.is_empty(), "truncation at {cut} produced an empty error");
    }

    // Wrong magic: not a checkpoint file at all.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    std::fs::write(&path, &bad).unwrap();
    assert!(resume_err(&exp, &path).contains("magic"));

    // Wrong version: the u32 after the 8-byte magic.
    let mut bad = bytes.clone();
    bad[8] = 0xEE;
    std::fs::write(&path, &bad).unwrap();
    assert!(resume_err(&exp, &path).contains("version"));

    // Bit rot inside the payload: the checksum catches it.
    let mut bad = bytes.clone();
    let mid = bytes.len() / 2;
    bad[mid] ^= 0x01;
    std::fs::write(&path, &bad).unwrap();
    assert!(resume_err(&exp, &path).contains("checksum"));

    // Valid container, garbage payload: unframe succeeds, decode must
    // still fail typed. Reframe random bytes through the public API.
    let garbage = sawl_ckpt::frame(&[0xAB; 64]);
    std::fs::write(&path, &garbage).unwrap();
    let msg = resume_err(&exp, &path);
    assert!(!msg.is_empty());

    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpoints_refuse_to_cross_schemes() {
    // A checkpoint from one scheme must not load into another even when
    // everything else about the experiments matches.
    let sawl = experiment(SchemeSpec::sawl_default(64), 0, 7);
    let (path, _) = valid_checkpoint(&sawl, "cross-scheme");
    let mut pcms = experiment(SchemeSpec::PcmS { region_lines: 16, period: 32 }, 0, 7);
    pcms.id = sawl.id.clone(); // same id, different scheme: specs still differ
    let msg = resume_err(&pcms, &path);
    assert!(msg.contains("different experiment"), "{msg}");
    std::fs::remove_file(&path).ok();
}
