//! Property tests of the telemetry pipeline: sampled rates stay in
//! [0, 1], counters are monotone, and the device's incremental wear
//! probe agrees with a full O(lines) recompute at every sampled stride.

use proptest::prelude::*;

use sawl_algos::WearLeveler;
use sawl_simctl::{
    run_lifetime, stable_seed, Channel, DeviceSpec, LifetimeExperiment, SchemeSpec, TelemetryRun,
    TelemetrySpec, WorkloadSpec,
};
use sawl_trace::AddressStream;

fn workload_for(pick: u64) -> WorkloadSpec {
    if pick == 0 {
        WorkloadSpec::Bpa { writes_per_target: 512 }
    } else {
        WorkloadSpec::Uniform { write_ratio: 0.7 }
    }
}

fn experiment(tag: u64, stride: u64, workload: u64, scheme: SchemeSpec) -> LifetimeExperiment {
    LifetimeExperiment {
        id: format!("props/{}/{tag}/{stride}/{workload}", scheme.name()),
        scheme,
        workload: workload_for(workload),
        data_lines: 1 << 9,
        device: DeviceSpec { endurance: 200, ..Default::default() },
        max_demand_writes: 20_000,
        fault: None,
        telemetry: Some(TelemetrySpec::with_stride(stride)),
        timing: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    #[test]
    fn rates_stay_in_unit_interval_and_counters_are_monotone(
        tag in 0u64..1 << 16,
        stride in 1u64..2_000,
        workload in 0u64..2,
    ) {
        let e = experiment(tag, stride, workload, SchemeSpec::sawl_default(64));
        let series = run_lifetime(&e).unwrap().telemetry.expect("series requested");
        assert!(!series.samples.is_empty(), "20k writes at stride <2k must sample");

        for point in &series.samples {
            for ch in [Channel::CmtHitRate, Channel::CmtWindowedHitRate, Channel::CmtHotHalfShare]
            {
                let v = point.gauge(ch).expect("SAWL reports all hit-rate gauges");
                assert!((0.0..=1.0).contains(&v), "{ch:?} = {v} out of range at {}", point.requests);
            }
        }
        for pair in series.samples.windows(2) {
            for (ch, v) in &pair[1].counters {
                let prev = pair[0].counter(*ch).expect("channel sets never shrink");
                assert!(*v >= prev, "{ch:?} decreased: {prev} -> {v}");
            }
            assert!(pair[1].requests > pair[0].requests);
        }
    }

    #[test]
    fn incremental_wear_gauges_match_full_recompute_at_every_stride(
        tag in 0u64..1 << 16,
        stride in 1u64..1_500,
        workload in 0u64..2,
    ) {
        // Scalar drive: after every demand write, advance the recorder and
        // — at each boundary — recompute the wear distribution from the
        // raw per-line counts. The incremental probe must agree.
        let e = experiment(tag, stride, workload, SchemeSpec::PcmS { region_lines: 16, period: 32 });
        let seed = stable_seed(&e.id);
        let phys = e.scheme.physical_lines(e.data_lines);
        let mut wl = e.scheme.instantiate(e.data_lines, seed);
        let mut dev = e.device.build(phys, seed);
        let mut run = TelemetryRun::new(&e.id, e.telemetry.as_ref().unwrap());
        run.attach(&mut wl, &mut dev);
        let mut stream = e.workload.build(wl.logical_lines(), seed);

        let mut expected = Vec::new();
        let mut served = 0u64;
        while !dev.is_dead() && dev.wear().demand_writes < e.max_demand_writes {
            let req = stream.next_req();
            if !req.write {
                continue;
            }
            wl.write(req.la, &mut dev);
            run.note_served(1, &wl, &dev);
            served += 1;
            if served % stride == 0 {
                expected.push(dev.wear_stats());
            }
        }
        let series = run.finish(&mut wl);

        assert_eq!(series.samples.len(), expected.len());
        for (point, full) in series.samples.iter().zip(&expected) {
            let cov = point.gauge(Channel::WearCov).expect("probe attached");
            let mean = point.gauge(Channel::WearMean).expect("probe attached");
            let max = point.counter(Channel::WearMax).expect("probe attached");
            assert!((cov - full.cov).abs() < 1e-9, "cov {cov} vs full {}", full.cov);
            assert!((mean - full.mean).abs() < 1e-9, "mean {mean} vs full {}", full.mean);
            assert_eq!(max, u64::from(full.max));
        }
    }
}
