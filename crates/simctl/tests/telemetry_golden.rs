//! Golden-run telemetry regression suite.
//!
//! One SAWL and one PCM-S lifetime run under BPA, fixed seed, 2^12 lines:
//! the full JSON-lines serialization of each run's telemetry series is
//! committed under `tests/golden/` and must stay **byte-identical** run
//! over run. Any change to the sampling clock, the recorder's delta
//! formulas, the wear probe, the event ring, or the serialization shows
//! up here as a diff.
//!
//! When a change is intentional, regenerate the references with
//!
//! ```text
//! SAWL_BLESS=1 cargo test -p sawl-simctl --test telemetry_golden
//! ```
//!
//! and commit the updated `tests/golden/*.jsonl` files with the change
//! that caused them.

use std::fs;
use std::path::PathBuf;

use sawl_simctl::{
    run_lifetime, DeviceSpec, LifetimeExperiment, SchemeSpec, TelemetrySpec, WorkloadSpec,
};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Fixed-seed golden scenario: 2^12 lines under BPA, capped at 200k
/// demand writes, stride 10k → up to 20 samples.
fn experiment(id: &str, scheme: SchemeSpec) -> LifetimeExperiment {
    LifetimeExperiment {
        id: id.into(),
        scheme,
        workload: WorkloadSpec::Bpa { writes_per_target: 2_048 },
        data_lines: 1 << 12,
        device: DeviceSpec { endurance: 500, ..Default::default() },
        max_demand_writes: 200_000,
        fault: None,
        telemetry: Some(TelemetrySpec::with_stride(10_000)),
        timing: None,
    }
}

fn check_golden(name: &str, exp: &LifetimeExperiment) {
    let result = run_lifetime(exp).unwrap();
    let got = result.telemetry.expect("golden runs record telemetry").to_json_lines();
    let path = golden_path(name);
    if std::env::var("SAWL_BLESS").as_deref() == Ok("1") {
        fs::write(&path, &got).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {}: {e}\nregenerate with: SAWL_BLESS=1 cargo test -p \
             sawl-simctl --test telemetry_golden",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "telemetry series drifted from {name}; if the change is intentional, regenerate \
         with SAWL_BLESS=1 and commit the new golden"
    );
}

#[test]
fn sawl_bpa_series_matches_the_committed_golden() {
    check_golden("sawl_bpa.jsonl", &experiment("golden/sawl/bpa", SchemeSpec::sawl_default(1024)));
}

#[test]
fn pcms_bpa_series_matches_the_committed_golden() {
    check_golden(
        "pcms_bpa.jsonl",
        &experiment("golden/pcm-s/bpa", SchemeSpec::PcmS { region_lines: 16, period: 32 }),
    );
}

#[test]
fn sawl_ycsb_drift_series_matches_the_committed_golden() {
    // The workload zoo's service shape: Zipf over a sliding hot set.
    // Pins the sampling clock and recorder deltas under read/write mixed
    // traffic whose hot lines move between samples.
    let mut exp = experiment("golden/sawl/ycsb", SchemeSpec::sawl_default(1024));
    exp.workload = WorkloadSpec::Ycsb {
        hot_lines: 512,
        exponent: 1.1,
        write_ratio: 0.8,
        rotate_every: 8_192,
        drift: 64,
    };
    check_golden("sawl_ycsb.jsonl", &exp);
}

#[test]
fn sawl_gc_feedback_series_matches_the_committed_golden() {
    // The closed-loop FTL/GC stream: the workload reacts to the device's
    // WAF and wear variance through the observation hook, so this golden
    // additionally pins the wear probe's snapshot values at every block
    // boundary — any drift in the probe shows up as a different request
    // sequence and therefore a different series.
    let mut exp = experiment("golden/sawl/gc-feedback", SchemeSpec::sawl_default(1024));
    exp.workload = WorkloadSpec::GcFeedback {
        exponent: 1.1,
        write_ratio: 0.8,
        base_threshold: 0.3,
        waf_gain: 0.05,
        cov_gain: 0.1,
        gc_burst: 512,
    };
    check_golden("sawl_gc_feedback.jsonl", &exp);
}

#[test]
fn golden_runs_are_deterministic_across_consecutive_runs() {
    let exp = experiment("golden/sawl/bpa", SchemeSpec::sawl_default(1024));
    let a = run_lifetime(&exp).unwrap().telemetry.unwrap().to_json_lines();
    let b = run_lifetime(&exp).unwrap().telemetry.unwrap().to_json_lines();
    assert_eq!(a, b, "two consecutive runs of the same spec must serialize identically");
}
