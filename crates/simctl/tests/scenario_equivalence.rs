//! Scenario-level bit-equivalence of the batched block pump.
//!
//! The driver's block pump pre-generates requests in 4096-request batches
//! and checks death/cap after every write; these tests pin down that the
//! resulting `LifetimeResult` is **identical** — every field, including
//! the wear-distribution statistics — to a scalar `next_req`-driven
//! reference loop, for every scheme variant under both a mixed
//! read/write workload (Uniform) and the write-only attack the paper
//! centers on (BPA).

use sawl_algos::WearLeveler;
use sawl_simctl::{
    feed_observation, run_lifetime, stable_seed, DeviceSpec, DiurnalPhase, FaultPlan,
    LifetimeExperiment, LifetimeResult, SchemeSpec, WorkloadSpec, BLOCK,
};
use sawl_trace::AddressStream;

/// Scalar reference: `run_lifetime` with the pump replaced by the
/// one-request-at-a-time loop the driver used before block pumping.
///
/// Observation-driven workloads (GC feedback) see device wear through
/// the same hook the block pump uses, fed at the same request offsets —
/// immediately before request 0, [`BLOCK`], 2×[`BLOCK`], … — because the
/// pump observes once per block pull and the protocol freezes feedback
/// in between. That makes the scalar loop a true reference even for
/// closed-loop streams.
fn scalar_lifetime(exp: &LifetimeExperiment) -> LifetimeResult {
    let seed = stable_seed(&exp.id);
    let phys = exp.scheme.physical_lines(exp.data_lines);
    let mut wl = exp.scheme.instantiate(exp.data_lines, seed);
    let mut dev = exp.device.build(phys, seed);
    if let Some(plan) = &exp.fault {
        // The scalar reference only supports plans without power losses
        // (it has no recovery loop); the zero-fault guard below needs
        // exactly that.
        dev.install_fault_plan(plan).unwrap();
    }
    let mut stream = exp.workload.try_build(wl.logical_lines(), seed).unwrap();
    let workload = stream.name().to_string();
    let cap = if exp.max_demand_writes == 0 {
        4 * dev.config().ideal_lifetime_writes()
    } else {
        exp.max_demand_writes
    };

    let mut pulled: u64 = 0;
    while !dev.is_dead() && dev.wear().demand_writes < cap {
        if pulled % BLOCK as u64 == 0 {
            feed_observation(stream.as_mut(), &mut dev);
        }
        pulled += 1;
        let req = stream.next_req();
        if !req.write {
            continue;
        }
        wl.write(req.la, &mut dev);
    }

    let wear = *dev.wear();
    let stats = dev.wear_stats();
    let faults = dev.fault_counters();
    let ideal = exp.data_lines as f64 * f64::from(exp.device.endurance);
    LifetimeResult {
        id: exp.id.clone(),
        scheme: exp.scheme.name(),
        workload,
        normalized_lifetime: wear.demand_writes as f64 / ideal,
        demand_writes: wear.demand_writes,
        overhead_writes: wear.overhead_writes,
        overhead_fraction: if wear.demand_writes == 0 {
            0.0
        } else {
            wear.overhead_writes as f64 / wear.demand_writes as f64
        },
        device_died: dev.is_dead(),
        wear_cov: stats.cov,
        wear_gini: stats.gini,
        stuck_lines_remapped: faults.stuck_lines_remapped,
        transient_faults: faults.transient_write_faults,
        power_losses: faults.power_losses,
        recoveries: 0,
        journal_replays: 0,
        journal_rollbacks: 0,
        spares_remaining: dev.spares_remaining(),
        telemetry: None,
        latency: None,
    }
}

/// Every `SchemeSpec` variant, sized for a 2^9-line device.
fn all_schemes() -> Vec<SchemeSpec> {
    vec![
        SchemeSpec::Baseline,
        SchemeSpec::Ideal,
        SchemeSpec::SegmentSwap { segment_lines: 64, swap_period: 1 << 10 },
        SchemeSpec::Rbsg { regions: 4, region_lines: 128, period: 64 },
        SchemeSpec::SingleSr { period: 32 },
        SchemeSpec::Tlsr { region_lines: 64, inner_period: 8, outer_period: 32 },
        SchemeSpec::PcmS { region_lines: 16, period: 32 },
        SchemeSpec::Mwsr { region_lines: 16, period: 32 },
        SchemeSpec::Nwl { granularity: 4, cmt_entries: 64, swap_period: 1 << 10 },
        SchemeSpec::sawl_default(64),
    ]
}

#[test]
fn batched_lifetime_matches_scalar_reference_for_every_scheme() {
    for scheme in all_schemes() {
        for workload in [
            WorkloadSpec::Uniform { write_ratio: 0.5 },
            WorkloadSpec::Bpa { writes_per_target: 512 },
        ] {
            let exp = LifetimeExperiment {
                id: format!("equiv/{}/{}", scheme.name(), workload.name()),
                scheme: scheme.clone(),
                workload,
                data_lines: 1 << 9,
                device: DeviceSpec { endurance: 200, ..Default::default() },
                max_demand_writes: 0,
                fault: None,
                telemetry: None,
                timing: None,
            };
            let batched = run_lifetime(&exp).unwrap();
            let scalar = scalar_lifetime(&exp);
            assert_eq!(batched, scalar, "batched pump diverged from scalar for {}", exp.id);
        }
    }
}

#[test]
fn batched_lifetime_matches_scalar_reference_under_raa_and_variation() {
    // RAA is the extreme run-batching case — an endless write run to one
    // address, so every 4096-request block collapses into a single
    // `write_run` call — and Gaussian endurance variation makes the
    // device-side countdown math heterogeneous across lines. Together
    // they pin the batched path's behavior at line-failure and death
    // boundaries that land mid-run.
    for scheme in all_schemes() {
        let exp = LifetimeExperiment {
            id: format!("equiv-raa/{}", scheme.name()),
            scheme,
            workload: WorkloadSpec::Raa,
            data_lines: 1 << 9,
            device: DeviceSpec {
                endurance: 200,
                variation: sawl_nvm::EnduranceModel::Gaussian { cov: 0.2 },
                ..Default::default()
            },
            max_demand_writes: 0,
            fault: None,
            telemetry: None,
            timing: None,
        };
        let batched = run_lifetime(&exp).unwrap();
        let scalar = scalar_lifetime(&exp);
        assert_eq!(batched, scalar, "batched pump diverged from scalar for {}", exp.id);
    }
}

#[test]
fn tlsr_batched_write_run_matches_scalar_across_parameter_grid() {
    // TLSR's `write_run` collapses a whole inner/outer refresh window —
    // one translation plus one device run per window, including the
    // window's first write. These cases pin that restructuring against the
    // scalar loop where windows interact awkwardly with run boundaries:
    // dwells shorter than, equal to, and much longer than both periods,
    // inner/outer period ratios from 2 to 64, and a single-region
    // geometry where the outer level is degenerate.
    let grids = [
        (64u64, 2u64, 4u64), // tiny windows: a step almost every write
        (64, 8, 512),        // wide outer: inner steps dominate
        (128, 64, 128),      // window == common BPA dwell sizes
        (512, 16, 64),       // single region: outer mapping degenerate
    ];
    let dwells = [3u64, 16, 512, 5_000];
    for (region_lines, inner_period, outer_period) in grids {
        for dwell in dwells {
            let exp = LifetimeExperiment {
                id: format!("equiv-tlsr/{region_lines}-{inner_period}-{outer_period}/{dwell}"),
                scheme: SchemeSpec::Tlsr { region_lines, inner_period, outer_period },
                workload: WorkloadSpec::Bpa { writes_per_target: dwell },
                data_lines: 1 << 9,
                device: DeviceSpec { endurance: 200, ..Default::default() },
                max_demand_writes: 0,
                fault: None,
                telemetry: None,
                timing: None,
            };
            let batched = run_lifetime(&exp).unwrap();
            let scalar = scalar_lifetime(&exp);
            assert_eq!(batched, scalar, "batched TLSR diverged from scalar for {}", exp.id);
        }
    }
}

#[test]
fn single_sr_batched_write_run_matches_scalar_across_periods() {
    // The single-level refresh shares TLSR's window-collapsing
    // `write_run`; sweep the period against a fixed awkward dwell and
    // under Gaussian endurance variation so failures land mid-window.
    for period in [1u64, 2, 7, 32, 513] {
        let exp = LifetimeExperiment {
            id: format!("equiv-sr/{period}"),
            scheme: SchemeSpec::SingleSr { period },
            workload: WorkloadSpec::Bpa { writes_per_target: 96 },
            data_lines: 1 << 9,
            device: DeviceSpec {
                endurance: 200,
                variation: sawl_nvm::EnduranceModel::Gaussian { cov: 0.2 },
                ..Default::default()
            },
            max_demand_writes: 0,
            fault: None,
            telemetry: None,
            timing: None,
        };
        let batched = run_lifetime(&exp).unwrap();
        let scalar = scalar_lifetime(&exp);
        assert_eq!(batched, scalar, "batched SR diverged from scalar for {}", exp.id);
    }
}

#[test]
fn batched_lifetime_matches_scalar_reference_at_a_write_cap() {
    // A cap that lands mid-block: the pump must stop within one request
    // of it, exactly like the scalar loop.
    for cap in [1u64, 100, 4_096, 4_097, 10_000] {
        let exp = LifetimeExperiment {
            id: format!("equiv-cap/{cap}"),
            scheme: SchemeSpec::PcmS { region_lines: 16, period: 32 },
            workload: WorkloadSpec::Uniform { write_ratio: 0.5 },
            data_lines: 1 << 9,
            device: DeviceSpec { endurance: u32::MAX, ..Default::default() },
            max_demand_writes: cap,
            fault: None,
            telemetry: None,
            timing: None,
        };
        let batched = run_lifetime(&exp).unwrap();
        assert_eq!(batched.demand_writes, cap, "cap overshoot at {cap}");
        assert_eq!(batched, scalar_lifetime(&exp), "cap mismatch at {cap}");
    }
}

/// The service-shaped workloads of the workload zoo: drifting YCSB, a
/// diurnal phase schedule, tenant interleaving, and the closed-loop
/// FTL/GC feedback stream. Parameters are sized for the 2^9-line
/// equivalence device.
fn service_workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::Ycsb {
            hot_lines: 64,
            exponent: 1.1,
            write_ratio: 0.7,
            rotate_every: 2_048,
            drift: 16,
        },
        WorkloadSpec::Diurnal {
            phases: vec![
                DiurnalPhase {
                    workload: WorkloadSpec::Ycsb {
                        hot_lines: 48,
                        exponent: 1.2,
                        write_ratio: 0.9,
                        rotate_every: 1_024,
                        drift: 8,
                    },
                    requests: 3_000,
                },
                DiurnalPhase {
                    workload: WorkloadSpec::Uniform { write_ratio: 0.3 },
                    requests: 1_500,
                },
            ],
        },
        WorkloadSpec::MultiTenant {
            slice: 64,
            tenants: vec![
                WorkloadSpec::Zipf { exponent: 1.2, write_ratio: 0.9 },
                WorkloadSpec::Uniform { write_ratio: 0.5 },
            ],
        },
        WorkloadSpec::GcFeedback {
            exponent: 1.1,
            write_ratio: 0.8,
            base_threshold: 0.3,
            waf_gain: 0.05,
            cov_gain: 0.1,
            gc_burst: 256,
        },
    ]
}

#[test]
fn batched_lifetime_matches_scalar_for_service_workloads() {
    // The zoo's own equivalence sweep: every scheme variant × every
    // service-shaped workload, including the observation-driven GC
    // feedback stream (whose scalar reference feeds wear at the same
    // block offsets as the pump — see `scalar_lifetime`).
    for scheme in all_schemes() {
        for workload in service_workloads() {
            let exp = LifetimeExperiment {
                id: format!("equiv-svc/{}/{}", scheme.name(), workload.name()),
                scheme: scheme.clone(),
                workload,
                data_lines: 1 << 9,
                device: DeviceSpec { endurance: 200, ..Default::default() },
                max_demand_writes: 0,
                fault: None,
                telemetry: None,
                timing: None,
            };
            let batched = run_lifetime(&exp).unwrap();
            let scalar = scalar_lifetime(&exp);
            assert_eq!(batched, scalar, "batched pump diverged from scalar for {}", exp.id);
        }
    }
}

#[test]
fn trace_replay_is_byte_identical_to_the_live_generator_for_every_scheme() {
    use sawl_trace::TraceWriter;

    // One shared experiment id → one seed → one recorded trace serves
    // every scheme (the workload seed derives from the id, not the
    // scheme). Oversized so the capped runs never reach trace EOF.
    let live_workload = WorkloadSpec::Ycsb {
        hot_lines: 64,
        exponent: 1.1,
        write_ratio: 0.8,
        rotate_every: 2_048,
        drift: 16,
    };
    let id = "equiv-trace";
    let space = 1u64 << 9;
    let mut gen = live_workload.try_build(space, stable_seed(id)).unwrap();
    let mut w =
        TraceWriter::with_name(std::io::Cursor::new(Vec::new()), space, gen.name()).unwrap();
    w.record(gen.as_mut(), 200_000).unwrap();
    let (out, _) = w.finish().unwrap();
    let dir = std::env::temp_dir().join(format!("sawl-equiv-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ycsb.trc");
    std::fs::write(&path, out.into_inner()).unwrap();

    for scheme in all_schemes() {
        let live = LifetimeExperiment {
            id: id.into(),
            scheme: scheme.clone(),
            workload: live_workload.clone(),
            data_lines: space,
            device: DeviceSpec { endurance: 200, ..Default::default() },
            max_demand_writes: 30_000,
            fault: None,
            telemetry: Some(sawl_simctl::TelemetrySpec::with_stride(777)),
            timing: None,
        };
        let replay = LifetimeExperiment {
            workload: WorkloadSpec::TraceFile { path: path.to_str().unwrap().into() },
            ..live.clone()
        };
        let reference = run_lifetime(&live).unwrap();
        let replayed = run_lifetime(&replay).unwrap();
        // Every field — including the embedded telemetry series and the
        // reported workload name, which the replay reads back out of the
        // trace header.
        assert_eq!(replayed, reference, "trace replay diverged for {}", scheme.name());
        assert_eq!(
            serde_json::to_string(&replayed).unwrap(),
            serde_json::to_string(&reference).unwrap(),
            "serialized replay diverged for {}",
            scheme.name()
        );
        let mut no_tel = replay.clone();
        no_tel.telemetry = None;
        let batched = run_lifetime(&no_tel).unwrap();
        assert_eq!(
            scalar_lifetime(&no_tel),
            batched,
            "scalar trace replay diverged for {}",
            scheme.name()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn telemetry_is_observation_only_for_every_scheme() {
    // Attaching a recorder (wear probe + event ring + stride-clamped
    // batching) must not change a single result field — for every scheme
    // variant, under both a mixed workload and BPA. This is the guard
    // that lets telemetry ride along without an equivalence tax.
    for scheme in all_schemes() {
        for workload in [
            WorkloadSpec::Uniform { write_ratio: 0.5 },
            WorkloadSpec::Bpa { writes_per_target: 512 },
        ]
        .into_iter()
        .chain(service_workloads())
        {
            let plain = LifetimeExperiment {
                id: format!("equiv-tel/{}/{}", scheme.name(), workload.name()),
                scheme: scheme.clone(),
                workload,
                data_lines: 1 << 9,
                device: DeviceSpec { endurance: 200, ..Default::default() },
                max_demand_writes: 0,
                fault: None,
                telemetry: None,
                timing: None,
            };
            // An awkward stride, so sample boundaries land mid-block.
            let instrumented = LifetimeExperiment {
                telemetry: Some(sawl_simctl::TelemetrySpec::with_stride(777)),
                timing: None,
                ..plain.clone()
            };
            let bare = run_lifetime(&plain).unwrap();
            let mut observed = run_lifetime(&instrumented).unwrap();
            let series = observed.telemetry.take().expect("series requested");
            assert_eq!(observed, bare, "telemetry perturbed the run for {}", plain.id);
            assert_eq!(
                series.samples.len() as u64,
                bare.demand_writes / 777,
                "sample count off for {}",
                plain.id
            );
        }
    }
}

#[test]
fn zero_fault_plan_is_byte_identical_to_the_fault_free_path() {
    // Installing an all-default fault plan must not perturb anything: not
    // the device's RNG draws, not the write paths, not the result — for
    // every scheme, batched *and* scalar. This is the guard that lets the
    // fault layer ride in the hot path without an equivalence tax.
    for scheme in all_schemes() {
        for workload in [
            WorkloadSpec::Uniform { write_ratio: 0.5 },
            WorkloadSpec::Bpa { writes_per_target: 512 },
        ] {
            let plain = LifetimeExperiment {
                id: format!("equiv-zf/{}/{}", scheme.name(), workload.name()),
                scheme: scheme.clone(),
                workload,
                data_lines: 1 << 9,
                device: DeviceSpec { endurance: 200, ..Default::default() },
                max_demand_writes: 0,
                fault: None,
                telemetry: None,
                timing: None,
            };
            let zero_plan =
                LifetimeExperiment { fault: Some(FaultPlan::default()), ..plain.clone() };
            let fault_free = run_lifetime(&plain).unwrap();
            let zero_batched = run_lifetime(&zero_plan).unwrap();
            let zero_scalar = scalar_lifetime(&zero_plan);
            assert_eq!(zero_batched, fault_free, "zero-fault drift (batched) for {}", plain.id);
            assert_eq!(zero_scalar, fault_free, "zero-fault drift (scalar) for {}", plain.id);
        }
    }
}
