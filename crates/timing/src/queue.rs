//! Closed-loop bank-contention simulator.
//!
//! A window of `W = cores × MLP` outstanding requests circulates through
//! the memory system: a new request may issue only when a window slot is
//! free (the oldest outstanding request completed). Each request
//!
//! 1. waits `think_ns` of core compute after the previous issue,
//! 2. pays its translation latency on the critical path (the controller
//!    cannot address the device before translating),
//! 3. occupies its bank for the device service time (50 ns read / 350 ns
//!    write, Table 1), queueing behind earlier occupants FR-FCFS-style, and
//! 4. schedules its wear-leveling writes as background bank occupancy on
//!    the banks adjacent to the accessed one (data exchanges move whole
//!    regions, i.e. interleave-adjacent lines).
//!
//! The simulation's output is wall-clock time for the event sequence, from
//! which the IPC model derives throughput. Everything is deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::event::MemEvent;

/// Ordered f64 for the completion heap (times are finite by construction).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Static parameters of the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopConfig {
    /// Number of banks (Table 1: 32).
    pub banks: u32,
    /// Outstanding-request window (cores × per-core MLP).
    pub window: usize,
    /// Core compute time between consecutive issues, ns.
    pub think_ns: f64,
    /// Device read service time, ns.
    pub read_ns: f64,
    /// Device write service time, ns.
    pub write_ns: f64,
}

impl ClosedLoopConfig {
    /// Table 1 memory system under a given think time and window.
    pub fn table1(think_ns: f64, window: usize) -> Self {
        Self { banks: 32, window, think_ns, read_ns: 50.0, write_ns: 350.0 }
    }
}

/// The simulator state.
#[derive(Debug, Clone)]
pub struct ClosedLoopSim {
    cfg: ClosedLoopConfig,
    /// Next-free time per bank.
    bank_free: Vec<f64>,
    /// Completion times of outstanding requests.
    outstanding: BinaryHeap<Reverse<Time>>,
    /// Core issue clock.
    now: f64,
    /// Latest completion seen.
    finish: f64,
    events: u64,
    /// Accumulated request latency (completion - issue-ready), for the
    /// average-latency report.
    total_latency: f64,
    /// Latency histogram in 50 ns buckets (last bucket = overflow), for
    /// tail-latency reporting.
    latency_hist: Vec<u64>,
}

/// Width of one latency-histogram bucket, ns.
const LATENCY_BUCKET_NS: f64 = 50.0;
/// Number of histogram buckets (the last one collects the overflow).
const LATENCY_BUCKETS: usize = 64;

impl ClosedLoopSim {
    /// Fresh simulator.
    pub fn new(cfg: ClosedLoopConfig) -> Self {
        assert!(cfg.banks > 0 && cfg.window > 0);
        Self {
            cfg,
            bank_free: vec![0.0; cfg.banks as usize],
            outstanding: BinaryHeap::with_capacity(cfg.window + 1),
            now: 0.0,
            finish: 0.0,
            events: 0,
            total_latency: 0.0,
            latency_hist: vec![0; LATENCY_BUCKETS],
        }
    }

    /// Feed one event.
    pub fn push(&mut self, e: MemEvent) {
        let cfg = self.cfg;
        // Core compute before this request can issue.
        self.now += cfg.think_ns;
        // Window admission: wait for the oldest outstanding completion.
        if self.outstanding.len() >= cfg.window {
            let Reverse(Time(c)) = self.outstanding.pop().unwrap();
            if c > self.now {
                self.now = c;
            }
        }
        // Translation on the critical path.
        let ready = self.now + e.translation_ns;
        let bank = (e.bank % cfg.banks) as usize;
        let service = if e.write { cfg.write_ns } else { cfg.read_ns };
        let start = self.bank_free[bank].max(ready);
        let done = start + service;
        self.bank_free[bank] = done;
        self.outstanding.push(Reverse(Time(done)));
        self.finish = self.finish.max(done);
        let latency = done - self.now;
        self.total_latency += latency;
        let bucket = ((latency / LATENCY_BUCKET_NS) as usize).min(LATENCY_BUCKETS - 1);
        self.latency_hist[bucket] += 1;
        self.events += 1;
        // Background wear-leveling writes: spread across banks starting at
        // the accessed one (region moves touch interleave-adjacent lines).
        for k in 0..e.wl_writes {
            let b = ((e.bank + k) % cfg.banks) as usize;
            let s = self.bank_free[b].max(ready);
            let d = s + cfg.write_ns;
            self.bank_free[b] = d;
            self.finish = self.finish.max(d);
        }
    }

    /// Total simulated time once all events have been pushed, ns.
    pub fn elapsed_ns(&self) -> f64 {
        self.finish.max(self.now)
    }

    /// Demand events processed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Mean demand-request latency (queueing + translation + service), ns.
    pub fn mean_latency_ns(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.total_latency / self.events as f64
        }
    }

    /// The configuration.
    pub fn config(&self) -> ClosedLoopConfig {
        self.cfg
    }

    /// Latency at the given percentile (0 < p <= 1), to 50 ns resolution;
    /// 0 before any event.
    pub fn latency_percentile_ns(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "percentile out of range");
        if self.events == 0 {
            return 0.0;
        }
        let target = (self.events as f64 * p).ceil() as u64;
        let mut acc = 0u64;
        for (i, &c) in self.latency_hist.iter().enumerate() {
            acc += c;
            if acc >= target {
                return (i as f64 + 1.0) * LATENCY_BUCKET_NS;
            }
        }
        LATENCY_BUCKETS as f64 * LATENCY_BUCKET_NS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClosedLoopConfig {
        ClosedLoopConfig { banks: 4, window: 2, think_ns: 10.0, read_ns: 50.0, write_ns: 350.0 }
    }

    #[test]
    fn single_read_takes_think_plus_service() {
        let mut s = ClosedLoopSim::new(cfg());
        s.push(MemEvent::read(0));
        assert!((s.elapsed_ns() - 60.0).abs() < 1e-9);
        assert!((s.mean_latency_ns() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn translation_adds_to_critical_path() {
        let mut s = ClosedLoopSim::new(cfg());
        s.push(MemEvent::read(0).with_translation(55.0));
        assert!((s.elapsed_ns() - 115.0).abs() < 1e-9);
    }

    #[test]
    fn different_banks_overlap() {
        let mut a = ClosedLoopSim::new(cfg());
        a.push(MemEvent::read(0));
        a.push(MemEvent::read(1));
        // Issues at 10 and 20; both served in parallel; finish 70.
        assert!((a.elapsed_ns() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn same_bank_serializes() {
        let mut a = ClosedLoopSim::new(cfg());
        a.push(MemEvent::read(0));
        a.push(MemEvent::read(0));
        // Second starts when the bank frees at 60, done at 110.
        assert!((a.elapsed_ns() - 110.0).abs() < 1e-9);
    }

    #[test]
    fn window_backpressures_issue() {
        let mut s = ClosedLoopSim::new(cfg()); // window 2
        for _ in 0..3 {
            s.push(MemEvent::write(0)); // same bank: 350ns each
        }
        // Request 3 cannot issue until request 1 completes (t=360).
        // Bank serialization: completions at 360, 710, 1060.
        assert!((s.elapsed_ns() - 1060.0).abs() < 1e-9, "{}", s.elapsed_ns());
    }

    #[test]
    fn wl_writes_occupy_banks() {
        let mut with = ClosedLoopSim::new(cfg());
        with.push(MemEvent::write(0).with_wl_writes(4));
        with.push(MemEvent::write(0));
        let mut without = ClosedLoopSim::new(cfg());
        without.push(MemEvent::write(0));
        without.push(MemEvent::write(0));
        assert!(
            with.elapsed_ns() > without.elapsed_ns() + 300.0,
            "wl writes had no effect: {} vs {}",
            with.elapsed_ns(),
            without.elapsed_ns()
        );
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let mut w = ClosedLoopSim::new(cfg());
        let mut r = ClosedLoopSim::new(cfg());
        for _ in 0..100 {
            w.push(MemEvent::write(0));
            r.push(MemEvent::read(0));
        }
        assert!(w.elapsed_ns() > 5.0 * r.elapsed_ns());
    }

    #[test]
    fn latency_percentiles_track_contention() {
        let mut uncontended = ClosedLoopSim::new(cfg());
        let mut contended = ClosedLoopSim::new(cfg());
        for i in 0..1_000u32 {
            uncontended.push(MemEvent::read(i)); // spread over banks
            contended.push(MemEvent::write(0)); // one bank, serialized
        }
        assert!(uncontended.latency_percentile_ns(0.5) <= 100.0);
        assert!(
            contended.latency_percentile_ns(0.99) > uncontended.latency_percentile_ns(0.99),
            "contention must fatten the tail"
        );
        // The median is never above the p99.
        assert!(contended.latency_percentile_ns(0.5) <= contended.latency_percentile_ns(0.99));
    }

    #[test]
    fn throughput_scales_with_banks() {
        let mut narrow = ClosedLoopSim::new(ClosedLoopConfig {
            banks: 1,
            window: 8,
            think_ns: 1.0,
            read_ns: 50.0,
            write_ns: 350.0,
        });
        let mut wide = ClosedLoopSim::new(ClosedLoopConfig {
            banks: 8,
            window: 8,
            think_ns: 1.0,
            read_ns: 50.0,
            write_ns: 350.0,
        });
        for i in 0..800u32 {
            narrow.push(MemEvent::read(i));
            wide.push(MemEvent::read(i));
        }
        assert!(narrow.elapsed_ns() > 4.0 * wide.elapsed_ns());
    }
}
