//! Closed-loop multi-channel, multi-bank memory-controller simulator.
//!
//! A window of `W = cores × MLP` outstanding requests circulates through
//! the memory system: a new request may issue only when a window slot is
//! free (the oldest outstanding request completed). Each request
//!
//! 1. waits `think_ns` of core compute after the previous issue,
//! 2. pays its translation latency on the critical path — 0 for
//!    untranslated baselines, `trans_hit_ns` on a CMT hit, `trans_miss_ns`
//!    on a miss (the controller cannot address the device before
//!    translating),
//! 3. waits for a slot in its bank's bounded FR-FCFS-style queue
//!    (`queue_depth` entries; admission blocks until the oldest queued
//!    access retires),
//! 4. serializes on its channel's data bus for `bus_ns` (channel of bank
//!    `b` is `b % channels`, the usual fine-grain channel interleave), and
//! 5. occupies its bank for the device service time (50 ns read / 350 ns
//!    write, Table 1), queueing behind earlier occupants.
//!
//! Wear-leveling writes ride along as *background* bank occupancy on the
//! banks adjacent to the accessed one (region moves touch
//! interleave-adjacent lines). They never block the issuing core directly
//! — they surface as queueing delay for later demand requests on those
//! banks, which is exactly how the paper argues lazy merge/split hides
//! its cost.
//!
//! ## Stall attribution
//!
//! Every nanosecond a demand request spends beyond its bare service time
//! is attributed to one cause:
//!
//! * **translation miss** — the `trans_miss_ns` paid when the CMT missed;
//! * **exchange** / **merge-split** — queueing delay consumed from the
//!   per-bank occupancy *debt* that background wear-leveling writes
//!   posted (tracked separately per cause);
//! * **queueing** — the remainder: ordinary bank/bus/window contention.
//!
//! Latencies land in a log-bucketed [`LatencyHistogram`] (sawl-telemetry)
//! with explicit overflow — the old linear histogram saturated silently
//! at 3.2 µs, right where the tail lives. Everything is deterministic:
//! the same event sequence produces bit-identical histograms and stall
//! counters, which the telemetry alignment suite relies on.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use serde::{Deserialize, Serialize};

use sawl_telemetry::{LatencyHistogram, Percentile, TimingSample};

use crate::event::{MemEvent, Translation};

/// Ordered f64 for the completion heap (times are finite by construction).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Static parameters of the simulator. [`ClosedLoopConfig::default`] is
/// the Table 1 memory system; JSON specs either omit the config (taking
/// the default) or spell out every field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopConfig {
    /// Memory channels; bank `b` belongs to channel `b % channels`.
    pub channels: u32,
    /// Total banks across all channels (Table 1: 32).
    pub banks: u32,
    /// Outstanding-request window (cores × per-core MLP).
    pub window: usize,
    /// Per-bank queue depth; admission to a full queue blocks until the
    /// oldest queued access retires.
    pub queue_depth: usize,
    /// Core compute time between consecutive issues, ns.
    pub think_ns: f64,
    /// Device read service time, ns.
    pub read_ns: f64,
    /// Device write service time, ns.
    pub write_ns: f64,
    /// Channel data-bus occupancy per demand access, ns.
    pub bus_ns: f64,
    /// Address translation on a CMT hit, ns.
    pub trans_hit_ns: f64,
    /// Address translation on a CMT miss, ns.
    pub trans_miss_ns: f64,
}

impl Default for ClosedLoopConfig {
    fn default() -> Self {
        Self::table1(10.0, 32)
    }
}

impl ClosedLoopConfig {
    /// Table 1 memory system under a given think time and window: 2
    /// channels × 16 banks, 8-deep bank queues, 50/350 ns MLC reads and
    /// writes, 5/55 ns CMT hit/miss translation.
    pub fn table1(think_ns: f64, window: usize) -> Self {
        Self {
            channels: 2,
            banks: 32,
            window,
            queue_depth: 8,
            think_ns,
            read_ns: 50.0,
            write_ns: 350.0,
            bus_ns: 5.0,
            trans_hit_ns: 5.0,
            trans_miss_ns: 55.0,
        }
    }

    /// Translation latency of one event under this config, ns.
    pub fn translation_ns(&self, t: Translation) -> f64 {
        match t {
            Translation::None => 0.0,
            Translation::Hit => self.trans_hit_ns,
            Translation::Miss => self.trans_miss_ns,
        }
    }
}

/// One bank's state: accepted-but-unretired accesses plus the occupancy
/// debt that background wear-leveling writes posted, split by cause.
#[derive(Debug, Clone, Default)]
struct Bank {
    /// Time the bank finishes everything accepted so far.
    free: f64,
    /// Completion times of queued accesses, oldest first (completions are
    /// monotone because the bank serializes).
    queue: VecDeque<f64>,
    /// Unconsumed occupancy from exchange writes, ns.
    exch_debt: f64,
    /// Unconsumed occupancy from merge/split writes, ns.
    reorg_debt: f64,
}

/// Per-cause demand-stall totals, ns (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StallBreakdown {
    pub queue_ns: f64,
    pub trans_miss_ns: f64,
    pub exchange_ns: f64,
    pub reorg_ns: f64,
}

/// The simulator state.
#[derive(Debug, Clone)]
pub struct ClosedLoopSim {
    cfg: ClosedLoopConfig,
    banks: Vec<Bank>,
    /// Next-free time per channel data bus.
    chan_free: Vec<f64>,
    /// Completion times of outstanding requests.
    outstanding: BinaryHeap<Reverse<Time>>,
    /// Core issue clock.
    now: f64,
    /// Latest completion seen.
    finish: f64,
    events: u64,
    /// Accumulated request latency (completion - issue-ready), for the
    /// average-latency report.
    total_latency: f64,
    stalls: StallBreakdown,
    hist: LatencyHistogram,
}

impl ClosedLoopSim {
    /// Fresh simulator.
    pub fn new(cfg: ClosedLoopConfig) -> Self {
        assert!(cfg.channels > 0 && cfg.banks > 0 && cfg.window > 0 && cfg.queue_depth > 0);
        Self {
            cfg,
            banks: vec![Bank::default(); cfg.banks as usize],
            chan_free: vec![0.0; cfg.channels as usize],
            outstanding: BinaryHeap::with_capacity(cfg.window + 1),
            now: 0.0,
            finish: 0.0,
            events: 0,
            total_latency: 0.0,
            stalls: StallBreakdown::default(),
            hist: LatencyHistogram::new(),
        }
    }

    /// Feed one event.
    pub fn push(&mut self, e: MemEvent) {
        let cfg = self.cfg;
        // Core compute before this request can issue.
        self.now += cfg.think_ns;
        // Window admission: wait for the oldest outstanding completion.
        if self.outstanding.len() >= cfg.window {
            let Reverse(Time(c)) = self.outstanding.pop().unwrap();
            if c > self.now {
                self.now = c;
            }
        }
        let issue = self.now;
        // Translation on the critical path.
        let trans_ns = cfg.translation_ns(e.translation);
        let mut ready = issue + trans_ns;
        if e.translation == Translation::Miss {
            self.stalls.trans_miss_ns += trans_ns;
        }
        let b = (e.bank % cfg.banks) as usize;
        // Bounded bank queue: retire what finished, then block for a slot.
        // A full queue stalls the controller's issue stream — head-of-line
        // blocking for every later request, whatever bank it targets.
        while let Some(&c) = self.banks[b].queue.front() {
            if c <= ready {
                self.banks[b].queue.pop_front();
            } else {
                break;
            }
        }
        if self.banks[b].queue.len() >= cfg.queue_depth {
            while self.banks[b].queue.len() >= cfg.queue_depth {
                let c = self.banks[b].queue.pop_front().unwrap();
                ready = ready.max(c);
            }
            self.now = self.now.max(ready);
        }
        // Channel bus serialization.
        let chan = (e.bank % cfg.channels) as usize;
        let ready = ready.max(self.chan_free[chan]);
        self.chan_free[chan] = ready + cfg.bus_ns;
        // Bank occupancy.
        let service = if e.write { cfg.write_ns } else { cfg.read_ns };
        let start = self.banks[b].free.max(ready);
        let done = start + service;
        self.banks[b].free = done;
        self.banks[b].queue.push_back(done);
        self.outstanding.push(Reverse(Time(done)));
        self.finish = self.finish.max(done);
        let latency = done - issue;
        self.total_latency += latency;
        self.hist.record(latency.round() as u64);
        self.events += 1;
        // Queueing delay, attributed first to the wear-leveling occupancy
        // debt this bank carries (clamped to what is actually owed), the
        // remainder to ordinary contention.
        let mut wait = done - issue - trans_ns - service;
        let from_exch = wait.min(self.banks[b].exch_debt);
        self.banks[b].exch_debt -= from_exch;
        self.stalls.exchange_ns += from_exch;
        wait -= from_exch;
        let from_reorg = wait.min(self.banks[b].reorg_debt);
        self.banks[b].reorg_debt -= from_reorg;
        self.stalls.reorg_ns += from_reorg;
        self.stalls.queue_ns += wait - from_reorg;
        // Background wear-leveling writes: spread across banks starting at
        // the accessed one (region moves touch interleave-adjacent lines).
        for (writes, reorg) in [(e.exchange_writes, false), (e.reorg_writes, true)] {
            for k in 0..writes {
                let bb = ((e.bank + k) % cfg.banks) as usize;
                let s = self.banks[bb].free.max(ready);
                let d = s + cfg.write_ns;
                self.banks[bb].free = d;
                self.finish = self.finish.max(d);
                if reorg {
                    self.banks[bb].reorg_debt += cfg.write_ns;
                } else {
                    self.banks[bb].exch_debt += cfg.write_ns;
                }
            }
        }
    }

    /// Total simulated time once all events have been pushed, ns.
    pub fn elapsed_ns(&self) -> f64 {
        self.finish.max(self.now)
    }

    /// Demand events processed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Mean demand-request latency (queueing + translation + service), ns.
    pub fn mean_latency_ns(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.total_latency / self.events as f64
        }
    }

    /// The configuration.
    pub fn config(&self) -> ClosedLoopConfig {
        self.cfg
    }

    /// The latency distribution.
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.hist
    }

    /// Per-cause demand-stall totals so far.
    pub fn stalls(&self) -> StallBreakdown {
        self.stalls
    }

    /// Latency at the given percentile with explicit saturation, `None`
    /// before any event.
    pub fn latency_percentile(&self, p: f64) -> Option<Percentile> {
        self.hist.percentile(p)
    }

    /// Latency at the given percentile (0 < p <= 1) as a bare number;
    /// 0 before any event. Thin compatibility wrapper over
    /// [`ClosedLoopSim::latency_percentile`] — unlike the old linear
    /// histogram this never silently caps: values land in log buckets up
    /// to ~2.1 s and the overflow bin reports the exact maximum.
    pub fn latency_percentile_ns(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "percentile out of range");
        if p == 0.0 {
            return 0.0;
        }
        self.latency_percentile(p).map_or(0.0, |q| q.ns as f64)
    }

    /// The telemetry sample for the current clock: cumulative stall
    /// counters (rounded to whole ns) plus the latency histogram.
    pub fn timing_sample(&self) -> TimingSample {
        TimingSample {
            stall_queue_ns: self.stalls.queue_ns.round() as u64,
            stall_trans_miss_ns: self.stalls.trans_miss_ns.round() as u64,
            stall_exchange_ns: self.stalls.exchange_ns.round() as u64,
            stall_reorg_ns: self.stalls.reorg_ns.round() as u64,
            latency: self.hist.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClosedLoopConfig {
        ClosedLoopConfig {
            channels: 1,
            banks: 4,
            window: 2,
            queue_depth: 8,
            think_ns: 10.0,
            read_ns: 50.0,
            write_ns: 350.0,
            bus_ns: 0.0,
            trans_hit_ns: 5.0,
            trans_miss_ns: 55.0,
        }
    }

    #[test]
    fn single_read_takes_think_plus_service() {
        let mut s = ClosedLoopSim::new(cfg());
        s.push(MemEvent::read(0));
        assert!((s.elapsed_ns() - 60.0).abs() < 1e-9);
        assert!((s.mean_latency_ns() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn translation_adds_to_critical_path() {
        let mut s = ClosedLoopSim::new(cfg());
        s.push(MemEvent::read(0).with_translation(Translation::Miss));
        assert!((s.elapsed_ns() - 115.0).abs() < 1e-9);
        assert!((s.stalls().trans_miss_ns - 55.0).abs() < 1e-9);
        let mut h = ClosedLoopSim::new(cfg());
        h.push(MemEvent::read(0).with_translation(Translation::Hit));
        assert!((h.elapsed_ns() - 65.0).abs() < 1e-9);
        assert_eq!(h.stalls().trans_miss_ns, 0.0);
    }

    #[test]
    fn different_banks_overlap() {
        let mut a = ClosedLoopSim::new(cfg());
        a.push(MemEvent::read(0));
        a.push(MemEvent::read(1));
        // Issues at 10 and 20; both served in parallel; finish 70.
        assert!((a.elapsed_ns() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn same_bank_serializes() {
        let mut a = ClosedLoopSim::new(cfg());
        a.push(MemEvent::read(0));
        a.push(MemEvent::read(0));
        // Second starts when the bank frees at 60, done at 110.
        assert!((a.elapsed_ns() - 110.0).abs() < 1e-9);
        // The 40 ns wait is plain queueing.
        assert!((a.stalls().queue_ns - 40.0).abs() < 1e-9);
    }

    #[test]
    fn window_backpressures_issue() {
        let mut s = ClosedLoopSim::new(cfg()); // window 2
        for _ in 0..3 {
            s.push(MemEvent::write(0)); // same bank: 350ns each
        }
        // Request 3 cannot issue until request 1 completes (t=360).
        // Bank serialization: completions at 360, 710, 1060.
        assert!((s.elapsed_ns() - 1060.0).abs() < 1e-9, "{}", s.elapsed_ns());
    }

    #[test]
    fn bounded_bank_queue_blocks_head_of_line() {
        // 8 writes hammer bank 0, then 96 reads spread over the other
        // banks. With 1-deep bank queues the writes stall the issue
        // stream (head-of-line), so the reads start ~2 µs late; deep
        // queues absorb the writes and let the reads overlap them.
        let run = |queue_depth| {
            let mut s = ClosedLoopSim::new(ClosedLoopConfig { queue_depth, window: 16, ..cfg() });
            for _ in 0..8 {
                s.push(MemEvent::write(0));
            }
            for i in 0..96u32 {
                s.push(MemEvent::read(1 + i % 3));
            }
            s.elapsed_ns()
        };
        let (shallow, deep) = (run(1), run(64));
        assert!(shallow > deep + 500.0, "shallow {shallow} vs deep {deep}");
    }

    #[test]
    fn channel_bus_serializes_across_banks() {
        let slow = ClosedLoopConfig { bus_ns: 40.0, window: 8, ..cfg() };
        let mut one_chan = ClosedLoopSim::new(slow);
        let mut two_chan = ClosedLoopSim::new(ClosedLoopConfig { channels: 2, ..slow });
        for i in 0..64u32 {
            one_chan.push(MemEvent::read(i));
            two_chan.push(MemEvent::read(i));
        }
        assert!(
            one_chan.elapsed_ns() > 1.5 * two_chan.elapsed_ns(),
            "one channel {} vs two {}",
            one_chan.elapsed_ns(),
            two_chan.elapsed_ns()
        );
    }

    #[test]
    fn wl_writes_occupy_banks() {
        let mut with = ClosedLoopSim::new(cfg());
        with.push(MemEvent::write(0).with_exchange_writes(4));
        with.push(MemEvent::write(0));
        let mut without = ClosedLoopSim::new(cfg());
        without.push(MemEvent::write(0));
        without.push(MemEvent::write(0));
        assert!(
            with.elapsed_ns() > without.elapsed_ns() + 300.0,
            "wl writes had no effect: {} vs {}",
            with.elapsed_ns(),
            without.elapsed_ns()
        );
    }

    #[test]
    fn stalls_attribute_wl_wait_to_cause() {
        // An exchange posts occupancy on bank 0; the next demand write
        // there waits, and the wait is billed to the exchange, not to
        // generic queueing.
        let mut s = ClosedLoopSim::new(cfg());
        s.push(MemEvent::write(0).with_exchange_writes(1));
        s.push(MemEvent::write(0));
        let st = s.stalls();
        assert!(st.exchange_ns > 300.0, "exchange stall {}", st.exchange_ns);
        assert_eq!(st.reorg_ns, 0.0);

        let mut m = ClosedLoopSim::new(cfg());
        m.push(MemEvent::write(0).with_reorg_writes(1));
        m.push(MemEvent::write(0));
        let st = m.stalls();
        assert!(st.reorg_ns > 300.0, "reorg stall {}", st.reorg_ns);
        assert_eq!(st.exchange_ns, 0.0);
    }

    #[test]
    fn stall_attribution_is_conservative() {
        // Attributed stall never exceeds total measured latency minus the
        // bare service time.
        let mut s = ClosedLoopSim::new(cfg());
        let mut service = 0.0;
        for i in 0..500u32 {
            let e = if i % 3 == 0 {
                service += 350.0;
                MemEvent::write(i % 2).with_exchange_writes(2).with_reorg_writes(1)
            } else {
                service += 50.0;
                MemEvent::read(i % 2).with_translation(Translation::Miss)
            };
            s.push(e);
        }
        let st = s.stalls();
        let attributed = st.queue_ns + st.trans_miss_ns + st.exchange_ns + st.reorg_ns;
        let total_wait = s.mean_latency_ns() * s.events() as f64 - service;
        assert!(attributed <= total_wait + 1e-6, "{attributed} > {total_wait}");
        assert!((attributed - total_wait).abs() < 1e-6, "unattributed stall");
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let mut w = ClosedLoopSim::new(cfg());
        let mut r = ClosedLoopSim::new(cfg());
        for _ in 0..100 {
            w.push(MemEvent::write(0));
            r.push(MemEvent::read(0));
        }
        assert!(w.elapsed_ns() > 5.0 * r.elapsed_ns());
    }

    #[test]
    fn latency_percentiles_track_contention() {
        let mut uncontended = ClosedLoopSim::new(cfg());
        let mut contended = ClosedLoopSim::new(cfg());
        for i in 0..1_000u32 {
            uncontended.push(MemEvent::read(i)); // spread over banks
            contended.push(MemEvent::write(0)); // one bank, serialized
        }
        assert!(uncontended.latency_percentile_ns(0.5) <= 100.0);
        assert!(
            contended.latency_percentile_ns(0.99) > uncontended.latency_percentile_ns(0.99),
            "contention must fatten the tail"
        );
        // The median is never above the p99, nor the p99 above the p999.
        assert!(contended.latency_percentile_ns(0.5) <= contended.latency_percentile_ns(0.99));
        assert!(contended.latency_percentile_ns(0.99) <= contended.latency_percentile_ns(0.999));
    }

    #[test]
    fn deep_tail_is_not_capped_at_3200ns() {
        // Regression for the old linear histogram: a hard-contended bank
        // drives tail latencies far beyond 3.2 µs, and the percentile
        // must follow them instead of reporting the cap.
        let mut s = ClosedLoopSim::new(ClosedLoopConfig { window: 64, queue_depth: 64, ..cfg() });
        for _ in 0..200 {
            s.push(MemEvent::write(0));
        }
        let p999 = s.latency_percentile_ns(0.999);
        assert!(p999 > 10_000.0, "tail still capped: p999 = {p999}");
        let q = s.latency_percentile(0.999).unwrap();
        assert!(!q.saturated, "within histogram range, must not be flagged");
    }

    #[test]
    fn throughput_scales_with_banks() {
        let mut narrow = ClosedLoopSim::new(ClosedLoopConfig { banks: 1, window: 8, ..cfg() });
        let mut wide =
            ClosedLoopSim::new(ClosedLoopConfig { banks: 8, window: 8, queue_depth: 64, ..cfg() });
        for i in 0..800u32 {
            narrow.push(MemEvent::read(i));
            wide.push(MemEvent::read(i));
        }
        assert!(narrow.elapsed_ns() > 4.0 * wide.elapsed_ns());
    }

    #[test]
    fn timing_sample_matches_histogram() {
        let mut s = ClosedLoopSim::new(cfg());
        for i in 0..100u32 {
            s.push(MemEvent::write(i % 2).with_exchange_writes(1));
        }
        let t = s.timing_sample();
        assert_eq!(t.latency.restore(), *s.histogram());
        assert_eq!(t.stall_exchange_ns, s.stalls().exchange_ns.round() as u64);
        assert_eq!(t.latency.count, s.events());
    }
}
