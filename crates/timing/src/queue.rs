//! Closed-loop multi-channel, multi-bank memory-controller simulator.
//!
//! A window of `W = cores × MLP` outstanding requests circulates through
//! the memory system: a new request may issue only when a window slot is
//! free (the oldest outstanding request completed). Each request
//!
//! 1. waits `think_ns` of core compute after the previous issue,
//! 2. pays its translation latency on the critical path — 0 for
//!    untranslated baselines, `trans_hit_ns` on a CMT hit, `trans_miss_ns`
//!    on a miss (the controller cannot address the device before
//!    translating),
//! 3. waits for a slot in its bank's bounded FR-FCFS-style queue
//!    (`queue_depth` entries; admission blocks until the oldest queued
//!    access retires),
//! 4. serializes on its channel's data bus for `bus_ns` (channel of bank
//!    `b` is `b % channels`, the usual fine-grain channel interleave), and
//! 5. occupies its bank for the device service time (50 ns read / 350 ns
//!    write, Table 1), queueing behind earlier occupants.
//!
//! Wear-leveling writes ride along as *background* bank occupancy on the
//! banks adjacent to the accessed one (region moves touch
//! interleave-adjacent lines). They never block the issuing core directly
//! — they surface as queueing delay for later demand requests on those
//! banks, which is exactly how the paper argues lazy merge/split hides
//! its cost.
//!
//! ## Stall attribution
//!
//! Every nanosecond a demand request spends beyond its bare service time
//! is attributed to one cause:
//!
//! * **translation miss** — the `trans_miss_ns` paid when the CMT missed;
//! * **exchange** / **merge-split** — queueing delay consumed from the
//!   per-bank occupancy *debt* that background wear-leveling writes
//!   posted (tracked separately per cause);
//! * **queueing** — the remainder: ordinary bank/bus/window contention.
//!
//! Latencies land in a log-bucketed [`LatencyHistogram`] (sawl-telemetry)
//! with explicit overflow — the old linear histogram saturated silently
//! at 3.2 µs, right where the tail lives. Everything is deterministic:
//! the same event sequence produces bit-identical histograms and stall
//! counters, which the telemetry alignment suite relies on.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use serde::{Deserialize, Serialize};

use sawl_telemetry::{LatencyHistogram, Percentile, TimingSample};

use crate::event::{MemEvent, Translation};

/// Ordered f64 for the completion heap (times are finite by construction).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Static parameters of the simulator. [`ClosedLoopConfig::default`] is
/// the Table 1 memory system; JSON specs either omit the config (taking
/// the default) or spell out every field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopConfig {
    /// Memory channels; bank `b` belongs to channel `b % channels`.
    pub channels: u32,
    /// Total banks across all channels (Table 1: 32).
    pub banks: u32,
    /// Outstanding-request window (cores × per-core MLP).
    pub window: usize,
    /// Per-bank queue depth; admission to a full queue blocks until the
    /// oldest queued access retires.
    pub queue_depth: usize,
    /// Core compute time between consecutive issues, ns.
    pub think_ns: f64,
    /// Device read service time, ns.
    pub read_ns: f64,
    /// Device write service time, ns.
    pub write_ns: f64,
    /// Channel data-bus occupancy per demand access, ns.
    pub bus_ns: f64,
    /// Address translation on a CMT hit, ns.
    pub trans_hit_ns: f64,
    /// Address translation on a CMT miss, ns.
    pub trans_miss_ns: f64,
}

impl Default for ClosedLoopConfig {
    fn default() -> Self {
        Self::table1(10.0, 32)
    }
}

impl ClosedLoopConfig {
    /// Table 1 memory system under a given think time and window: 2
    /// channels × 16 banks, 8-deep bank queues, 50/350 ns MLC reads and
    /// writes, 5/55 ns CMT hit/miss translation.
    pub fn table1(think_ns: f64, window: usize) -> Self {
        Self {
            channels: 2,
            banks: 32,
            window,
            queue_depth: 8,
            think_ns,
            read_ns: 50.0,
            write_ns: 350.0,
            bus_ns: 5.0,
            trans_hit_ns: 5.0,
            trans_miss_ns: 55.0,
        }
    }

    /// Translation latency of one event under this config, ns.
    pub fn translation_ns(&self, t: Translation) -> f64 {
        match t {
            Translation::None => 0.0,
            Translation::Hit => self.trans_hit_ns,
            Translation::Miss => self.trans_miss_ns,
        }
    }
}

/// Largest magnitude (in ns) where every whole-ns f64 value, sum and
/// product used by the closed-form jump is exactly representable. 2^52 ns
/// is ~52 simulated days — far beyond any run this model sees.
const MAX_EXACT_NS: f64 = (1u64 << 52) as f64;

/// Whether `x` is a whole number of ns inside the exact-arithmetic range.
#[inline]
fn exact_ns(x: f64) -> bool {
    x.fract() == 0.0 && x.abs() < MAX_EXACT_NS
}

/// The O(1) subset of [`StepSig`]: the scalar clocks plus the queue and
/// window occupancy, captured without touching their contents. A uniform
/// shift here is necessary (not sufficient) for a [`StepSig`] shift, so
/// the warm loop tracks this for free every push and only pays for the
/// full capture once the light fields go periodic.
#[derive(Debug, Clone, Copy)]
struct LightSig {
    now: f64,
    finish: f64,
    chan_free: f64,
    bank_free: f64,
    queue_len: usize,
    heap_len: usize,
    exch_debt: f64,
    reorg_debt: f64,
}

/// The restricted simulator state that one steady-state `push` of a fixed
/// wl-free event reads and writes: the issue clock, the target bank and
/// channel, the outstanding window, and the latency/stall accumulators.
/// Two consecutive captures differing by a uniform time shift prove the
/// controller is periodic (see [`ClosedLoopSim::push_n`]).
#[derive(Debug, Clone)]
struct StepSig {
    now: f64,
    finish: f64,
    chan_free: f64,
    bank_free: f64,
    queue: Vec<f64>,
    /// Outstanding completion times, sorted (heap order is not canonical).
    heap: Vec<f64>,
    exch_debt: f64,
    reorg_debt: f64,
    stalls: StallBreakdown,
    total_latency: f64,
}

/// One bank's state: accepted-but-unretired accesses plus the occupancy
/// debt that background wear-leveling writes posted, split by cause.
#[derive(Debug, Clone, Default)]
struct Bank {
    /// Time the bank finishes everything accepted so far.
    free: f64,
    /// Completion times of queued accesses, oldest first (completions are
    /// monotone because the bank serializes).
    queue: VecDeque<f64>,
    /// Unconsumed occupancy from exchange writes, ns.
    exch_debt: f64,
    /// Unconsumed occupancy from merge/split writes, ns.
    reorg_debt: f64,
}

/// Per-cause demand-stall totals, ns (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StallBreakdown {
    pub queue_ns: f64,
    pub trans_miss_ns: f64,
    pub exchange_ns: f64,
    pub reorg_ns: f64,
}

/// The simulator state.
#[derive(Debug, Clone)]
pub struct ClosedLoopSim {
    cfg: ClosedLoopConfig,
    banks: Vec<Bank>,
    /// Next-free time per channel data bus.
    chan_free: Vec<f64>,
    /// Completion times of outstanding requests.
    outstanding: BinaryHeap<Reverse<Time>>,
    /// Core issue clock.
    now: f64,
    /// Latest completion seen.
    finish: f64,
    events: u64,
    /// Accumulated request latency (completion - issue-ready), for the
    /// average-latency report.
    total_latency: f64,
    stalls: StallBreakdown,
    hist: LatencyHistogram,
    /// Warmup length of the last successful [`Self::push_n`] jump — a
    /// scheduling hint for when the next run's full periodicity check is
    /// worth attempting. Never read by the timing semantics: any attempt
    /// schedule yields bit-identical results, the hint only skips capture
    /// attempts that are known to fail while the window flushes.
    warm_hint: u64,
}

impl ClosedLoopSim {
    /// Fresh simulator.
    pub fn new(cfg: ClosedLoopConfig) -> Self {
        assert!(cfg.channels > 0 && cfg.banks > 0 && cfg.window > 0 && cfg.queue_depth > 0);
        Self {
            cfg,
            banks: vec![Bank::default(); cfg.banks as usize],
            chan_free: vec![0.0; cfg.channels as usize],
            outstanding: BinaryHeap::with_capacity(cfg.window + 1),
            now: 0.0,
            finish: 0.0,
            events: 0,
            total_latency: 0.0,
            stalls: StallBreakdown::default(),
            hist: LatencyHistogram::new(),
            warm_hint: 0,
        }
    }

    /// Feed one event.
    pub fn push(&mut self, e: MemEvent) {
        let cfg = self.cfg;
        // Core compute before this request can issue.
        self.now += cfg.think_ns;
        // Window admission: wait for the oldest outstanding completion.
        if self.outstanding.len() >= cfg.window {
            let Reverse(Time(c)) = self.outstanding.pop().unwrap();
            if c > self.now {
                self.now = c;
            }
        }
        let issue = self.now;
        // Translation on the critical path.
        let trans_ns = cfg.translation_ns(e.translation);
        let mut ready = issue + trans_ns;
        if e.translation == Translation::Miss {
            self.stalls.trans_miss_ns += trans_ns;
        }
        let b = (e.bank % cfg.banks) as usize;
        // Bounded bank queue: retire what finished, then block for a slot.
        // A full queue stalls the controller's issue stream — head-of-line
        // blocking for every later request, whatever bank it targets.
        while let Some(&c) = self.banks[b].queue.front() {
            if c <= ready {
                self.banks[b].queue.pop_front();
            } else {
                break;
            }
        }
        if self.banks[b].queue.len() >= cfg.queue_depth {
            while self.banks[b].queue.len() >= cfg.queue_depth {
                let c = self.banks[b].queue.pop_front().unwrap();
                ready = ready.max(c);
            }
            self.now = self.now.max(ready);
        }
        // Channel bus serialization.
        let chan = (e.bank % cfg.channels) as usize;
        let ready = ready.max(self.chan_free[chan]);
        self.chan_free[chan] = ready + cfg.bus_ns;
        // Bank occupancy.
        let service = if e.write { cfg.write_ns } else { cfg.read_ns };
        let start = self.banks[b].free.max(ready);
        let done = start + service;
        self.banks[b].free = done;
        self.banks[b].queue.push_back(done);
        self.outstanding.push(Reverse(Time(done)));
        self.finish = self.finish.max(done);
        let latency = done - issue;
        self.total_latency += latency;
        self.hist.record(latency.round() as u64);
        self.events += 1;
        // Queueing delay, attributed first to the wear-leveling occupancy
        // debt this bank carries (clamped to what is actually owed), the
        // remainder to ordinary contention.
        let mut wait = done - issue - trans_ns - service;
        let from_exch = wait.min(self.banks[b].exch_debt);
        self.banks[b].exch_debt -= from_exch;
        self.stalls.exchange_ns += from_exch;
        wait -= from_exch;
        let from_reorg = wait.min(self.banks[b].reorg_debt);
        self.banks[b].reorg_debt -= from_reorg;
        self.stalls.reorg_ns += from_reorg;
        self.stalls.queue_ns += wait - from_reorg;
        // Background wear-leveling writes: spread across banks starting at
        // the accessed one (region moves touch interleave-adjacent lines).
        for (writes, reorg) in [(e.exchange_writes, false), (e.reorg_writes, true)] {
            for k in 0..writes {
                let bb = ((e.bank + k) % cfg.banks) as usize;
                let s = self.banks[bb].free.max(ready);
                let d = s + cfg.write_ns;
                self.banks[bb].free = d;
                self.finish = self.finish.max(d);
                if reorg {
                    self.banks[bb].reorg_debt += cfg.write_ns;
                } else {
                    self.banks[bb].exch_debt += cfg.write_ns;
                }
            }
        }
    }

    /// Feed the same event `n` times — bit-identical to `n` calls of
    /// [`ClosedLoopSim::push`], but in O(warmup) instead of O(n) when the
    /// controller settles into a steady state.
    ///
    /// ## Closed-form run advancement
    ///
    /// A long same-address run with no background wear-leveling traffic
    /// drives the controller into a *periodic* regime: every further event
    /// shifts the reachable state (issue clock, bank queue, channel bus,
    /// outstanding window) by one constant time offset `P` and adds one
    /// constant latency sample. The `push` transition reads only that
    /// state and is time-translation invariant, so once two consecutive
    /// events produce states that differ by a uniform shift, every later
    /// event does too — the remaining `k` events collapse to `state += k·P`
    /// plus `k` histogram/stall increments ([`LatencyHistogram::record_n`]).
    ///
    /// The jump is taken only when it is *exactly* equal to the scalar
    /// replay: every participating time must be a whole number of ns (true
    /// for any integer config, e.g. Table 1) and stay below 2^52 so f64
    /// arithmetic is exact. Events with wear-leveling writes, short runs,
    /// fractional configs, and states still draining queue-full blocking or
    /// occupancy debt all fall back to the scalar loop automatically.
    pub fn push_n(&mut self, e: MemEvent, n: u64) {
        // Steady state is reached within one window circulation plus one
        // bank-queue drain; past that, give up and stay scalar.
        let warmup_cap = (self.cfg.window + self.cfg.queue_depth + 8) as u64;
        if e.wl_writes() > 0 || n <= warmup_cap + 2 {
            for _ in 0..n {
                self.push(e);
            }
            return;
        }
        let mut remaining = n;
        let mut warm = 0u64;
        // Two-tier detection. The O(1) light signature is tracked on every
        // push; the allocating full capture (queue + sorted window
        // contents) runs in consecutive-push pairs, and a failed pair backs
        // off exponentially before the next attempt. The backoff matters:
        // while the window is still flushing another bank's completions
        // (e.g. each new dwell of a BPA run), those stale entries can sit
        // exactly one period apart, so the light fields shift uniformly for
        // a whole window's worth of pushes while the full check keeps
        // failing on the unshifted heap contents — paying the full capture
        // on every one of them would dominate the run cost.
        let mut prev_light = self.light_sig(&e);
        let mut pending: Option<StepSig> = None;
        let mut next_attempt = 0u64;
        let mut backoff = 2u64;
        let mut used_hint = false;
        while remaining > 0 && warm <= warmup_cap {
            self.push(e);
            remaining -= 1;
            warm += 1;
            let cur_light = self.light_sig(&e);
            let light_ok = Self::light_shift(&prev_light, &cur_light).is_some();
            prev_light = cur_light;
            if !light_ok {
                pending = None;
                continue;
            }
            if let Some(prev) = pending.take() {
                let cur = self.step_sig(&e);
                if remaining >= 2 {
                    if let Some(p) = Self::uniform_shift(&prev, &cur) {
                        if self.try_jump(&e, &prev, &cur, p, remaining) {
                            self.warm_hint = warm;
                            return;
                        }
                    }
                }
                // First failure fast-forwards to the last successful
                // warmup length (a still-flushing window keeps the light
                // check green while every full check fails); later
                // failures back off exponentially.
                if used_hint {
                    next_attempt = warm + backoff;
                    backoff *= 2;
                } else {
                    next_attempt = (warm + backoff).max(self.warm_hint.saturating_sub(2));
                    used_hint = true;
                }
            } else if warm >= next_attempt && remaining >= 3 {
                pending = Some(self.step_sig(&e));
            }
        }
        for _ in 0..remaining {
            self.push(e);
        }
    }

    /// Allocation-free capture of the light step signature (see
    /// [`LightSig`]).
    fn light_sig(&self, e: &MemEvent) -> LightSig {
        let b = (e.bank % self.cfg.banks) as usize;
        let chan = (e.bank % self.cfg.channels) as usize;
        LightSig {
            now: self.now,
            finish: self.finish,
            chan_free: self.chan_free[chan],
            bank_free: self.banks[b].free,
            queue_len: self.banks[b].queue.len(),
            heap_len: self.outstanding.len(),
            exch_debt: self.banks[b].exch_debt,
            reorg_debt: self.banks[b].reorg_debt,
        }
    }

    /// If the light fields of `cur` are exactly those of `prev` advanced by
    /// one uniform, whole-ns time shift (with untouched occupancy and
    /// debts), return the shift. Necessary for [`Self::uniform_shift`] on
    /// the corresponding full captures, but not sufficient: the queue and
    /// window *contents* still have to shift, which only the full check
    /// sees.
    fn light_shift(prev: &LightSig, cur: &LightSig) -> Option<f64> {
        let p = cur.now - prev.now;
        if !(p >= 0.0 && exact_ns(p) && exact_ns(prev.now) && exact_ns(cur.now)) {
            return None;
        }
        let shifted = |a: f64, b: f64| exact_ns(a) && exact_ns(b) && b - a == p;
        if !shifted(prev.finish, cur.finish)
            || !shifted(prev.chan_free, cur.chan_free)
            || !shifted(prev.bank_free, cur.bank_free)
            || prev.queue_len != cur.queue_len
            || prev.heap_len != cur.heap_len
            || prev.exch_debt != cur.exch_debt
            || prev.reorg_debt != cur.reorg_debt
        {
            return None;
        }
        Some(p)
    }

    /// The restricted state one steady-state `push` of `e` reads and
    /// writes, captured for shift comparison.
    fn step_sig(&self, e: &MemEvent) -> StepSig {
        let b = (e.bank % self.cfg.banks) as usize;
        let chan = (e.bank % self.cfg.channels) as usize;
        let mut heap: Vec<f64> = self.outstanding.iter().map(|Reverse(Time(t))| *t).collect();
        heap.sort_by(f64::total_cmp);
        StepSig {
            now: self.now,
            finish: self.finish,
            chan_free: self.chan_free[chan],
            bank_free: self.banks[b].free,
            queue: self.banks[b].queue.iter().copied().collect(),
            heap,
            exch_debt: self.banks[b].exch_debt,
            reorg_debt: self.banks[b].reorg_debt,
            stalls: self.stalls,
            total_latency: self.total_latency,
        }
    }

    /// If `cur` is exactly `prev` advanced by one uniform, whole-ns time
    /// shift (with untouched debts), return the shift.
    fn uniform_shift(prev: &StepSig, cur: &StepSig) -> Option<f64> {
        let p = cur.now - prev.now;
        if !(p >= 0.0 && exact_ns(p) && exact_ns(prev.now) && exact_ns(cur.now)) {
            return None;
        }
        let shifted = |a: f64, b: f64| exact_ns(a) && exact_ns(b) && b - a == p;
        if !shifted(prev.finish, cur.finish)
            || !shifted(prev.chan_free, cur.chan_free)
            || !shifted(prev.bank_free, cur.bank_free)
            || prev.queue.len() != cur.queue.len()
            || prev.heap.len() != cur.heap.len()
            || prev.exch_debt != cur.exch_debt
            || prev.reorg_debt != cur.reorg_debt
        {
            return None;
        }
        let pairs = prev.queue.iter().zip(&cur.queue).chain(prev.heap.iter().zip(&cur.heap));
        for (&a, &b) in pairs {
            if !shifted(a, b) {
                return None;
            }
        }
        Some(p)
    }

    /// Apply `k` steady-state steps at once. Returns `false` (leaving the
    /// state untouched) if the extrapolated values would leave the range
    /// where f64 arithmetic is exact.
    fn try_jump(&mut self, e: &MemEvent, prev: &StepSig, cur: &StepSig, p: f64, k: u64) -> bool {
        let latency = cur.total_latency - prev.total_latency;
        let d_queue = cur.stalls.queue_ns - prev.stalls.queue_ns;
        let d_miss = cur.stalls.trans_miss_ns - prev.stalls.trans_miss_ns;
        let d_exch = cur.stalls.exchange_ns - prev.stalls.exchange_ns;
        let d_reorg = cur.stalls.reorg_ns - prev.stalls.reorg_ns;
        let kf = k as f64;
        let kp = kf * p;
        // Every extrapolated time, and every accumulator after k more
        // whole-ns additions, must stay exactly representable.
        let horizon = cur.finish.max(cur.now) + kp;
        let accum = [
            latency,
            d_queue,
            d_miss,
            d_exch,
            d_reorg,
            self.total_latency + kf * latency,
            self.stalls.queue_ns + kf * d_queue,
            self.stalls.trans_miss_ns + kf * d_miss,
            self.stalls.exchange_ns + kf * d_exch,
            self.stalls.reorg_ns + kf * d_reorg,
        ];
        if !exact_ns(horizon) || accum.iter().any(|&v| !exact_ns(v) || v < 0.0) {
            return false;
        }
        let b = (e.bank % self.cfg.banks) as usize;
        let chan = (e.bank % self.cfg.channels) as usize;
        self.now += kp;
        self.finish += kp;
        self.chan_free[chan] += kp;
        self.banks[b].free += kp;
        for q in self.banks[b].queue.iter_mut() {
            *q += kp;
        }
        let shifted: Vec<Reverse<Time>> =
            self.outstanding.drain().map(|Reverse(Time(t))| Reverse(Time(t + kp))).collect();
        self.outstanding.extend(shifted);
        self.stalls.queue_ns += kf * d_queue;
        self.stalls.trans_miss_ns += kf * d_miss;
        self.stalls.exchange_ns += kf * d_exch;
        self.stalls.reorg_ns += kf * d_reorg;
        self.total_latency += kf * latency;
        self.hist.record_n(latency as u64, k);
        self.events += k;
        true
    }

    /// Total simulated time once all events have been pushed, ns.
    pub fn elapsed_ns(&self) -> f64 {
        self.finish.max(self.now)
    }

    /// Demand events processed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Mean demand-request latency (queueing + translation + service), ns.
    pub fn mean_latency_ns(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.total_latency / self.events as f64
        }
    }

    /// The configuration.
    pub fn config(&self) -> ClosedLoopConfig {
        self.cfg
    }

    /// The latency distribution.
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.hist
    }

    /// Per-cause demand-stall totals so far.
    pub fn stalls(&self) -> StallBreakdown {
        self.stalls
    }

    /// Latency at the given percentile with explicit saturation, `None`
    /// before any event.
    pub fn latency_percentile(&self, p: f64) -> Option<Percentile> {
        self.hist.percentile(p)
    }

    /// Latency at the given percentile (0 < p <= 1) as a bare number;
    /// 0 before any event. Thin compatibility wrapper over
    /// [`ClosedLoopSim::latency_percentile`] — unlike the old linear
    /// histogram this never silently caps: values land in log buckets up
    /// to ~2.1 s and the overflow bin reports the exact maximum.
    pub fn latency_percentile_ns(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "percentile out of range");
        if p == 0.0 {
            return 0.0;
        }
        self.latency_percentile(p).map_or(0.0, |q| q.ns as f64)
    }

    /// The telemetry sample for the current clock: cumulative stall
    /// counters (rounded to whole ns) plus the latency histogram.
    pub fn timing_sample(&self) -> TimingSample {
        TimingSample {
            stall_queue_ns: self.stalls.queue_ns.round() as u64,
            stall_trans_miss_ns: self.stalls.trans_miss_ns.round() as u64,
            stall_exchange_ns: self.stalls.exchange_ns.round() as u64,
            stall_reorg_ns: self.stalls.reorg_ns.round() as u64,
            latency: self.hist.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClosedLoopConfig {
        ClosedLoopConfig {
            channels: 1,
            banks: 4,
            window: 2,
            queue_depth: 8,
            think_ns: 10.0,
            read_ns: 50.0,
            write_ns: 350.0,
            bus_ns: 0.0,
            trans_hit_ns: 5.0,
            trans_miss_ns: 55.0,
        }
    }

    #[test]
    fn single_read_takes_think_plus_service() {
        let mut s = ClosedLoopSim::new(cfg());
        s.push(MemEvent::read(0));
        assert!((s.elapsed_ns() - 60.0).abs() < 1e-9);
        assert!((s.mean_latency_ns() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn translation_adds_to_critical_path() {
        let mut s = ClosedLoopSim::new(cfg());
        s.push(MemEvent::read(0).with_translation(Translation::Miss));
        assert!((s.elapsed_ns() - 115.0).abs() < 1e-9);
        assert!((s.stalls().trans_miss_ns - 55.0).abs() < 1e-9);
        let mut h = ClosedLoopSim::new(cfg());
        h.push(MemEvent::read(0).with_translation(Translation::Hit));
        assert!((h.elapsed_ns() - 65.0).abs() < 1e-9);
        assert_eq!(h.stalls().trans_miss_ns, 0.0);
    }

    #[test]
    fn different_banks_overlap() {
        let mut a = ClosedLoopSim::new(cfg());
        a.push(MemEvent::read(0));
        a.push(MemEvent::read(1));
        // Issues at 10 and 20; both served in parallel; finish 70.
        assert!((a.elapsed_ns() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn same_bank_serializes() {
        let mut a = ClosedLoopSim::new(cfg());
        a.push(MemEvent::read(0));
        a.push(MemEvent::read(0));
        // Second starts when the bank frees at 60, done at 110.
        assert!((a.elapsed_ns() - 110.0).abs() < 1e-9);
        // The 40 ns wait is plain queueing.
        assert!((a.stalls().queue_ns - 40.0).abs() < 1e-9);
    }

    #[test]
    fn window_backpressures_issue() {
        let mut s = ClosedLoopSim::new(cfg()); // window 2
        for _ in 0..3 {
            s.push(MemEvent::write(0)); // same bank: 350ns each
        }
        // Request 3 cannot issue until request 1 completes (t=360).
        // Bank serialization: completions at 360, 710, 1060.
        assert!((s.elapsed_ns() - 1060.0).abs() < 1e-9, "{}", s.elapsed_ns());
    }

    #[test]
    fn bounded_bank_queue_blocks_head_of_line() {
        // 8 writes hammer bank 0, then 96 reads spread over the other
        // banks. With 1-deep bank queues the writes stall the issue
        // stream (head-of-line), so the reads start ~2 µs late; deep
        // queues absorb the writes and let the reads overlap them.
        let run = |queue_depth| {
            let mut s = ClosedLoopSim::new(ClosedLoopConfig { queue_depth, window: 16, ..cfg() });
            for _ in 0..8 {
                s.push(MemEvent::write(0));
            }
            for i in 0..96u32 {
                s.push(MemEvent::read(1 + i % 3));
            }
            s.elapsed_ns()
        };
        let (shallow, deep) = (run(1), run(64));
        assert!(shallow > deep + 500.0, "shallow {shallow} vs deep {deep}");
    }

    #[test]
    fn channel_bus_serializes_across_banks() {
        let slow = ClosedLoopConfig { bus_ns: 40.0, window: 8, ..cfg() };
        let mut one_chan = ClosedLoopSim::new(slow);
        let mut two_chan = ClosedLoopSim::new(ClosedLoopConfig { channels: 2, ..slow });
        for i in 0..64u32 {
            one_chan.push(MemEvent::read(i));
            two_chan.push(MemEvent::read(i));
        }
        assert!(
            one_chan.elapsed_ns() > 1.5 * two_chan.elapsed_ns(),
            "one channel {} vs two {}",
            one_chan.elapsed_ns(),
            two_chan.elapsed_ns()
        );
    }

    #[test]
    fn wl_writes_occupy_banks() {
        let mut with = ClosedLoopSim::new(cfg());
        with.push(MemEvent::write(0).with_exchange_writes(4));
        with.push(MemEvent::write(0));
        let mut without = ClosedLoopSim::new(cfg());
        without.push(MemEvent::write(0));
        without.push(MemEvent::write(0));
        assert!(
            with.elapsed_ns() > without.elapsed_ns() + 300.0,
            "wl writes had no effect: {} vs {}",
            with.elapsed_ns(),
            without.elapsed_ns()
        );
    }

    #[test]
    fn stalls_attribute_wl_wait_to_cause() {
        // An exchange posts occupancy on bank 0; the next demand write
        // there waits, and the wait is billed to the exchange, not to
        // generic queueing.
        let mut s = ClosedLoopSim::new(cfg());
        s.push(MemEvent::write(0).with_exchange_writes(1));
        s.push(MemEvent::write(0));
        let st = s.stalls();
        assert!(st.exchange_ns > 300.0, "exchange stall {}", st.exchange_ns);
        assert_eq!(st.reorg_ns, 0.0);

        let mut m = ClosedLoopSim::new(cfg());
        m.push(MemEvent::write(0).with_reorg_writes(1));
        m.push(MemEvent::write(0));
        let st = m.stalls();
        assert!(st.reorg_ns > 300.0, "reorg stall {}", st.reorg_ns);
        assert_eq!(st.exchange_ns, 0.0);
    }

    #[test]
    fn stall_attribution_is_conservative() {
        // Attributed stall never exceeds total measured latency minus the
        // bare service time.
        let mut s = ClosedLoopSim::new(cfg());
        let mut service = 0.0;
        for i in 0..500u32 {
            let e = if i % 3 == 0 {
                service += 350.0;
                MemEvent::write(i % 2).with_exchange_writes(2).with_reorg_writes(1)
            } else {
                service += 50.0;
                MemEvent::read(i % 2).with_translation(Translation::Miss)
            };
            s.push(e);
        }
        let st = s.stalls();
        let attributed = st.queue_ns + st.trans_miss_ns + st.exchange_ns + st.reorg_ns;
        let total_wait = s.mean_latency_ns() * s.events() as f64 - service;
        assert!(attributed <= total_wait + 1e-6, "{attributed} > {total_wait}");
        assert!((attributed - total_wait).abs() < 1e-6, "unattributed stall");
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let mut w = ClosedLoopSim::new(cfg());
        let mut r = ClosedLoopSim::new(cfg());
        for _ in 0..100 {
            w.push(MemEvent::write(0));
            r.push(MemEvent::read(0));
        }
        assert!(w.elapsed_ns() > 5.0 * r.elapsed_ns());
    }

    #[test]
    fn latency_percentiles_track_contention() {
        let mut uncontended = ClosedLoopSim::new(cfg());
        let mut contended = ClosedLoopSim::new(cfg());
        for i in 0..1_000u32 {
            uncontended.push(MemEvent::read(i)); // spread over banks
            contended.push(MemEvent::write(0)); // one bank, serialized
        }
        assert!(uncontended.latency_percentile_ns(0.5) <= 100.0);
        assert!(
            contended.latency_percentile_ns(0.99) > uncontended.latency_percentile_ns(0.99),
            "contention must fatten the tail"
        );
        // The median is never above the p99, nor the p99 above the p999.
        assert!(contended.latency_percentile_ns(0.5) <= contended.latency_percentile_ns(0.99));
        assert!(contended.latency_percentile_ns(0.99) <= contended.latency_percentile_ns(0.999));
    }

    #[test]
    fn deep_tail_is_not_capped_at_3200ns() {
        // Regression for the old linear histogram: a hard-contended bank
        // drives tail latencies far beyond 3.2 µs, and the percentile
        // must follow them instead of reporting the cap.
        let mut s = ClosedLoopSim::new(ClosedLoopConfig { window: 64, queue_depth: 64, ..cfg() });
        for _ in 0..200 {
            s.push(MemEvent::write(0));
        }
        let p999 = s.latency_percentile_ns(0.999);
        assert!(p999 > 10_000.0, "tail still capped: p999 = {p999}");
        let q = s.latency_percentile(0.999).unwrap();
        assert!(!q.saturated, "within histogram range, must not be flagged");
    }

    #[test]
    fn throughput_scales_with_banks() {
        let mut narrow = ClosedLoopSim::new(ClosedLoopConfig { banks: 1, window: 8, ..cfg() });
        let mut wide =
            ClosedLoopSim::new(ClosedLoopConfig { banks: 8, window: 8, queue_depth: 64, ..cfg() });
        for i in 0..800u32 {
            narrow.push(MemEvent::read(i));
            wide.push(MemEvent::read(i));
        }
        assert!(narrow.elapsed_ns() > 4.0 * wide.elapsed_ns());
    }

    /// Bit-exact equality of two simulators: clocks, accumulators, stall
    /// attribution and the full latency distribution.
    fn assert_sims_identical(a: &ClosedLoopSim, b: &ClosedLoopSim, ctx: &str) {
        assert_eq!(a.events(), b.events(), "{ctx}: events");
        assert_eq!(a.elapsed_ns().to_bits(), b.elapsed_ns().to_bits(), "{ctx}: elapsed");
        assert_eq!(a.mean_latency_ns().to_bits(), b.mean_latency_ns().to_bits(), "{ctx}: mean");
        assert_eq!(a.stalls(), b.stalls(), "{ctx}: stalls");
        assert_eq!(a.histogram(), b.histogram(), "{ctx}: histogram");
        assert_eq!(a.timing_sample(), b.timing_sample(), "{ctx}: sample");
    }

    /// Replay `script` on two fresh sims — one via scalar `push`, one via
    /// `push_n` — then feed both an identical scalar coda to prove the
    /// post-jump state behaves identically, not just reports identically.
    fn assert_push_n_matches_scalar(cfg: ClosedLoopConfig, script: &[(MemEvent, u64)]) {
        let mut scalar = ClosedLoopSim::new(cfg);
        let mut fast = ClosedLoopSim::new(cfg);
        for &(e, n) in script {
            for _ in 0..n {
                scalar.push(e);
            }
            fast.push_n(e, n);
        }
        assert_sims_identical(&scalar, &fast, "after script");
        for i in 0..200u32 {
            let e = if i % 3 == 0 {
                MemEvent::write(i % 7).with_exchange_writes(1)
            } else {
                MemEvent::read(i % 5).with_translation(Translation::Miss)
            };
            scalar.push(e);
            fast.push(e);
        }
        assert_sims_identical(&scalar, &fast, "after coda");
    }

    #[test]
    fn push_n_matches_scalar_on_long_write_runs() {
        for n in [1u64, 7, 40, 41, 1000, 10_000] {
            assert_push_n_matches_scalar(
                ClosedLoopConfig::default(),
                &[(MemEvent::write(3).with_translation(Translation::Hit), n)],
            );
        }
    }

    #[test]
    fn push_n_matches_scalar_for_reads_and_untranslated_events() {
        assert_push_n_matches_scalar(ClosedLoopConfig::default(), &[(MemEvent::read(0), 5_000)]);
        assert_push_n_matches_scalar(ClosedLoopConfig::default(), &[(MemEvent::write(9), 5_000)]);
        assert_push_n_matches_scalar(
            ClosedLoopConfig::default(),
            &[(MemEvent::write(2).with_translation(Translation::Miss), 5_000)],
        );
    }

    #[test]
    fn push_n_matches_scalar_from_a_dirty_state() {
        // Pre-contend several banks and channels, leave occupancy debt and
        // stale window entries behind, then jump on a different bank.
        let mut script: Vec<(MemEvent, u64)> = Vec::new();
        for i in 0..40u32 {
            script.push((MemEvent::write(i % 6).with_exchange_writes(2).with_reorg_writes(1), 1));
        }
        script.push((MemEvent::write(0).with_translation(Translation::Hit), 3_000));
        script.push((MemEvent::read(1), 700));
        script.push((MemEvent::write(0).with_translation(Translation::Hit), 3_000));
        assert_push_n_matches_scalar(ClosedLoopConfig::default(), &script);
    }

    #[test]
    fn push_n_matches_scalar_under_fractional_configs() {
        // Fractional think time breaks the whole-ns gate: push_n must fall
        // back to the scalar loop and still match exactly.
        let frac = ClosedLoopConfig { think_ns: 10.25, ..ClosedLoopConfig::default() };
        assert_push_n_matches_scalar(frac, &[(MemEvent::write(0), 2_000)]);
        let frac_bus = ClosedLoopConfig { bus_ns: 2.5, ..ClosedLoopConfig::default() };
        assert_push_n_matches_scalar(frac_bus, &[(MemEvent::write(4), 2_000)]);
    }

    #[test]
    fn push_n_matches_scalar_with_wl_writes() {
        // Background traffic disables the fast path outright.
        assert_push_n_matches_scalar(
            ClosedLoopConfig::default(),
            &[(MemEvent::write(0).with_exchange_writes(3), 500)],
        );
    }

    #[test]
    fn push_n_matches_scalar_across_configs() {
        for cfg in [
            cfg(),
            ClosedLoopConfig { window: 1, ..cfg() },
            ClosedLoopConfig { queue_depth: 1, window: 16, ..cfg() },
            ClosedLoopConfig { banks: 1, channels: 1, ..cfg() },
            ClosedLoopConfig::table1(0.0, 64),
        ] {
            assert_push_n_matches_scalar(cfg, &[(MemEvent::write(0), 4_000)]);
        }
    }

    #[test]
    fn push_n_takes_the_closed_form_jump_on_table1() {
        // Not just equal — actually fast. The steady state must be found
        // within the warmup cap, so a huge run costs O(warmup) pushes; if
        // the jump were declined this test would still pass, so pin the
        // jump indirectly through its exact long-run arithmetic: the run
        // must not drift by even one ns over 10^7 events.
        let mut s = ClosedLoopSim::new(ClosedLoopConfig::default());
        let e = MemEvent::write(5).with_translation(Translation::Hit);
        s.push_n(e, 10_000_000);
        assert_eq!(s.events(), 10_000_000);
        // Steady-state period for a single hammered bank under Table 1:
        // one write every 350 ns (the bank service time; the 10 ns think
        // overlaps under the 32-deep window), after a short ramp.
        let per_event = s.elapsed_ns() / s.events() as f64;
        assert!((per_event - 350.0).abs() < 0.01, "period drifted: {per_event}");
        assert_eq!(s.histogram().snapshot().count, 10_000_000);
    }

    #[test]
    fn timing_sample_matches_histogram() {
        let mut s = ClosedLoopSim::new(cfg());
        for i in 0..100u32 {
            s.push(MemEvent::write(i % 2).with_exchange_writes(1));
        }
        let t = s.timing_sample();
        assert_eq!(t.latency.restore(), *s.histogram());
        assert_eq!(t.stall_exchange_ns, s.stalls().exchange_ns.round() as u64);
        assert_eq!(t.latency.count, s.events());
    }
}
