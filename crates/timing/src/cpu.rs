//! Per-benchmark CPU-side model.
//!
//! Table 1's processor: 8 cores, x86-64, 3.2 GHz. Each benchmark is
//! summarized by its non-memory CPI and its post-L2 memory intensity
//! (requests per kilo-instruction) — the two numbers that determine how
//! sensitive IPC is to added memory latency. Both come from the SPEC-like
//! model parameters in `sawl-trace` (see DESIGN.md §5 for the calibration
//! rationale).

use serde::{Deserialize, Serialize};

use sawl_trace::SpecBenchmark;

/// CPU-side characteristics of a workload on the Table 1 system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Number of cores issuing requests (rate mode: all run the benchmark).
    pub cores: u32,
    /// Core frequency in GHz.
    pub freq_ghz: f64,
    /// Cycles per instruction spent off the memory path.
    pub base_cpi: f64,
    /// Post-L2 memory requests per 1000 instructions (per core).
    pub mem_per_kilo_instr: f64,
    /// Outstanding memory requests each core can sustain (MSHR depth).
    pub mlp_per_core: u32,
}

impl CpuModel {
    /// The Table 1 machine running a given benchmark.
    pub fn for_benchmark(b: SpecBenchmark) -> Self {
        let p = b.params();
        Self {
            cores: 8,
            freq_ghz: 3.2,
            base_cpi: p.base_cpi,
            mem_per_kilo_instr: p.mem_per_kilo_instr,
            mlp_per_core: 4,
        }
    }

    /// Instructions represented by one memory request (per core).
    pub fn instr_per_request(&self) -> f64 {
        1000.0 / self.mem_per_kilo_instr
    }

    /// Core compute time between consecutive memory requests of the
    /// aggregate 8-core stream, in nanoseconds. In rate mode the cores
    /// interleave, so the aggregate inter-request think time is the
    /// per-core time divided by the core count.
    pub fn think_ns(&self) -> f64 {
        self.instr_per_request() * self.base_cpi / self.freq_ghz / f64::from(self.cores)
    }

    /// Total outstanding-request window of the machine.
    pub fn window(&self) -> usize {
        (self.cores * self.mlp_per_core) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let m = CpuModel::for_benchmark(SpecBenchmark::Mcf);
        assert_eq!(m.cores, 8);
        assert_eq!(m.freq_ghz, 3.2);
        assert_eq!(m.window(), 32);
    }

    #[test]
    fn memory_bound_benchmarks_think_less() {
        let mcf = CpuModel::for_benchmark(SpecBenchmark::Mcf);
        let namd = CpuModel::for_benchmark(SpecBenchmark::Namd);
        assert!(mcf.think_ns() < namd.think_ns());
    }

    #[test]
    fn instr_per_request_inverts_intensity() {
        let m = CpuModel::for_benchmark(SpecBenchmark::Lbm); // 35 per kilo
        assert!((m.instr_per_request() - 1000.0 / 35.0).abs() < 1e-9);
    }
}
