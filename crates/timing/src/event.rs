//! The abstract memory event the timing simulator consumes.
//!
//! The experiment drivers run a wear leveler over a workload and translate
//! each demand request — plus whatever data-exchange writes the scheme
//! issued — into one [`MemEvent`]. Keeping the event abstract decouples the
//! timing model from the wear-leveling crates: any scheme, including the
//! no-wear-leveling baseline, produces the same event vocabulary.

use serde::{Deserialize, Serialize};

/// One demand memory request, as seen by the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemEvent {
    /// Bank the (translated) physical address maps to.
    pub bank: u32,
    /// Whether the demand access is a write (350 ns) or a read (50 ns).
    pub write: bool,
    /// Address-translation latency on this request's critical path:
    /// 0 for untranslated baselines, 5 ns on a CMT hit, 55 ns on a miss.
    pub translation_ns: f64,
    /// Wear-leveling writes triggered by this request (data exchanges,
    /// mapping-table updates). They occupy banks but do not block the
    /// requesting core.
    pub wl_writes: u32,
}

impl MemEvent {
    /// A plain read with no translation cost.
    pub fn read(bank: u32) -> Self {
        Self { bank, write: false, translation_ns: 0.0, wl_writes: 0 }
    }

    /// A plain write with no translation cost.
    pub fn write(bank: u32) -> Self {
        Self { bank, write: true, translation_ns: 0.0, wl_writes: 0 }
    }

    /// Attach a translation latency.
    pub fn with_translation(mut self, ns: f64) -> Self {
        self.translation_ns = ns;
        self
    }

    /// Attach wear-leveling write amplification.
    pub fn with_wl_writes(mut self, n: u32) -> Self {
        self.wl_writes = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let e = MemEvent::write(3).with_translation(55.0).with_wl_writes(8);
        assert!(e.write);
        assert_eq!(e.bank, 3);
        assert_eq!(e.translation_ns, 55.0);
        assert_eq!(e.wl_writes, 8);
        let r = MemEvent::read(0);
        assert!(!r.write);
        assert_eq!(r.translation_ns, 0.0);
    }
}
