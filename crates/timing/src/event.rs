//! The abstract memory event the timing simulator consumes.
//!
//! The experiment drivers run a wear leveler over a workload and translate
//! each demand request — plus whatever background writes the scheme issued
//! — into one [`MemEvent`]. Keeping the event abstract decouples the
//! timing model from the wear-leveling crates: any scheme, including the
//! no-wear-leveling baseline, produces the same event vocabulary.
//!
//! Translation cost is carried as the *outcome* ([`Translation`]) rather
//! than a raw latency: the simulator's config owns the hit/miss costs, so
//! one event stream can be replayed under different memory systems, and
//! the per-cause stall attribution can bill misses explicitly.

use serde::{Deserialize, Serialize};

/// How this request's address translation resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Translation {
    /// No translation on the critical path (untranslated baseline, or an
    /// algorithmic scheme that computes the mapping).
    #[default]
    None,
    /// The cached mapping table hit (Table 1: 5 ns).
    Hit,
    /// The cached mapping table missed (Table 1: 55 ns).
    Miss,
}

/// One demand memory request, as seen by the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemEvent {
    /// Bank the (translated) physical address maps to.
    pub bank: u32,
    /// Whether the demand access is a write (350 ns) or a read (50 ns).
    pub write: bool,
    /// Address-translation outcome on this request's critical path.
    pub translation: Translation,
    /// Data-exchange writes the scheme triggered on this request. They
    /// occupy banks in the background but do not block the issuing core.
    pub exchange_writes: u32,
    /// Region merge/split writes triggered on this request (SAWL's lazy
    /// reorganization); background bank occupancy like exchanges, but
    /// attributed separately.
    pub reorg_writes: u32,
}

impl MemEvent {
    /// A plain read with no translation cost.
    pub fn read(bank: u32) -> Self {
        Self {
            bank,
            write: false,
            translation: Translation::None,
            exchange_writes: 0,
            reorg_writes: 0,
        }
    }

    /// A plain write with no translation cost.
    pub fn write(bank: u32) -> Self {
        Self {
            bank,
            write: true,
            translation: Translation::None,
            exchange_writes: 0,
            reorg_writes: 0,
        }
    }

    /// Attach a translation outcome.
    pub fn with_translation(mut self, t: Translation) -> Self {
        self.translation = t;
        self
    }

    /// Attach data-exchange write amplification.
    pub fn with_exchange_writes(mut self, n: u32) -> Self {
        self.exchange_writes = n;
        self
    }

    /// Attach merge/split write amplification.
    pub fn with_reorg_writes(mut self, n: u32) -> Self {
        self.reorg_writes = n;
        self
    }

    /// All background wear-leveling writes on this event.
    pub fn wl_writes(&self) -> u32 {
        self.exchange_writes + self.reorg_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let e = MemEvent::write(3)
            .with_translation(Translation::Miss)
            .with_exchange_writes(8)
            .with_reorg_writes(2);
        assert!(e.write);
        assert_eq!(e.bank, 3);
        assert_eq!(e.translation, Translation::Miss);
        assert_eq!(e.exchange_writes, 8);
        assert_eq!(e.reorg_writes, 2);
        assert_eq!(e.wl_writes(), 10);
        let r = MemEvent::read(0);
        assert!(!r.write);
        assert_eq!(r.translation, Translation::None);
        assert_eq!(r.wl_writes(), 0);
    }

    #[test]
    fn translation_round_trips_through_serde() {
        for t in [Translation::None, Translation::Hit, Translation::Miss] {
            let json = serde_json::to_string(&t).unwrap();
            let back: Translation = serde_json::from_str(&json).unwrap();
            assert_eq!(back, t);
        }
    }
}
