//! IPC estimation on top of the closed-loop simulator.
//!
//! Fig. 17 reports IPC *degradation*: `1 - IPC_scheme / IPC_baseline`,
//! where the baseline runs the identical request stream with no address
//! translation and no wear-leveling writes. The [`IpcModel`] wraps the
//! closed-loop simulator with the per-benchmark CPU model and converts
//! elapsed time into instructions per cycle.

use serde::{Deserialize, Serialize};

use crate::cpu::CpuModel;
use crate::event::MemEvent;
use crate::queue::{ClosedLoopConfig, ClosedLoopSim};

/// Result of an IPC simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IpcEstimate {
    /// Aggregate instructions per cycle across all cores.
    pub ipc: f64,
    /// Mean demand-request memory latency, ns.
    pub mean_latency_ns: f64,
    /// Demand requests simulated.
    pub requests: u64,
    /// Simulated wall-clock, ns.
    pub elapsed_ns: f64,
}

/// Per-benchmark IPC simulator.
#[derive(Debug, Clone)]
pub struct IpcModel {
    cpu: CpuModel,
    sim: ClosedLoopSim,
}

impl IpcModel {
    /// Build for a CPU model over the Table 1 memory system.
    pub fn new(cpu: CpuModel) -> Self {
        let sim = ClosedLoopSim::new(ClosedLoopConfig::table1(cpu.think_ns(), cpu.window()));
        Self { cpu, sim }
    }

    /// Feed one memory event.
    pub fn push(&mut self, e: MemEvent) {
        self.sim.push(e);
    }

    /// Finish and report.
    pub fn estimate(&self) -> IpcEstimate {
        let requests = self.sim.events();
        let elapsed_ns = self.sim.elapsed_ns();
        // Each request stands for instr_per_request instructions on its
        // core; the aggregate instruction count spans all requests.
        let instructions = requests as f64 * self.cpu.instr_per_request();
        let cycles = elapsed_ns * self.cpu.freq_ghz;
        let ipc = if cycles > 0.0 { instructions / cycles } else { 0.0 };
        IpcEstimate { ipc, mean_latency_ns: self.sim.mean_latency_ns(), requests, elapsed_ns }
    }

    /// The CPU model in use.
    pub fn cpu(&self) -> CpuModel {
        self.cpu
    }

    /// The underlying closed-loop simulator (histogram, stall breakdown).
    pub fn sim(&self) -> &ClosedLoopSim {
        &self.sim
    }
}

/// Fig. 17's metric: fractional IPC loss of `scheme` versus `baseline`.
pub fn ipc_degradation(baseline: IpcEstimate, scheme: IpcEstimate) -> f64 {
    if baseline.ipc <= 0.0 {
        return 0.0;
    }
    1.0 - scheme.ipc / baseline.ipc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Translation;
    use sawl_trace::SpecBenchmark;

    fn run(b: SpecBenchmark, t: Translation, wl_every: u32, wl_writes: u32) -> IpcEstimate {
        let mut m = IpcModel::new(CpuModel::for_benchmark(b));
        let mut x = 17u64;
        for i in 0..40_000u32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let mut e = if x & 7 < 3 {
                MemEvent::write((x >> 8) as u32)
            } else {
                MemEvent::read((x >> 8) as u32)
            }
            .with_translation(t);
            if wl_every > 0 && i % wl_every == 0 {
                e = e.with_exchange_writes(wl_writes);
            }
            m.push(e);
        }
        m.estimate()
    }

    #[test]
    fn translation_latency_degrades_ipc() {
        let base = run(SpecBenchmark::Mcf, Translation::None, 0, 0);
        let hit = run(SpecBenchmark::Mcf, Translation::Hit, 0, 0);
        let miss = run(SpecBenchmark::Mcf, Translation::Miss, 0, 0);
        assert!(base.ipc > hit.ipc);
        assert!(hit.ipc > miss.ipc);
        let d_miss = ipc_degradation(base, miss);
        assert!(d_miss > 0.02, "55ns translation cost only {d_miss}");
    }

    #[test]
    fn write_amplification_degrades_ipc() {
        let base = run(SpecBenchmark::Lbm, Translation::Hit, 0, 0);
        // ~25% write overhead (8 extra writes every 32 requests).
        let heavy = run(SpecBenchmark::Lbm, Translation::Hit, 32, 8);
        let d = ipc_degradation(base, heavy);
        assert!(d > 0.05, "write amplification cost only {d}");
    }

    #[test]
    fn memory_bound_apps_suffer_more_from_translation() {
        let mcf_d = {
            let b = run(SpecBenchmark::Mcf, Translation::None, 0, 0);
            ipc_degradation(b, run(SpecBenchmark::Mcf, Translation::Miss, 0, 0))
        };
        let namd_d = {
            let b = run(SpecBenchmark::Namd, Translation::None, 0, 0);
            ipc_degradation(b, run(SpecBenchmark::Namd, Translation::Miss, 0, 0))
        };
        assert!(
            mcf_d > namd_d,
            "memory-bound mcf ({mcf_d}) should lose more than compute-bound namd ({namd_d})"
        );
    }

    #[test]
    fn degradation_of_identical_runs_is_zero() {
        let a = run(SpecBenchmark::Gcc, Translation::Hit, 0, 0);
        let b = run(SpecBenchmark::Gcc, Translation::Hit, 0, 0);
        assert!(ipc_degradation(a, b).abs() < 1e-12);
    }

    #[test]
    fn ipc_is_positive_and_bounded() {
        let e = run(SpecBenchmark::Bzip2, Translation::Hit, 64, 8);
        assert!(e.ipc > 0.0);
        // 8 cores can't beat 8 instructions/cycle... with base_cpi >= 0.5
        // the bound is far lower; sanity only.
        assert!(e.ipc < 64.0);
        assert!(e.mean_latency_ns >= 50.0);
    }

    #[test]
    fn model_exposes_tail_and_stalls() {
        let mut m = IpcModel::new(CpuModel::for_benchmark(SpecBenchmark::Mcf));
        for i in 0..10_000u32 {
            m.push(MemEvent::write(i % 4).with_translation(Translation::Miss));
        }
        let sim = m.sim();
        assert!(sim.latency_percentile_ns(0.999) >= sim.latency_percentile_ns(0.5));
        assert!(sim.stalls().trans_miss_ns > 0.0);
    }
}
