//! # sawl-timing — memory-controller timing and IPC estimation
//!
//! The paper evaluates performance as IPC degradation relative to a system
//! without wear leveling (Fig. 17), measured in gem5 with the Table 1
//! configuration: 8 cores at 3.2 GHz, FR-FCFS memory scheduling, a
//! 128-entry queue, MLC NVM at 50/350 ns read/write, and address
//! translation at 5 ns (CMT hit) / 55 ns (miss).
//!
//! gem5 is out of scope (DESIGN.md §5); this crate replaces it with a
//! **closed-loop multi-channel bank-contention simulator** ([`queue`]): a
//! fixed window of outstanding requests (cores × per-core MLP) issues into
//! bounded per-bank FR-FCFS-style queues spread over independent channels;
//! each request pays its translation latency (driven by the actual CMT
//! hit/miss outcome, [`event::Translation`]) on the critical path,
//! serializes on its channel's data bus, and occupies its bank for the
//! device access time. Wear-leveling writes — data exchanges and SAWL's
//! merge/split reorganizations, carried separately on each event — occupy
//! banks in the background. Between requests the cores run the
//! benchmark's non-memory instructions ([`cpu`]). Throughput falls out of
//! the simulation, and IPC with it ([`ipc`]).
//!
//! Beyond the mean, the simulator keeps a log-bucketed HDR-style latency
//! histogram (`sawl-telemetry`) with p50/p99/p999/max queries and
//! attributes every stalled nanosecond to its cause — queueing,
//! translation miss, exchange, or merge/split — which is what the
//! tail-latency figures and the telemetry stream report.

pub mod cpu;
pub mod event;
pub mod ipc;
pub mod queue;

use serde::{Deserialize, Serialize};

pub use cpu::CpuModel;
pub use event::{MemEvent, Translation};
pub use ipc::{ipc_degradation, IpcEstimate, IpcModel};
pub use queue::{ClosedLoopConfig, ClosedLoopSim, StallBreakdown};

// Histogram vocabulary, re-exported so timing consumers don't need a
// direct `sawl-telemetry` dependency to query percentiles.
pub use sawl_telemetry::{LatencyHistogram, Percentile, TimingSample};

/// Serializable request to attach the timing model to an experiment.
/// Absent means fully disabled (the zero-cost default); `{}` in JSON
/// selects the Table 1 memory system.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimingSpec {
    /// Memory-system parameters. Omitted fields are not filled
    /// individually — either omit the whole object for the Table 1
    /// default or spell the config out.
    #[serde(default)]
    pub config: ClosedLoopConfig,
    /// Force the timed driver to serve every request scalar — one
    /// `WearLeveler::write` and one controller event per request — instead
    /// of the run-granular fast path. The observed timing is identical
    /// either way (the alignment suite pins it); this knob exists to
    /// measure the fast path's speedup and as an A/B escape hatch.
    #[serde(default)]
    pub scalar_serve: bool,
    /// Attach the full latency-histogram snapshot to the run's
    /// `LatencyReport`. Off by default (the summary percentiles suffice);
    /// sharded sweeps turn it on so per-shard histograms can be merged
    /// slot-exactly into one distribution.
    #[serde(default)]
    pub keep_histogram: bool,
}

impl TimingSpec {
    /// Build the simulator this spec describes.
    pub fn build(&self) -> ClosedLoopSim {
        ClosedLoopSim::new(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_spec_defaults_to_table1() {
        let spec: TimingSpec = serde_json::from_str("{}").unwrap();
        assert_eq!(spec, TimingSpec::default());
        assert_eq!(spec.config, ClosedLoopConfig::table1(10.0, 32));
        let json = serde_json::to_string(&spec).unwrap();
        let back: TimingSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn timing_spec_accepts_full_config() {
        let json = r#"{"config": {"channels": 1, "banks": 8, "window": 4, "queue_depth": 2,
            "think_ns": 1.0, "read_ns": 50.0, "write_ns": 350.0, "bus_ns": 0.0,
            "trans_hit_ns": 5.0, "trans_miss_ns": 55.0}}"#;
        let spec: TimingSpec = serde_json::from_str(json).unwrap();
        assert_eq!(spec.config.banks, 8);
        assert_eq!(spec.config.queue_depth, 2);
        let sim = spec.build();
        assert_eq!(sim.config(), spec.config);
    }
}
