//! # sawl-timing — memory-controller timing and IPC estimation
//!
//! The paper evaluates performance as IPC degradation relative to a system
//! without wear leveling (Fig. 17), measured in gem5 with the Table 1
//! configuration: 8 cores at 3.2 GHz, FR-FCFS memory scheduling, a
//! 128-entry queue, MLC NVM at 50/350 ns read/write, and address
//! translation at 5 ns (CMT hit) / 55 ns (miss).
//!
//! gem5 is out of scope (DESIGN.md §5); this crate replaces it with a
//! **closed-loop bank-contention simulator** ([`queue`]): a fixed window of
//! outstanding requests (cores × per-core MLP) issues into per-bank service
//! queues; each request pays its translation latency on the critical path
//! and then occupies its bank for the device access time, and wear-leveling
//! data-exchange writes occupy banks in the background. Between requests
//! the cores run the benchmark's non-memory instructions ([`cpu`]).
//! Throughput falls out of the simulation, and IPC with it ([`ipc`]).
//!
//! The effects this captures — added translation latency on every request,
//! bank pressure from wear-leveling write amplification, the 7× write/read
//! latency asymmetry of MLC NVM — are exactly the effects the paper's
//! Fig. 17 attributes its IPC differences to.

pub mod cpu;
pub mod event;
pub mod ipc;
pub mod queue;

pub use cpu::CpuModel;
pub use event::MemEvent;
pub use ipc::{ipc_degradation, IpcEstimate, IpcModel};
pub use queue::{ClosedLoopConfig, ClosedLoopSim};
