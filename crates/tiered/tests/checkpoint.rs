//! Checkpoint round-trip for the tiered NWL scheme: restore into a fresh
//! twin must reproduce the exact mutable state (CMT stack, IMT, GTD, RNG,
//! journal) and continue in lockstep with the original.

use sawl_algos::WearLeveler;
use sawl_ckpt::{Reader, Writer};
use sawl_nvm::{NvmConfig, NvmDevice};
use sawl_tiered::{Nwl, NwlConfig};

fn make(cfg: NwlConfig) -> (Nwl, NvmDevice) {
    let nwl = Nwl::new(cfg);
    let dev = NvmDevice::new(
        NvmConfig::builder()
            .lines(nwl.required_physical_lines())
            .banks(1)
            .endurance(1_000_000)
            .spare_shift(6)
            .build()
            .unwrap(),
    );
    (nwl, dev)
}

fn cfg() -> NwlConfig {
    NwlConfig {
        data_lines: 1 << 12,
        granularity: 4,
        cmt_entries: 128,
        swap_period: 4,
        gtd_period: 8,
        seed: 0xFEED,
    }
}

#[test]
fn nwl_roundtrips_and_continues_in_lockstep() {
    let (mut wl, mut d) = make(cfg());
    let span = wl.logical_lines();
    let mut x = 0x2545F4914F6CDD1Du64;
    for _ in 0..30_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        wl.write(x % span, &mut d);
    }
    assert!(wl.exchanges() > 0, "warmup produced no exchanges");

    let mut w = Writer::new();
    wl.ckpt_save(&mut w);
    let payload = w.into_payload();

    let (mut twin, _) = make(cfg());
    let mut r = Reader::new(&payload);
    twin.ckpt_restore(&mut r).expect("restore");
    r.finish().expect("no trailing bytes");

    let mut w2 = Writer::new();
    twin.ckpt_save(&mut w2);
    assert_eq!(payload, w2.into_payload(), "re-encode differs: state not fully captured");

    // Hit/miss and half-attribution counters must survive exactly — the
    // adaptation heuristics read them.
    assert_eq!(wl.mapping_stats(), twin.mapping_stats());
    assert_eq!(wl.cmt().hits_first_half(), twin.cmt().hits_first_half());
    assert_eq!(wl.cmt().hits_second_half(), twin.cmt().hits_second_half());
    assert_eq!(wl.cmt().keys_mru(), twin.cmt().keys_mru());

    let mut d2 = d.clone();
    for i in 0..10_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let la = x % span;
        let pa1 = wl.write(la, &mut d);
        let pa2 = twin.write(la, &mut d2);
        assert_eq!(pa1, pa2, "write landed differently at step {i}");
    }
    assert_eq!(d.wear(), d2.wear(), "device wear diverged after resume");
    assert_eq!(d.write_counts(), d2.write_counts(), "per-line wear diverged");
    assert_eq!(wl.exchanges(), twin.exchanges());
}

#[test]
fn nwl_restore_rejects_corruption() {
    let (mut wl, mut d) = make(cfg());
    for la in 0..5_000u64 {
        wl.write(la % wl.logical_lines(), &mut d);
    }
    let mut w = Writer::new();
    wl.ckpt_save(&mut w);
    let payload = w.into_payload();

    // Wrong shape: a twin with a different geometry.
    let (mut small, _) = make(NwlConfig { data_lines: 1 << 10, ..cfg() });
    assert!(small.ckpt_restore(&mut Reader::new(&payload)).is_err());

    // Wrong CMT capacity.
    let (mut other_cache, _) = make(NwlConfig { cmt_entries: 64, ..cfg() });
    assert!(other_cache.ckpt_restore(&mut Reader::new(&payload)).is_err());

    // Truncation anywhere must error, never panic.
    for cut in [0, 7, payload.len() / 3, payload.len() / 2, payload.len() - 1] {
        let (mut twin, _) = make(cfg());
        assert!(
            twin.ckpt_restore(&mut Reader::new(&payload[..cut])).is_err(),
            "truncation at {cut} not rejected"
        );
    }
}
