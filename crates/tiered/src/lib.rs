//! # sawl-tiered — the tiered address-mapping architecture
//!
//! The paper's §3.1 architecture stores the full address-mapping table in
//! the NVM itself and caches the hot entries on chip:
//!
//! * **IMT** (Integrated Mapping Table, [`imt`]) — one entry per
//!   wear-leveling region, holding the packed address information `D`
//!   (physical region number × granularity + key). The IMT lives in a
//!   reserved region of the NVM, packed into *translation lines* of
//!   `K = 6` entries each.
//! * **GTD** (Global Translation Directory, [`gtd`]) — a small on-chip
//!   table mapping logical translation-line addresses to their physical
//!   locations, because translation lines are wear-leveled too (they absorb
//!   every mapping update).
//! * **CMT** (Cached Mapping Table, [`cmt`]) — an on-chip LRU cache of
//!   recently used IMT entries. SAWL's split heuristic needs to know
//!   whether hits land in the hot (first) or cold (second) half of the LRU
//!   stack, so the cache maintains split hit counters with O(1) updates.
//! * [`clock`] — a CLOCK (second-chance) cache used by the replacement-
//!   policy ablation.
//! * **NWL** ([`nwl`]) — the "naive wear-leveling scheme": this tiered
//!   architecture at a *fixed* granularity, with PCM-S as the data-exchange
//!   policy. NWL-4 and NWL-64 are the paper's tiered baselines
//!   (Figs. 14, 17).
//! * [`overhead`] — the §4.5 hardware-overhead calculator.

pub mod clock;
pub mod cmt;
pub mod gtd;
pub mod imt;
pub mod journal;
pub mod layout;
pub mod nwl;
pub mod overhead;

pub use clock::ClockCache;
pub use cmt::{Cmt, CmtLookup};
pub use gtd::Gtd;
pub use imt::{ImtEntry, ImtTable, ENTRIES_PER_TRANSLATION_LINE};
pub use journal::{Journal, OpKind, OpRecord, RegionUpdate};
pub use layout::TieredLayout;
pub use nwl::{Nwl, NwlConfig};
pub use overhead::OverheadModel;
