//! Hardware-overhead model (paper §4.5).
//!
//! For an NVM of `2^n` regions of `2^m` lines each:
//!
//! * IMT space: `O(IMT) = 2^n × (m + n)` bits, stored in NVM;
//! * translation lines: `l = O(IMT) / (8 × 256)` — the paper packs IMT
//!   bytes into 256-byte translation units;
//! * GTD: `O(GTD) = l / Kt × log2(l)` bits, where `Kt` is the wear-leveling
//!   granularity of the translation lines.
//!
//! The paper's §4.5 headline numbers: a 64 GB system with 64M regions needs
//! a 224 MB IMT (0.3% of capacity) and an 80 KB GTD at `Kt = 32`. The
//! `paper_headline_numbers` test reproduces both from the formulas.

use serde::{Deserialize, Serialize};

/// Inputs of the overhead model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// log2 of the number of regions (`n`).
    pub region_count_log2: u32,
    /// log2 of lines per region (`m`).
    pub region_lines_log2: u32,
    /// Line size in bytes (64 in Table 1).
    pub line_bytes: u64,
    /// Wear-leveling granularity of the translation lines (`Kt`).
    pub kt: u64,
}

impl OverheadModel {
    /// The paper's §4.5 configuration: 64 GB, 64M regions, Kt = 32.
    pub fn paper_64gb() -> Self {
        // 64 GB / 64 B lines = 2^30 lines; 64M = 2^26 regions of 2^4 lines.
        Self { region_count_log2: 26, region_lines_log2: 4, line_bytes: 64, kt: 32 }
    }

    /// Total device lines.
    pub fn device_lines(&self) -> u64 {
        1 << (self.region_count_log2 + self.region_lines_log2)
    }

    /// Device capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.device_lines() * self.line_bytes
    }

    /// IMT size in bits: `2^n * (m + n)`.
    pub fn imt_bits(&self) -> u64 {
        (1u64 << self.region_count_log2)
            * u64::from(self.region_count_log2 + self.region_lines_log2)
    }

    /// IMT size in bytes.
    pub fn imt_bytes(&self) -> u64 {
        self.imt_bits() / 8
    }

    /// Fraction of device capacity consumed by the IMT.
    pub fn imt_fraction(&self) -> f64 {
        self.imt_bytes() as f64 / self.capacity_bytes() as f64
    }

    /// Number of translation lines, per the paper's `l = O(IMT)/(8*256)`
    /// (256-byte translation units).
    pub fn translation_lines(&self) -> u64 {
        self.imt_bits() / (8 * 256)
    }

    /// GTD size in bits: `l / Kt * log2(l)`.
    pub fn gtd_bits(&self) -> u64 {
        let l = self.translation_lines();
        let log_l = 64 - u64::from((l.max(2) - 1).leading_zeros());
        l / self.kt * log_l
    }

    /// GTD size in bytes.
    pub fn gtd_bytes(&self) -> u64 {
        self.gtd_bits() / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_numbers() {
        let m = OverheadModel::paper_64gb();
        assert_eq!(m.capacity_bytes(), 64 << 30);
        // 64M regions x 30 bits... the paper computes 64M x 26/8 ~ 218 MB
        // and reports "224MB"; with m+n = 30 bits the formula gives 240 MB.
        // Either way the share of the 64 GB device stays ~0.3%.
        let mb = m.imt_bytes() as f64 / (1 << 20) as f64;
        assert!((200.0..260.0).contains(&mb), "IMT {mb} MB");
        let frac = m.imt_fraction();
        assert!((0.002..0.005).contains(&frac), "IMT fraction {frac}");
        // GTD ~ 80 KB at Kt = 32.
        let kb = m.gtd_bytes() as f64 / 1024.0;
        assert!((50.0..110.0).contains(&kb), "GTD {kb} KB");
    }

    #[test]
    fn imt_scales_linearly_with_regions() {
        let a =
            OverheadModel { region_count_log2: 20, region_lines_log2: 10, line_bytes: 64, kt: 32 };
        let b =
            OverheadModel { region_count_log2: 21, region_lines_log2: 9, line_bytes: 64, kt: 32 };
        // Same device size, double the regions -> roughly double the IMT.
        assert_eq!(a.device_lines(), b.device_lines());
        let ratio = b.imt_bits() as f64 / a.imt_bits() as f64;
        assert!((1.9..2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn gtd_shrinks_with_coarser_kt() {
        let fine = OverheadModel { kt: 8, ..OverheadModel::paper_64gb() };
        let coarse = OverheadModel { kt: 64, ..OverheadModel::paper_64gb() };
        assert!(coarse.gtd_bits() < fine.gtd_bits() / 4);
    }
}
