//! The Global Translation Directory.
//!
//! Translation lines absorb a mapping-table write on every wear-leveling
//! exchange, so "to prevent the translation lines from being worn out, the
//! NVM system must independently perform hybrid wear leveling for the
//! translation lines. Hence, a GTD table is needed to record the
//! relationship between the logical translation line memory address (tlma)
//! and its physical counterpart (tpma)" (§3.1). The GTD itself is tiny and
//! lives in on-chip SRAM.
//!
//! We wear-level the translation region with a Security Refresh instance
//! (an XOR key re-randomized gradually): algebraic, so the on-chip GTD
//! state is a few registers rather than a table — consistent with the
//! paper's 80 KB GTD budget. One refresh step runs every `period`
//! translation-line writes and relocates a pair of translation lines.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sawl_nvm::NvmDevice;

use sawl_algos::security_refresh::SrInstance;

/// GTD: translation-line address mapping + wear leveling of the
/// translation region.
#[derive(Debug, Clone)]
pub struct Gtd {
    sr: SrInstance,
    /// First physical line of the translation region.
    base: u64,
    /// Refresh step per this many translation-line writes.
    period: u64,
    writes: u64,
    rng: SmallRng,
    /// Total translation-line writes (IMT updates) observed.
    updates: u64,
}

impl Gtd {
    /// GTD over a translation region of `space` lines (power of two)
    /// starting at physical line `base`, refreshing every `period` updates.
    pub fn new(base: u64, space: u64, period: u64, seed: u64) -> Self {
        assert!(period > 0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let sr = SrInstance::new(space, space - 1, &mut rng);
        Self { sr, base, period, writes: 0, rng, updates: 0 }
    }

    /// Physical line currently holding logical translation line `tlma`.
    #[inline]
    pub fn locate(&self, tlma: u64) -> u64 {
        self.base + self.sr.map(tlma)
    }

    /// Record a *read* of a translation line (an IMT fetch on CMT miss).
    #[inline]
    pub fn read_line(&mut self, tlma: u64, dev: &mut NvmDevice) -> u64 {
        let pa = self.locate(tlma);
        dev.read(pa);
        pa
    }

    /// Record a *write* of a translation line (an IMT entry update): wears
    /// the line and advances the translation-region wear leveling.
    pub fn write_line(&mut self, tlma: u64, dev: &mut NvmDevice) -> u64 {
        let pa = self.locate(tlma);
        dev.write_wl(pa);
        self.updates += 1;
        self.writes += 1;
        if self.writes >= self.period {
            self.writes = 0;
            if let Some((s1, s2)) = self.sr.step(&mut self.rng) {
                dev.write_wl(self.base + s1);
                dev.write_wl(self.base + s2);
            }
        }
        pa
    }

    /// Total IMT-update writes routed through the GTD.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// On-chip bits: two keys, a refresh pointer and a counter.
    pub fn onchip_bits(&self) -> u64 {
        let bits = 64 - (self.sr.size() - 1).leading_zeros() as u64;
        3 * bits + 64
    }

    /// Checkpoint the SR state, refresh counter, RNG and update count
    /// (base, space and period are configuration, rebuilt from the spec).
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        self.sr.ckpt_save(w);
        w.put_u64(self.writes);
        w.put_rng(self.rng.state());
        w.put_u64(self.updates);
    }

    /// Restore state saved by [`ckpt_save`](Self::ckpt_save) into an
    /// instance built from the same spec.
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        self.sr.ckpt_restore(r)?;
        let writes = r.get_u64()?;
        if writes >= self.period {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "gtd: refresh counter {writes} out of range for period {}",
                self.period
            )));
        }
        self.writes = writes;
        self.rng = SmallRng::from_state(r.get_rng()?);
        self.updates = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sawl_nvm::NvmConfig;

    fn dev(lines: u64) -> NvmDevice {
        NvmDevice::new(
            NvmConfig::builder()
                .lines(lines)
                .banks(1)
                .endurance(1_000_000)
                .spare_shift(4)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn locate_is_identity_initially_and_offset_by_base() {
        let g = Gtd::new(1024, 64, 32, 1);
        for t in 0..64 {
            assert_eq!(g.locate(t), 1024 + t);
        }
    }

    #[test]
    fn writes_wear_the_translation_region() {
        let mut d = dev(1024 + 64);
        let mut g = Gtd::new(1024, 64, 32, 2);
        g.write_line(3, &mut d);
        assert_eq!(d.write_count(1024 + 3), 1);
        assert_eq!(d.wear().overhead_writes, 1);
        assert_eq!(g.updates(), 1);
    }

    #[test]
    fn refresh_relocates_translation_lines() {
        let mut d = dev(1024 + 64);
        let mut g = Gtd::new(1024, 64, 2, 3);
        let before = g.locate(5);
        // Push enough updates to run many refresh rounds.
        let mut moved = false;
        for _ in 0..2_000 {
            g.write_line(5, &mut d);
            if g.locate(5) != before {
                moved = true;
            }
        }
        assert!(moved, "translation line never relocated");
    }

    #[test]
    fn refresh_spreads_wear_across_translation_region() {
        let mut d = dev(64 + 64);
        let mut g = Gtd::new(64, 64, 2, 4);
        for _ in 0..20_000 {
            g.write_line(0, &mut d);
        }
        let touched = d.write_counts()[64..].iter().filter(|&&c| c > 0).count();
        assert!(touched > 32, "only {touched} translation slots worn");
    }

    #[test]
    fn reads_do_not_wear() {
        let mut d = dev(128);
        let mut g = Gtd::new(64, 64, 32, 5);
        g.read_line(7, &mut d);
        assert_eq!(d.wear().total_writes, 0);
        assert_eq!(d.wear().reads, 1);
    }
}
