//! NWL — the naive tiered wear-leveling scheme.
//!
//! §3's strawman: run the PCM-S hybrid algorithm, but keep the full mapping
//! table (IMT) in NVM and only a cache (CMT) on chip. Correct, and the
//! on-chip cost no longer scales with the region count — but under
//! workloads with weak locality the CMT hit rate collapses and every miss
//! pays a 55 ns in-NVM table lookup. NWL-4 and NWL-64 (4- and 64-line
//! regions) are the fixed-granularity baselines of Figs. 14 and 17;
//! SAWL exists to beat them by *adapting* the granularity.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sawl_nvm::{La, NvmDevice, Pa};

use sawl_algos::exchange::{draw_key, SwapCounters};
use sawl_algos::{OpCounts, Recovery, WearLeveler};
use serde::{Deserialize, Serialize};

use crate::cmt::{Cmt, CmtLookup};
use crate::gtd::Gtd;
use crate::imt::{ImtEntry, ImtTable};
use crate::journal::{Journal, OpKind, RegionUpdate};
use crate::layout::TieredLayout;

/// Configuration of an NWL instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NwlConfig {
    /// User data lines (power of two).
    pub data_lines: u64,
    /// Wear-leveling granularity (region size) in lines — the "4" of NWL-4.
    pub granularity: u64,
    /// CMT capacity in entries.
    pub cmt_entries: usize,
    /// Writes per line between region exchanges (PCM-S swapping period).
    pub swap_period: u64,
    /// Translation-line writes per GTD refresh step.
    pub gtd_period: u64,
    /// RNG seed for exchange-partner and key draws.
    pub seed: u64,
}

impl NwlConfig {
    /// Bits per CMT entry for this geometry: tag (lrn) + packed address
    /// information D. Used to size the CMT from a byte budget.
    pub fn entry_bits(&self) -> u64 {
        let lrn_bits = 64 - (self.data_lines / self.granularity - 1).leading_zeros() as u64;
        let d_bits = 64 - (self.data_lines - 1).leading_zeros() as u64;
        lrn_bits + d_bits
    }

    /// Set `cmt_entries` from an SRAM budget in bytes.
    pub fn with_cache_bytes(mut self, bytes: u64) -> Self {
        self.cmt_entries = ((bytes * 8) / self.entry_bits()).max(2) as usize;
        self
    }
}

impl Default for NwlConfig {
    fn default() -> Self {
        Self {
            data_lines: 1 << 16,
            granularity: 4,
            cmt_entries: 1024,
            swap_period: 128,
            gtd_period: 32,
            seed: 0x5A5A_1234,
        }
    }
}

/// Hit/miss statistics of the translation path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappingStats {
    /// CMT hits.
    pub hits: u64,
    /// CMT misses (each paid an in-NVM IMT read).
    pub misses: u64,
}

impl MappingStats {
    /// Hit rate in [0, 1]; 0 when no lookups have occurred.
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

/// The naive tiered wear-leveling scheme.
#[derive(Debug, Clone)]
pub struct Nwl {
    cfg: NwlConfig,
    layout: TieredLayout,
    imt: ImtTable,
    /// physical region -> logical region (exchange bookkeeping)
    p2l: Vec<u32>,
    /// swapping-period counters per logical region
    swaps: SwapCounters,
    cmt: Cmt<ImtEntry>,
    gtd: Gtd,
    rng: SmallRng,
    journal: Journal,
    exchanges: u64,
}

impl Nwl {
    /// Build an NWL instance. The device must provide
    /// [`Nwl::required_physical_lines`] lines.
    pub fn new(cfg: NwlConfig) -> Self {
        let layout = TieredLayout::new(cfg.data_lines, cfg.granularity);
        let imt = ImtTable::identity(cfg.data_lines, cfg.granularity);
        let regions = layout.imt_entries;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let gtd = Gtd::new(
            layout.translation_base(),
            layout.translation_space,
            cfg.gtd_period,
            rng.random(),
        );
        Self {
            cmt: Cmt::new(cfg.cmt_entries),
            p2l: (0..regions as u32).collect(),
            swaps: SwapCounters::new(regions as usize, cfg.swap_period),
            imt,
            layout,
            gtd,
            rng,
            journal: Journal::new(),
            exchanges: 0,
            cfg,
        }
    }

    /// Physical lines the device must provide (data + translation region).
    pub fn required_physical_lines(&self) -> u64 {
        self.layout.total_lines()
    }

    /// The configuration in use.
    pub fn config(&self) -> &NwlConfig {
        &self.cfg
    }

    /// The physical layout.
    pub fn layout(&self) -> TieredLayout {
        self.layout
    }

    /// Translation-path statistics.
    pub fn mapping_stats(&self) -> MappingStats {
        MappingStats { hits: self.cmt.hits(), misses: self.cmt.misses() }
    }

    /// The CMT (hit counters, occupancy) for monitors and tests.
    pub fn cmt(&self) -> &Cmt<ImtEntry> {
        &self.cmt
    }

    /// Region exchanges performed.
    pub fn exchanges(&self) -> u64 {
        self.exchanges
    }

    /// Resolve the mapping entry for `lrn` through the cache, charging an
    /// IMT read on a miss.
    fn resolve_entry(&mut self, lrn: u64, dev: &mut NvmDevice) -> ImtEntry {
        match self.cmt.lookup(lrn) {
            CmtLookup::Hit(e) => {
                debug_assert_eq!(e, self.imt.entry(lrn), "CMT out of sync with IMT");
                e
            }
            CmtLookup::Miss => {
                let tl = self.imt.translation_line_of(lrn);
                self.gtd.read_line(tl, dev);
                let e = self.imt.entry(lrn);
                self.cmt.insert(lrn, e);
                e
            }
        }
    }

    /// PCM-S region exchange: swap `a` with a random partner, re-key both,
    /// rewrite both regions, and push the two updated entries through the
    /// GTD into their translation lines. Journaled: both new region
    /// descriptors are made durable before the first NVM write, so a power
    /// loss mid-exchange is rolled forward by recovery.
    fn exchange(&mut self, a: u64, dev: &mut NvmDevice) {
        if dev.power_lost() {
            return;
        }
        let regions = self.layout.imt_entries;
        let g = self.cfg.granularity;
        let q_log2 = g.trailing_zeros() as u8;
        let updates = if regions == 1 {
            // Degenerate single region: re-key in place.
            let ea = self.imt.entry(0);
            vec![RegionUpdate { base: 0, prn: ea.prn(), key: draw_key(&mut self.rng, g), q_log2 }]
        } else {
            let mut partner = a;
            while partner == a {
                partner = self.rng.random_range(0..regions);
            }
            let b = partner;
            let ea = self.imt.entry(a);
            let eb = self.imt.entry(b);
            vec![
                RegionUpdate { base: a, prn: eb.prn(), key: draw_key(&mut self.rng, g), q_log2 },
                RegionUpdate { base: b, prn: ea.prn(), key: draw_key(&mut self.rng, g), q_log2 },
            ]
        };
        self.journal.begin(OpKind::Exchange, updates.clone());
        self.swaps.reset(a as usize);
        self.exchanges += 1;
        self.apply_exchange(&updates, dev);
        if dev.power_lost() {
            // The journal record stays pending; recovery finishes the swap.
            return;
        }
        self.journal.commit();
    }

    /// Apply a (journaled) exchange: the data rewrites and the IMT/GTD/CMT
    /// updates, in the same device-write order as before journaling.
    fn apply_exchange(&mut self, updates: &[RegionUpdate], dev: &mut NvmDevice) {
        let g = self.cfg.granularity;
        let q_log2 = g.trailing_zeros() as u8;
        let new_a = ImtEntry::pack(updates[0].prn, updates[0].key, updates[0].q_log2);
        let new_b = updates.get(1).map(|u| ImtEntry::pack(u.prn, u.key, u.q_log2));
        // The inverse map is volatile host state, rebuilt at recovery.
        self.p2l[new_a.prn() as usize] = updates[0].base as u32;
        if let Some(eb) = new_b {
            self.p2l[eb.prn() as usize] = updates[1].base as u32;
        }
        // Rewrite every line of both physical regions at their new homes.
        for off in 0..g {
            dev.write_wl((new_a.prn() << q_log2) | off);
            if let Some(eb) = new_b {
                dev.write_wl((eb.prn() << q_log2) | off);
            }
        }
        // Update IMT (through the GTD: translation lines wear) and CMT.
        // The translation-line write precedes the entry mutation so a
        // power loss mid-update leaves the old descriptor in place.
        let tl_a = self.imt.translation_line_of(updates[0].base);
        self.gtd.write_line(tl_a, dev);
        if dev.power_lost() {
            return;
        }
        self.imt.set_entry(updates[0].base, new_a);
        self.cmt.update_in_place(updates[0].base, new_a);
        if let Some(eb) = new_b {
            let tl_b = self.imt.translation_line_of(updates[1].base);
            if tl_b != tl_a {
                self.gtd.write_line(tl_b, dev);
                if dev.power_lost() {
                    return;
                }
            }
            self.imt.set_entry(updates[1].base, eb);
            self.cmt.update_in_place(updates[1].base, eb);
        }
    }

    /// Whether a journaled update is already the authoritative entry.
    fn update_landed(&self, u: &RegionUpdate) -> bool {
        self.imt.entry(u.base) == ImtEntry::pack(u.prn, u.key, u.q_log2)
    }

    /// Rebuild every volatile structure from the durable IMT: the inverse
    /// map, the (cleared) CMT and the swapping-period counters.
    fn rebuild_after_crash(&mut self) {
        for lrn in 0..self.layout.imt_entries {
            let e = self.imt.entry(lrn);
            self.p2l[e.prn() as usize] = lrn as u32;
        }
        self.cmt.clear();
        self.swaps.clear();
    }

    /// The mapping-update journal (commit/replay/rollback counters).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Checkpoint every piece of mutable state: the durable IMT and
    /// journal, the volatile CMT and swap counters (so resume is
    /// byte-identical to an uninterrupted run, unlike crash recovery which
    /// deliberately restarts them cold), the GTD and the RNG.
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        self.imt.ckpt_save(w);
        self.swaps.ckpt_save(w);
        self.cmt.ckpt_save(w, |e, w| {
            w.put_u64(e.d);
            w.put_u8(e.q_log2);
        });
        self.gtd.ckpt_save(w);
        w.put_rng(self.rng.state());
        self.journal.ckpt_save(w);
        w.put_u64(self.exchanges);
    }

    /// Restore state saved by [`ckpt_save`](Self::ckpt_save) into an
    /// instance built from the same config. The inverse map is rebuilt from
    /// the restored IMT; cached CMT entries are validated against it.
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        self.imt.ckpt_restore(r)?;
        let regions = self.layout.imt_entries;
        for lrn in 0..regions {
            let e = self.imt.entry(lrn);
            if e.prn() >= regions {
                return Err(sawl_ckpt::CkptError::Corrupt(format!(
                    "nwl: region {lrn} maps to physical region {} of {regions}",
                    e.prn()
                )));
            }
            self.p2l[e.prn() as usize] = lrn as u32;
        }
        self.swaps.ckpt_restore(r)?;
        self.cmt.ckpt_restore(r, |r| {
            let d = r.get_u64()?;
            let q_log2 = r.get_u8()?;
            Ok(ImtEntry { d, q_log2 })
        })?;
        for (lrn, e) in self.cmt.iter_mru() {
            if lrn >= regions || e != self.imt.entry(lrn) {
                return Err(sawl_ckpt::CkptError::Corrupt(format!(
                    "nwl: cached entry for region {lrn} disagrees with the IMT"
                )));
            }
        }
        self.gtd.ckpt_restore(r)?;
        self.rng = SmallRng::from_state(r.get_rng()?);
        self.journal.ckpt_restore(r)?;
        self.exchanges = r.get_u64()?;
        Ok(())
    }
}

impl WearLeveler for Nwl {
    fn name(&self) -> &'static str {
        "nwl"
    }

    fn logical_lines(&self) -> u64 {
        self.cfg.data_lines
    }

    #[inline]
    fn translate(&self, la: La) -> Pa {
        self.imt.translate(la)
    }

    fn write(&mut self, la: La, dev: &mut NvmDevice) -> Pa {
        let lrn = self.imt.lrn_of(la);
        let e = self.resolve_entry(lrn, dev);
        let pa = e.translate(la);
        dev.write(pa);
        if self.swaps.record_write(lrn as usize, self.cfg.granularity) {
            self.exchange(lrn, dev);
        }
        pa
    }

    fn read(&mut self, la: La, dev: &mut NvmDevice) -> Pa {
        let lrn = self.imt.lrn_of(la);
        let e = self.resolve_entry(lrn, dev);
        let pa = e.translate(la);
        dev.read(pa);
        pa
    }

    fn quiet_writes(&self, la: La) -> u64 {
        // Quiet requires a cached mapping entry (a miss reads an in-NVM
        // translation line) and staying strictly before the region's
        // exchange trigger.
        let lrn = self.imt.lrn_of(la);
        if self.cmt.peek(lrn).is_none() {
            return 0;
        }
        self.swaps.until_trigger(lrn as usize, self.cfg.granularity) - 1
    }

    /// Post-power-loss recovery: roll the interrupted exchange forward when
    /// any of its descriptors landed (replaying the data rewrites), roll it
    /// back otherwise, then rebuild the volatile inverse map and caches
    /// from the durable IMT.
    fn recover(&mut self, dev: &mut NvmDevice) -> Recovery {
        dev.restore_power();
        let mut rec = Recovery::CLEAN;
        if let Some(pending) = self.journal.pending() {
            let updates = pending.updates.clone();
            if updates.iter().any(|u| self.update_landed(u)) {
                self.journal.note_replay();
                rec.replayed = true;
                let g = self.cfg.granularity;
                for u in &updates {
                    let tl = self.imt.translation_line_of(u.base);
                    self.gtd.write_line(tl, dev);
                    if dev.power_lost() {
                        rec.complete = false;
                        return rec;
                    }
                    self.imt.set_entry(u.base, ImtEntry::pack(u.prn, u.key, u.q_log2));
                    // The recovered controller cannot know which lines were
                    // rewritten before the crash: conservatively rewrite the
                    // region's full footprint.
                    for off in 0..g {
                        dev.write_wl((u.prn << u.q_log2) | off);
                    }
                    if dev.power_lost() {
                        rec.complete = false;
                        return rec;
                    }
                }
                self.journal.commit();
            } else {
                self.journal.rollback();
                rec.rolled_back = true;
            }
        }
        self.rebuild_after_crash();
        rec
    }

    fn onchip_bits(&self) -> u64 {
        self.cmt.capacity() as u64 * self.cfg.entry_bits() + self.gtd.onchip_bits()
    }

    fn telemetry_sample(&self, out: &mut sawl_telemetry::SchemeSample) {
        out.cmt_hits = Some(self.cmt.hits());
        out.cmt_misses = Some(self.cmt.misses());
        out.cmt_hits_first_half = Some(self.cmt.hits_first_half());
        out.cmt_hits_second_half = Some(self.cmt.hits_second_half());
        out.exchanges = Some(self.exchanges);
        out.journal_begins = Some(self.journal.begins());
        out.journal_commits = Some(self.journal.commits());
        out.journal_rollbacks = Some(self.journal.rollbacks());
        // Fixed granularity: every region is one granule.
        out.region_count = Some(self.cfg.data_lines / self.cfg.granularity);
        out.region_size_cached = Some(self.cfg.granularity as f64);
        out.region_size_global = Some(self.cfg.granularity as f64);
    }

    fn op_counts(&self) -> OpCounts {
        OpCounts { exchanges: self.exchanges, reorgs: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sawl_algos::verify::check_permutation;
    use sawl_nvm::NvmConfig;

    fn make(cfg: NwlConfig) -> (Nwl, NvmDevice) {
        let nwl = Nwl::new(cfg);
        let dev = NvmDevice::new(
            NvmConfig::builder()
                .lines(nwl.required_physical_lines())
                .banks(1)
                .endurance(1_000_000)
                .spare_shift(6)
                .build()
                .unwrap(),
        );
        (nwl, dev)
    }

    #[test]
    fn starts_identity_and_translates() {
        let (nwl, _) = make(NwlConfig::default());
        for la in [0u64, 5, 1000, 65535] {
            assert_eq!(nwl.translate(la), la);
        }
    }

    #[test]
    fn misses_then_hits() {
        let (mut nwl, mut dev) = make(NwlConfig::default());
        nwl.write(0, &mut dev);
        assert_eq!(nwl.mapping_stats().misses, 1);
        nwl.write(1, &mut dev); // same 4-line region -> hit
        assert_eq!(nwl.mapping_stats().hits, 1);
        nwl.write(4, &mut dev); // next region -> miss
        assert_eq!(nwl.mapping_stats().misses, 2);
    }

    #[test]
    fn miss_charges_an_imt_read() {
        let (mut nwl, mut dev) = make(NwlConfig::default());
        nwl.write(0, &mut dev);
        assert_eq!(dev.wear().reads, 1); // translation-line fetch
        nwl.write(1, &mut dev);
        assert_eq!(dev.wear().reads, 1); // hit: no extra device read
    }

    #[test]
    fn exchange_rewrites_regions_and_translation_lines() {
        let cfg = NwlConfig { swap_period: 4, ..NwlConfig::default() };
        let (mut nwl, mut dev) = make(cfg);
        // 4 * 4 = 16 writes to region 0 trigger one exchange.
        for _ in 0..16 {
            nwl.write(0, &mut dev);
        }
        assert_eq!(nwl.exchanges(), 1);
        // Overhead: 2 regions * 4 lines + 1-2 translation-line writes.
        let ov = dev.wear().overhead_writes;
        assert!((9..=11).contains(&ov), "overhead {ov}");
        assert_ne!(nwl.translate(0), 0, "region 0 should have moved");
        check_permutation(&nwl, nwl.layout().data_lines);
    }

    #[test]
    fn cmt_stays_coherent_across_exchanges() {
        let cfg = NwlConfig { swap_period: 2, cmt_entries: 64, ..NwlConfig::default() };
        let (mut nwl, mut dev) = make(cfg);
        let mut x = 42u64;
        for _ in 0..50_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // resolve_entry debug-asserts CMT == IMT on every hit.
            nwl.write(x % (1 << 16), &mut dev);
        }
        assert!(nwl.exchanges() > 0);
        check_permutation(&nwl, nwl.layout().data_lines);
    }

    #[test]
    fn small_cache_misses_more_than_large() {
        let run = |entries: usize| {
            let cfg = NwlConfig { cmt_entries: entries, ..NwlConfig::default() };
            let (mut nwl, mut dev) = make(cfg);
            let mut x = 7u64;
            for _ in 0..100_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                nwl.write(x % (1 << 14), &mut dev); // 4K regions touched
            }
            nwl.mapping_stats().hit_rate()
        };
        let small = run(64);
        let large = run(8192);
        assert!(large > small + 0.2, "large {large} vs small {small}");
    }

    #[test]
    fn coarser_granularity_raises_hit_rate() {
        // The motivating observation for SAWL: same cache, bigger regions
        // -> more address space covered -> higher hit rate.
        let run = |g: u64| {
            let cfg = NwlConfig { granularity: g, cmt_entries: 256, ..NwlConfig::default() };
            let (mut nwl, mut dev) = make(cfg);
            let mut x = 9u64;
            for _ in 0..100_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                nwl.write(x % (1 << 14), &mut dev);
            }
            nwl.mapping_stats().hit_rate()
        };
        let nwl4 = run(4);
        let nwl64 = run(64);
        assert!(nwl64 > nwl4 + 0.3, "nwl64 {nwl64} vs nwl4 {nwl4}");
    }

    #[test]
    fn reads_count_toward_hit_rate_but_not_wear() {
        let (mut nwl, mut dev) = make(NwlConfig::default());
        nwl.read(0, &mut dev);
        nwl.read(1, &mut dev);
        let s = nwl.mapping_stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(dev.wear().total_writes, 0);
    }

    #[test]
    fn entry_bits_and_cache_sizing() {
        let cfg = NwlConfig { data_lines: 1 << 16, granularity: 4, ..NwlConfig::default() };
        // lrn bits = 14, d bits = 16 -> 30 bits per entry.
        assert_eq!(cfg.entry_bits(), 30);
        let sized = cfg.with_cache_bytes(64 * 1024);
        assert_eq!(sized.cmt_entries, (64 * 1024 * 8 / 30) as usize);
    }

    #[test]
    fn translation_line_wear_is_leveled() {
        // Hammer one region so its translation line is updated over and
        // over; the GTD's refresh must spread that wear.
        let cfg = NwlConfig { swap_period: 1, ..NwlConfig::default() };
        let (mut nwl, mut dev) = make(cfg);
        for _ in 0..200_000 {
            nwl.write(0, &mut dev);
        }
        let base = nwl.layout().translation_base() as usize;
        let t_counts = &dev.write_counts()[base..];
        let touched = t_counts.iter().filter(|&&c| c > 0).count();
        assert!(touched > 16, "translation wear stuck on {touched} lines");
    }
}
