//! The Cached Mapping Table: an exact-LRU cache with split hit counters.
//!
//! "The entries in CMT are organized in an LRU stack and a new entry cached
//! from NVM will evict the least-recently-used entry" (§3.1). SAWL's
//! region-split heuristic additionally needs "two registers to record the
//! cache hit counts of the first and the second half of the CMT entries
//! queue" (§3.2) — i.e. whether each hit landed in the hot (MRU) half or
//! the cold half of the stack.
//!
//! Knowing which half a node is in is an order-statistics question; a naive
//! answer walks the list. We instead maintain a **boundary pointer** to the
//! last node of the first half plus a count, giving O(1) lookup, insert,
//! evict and half-tracking: when a node from the second half moves to the
//! front, the old boundary node is demoted and the boundary steps back.
//!
//! The `reference_model` test drives the cache against a brute-force
//! `VecDeque` implementation with thousands of mixed operations.

use std::collections::HashMap;

/// A slot index in the intrusive list; `NIL` means "none".
type Idx = u32;
const NIL: Idx = u32::MAX;

#[derive(Debug, Clone)]
struct Node<V> {
    key: u64,
    val: V,
    prev: Idx,
    next: Idx,
    in_first: bool,
}

/// Result of a CMT lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmtLookup<V> {
    /// Entry found; it has been moved to the MRU position.
    Hit(V),
    /// Entry absent; the caller must fetch from the IMT and insert.
    Miss,
}

/// Exact-LRU Cached Mapping Table with split hit counters.
#[derive(Debug, Clone)]
pub struct Cmt<V> {
    nodes: Vec<Node<V>>,
    map: HashMap<u64, Idx>,
    free: Vec<Idx>,
    head: Idx,
    tail: Idx,
    /// Last node of the first (MRU) half; NIL when empty.
    boundary: Idx,
    /// Number of nodes currently in the first half.
    first_count: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
    hits_first: u64,
    hits_second: u64,
    evictions: u64,
}

impl<V: Copy> Cmt<V> {
    /// Cache holding at most `capacity` entries (`>= 2`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "CMT needs at least two entries");
        Self {
            nodes: Vec::with_capacity(capacity),
            map: HashMap::with_capacity(capacity * 2),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            boundary: NIL,
            first_count: 0,
            capacity,
            hits: 0,
            misses: 0,
            hits_first: 0,
            hits_second: 0,
            evictions: 0,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total hits since the last counter reset.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses since the last counter reset.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hits that landed in the first (MRU) half of the stack.
    pub fn hits_first_half(&self) -> u64 {
        self.hits_first
    }

    /// Hits that landed in the second (LRU) half of the stack.
    pub fn hits_second_half(&self) -> u64 {
        self.hits_second
    }

    /// Evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Hit rate since the last counter reset (0 when no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Reset the hit/miss/split counters (capacity and contents stay).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.hits_first = 0;
        self.hits_second = 0;
    }

    /// Drop every cached entry, keeping capacity and the cumulative
    /// hit/miss counters. This models a power loss: the CMT is on-chip
    /// SRAM, so crash recovery restarts it cold while the adaptation
    /// layer's counter snapshots (journaled host state) stay monotonic.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.map.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.boundary = NIL;
        self.first_count = 0;
    }

    /// Target size of the first half for the current occupancy.
    #[inline]
    fn first_target(&self) -> usize {
        self.map.len().div_ceil(2)
    }

    /// Checkpoint the cache: counters plus the `(key, value)` stack from
    /// MRU to LRU. Values are written through `save_val` since the CMT is
    /// generic. Rebuilding from MRU order reproduces the exact LRU stack
    /// (and therefore the half-boundary) on restore.
    pub fn ckpt_save(
        &self,
        w: &mut sawl_ckpt::Writer,
        mut save_val: impl FnMut(&V, &mut sawl_ckpt::Writer),
    ) {
        w.put_u64(self.capacity as u64);
        w.put_u64(self.hits);
        w.put_u64(self.misses);
        w.put_u64(self.hits_first);
        w.put_u64(self.hits_second);
        w.put_u64(self.evictions);
        w.put_u64(self.map.len() as u64);
        for (k, v) in self.iter_mru() {
            w.put_u64(k);
            save_val(&v, w);
        }
    }

    /// Restore a cache saved by [`ckpt_save`](Self::ckpt_save) into an
    /// instance built with the same capacity.
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
        mut load_val: impl FnMut(&mut sawl_ckpt::Reader<'_>) -> Result<V, sawl_ckpt::CkptError>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        let capacity = r.get_u64()?;
        if capacity != self.capacity as u64 {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "cmt: capacity {capacity} in checkpoint, {} in instance",
                self.capacity
            )));
        }
        let hits = r.get_u64()?;
        let misses = r.get_u64()?;
        let hits_first = r.get_u64()?;
        let hits_second = r.get_u64()?;
        let evictions = r.get_u64()?;
        let len = r.get_u64()?;
        if len > capacity {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "cmt: {len} entries over capacity {capacity}"
            )));
        }
        let mut mru: Vec<(u64, V)> = Vec::with_capacity(len as usize);
        for _ in 0..len {
            let k = r.get_u64()?;
            mru.push((k, load_val(r)?));
        }
        self.clear();
        // Inserting LRU-first reproduces the MRU order; `insert` detects
        // duplicate keys by not growing the map.
        for &(k, ref v) in mru.iter().rev() {
            self.insert(k, *v);
        }
        if self.map.len() != mru.len() {
            return Err(sawl_ckpt::CkptError::Corrupt("cmt: duplicate keys in stack".into()));
        }
        self.hits = hits;
        self.misses = misses;
        self.hits_first = hits_first;
        self.hits_second = hits_second;
        self.evictions = evictions;
        Ok(())
    }

    /// Look up `key`; a hit moves the entry to the MRU position and is
    /// attributed to the half it was found in.
    pub fn lookup(&mut self, key: u64) -> CmtLookup<V> {
        match self.map.get(&key) {
            Some(&idx) => {
                self.hits += 1;
                if self.nodes[idx as usize].in_first {
                    self.hits_first += 1;
                } else {
                    self.hits_second += 1;
                }
                let val = self.nodes[idx as usize].val;
                self.move_to_front(idx);
                CmtLookup::Hit(val)
            }
            None => {
                self.misses += 1;
                CmtLookup::Miss
            }
        }
    }

    /// Record `k` repeated hits to a cached `key` in one step — equivalent
    /// to calling [`Cmt::lookup`] `k` times. The first hit is attributed
    /// to the half the entry currently sits in; the entry then moves to
    /// the MRU position (first half), where the remaining `k - 1` hits
    /// land. Panics if `key` is not cached.
    pub fn record_hits(&mut self, key: u64, k: u64) {
        if k == 0 {
            return;
        }
        let idx = *self.map.get(&key).expect("record_hits on uncached key");
        self.hits += k;
        if self.nodes[idx as usize].in_first {
            self.hits_first += k;
        } else {
            self.hits_second += 1;
            self.hits_first += k - 1;
        }
        self.move_to_front(idx);
    }

    /// Read without affecting LRU order or counters.
    pub fn peek(&self, key: u64) -> Option<V> {
        self.map.get(&key).map(|&idx| self.nodes[idx as usize].val)
    }

    /// Update the value of a cached entry in place (no LRU movement); no-op
    /// if the key is absent. Used when a wear-leveling exchange rewrites a
    /// mapping that happens to be cached.
    pub fn update_in_place(&mut self, key: u64, val: V) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.nodes[idx as usize].val = val;
            true
        } else {
            false
        }
    }

    /// Remove an entry; returns its value if present.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let idx = self.map.remove(&key)?;
        let val = self.nodes[idx as usize].val;
        self.unlink(idx);
        self.free.push(idx);
        self.rebalance();
        Some(val)
    }

    /// Insert `key -> val` at the MRU position, evicting the LRU entry if
    /// full. Returns the evicted `(key, value)` pair, if any. Inserting an
    /// existing key updates it and moves it to the front.
    pub fn insert(&mut self, key: u64, val: V) -> Option<(u64, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.nodes[idx as usize].val = val;
            self.move_to_front(idx);
            return None;
        }
        let evicted = if self.map.len() == self.capacity {
            let tail = self.tail;
            let k = self.nodes[tail as usize].key;
            let v = self.nodes[tail as usize].val;
            self.map.remove(&k);
            self.unlink(tail);
            self.free.push(tail);
            self.evictions += 1;
            Some((k, v))
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Node { key, val, prev: NIL, next: NIL, in_first: false };
                i
            }
            None => {
                self.nodes.push(Node { key, val, prev: NIL, next: NIL, in_first: false });
                (self.nodes.len() - 1) as Idx
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        self.rebalance();
        evicted
    }

    /// Iterate over `(key, value)` pairs from MRU to LRU.
    pub fn iter_mru(&self) -> impl Iterator<Item = (u64, V)> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                None
            } else {
                let n = &self.nodes[cur as usize];
                cur = n.next;
                Some((n.key, n.val))
            }
        })
    }

    /// Keys currently cached (MRU to LRU order).
    pub fn keys_mru(&self) -> Vec<u64> {
        self.iter_mru().map(|(k, _)| k).collect()
    }

    // ---- intrusive-list plumbing -------------------------------------

    fn unlink(&mut self, idx: Idx) {
        let (prev, next, in_first) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next, n.in_first)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        if in_first {
            self.first_count -= 1;
            if self.boundary == idx {
                self.boundary = prev;
            }
        }
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = NIL;
    }

    fn push_front(&mut self, idx: Idx) {
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
        // New front nodes always enter the first half.
        self.nodes[idx as usize].in_first = true;
        self.first_count += 1;
        if self.boundary == NIL {
            self.boundary = idx;
        }
    }

    fn move_to_front(&mut self, idx: Idx) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
        self.rebalance();
    }

    /// Restore the invariant `first_count == first_target()` by demoting
    /// the boundary node or promoting its successor. Each insert/move
    /// changes counts by at most a couple, so this loop runs O(1) steps.
    fn rebalance(&mut self) {
        let target = self.first_target();
        while self.first_count > target {
            // Demote the boundary node to the second half.
            let b = self.boundary;
            debug_assert_ne!(b, NIL);
            self.nodes[b as usize].in_first = false;
            self.first_count -= 1;
            self.boundary = self.nodes[b as usize].prev;
        }
        while self.first_count < target {
            // Promote the node after the boundary.
            let next = if self.boundary == NIL {
                self.head
            } else {
                self.nodes[self.boundary as usize].next
            };
            debug_assert_ne!(next, NIL);
            self.nodes[next as usize].in_first = true;
            self.first_count += 1;
            self.boundary = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    #[test]
    fn basic_hit_miss_and_eviction() {
        let mut c: Cmt<u32> = Cmt::new(2);
        assert_eq!(c.lookup(1), CmtLookup::Miss);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.lookup(1), CmtLookup::Hit(10));
        // Insert a third entry; LRU (2) is evicted.
        let evicted = c.insert(3, 30);
        assert_eq!(evicted, Some((2, 20)));
        assert_eq!(c.lookup(2), CmtLookup::Miss);
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn lru_order_follows_access() {
        let mut c: Cmt<u32> = Cmt::new(3);
        c.insert(1, 1);
        c.insert(2, 2);
        c.insert(3, 3);
        assert_eq!(c.keys_mru(), vec![3, 2, 1]);
        c.lookup(1);
        assert_eq!(c.keys_mru(), vec![1, 3, 2]);
        c.insert(4, 4); // evicts 2
        assert_eq!(c.keys_mru(), vec![4, 1, 3]);
    }

    #[test]
    fn split_counters_attribute_halves() {
        let mut c: Cmt<u32> = Cmt::new(4);
        for k in 0..4 {
            c.insert(k, k as u32);
        }
        // MRU order: 3 2 | 1 0. Hitting 3 (first half), then 0 (second).
        c.lookup(3);
        assert_eq!(c.hits_first_half(), 1);
        assert_eq!(c.hits_second_half(), 0);
        c.lookup(0);
        assert_eq!(c.hits_first_half(), 1);
        assert_eq!(c.hits_second_half(), 1);
    }

    #[test]
    fn record_hits_matches_repeated_lookups() {
        // record_hits(key, k) must be indistinguishable from k lookups:
        // same counters (including half attribution) and same LRU order.
        // Exercise both halves and every small k, from a mixed-history
        // cache state.
        for start in 0..6u64 {
            for k in 0..5u64 {
                let mut c: Cmt<u32> = Cmt::new(6);
                for key in 0..6 {
                    c.insert(key, key as u32);
                }
                c.lookup(2);
                c.lookup(start); // vary which half `start` ends up in

                let mut reference = c.clone();
                c.record_hits(start, k);
                for _ in 0..k {
                    reference.lookup(start);
                }
                assert_eq!(c.keys_mru(), reference.keys_mru(), "start {start} k {k}");
                assert_eq!(c.hits(), reference.hits(), "start {start} k {k}");
                assert_eq!(c.hits_first_half(), reference.hits_first_half(), "start {start} k {k}");
                assert_eq!(
                    c.hits_second_half(),
                    reference.hits_second_half(),
                    "start {start} k {k}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "uncached key")]
    fn record_hits_rejects_uncached_keys() {
        let mut c: Cmt<u32> = Cmt::new(2);
        c.insert(1, 1);
        c.record_hits(7, 3);
    }

    #[test]
    fn hit_rate_and_reset() {
        let mut c: Cmt<u32> = Cmt::new(2);
        c.insert(1, 1);
        c.lookup(1);
        c.lookup(2);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
        c.reset_counters();
        assert_eq!(c.hits(), 0);
        assert_eq!(c.hit_rate(), 0.0);
        // Contents survive the reset.
        assert_eq!(c.peek(1), Some(1));
    }

    #[test]
    fn update_in_place_preserves_order() {
        let mut c: Cmt<u32> = Cmt::new(3);
        c.insert(1, 1);
        c.insert(2, 2);
        assert!(c.update_in_place(1, 100));
        assert!(!c.update_in_place(9, 9));
        assert_eq!(c.keys_mru(), vec![2, 1]);
        assert_eq!(c.peek(1), Some(100));
        // No counter movement from update_in_place.
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn remove_works_and_rebalances() {
        let mut c: Cmt<u32> = Cmt::new(4);
        for k in 0..4 {
            c.insert(k, k as u32);
        }
        assert_eq!(c.remove(3), Some(3));
        assert_eq!(c.remove(3), None);
        assert_eq!(c.len(), 3);
        assert_eq!(c.keys_mru(), vec![2, 1, 0]);
        // First half of 3 entries is 2 nodes: hitting key 1 is first-half.
        c.lookup(1);
        assert_eq!(c.hits_first_half(), 1);
    }

    #[test]
    fn reinserting_existing_key_moves_to_front_without_eviction() {
        let mut c: Cmt<u32> = Cmt::new(2);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.insert(1, 11), None);
        assert_eq!(c.keys_mru(), vec![1, 2]);
        assert_eq!(c.peek(1), Some(11));
        assert_eq!(c.len(), 2);
    }

    /// Brute-force reference: VecDeque front = MRU; first half =
    /// ceil(len/2) front positions.
    struct RefModel {
        q: VecDeque<(u64, u32)>,
        cap: usize,
        hits_first: u64,
        hits_second: u64,
        hits: u64,
        misses: u64,
    }

    impl RefModel {
        fn lookup(&mut self, k: u64) -> Option<u32> {
            match self.q.iter().position(|&(key, _)| key == k) {
                Some(pos) => {
                    self.hits += 1;
                    if pos < self.q.len().div_ceil(2) {
                        self.hits_first += 1;
                    } else {
                        self.hits_second += 1;
                    }
                    let item = self.q.remove(pos).unwrap();
                    self.q.push_front(item);
                    Some(item.1)
                }
                None => {
                    self.misses += 1;
                    None
                }
            }
        }

        fn insert(&mut self, k: u64, v: u32) {
            if let Some(pos) = self.q.iter().position(|&(key, _)| key == k) {
                self.q.remove(pos);
            } else if self.q.len() == self.cap {
                self.q.pop_back();
            }
            self.q.push_front((k, v));
        }
    }

    #[test]
    fn reference_model() {
        let mut c: Cmt<u32> = Cmt::new(8);
        let mut r = RefModel {
            q: VecDeque::new(),
            cap: 8,
            hits_first: 0,
            hits_second: 0,
            hits: 0,
            misses: 0,
        };
        let mut x = 0xABCDEFu64;
        for step in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 16; // working set 2x the capacity
            let op = (x >> 32) % 3;
            match op {
                0 | 1 => {
                    let got = c.lookup(key);
                    let want = r.lookup(key);
                    match (got, want) {
                        (CmtLookup::Hit(a), Some(b)) => assert_eq!(a, b, "step {step}"),
                        (CmtLookup::Miss, None) => {}
                        other => panic!("step {step}: divergence {other:?}"),
                    }
                }
                _ => {
                    c.insert(key, step as u32);
                    r.insert(key, step as u32);
                }
            }
            assert_eq!(c.keys_mru(), r.q.iter().map(|&(k, _)| k).collect::<Vec<_>>());
            assert_eq!(c.hits(), r.hits, "step {step}");
            assert_eq!(c.hits_first_half(), r.hits_first, "step {step} first-half");
            assert_eq!(c.hits_second_half(), r.hits_second, "step {step} second-half");
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_capacity_one() {
        let _: Cmt<u32> = Cmt::new(1);
    }

    #[test]
    fn clear_empties_contents_but_keeps_counters() {
        let mut c: Cmt<u32> = Cmt::new(4);
        for k in 0..4 {
            c.insert(k, k as u32);
        }
        c.lookup(0);
        c.lookup(9);
        let (hits, misses) = (c.hits(), c.misses());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 4);
        assert_eq!(c.hits(), hits);
        assert_eq!(c.misses(), misses);
        assert_eq!(c.lookup(0), CmtLookup::Miss);
        // The cache works normally after a clear.
        c.insert(7, 70);
        assert_eq!(c.lookup(7), CmtLookup::Hit(70));
        assert_eq!(c.keys_mru(), vec![7]);
    }
}
