//! The Integrated Mapping Table.
//!
//! One entry per initial-granularity region (`P` lines). An entry packs the
//! paper's *address information* `D = prn × Q + key` — the physical region
//! number in units of the entry's real granularity `Q`, and the
//! intra-region XOR key — plus the granularity itself. In hardware the
//! granularity is implicit ("the NVM obtains the real wear-leveling
//! granularity of a region based on the number of adjacent regions which
//! have the same address information", §3.2); we store `q_log2` explicitly
//! and *maintain the adjacency property as an invariant*, which the SAWL
//! engine's tests verify.
//!
//! The table's contents live in NVM translation lines (6 entries per line,
//! §3.3 "K ... is 6 in our design"); entry updates therefore wear the
//! translation region — the [`crate::gtd::Gtd`] charges and wear-levels
//! those writes.

use serde::{Deserialize, Serialize};

/// Entries per translation line ("K", §3.3).
pub const ENTRIES_PER_TRANSLATION_LINE: u64 = 6;

/// One IMT entry: where a region lives and how big it currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImtEntry {
    /// Packed address information: `prn * Q + key` where `prn` is in units
    /// of `Q`-line regions.
    pub d: u64,
    /// log2 of the entry's real wear-leveling granularity `Q`, in lines.
    pub q_log2: u8,
}

impl ImtEntry {
    /// Real granularity `Q` in lines.
    #[inline]
    pub fn q(&self) -> u64 {
        1 << self.q_log2
    }

    /// Physical region number (in units of `Q`-line regions): `prn = D/Q`.
    #[inline]
    pub fn prn(&self) -> u64 {
        self.d >> self.q_log2
    }

    /// Intra-region offset key: `key = D % Q`.
    #[inline]
    pub fn key(&self) -> u64 {
        self.d & (self.q() - 1)
    }

    /// Build from parts.
    #[inline]
    pub fn pack(prn: u64, key: u64, q_log2: u8) -> Self {
        debug_assert!(key < (1 << q_log2));
        Self { d: (prn << q_log2) | key, q_log2 }
    }

    /// Translate a logical memory address covered by this entry:
    /// `pao = lao ^ key`, `pma = prn * Q + pao` (paper Fig. 11 steps 5-7).
    #[inline]
    pub fn translate(&self, lma: u64) -> u64 {
        let q_mask = self.q() - 1;
        let lao = lma & q_mask;
        let pao = lao ^ self.key();
        (self.prn() << self.q_log2) | pao
    }
}

/// The full mapping table (one entry per `P`-line granule).
#[derive(Debug, Clone)]
pub struct ImtTable {
    entries: Vec<ImtEntry>,
    /// Initial granularity P in lines.
    p: u64,
}

impl ImtTable {
    /// Identity-mapped table over `data_lines` at initial granularity `p`,
    /// with per-entry keys of zero.
    pub fn identity(data_lines: u64, p: u64) -> Self {
        assert!(data_lines.is_power_of_two() && p.is_power_of_two() && p <= data_lines);
        let p_log2 = p.trailing_zeros() as u8;
        let n = data_lines / p;
        let entries = (0..n).map(|lrn| ImtEntry::pack(lrn, 0, p_log2)).collect();
        Self { entries, p }
    }

    /// Initial granularity P in lines.
    #[inline]
    pub fn p(&self) -> u64 {
        self.p
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty (never for constructed tables).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry covering logical granule `lrn` (= lma / P).
    #[inline]
    pub fn entry(&self, lrn: u64) -> ImtEntry {
        self.entries[lrn as usize]
    }

    /// Logical granule of a logical memory address.
    #[inline]
    pub fn lrn_of(&self, lma: u64) -> u64 {
        lma / self.p
    }

    /// Overwrite the entry for `lrn`; returns the translation line that was
    /// written (`tlma = lrn / K`, paper Fig. 11 step 1 uses `lrn/(P·K)`
    /// relative to addresses; relative to granules it is `lrn / K`).
    #[inline]
    pub fn set_entry(&mut self, lrn: u64, e: ImtEntry) -> u64 {
        self.entries[lrn as usize] = e;
        lrn / ENTRIES_PER_TRANSLATION_LINE
    }

    /// Translation line holding the entry of `lrn`.
    #[inline]
    pub fn translation_line_of(&self, lrn: u64) -> u64 {
        lrn / ENTRIES_PER_TRANSLATION_LINE
    }

    /// Translate a logical memory address through the table.
    #[inline]
    pub fn translate(&self, lma: u64) -> u64 {
        self.entry(self.lrn_of(lma)).translate(lma)
    }

    /// All entries (tests / invariant checks).
    pub fn entries(&self) -> &[ImtEntry] {
        &self.entries
    }

    /// Checkpoint the full table (initial granularity is configuration,
    /// rebuilt from the spec).
    pub fn ckpt_save(&self, w: &mut sawl_ckpt::Writer) {
        w.put_u64(self.entries.len() as u64);
        for e in &self.entries {
            w.put_u64(e.d);
            w.put_u8(e.q_log2);
        }
    }

    /// Restore a table saved by [`ckpt_save`](Self::ckpt_save) into a table
    /// built with the same geometry.
    pub fn ckpt_restore(
        &mut self,
        r: &mut sawl_ckpt::Reader<'_>,
    ) -> Result<(), sawl_ckpt::CkptError> {
        let count = r.get_u64()?;
        if count != self.entries.len() as u64 {
            return Err(sawl_ckpt::CkptError::Corrupt(format!(
                "imt: {count} entries in checkpoint, {} in table",
                self.entries.len()
            )));
        }
        let mut entries = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let d = r.get_u64()?;
            let q_log2 = r.get_u8()?;
            if q_log2 >= 64 {
                return Err(sawl_ckpt::CkptError::Corrupt(format!(
                    "imt: entry granularity 2^{q_log2} is absurd"
                )));
            }
            entries.push(ImtEntry { d, q_log2 });
        }
        self.entries = entries;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let e = ImtEntry::pack(13, 5, 3);
        assert_eq!(e.prn(), 13);
        assert_eq!(e.key(), 5);
        assert_eq!(e.q(), 8);
        assert_eq!(e.d, 13 * 8 + 5);
    }

    #[test]
    fn translate_applies_xor_within_region() {
        let e = ImtEntry::pack(2, 0b11, 2); // Q=4, key=3, prn=2
                                            // lma offsets 0..4 -> pao = off ^ 3, region base = 8.
        assert_eq!(e.translate(0), 8 + 3);
        assert_eq!(e.translate(1), 8 + 2);
        assert_eq!(e.translate(2), 8 + 1);
        assert_eq!(e.translate(3), 8);
        // Only the low q bits of lma matter.
        assert_eq!(e.translate(4 + 1), 8 + 2);
    }

    #[test]
    fn identity_table_translates_identically() {
        let t = ImtTable::identity(1 << 10, 4);
        for lma in [0u64, 1, 5, 255, 1023] {
            assert_eq!(t.translate(lma), lma);
        }
        assert_eq!(t.len(), 256);
    }

    #[test]
    fn set_entry_reports_translation_line() {
        let mut t = ImtTable::identity(1 << 10, 4);
        let e = ImtEntry::pack(7, 1, 2);
        assert_eq!(t.set_entry(0, e), 0);
        assert_eq!(t.set_entry(5, e), 0);
        assert_eq!(t.set_entry(6, e), 1);
        assert_eq!(t.translation_line_of(12), 2);
        assert_eq!(t.entry(5), e);
    }

    #[test]
    fn entry_translation_is_bijective_per_region() {
        let e = ImtEntry::pack(3, 9, 4); // Q = 16
        let mut seen = [false; 16];
        for off in 0..16u64 {
            let pa = e.translate(off) as usize;
            let slot = pa - 3 * 16;
            assert!(!seen[slot]);
            seen[slot] = true;
        }
    }
}
